//! Facade crate re-exporting the Mantle reproduction workspace.
//!
//! See [`mantle_core`] for the high-level experiment API, [`mantle_policy`]
//! for the embedded balancing-policy language, and [`mantle_mds`] for the
//! simulated CephFS-like metadata cluster.
//!
//! ```
//! use mantle::prelude::*;
//!
//! let spec = Experiment::new(
//!     ClusterConfig::default().with_mds(2),
//!     WorkloadSpec::CreateShared { clients: 4, files: 500 },
//!     BalancerSpec::mantle("greedy", policies::greedy_spill().unwrap()),
//! );
//! let report = run_experiment(&spec);
//! assert_eq!(report.total_ops(), 2_000.0);
//! ```
pub use mantle_core as core;
pub use mantle_daemon as daemon;
pub use mantle_mds as mds;
pub use mantle_namespace as namespace;
pub use mantle_policy as policy;
pub use mantle_sim as sim;
pub use mantle_workloads as workloads;

pub use mantle_core::prelude;
