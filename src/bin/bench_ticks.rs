//! Tick-cost tracker: times the heartbeat-snapshot path and the policy
//! hooks with plain `std::time::Instant` (no external bench harness), and
//! writes the measurements to `BENCH_ticks.json` at the repo root.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --bin bench_ticks
//! ```
//!
//! or, for a seconds-long CI smoke that skips the timing loops and the
//! JSON write but still checks that every fast path produces the same
//! numbers as its walk-based oracle — and that the incremental index
//! never fell back to a full aggregate rebuild:
//!
//! ```text
//! cargo run --release --bin bench_ticks -- --smoke
//! ```
//!
//! What it measures, on a create-shared-style namespace of ≥ 2 000
//! directories spread over 3 MDSs:
//!
//! * `snapshot`: the per-tick metadata-load roll-up — the incremental
//!   per-MDS aggregate path (`Namespace::mds_load_samples`, O(MDSs))
//!   against the legacy per-dirfrag walk (O(dirs × frags × hook evals));
//! * `metaload_hook`: one Table-1 `metaload` evaluation — the
//!   scalar-compiled fast path against the tree-walking interpreter;
//! * `decide_hook`: one full when/where decision (adaptable policy) on
//!   all three hook engines — the default bytecode VM (cached decide
//!   environment + scalar mdsload), the slot VM (compiled hooks, fresh
//!   environment per call), and per-call interpreter setup. The bytecode
//!   engine is gated ≥ 2× the slot path on this non-scalar decision
//!   hook, and the scalar `metaload` path must never be slower under the
//!   bytecode engine than under the slot engine;
//! * `end_to_end`: a small create-shared experiment wall-clock, fast vs
//!   forced-slow hook engine (results are byte-identical; only time may
//!   differ);
//! * `migration_tick`: the cost of one balancer-driven migration plus the
//!   following load snapshot on a ~10 000-directory namespace — the
//!   incremental index (bounded subtree walk + delta aggregates) against
//!   the walk-oracle path (full-namespace aggregate rebuild per tick);
//! * `scale`: the event-queue backends — steady-state push+pop throughput
//!   at ≥100k pending events (timing wheel vs binary heap), plus
//!   whole-cluster wall-clock rows at 10/64/128 MDSs on both backends
//!   (reports asserted byte-identical, and the wheel is asserted to never
//!   be slower than the heap on any committed cluster row);
//! * `parallel`: the sharded engine — the 128-MDS row on 1/2/4/8 worker
//!   threads (reports asserted byte-identical to the single-threaded
//!   oracle). The ≥2.5× speedup gate at 4 threads arms only when the
//!   host actually has ≥4 cores; on smaller hosts the numbers are still
//!   recorded (barrier overhead makes sharding a slowdown there — see
//!   DESIGN.md §14);
//! * `cache`: the proxy-cache tier — `GroupCache` lookup/fill cost on a
//!   bench-sized namespace, plus the flash-crowd storm run cache-off and
//!   cache-on (simulated ops/s, hit rate). The cache-on/off speedup is
//!   gated ≥ 2× — the acceptance bound for the hotspot-absorbing tier;
//! * `elastic`: the membership layer — one `howmany` hook evaluation
//!   (runs once per tick on the coordinator), plus the quick diurnal
//!   scenario scored in ops per provisioned MDS-hour: the elastic
//!   cluster against every fixed size in its pool. The elastic run is
//!   gated strictly better than the best fixed size — the same
//!   acceptance bound `elastic --smoke` enforces in CI.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use mantle::core::elastic;
use mantle::core::flashcrowd::{client_ops, ops_per_sec, run_pair};
use mantle::core::policies;
use mantle::core::repro::ReproOpts;
use mantle::core::scale::{run_scale, run_scale_mode, ScaleSpec};
use mantle::mds::{ExecMode, GroupCache, HookEngine};
use mantle::namespace::{IndexMode, Namespace, NodeId, NsConfig, OpKind};
use mantle::policy::env::{BalancerInputs, FragMetrics, MantleRuntime, MdsMetrics};
use mantle::prelude::*;
use mantle::sim::{EventQueue, SimRng, SimTime};

const NUM_MDS: usize = 3;

/// Average seconds per call of `f` over `iters` calls.
fn time_per_call(iters: u32, mut f: impl FnMut()) -> f64 {
    // One warm-up call keeps lazy initialization out of the window.
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// A create-shared-style namespace: a few project roots, each packed with
/// subdirectories that clients hammer with creates and stats. Subtrees are
/// spread over the MDSs so replica (ancestor) chains are non-trivial.
fn build_namespace(dirs_per_project: usize, projects: usize, mode: IndexMode) -> Namespace {
    let mut ns = Namespace::new(NsConfig {
        index_mode: mode,
        ..Default::default()
    });
    let now = SimTime::ZERO;
    let root = ns.root();
    for p in 0..projects {
        let proj = ns.mkdir(root, format!("proj{p}"));
        ns.migrate_subtree(proj, p % NUM_MDS);
        for d in 0..dirs_per_project {
            let dir = ns.mkdir(proj, format!("d{d}"));
            if d % 7 == 0 {
                // A slice of each project lives on another MDS, so the
                // ancestor chains replicate load across ranks.
                ns.migrate_subtree(dir, (p + 1) % NUM_MDS);
            }
            let heat = 1 + (d % 5);
            for _ in 0..heat {
                ns.record_op(dir, OpKind::Create, now);
            }
            ns.record_op(dir, OpKind::Stat, now);
            if d % 3 == 0 {
                ns.record_op(dir, OpKind::Readdir, now);
            }
        }
    }
    ns
}

/// The legacy snapshot inner loop: evaluate the metaload hook once per
/// dirfrag and accumulate per-MDS totals (what `snapshot_heartbeats` did
/// before the incremental aggregates, and still does for non-additive
/// hooks).
fn per_frag_walk(ns: &mut Namespace, rt: &MantleRuntime, now: SimTime) -> (Vec<f64>, Vec<f64>) {
    let mut auth_load = vec![0.0; NUM_MDS];
    let mut all_load = vec![0.0; NUM_MDS];
    let dirs: Vec<NodeId> = ns.all_dirs().collect();
    for d in dirs {
        let nfrags = ns.dir(d).frags.len();
        for f in 0..nfrags {
            let heat = ns.frag_heat(d, f, now);
            let auth = ns.frag_auth(d, f);
            let load = rt
                .eval_metaload(
                    auth,
                    &frag_metrics(heat.ird, heat.iwr, heat.readdir, heat.fetch, heat.store),
                )
                .unwrap_or_else(|_| heat.cephfs_metaload());
            auth_load[auth] += load;
            all_load[auth] += load;
            for rep in ns.ancestor_auth_chain(d) {
                if rep != auth {
                    all_load[rep] += load * 0.2;
                }
            }
        }
    }
    (auth_load, all_load)
}

/// The aggregate snapshot inner loop: per-MDS heat samples from the
/// incrementally maintained aggregates, one hook evaluation per MDS for
/// auth heat and one for replicated heat.
fn aggregate_rollup(ns: &mut Namespace, rt: &MantleRuntime, now: SimTime) -> (Vec<f64>, Vec<f64>) {
    let (auth_s, rep_s) = ns.mds_load_samples(NUM_MDS, now);
    let mut auth_load = vec![0.0; NUM_MDS];
    let mut all_load = vec![0.0; NUM_MDS];
    for m in 0..NUM_MDS {
        let a = rt
            .eval_metaload(
                m,
                &frag_metrics(
                    auth_s[m].ird,
                    auth_s[m].iwr,
                    auth_s[m].readdir,
                    auth_s[m].fetch,
                    auth_s[m].store,
                ),
            )
            .unwrap_or_else(|_| auth_s[m].cephfs_metaload());
        let r = rt
            .eval_metaload(
                m,
                &frag_metrics(
                    rep_s[m].ird,
                    rep_s[m].iwr,
                    rep_s[m].readdir,
                    rep_s[m].fetch,
                    rep_s[m].store,
                ),
            )
            .unwrap_or_else(|_| rep_s[m].cephfs_metaload());
        auth_load[m] = a;
        all_load[m] = a + 0.2 * r;
    }
    (auth_load, all_load)
}

fn frag_metrics(ird: f64, iwr: f64, readdir: f64, fetch: f64, store: f64) -> FragMetrics {
    FragMetrics {
        ird,
        iwr,
        readdir,
        fetch,
        store,
    }
}

/// The first `count` leaf directories of project 0 — the small hot dirs a
/// Greedy Spill tick exports one at a time.
fn project_leaves(ns: &Namespace, count: usize) -> Vec<NodeId> {
    let proj = ns
        .lookup_child(ns.root(), "proj0")
        .expect("bench namespace has proj0");
    (0..count)
        .map(|d| {
            ns.lookup_child(proj, &format!("d{d}"))
                .expect("bench namespace leaf")
        })
        .collect()
}

/// One migration-heavy balancer tick: export a small subtree, then take
/// the load snapshot the next heartbeat needs. In incremental mode both
/// steps are bounded by the moved subtree; on the walk-oracle path the
/// snapshot rebuilds every per-MDS aggregate from per-frag truth.
fn migration_tick(ns: &mut Namespace, leaves: &[NodeId], i: &mut usize, now: SimTime) {
    let leaf = leaves[*i % leaves.len()];
    let to = *i % NUM_MDS;
    *i += 1;
    ns.migrate_subtree(leaf, to);
    black_box(ns.mds_load_samples(NUM_MDS, now));
}

/// `--smoke`: tiny namespaces, no timing loops, no JSON — just assert
/// that the fast paths run (and agree with their oracles) without the
/// incremental index ever falling back to a full rebuild.
fn run_smoke() {
    let now = SimTime::from_secs(1);
    let table1 = MantleRuntime::new(policies::cephfs_original().expect("preset compiles"));
    let mut inc = build_namespace(40, 3, IndexMode::Incremental);
    let mut ora = build_namespace(40, 3, IndexMode::WalkOracle);

    let (agg_auth, _) = aggregate_rollup(&mut inc, &table1, now);
    let (walk_auth, _) = per_frag_walk(&mut inc, &table1, now);
    for m in 0..NUM_MDS {
        let diff = (agg_auth[m] - walk_auth[m]).abs();
        assert!(
            diff <= 1e-6 * (1.0 + walk_auth[m].abs()),
            "smoke: snapshot paths disagree on MDS {m}: {} vs {}",
            agg_auth[m],
            walk_auth[m]
        );
    }

    // The decide pipeline on all three hook engines, same inputs, must be
    // bit-identical (the timing run gates speed; smoke gates agreement).
    let inputs = decide_inputs();
    let outcomes: Vec<_> = [HookEngine::Bytecode, HookEngine::Slot, HookEngine::Tree]
        .iter()
        .map(|&e| {
            MantleRuntime::new(policies::adaptable().expect("preset compiles"))
                .with_engine(e)
                .decide(&inputs)
                .expect("adaptable decides cleanly")
        })
        .collect();
    for w in outcomes.windows(2) {
        assert_eq!(w[0], w[1], "smoke: hook engines disagree on decide");
    }

    let leaves_inc = project_leaves(&inc, 8);
    let leaves_ora = project_leaves(&ora, 8);
    let (mut ii, mut io) = (0, 0);
    for _ in 0..16 {
        migration_tick(&mut inc, &leaves_inc, &mut ii, now);
        migration_tick(&mut ora, &leaves_ora, &mut io, now);
    }
    assert_eq!(
        inc.rebuilds(),
        0,
        "smoke: incremental index fell back to a full aggregate rebuild"
    );
    assert!(
        ora.rebuilds() > 0,
        "smoke: walk-oracle mode never exercised the rebuild path"
    );

    // Trace overhead guard: attaching a sink must not change the
    // simulation (fixed-seed reports stay byte-identical) or push any
    // balancer onto the oracle fallback, and the captured stream must
    // replay cleanly through the invariant checker.
    let spec = Experiment::new(
        ClusterConfig {
            num_mds: NUM_MDS,
            heartbeat_interval: SimTime::from_millis(400),
            frag_split_threshold: 300,
            ..Default::default()
        },
        WorkloadSpec::CreateShared {
            clients: 4,
            files: 2_000,
        },
        BalancerSpec::mantle(
            "greedy-spill",
            policies::greedy_spill().expect("preset compiles"),
        ),
    );
    let plain = format!("{:?}", run_experiment(&spec));
    let (traced, trace) = run_experiment_traced(&spec, TraceLevel::Full);
    assert_eq!(
        plain,
        format!("{traced:?}"),
        "smoke: tracing changed the simulation"
    );
    assert_eq!(
        traced.balancer_fallbacks, 0,
        "smoke: traced run fell back to the built-in balancer"
    );
    assert!(
        trace.records().len() > 100,
        "smoke: trace captured almost nothing"
    );
    assert_invariants(trace.records());

    // Scheduler smoke: both queue backends drain an identical randomized
    // schedule in the identical order (no timing, just the contract).
    let mut heap_q = EventQueue::with_scheduler(SchedulerKind::Heap);
    let mut wheel_q = EventQueue::with_scheduler(SchedulerKind::Wheel);
    let mut rng = SimRng::new(0xBEEF).stream("queue-smoke");
    for i in 0..2_000u64 {
        let d = event_delay(&mut rng);
        heap_q.schedule_in(d, i);
        wheel_q.schedule_in(d, i);
        if i % 3 == 0 {
            assert_eq!(
                heap_q.pop(),
                wheel_q.pop(),
                "smoke: queue backends diverged"
            );
        }
    }
    while let Some(a) = heap_q.pop() {
        assert_eq!(Some(a), wheel_q.pop(), "smoke: queue backends diverged");
    }
    assert!(wheel_q.is_empty());

    // Cache smoke: the flash-crowd storm at quick size, cache off vs on.
    // Same client completions either way (hits bypass the MDS but not the
    // client), no hits recorded with the cache off, and the tier clears
    // its ≥2× acceptance bound even at smoke size.
    let (off, on) = run_pair(ReproOpts::QUICK, BalancerSpec::None, 42);
    assert_eq!(
        client_ops(&off),
        client_ops(&on),
        "smoke: cache setting changed the work done"
    );
    assert_eq!(off.cache_hits, 0, "smoke: disabled cache recorded hits");
    let cache_speedup = ops_per_sec(&on) / ops_per_sec(&off).max(f64::MIN_POSITIVE);
    assert!(
        cache_speedup >= 2.0,
        "smoke: storm speedup {cache_speedup:.2}x below the 2x cache gate"
    );

    // Elastic smoke: the diurnal scenario at quick size. Same client
    // completions whether the cluster scales or stays fixed at either
    // extreme, the howmany hook actually fires both ways, and elastic
    // clears its acceptance bound — strictly more ops per provisioned
    // MDS-hour than the floor and the ceiling of its pool (`elastic
    // --smoke` in CI gates against *every* fixed size; here the two
    // extremes keep smoke cheap).
    let el = elastic::run_elastic(ReproOpts::QUICK, 42);
    let floor = elastic::run_fixed(ReproOpts::QUICK, 1, 42);
    let ceil = elastic::run_fixed(ReproOpts::QUICK, elastic::POOL, 42);
    assert_eq!(
        elastic::client_ops(&el),
        elastic::client_ops(&floor),
        "smoke: elastic scaling changed the work done"
    );
    assert_eq!(
        elastic::client_ops(&el),
        elastic::client_ops(&ceil),
        "smoke: fixed pool size changed the work done"
    );
    assert!(
        el.joins >= 1 && el.leaves >= 1,
        "smoke: elastic run never scaled (joins={}, leaves={})",
        el.joins,
        el.leaves
    );
    let el_score = elastic::score(&el);
    let el_fixed_best = elastic::score(&floor).max(elastic::score(&ceil));
    assert!(
        el_score > el_fixed_best,
        "smoke: elastic {el_score:.0} ops/mds-h does not beat the pool \
         extremes ({el_fixed_best:.0})"
    );

    println!(
        "smoke ok: {} dirs, {} migration ticks, incremental rebuilds = 0, \
         oracle rebuilds = {}, {} trace records invariant-clean, \
         storm cache speedup {:.1}x, elastic {:.2}x the pool extremes",
        inc.dir_count(),
        ii,
        ora.rebuilds(),
        trace.records().len(),
        cache_speedup,
        el_score / el_fixed_best
    );
}

/// A cluster-shaped delay: mostly sub-ms service/RTT hops, some
/// multi-ms stragglers, and the occasional heartbeat-scale timer.
fn event_delay(rng: &mut SimRng) -> SimTime {
    let us = match rng.below(10) {
        0..=7 => rng.below(1_000),
        8 => rng.below(100_000),
        _ => 2_000_000 + rng.below(8_000_000),
    };
    SimTime::from_micros(us)
}

/// Steady-state push+pop cost with `pending` events in flight: pop the
/// earliest event, reschedule it at a fresh delay, repeat. The pop order
/// is identical across backends (the queue contract), so both consume the
/// same delay stream — which is drawn up front so the timed loop measures
/// queue operations, not the RNG.
fn queue_steady_state(kind: SchedulerKind, pending: usize, ops: u32) -> f64 {
    let mut rng = SimRng::new(0xBEEF).stream("queue-bench");
    let delays: Vec<SimTime> = (0..pending + ops as usize)
        .map(|_| event_delay(&mut rng))
        .collect();
    let mut delays = delays.iter().cycle();
    let mut q = EventQueue::with_scheduler(kind);
    for i in 0..pending {
        q.schedule_in(*delays.next().unwrap(), i as u64);
    }
    // Warm through one full queue turnover before timing.
    for _ in 0..pending {
        let (_, e) = q.pop().expect("queue stays full");
        q.schedule_in(*delays.next().unwrap(), e);
    }
    let t0 = Instant::now();
    for _ in 0..ops {
        let (_, e) = q.pop().expect("queue stays full");
        q.schedule_in(*delays.next().unwrap(), e);
    }
    t0.elapsed().as_secs_f64() / ops as f64
}

/// The bench-sized cluster rows: the scale family's 10/64/128 MDS shapes
/// shrunk to bench-friendly op counts (the full sizes live in the `scale`
/// bin and EXPERIMENTS.md).
fn bench_scale_specs() -> Vec<ScaleSpec> {
    vec![
        ScaleSpec {
            name: "mds-10",
            num_mds: 10,
            clients: 16,
            dirs: 20_000,
            ops_per_client: 2_000,
        },
        ScaleSpec {
            name: "mds-64",
            num_mds: 64,
            clients: 64,
            dirs: 20_000,
            ops_per_client: 2_000,
        },
        ScaleSpec {
            name: "mds-128",
            num_mds: 128,
            clients: 128,
            dirs: 20_000,
            ops_per_client: 2_000,
        },
    ]
}

fn decide_inputs() -> BalancerInputs {
    BalancerInputs {
        whoami: 0,
        mds: (0..NUM_MDS)
            .map(|i| MdsMetrics {
                auth: 80.0 - 30.0 * i as f64,
                all: 90.0 - 30.0 * i as f64,
                cpu: 60.0,
                mem: 25.0,
                q: 1.0,
                req: 40.0,
                cache_hits: 120.0,
                cache_misses: 15.0,
            })
            .collect(),
        auth_metaload: 80.0,
        all_metaload: 90.0,
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        run_smoke();
        return;
    }
    if std::env::args().any(|a| a == "--queue") {
        // Just the queue-backend comparison, for iterating on the wheel.
        let heap = queue_steady_state(SchedulerKind::Heap, 100_000, 400_000);
        let wheel = queue_steady_state(SchedulerKind::Wheel, 100_000, 400_000);
        println!(
            "queue @100k pending: heap {:.1} ns, wheel {:.1} ns, {:.1}x",
            heap * 1e9,
            wheel * 1e9,
            heap / wheel
        );
        return;
    }
    let now = SimTime::from_secs(1);
    let table1 = MantleRuntime::new(policies::cephfs_original().expect("preset compiles"));
    let table1_slow = MantleRuntime::new(policies::cephfs_original().expect("preset compiles"))
        .with_force_slow_path(true);

    // --- snapshot: aggregate roll-up vs per-frag walk -------------------
    // 3 projects × 700 dirs + roots
    let mut ns = build_namespace(700, 3, IndexMode::Incremental);
    let dirs = ns.dir_count();
    let frags: usize = (0..NUM_MDS).map(|m| ns.auth_frags(m).len()).sum();
    assert!(dirs >= 2_000, "bench namespace too small: {dirs} dirs");

    let agg_s = time_per_call(2_000, || {
        black_box(aggregate_rollup(&mut ns, &table1, now));
    });
    let walk_s = time_per_call(30, || {
        black_box(per_frag_walk(&mut ns, &table1, now));
    });
    // Sanity: both paths agree on the totals they feed into heartbeats.
    let (agg_auth, _) = aggregate_rollup(&mut ns, &table1, now);
    let (walk_auth, _) = per_frag_walk(&mut ns, &table1, now);
    for m in 0..NUM_MDS {
        let diff = (agg_auth[m] - walk_auth[m]).abs();
        assert!(
            diff <= 1e-6 * (1.0 + walk_auth[m].abs()),
            "aggregate and per-frag snapshots disagree on MDS {m}: {} vs {}",
            agg_auth[m],
            walk_auth[m]
        );
    }

    // --- policy hooks: scalar/compiled fast paths vs tree-walking -------
    let heat = frag_metrics(3.0, 5.0, 1.0, 0.5, 0.25);
    let table1_slot = MantleRuntime::new(policies::cephfs_original().expect("preset compiles"))
        .with_engine(HookEngine::Slot);
    let meta_fast_s = time_per_call(200_000, || {
        black_box(table1.eval_metaload(0, &heat).unwrap());
    });
    let meta_slot_s = time_per_call(200_000, || {
        black_box(table1_slot.eval_metaload(0, &heat).unwrap());
    });
    let meta_tree_s = time_per_call(50_000, || {
        black_box(table1_slow.eval_metaload(0, &heat).unwrap());
    });

    let adaptable = MantleRuntime::new(policies::adaptable().expect("preset compiles"));
    let adaptable_slot = MantleRuntime::new(policies::adaptable().expect("preset compiles"))
        .with_engine(HookEngine::Slot);
    let adaptable_slow = MantleRuntime::new(policies::adaptable().expect("preset compiles"))
        .with_force_slow_path(true);
    let inputs = decide_inputs();
    let decide_fast_s = time_per_call(20_000, || {
        black_box(adaptable.decide(&inputs).unwrap());
    });
    let decide_slot_s = time_per_call(20_000, || {
        black_box(adaptable_slot.decide(&inputs).unwrap());
    });
    let decide_tree_s = time_per_call(5_000, || {
        black_box(adaptable_slow.decide(&inputs).unwrap());
    });

    // --- migration-heavy ticks at ~10k dirs, both index modes -----------
    // Greedy-Spill-style exports of small hot subtrees: the per-migration
    // balancer cost is the export itself plus the next load snapshot.
    let mut mig_inc = build_namespace(3_400, 3, IndexMode::Incremental);
    let mut mig_ora = build_namespace(3_400, 3, IndexMode::WalkOracle);
    let mig_dirs = mig_inc.dir_count();
    assert!(mig_dirs >= 10_000, "migration bench too small: {mig_dirs}");
    let leaves_inc = project_leaves(&mig_inc, 64);
    let leaves_ora = project_leaves(&mig_ora, 64);
    let mut ii = 0;
    let mig_inc_s = time_per_call(2_000, || {
        migration_tick(&mut mig_inc, &leaves_inc, &mut ii, now);
    });
    let mut io = 0;
    let mig_ora_s = time_per_call(40, || {
        migration_tick(&mut mig_ora, &leaves_ora, &mut io, now);
    });
    assert_eq!(
        mig_inc.rebuilds(),
        0,
        "incremental index fell back to a full aggregate rebuild"
    );
    assert!(mig_ora.rebuilds() > 0, "oracle mode must rebuild per tick");

    // --- end to end: a small create-shared run, both engines ------------
    let e2e = |slow: bool| {
        let policy = policies::adaptable().expect("preset compiles");
        let spec = Experiment::new(
            ClusterConfig::default().with_mds(NUM_MDS),
            WorkloadSpec::CreateShared {
                clients: 4,
                files: 4_000,
            },
            if slow {
                BalancerSpec::mantle_slow_path("adaptable", policy)
            } else {
                BalancerSpec::mantle("adaptable", policy)
            },
        );
        let t0 = Instant::now();
        let report = run_experiment(&spec);
        let secs = t0.elapsed().as_secs_f64();
        (secs, report.total_ops())
    };
    let (e2e_fast_s, ops) = e2e(false);
    let (e2e_slow_s, ops_slow) = e2e(true);
    assert_eq!(ops, ops_slow, "engines must do identical work");

    // --- scale: queue backends at ≥100k pending events ------------------
    const PENDING: usize = 100_000;
    let heap_pp_s = queue_steady_state(SchedulerKind::Heap, PENDING, 400_000);
    let wheel_pp_s = queue_steady_state(SchedulerKind::Wheel, PENDING, 400_000);
    let queue_speedup = heap_pp_s / wheel_pp_s;

    // --- scale: whole-cluster rows at 10/64/128 MDSs --------------------
    let mut cluster_rows = String::new();
    for (i, spec) in bench_scale_specs().iter().enumerate() {
        // Sub-second rows are jitter-dominated (mds-10 finishes in
        // ~0.1s), so each backend gets best-of-3 and the gate below
        // compares minima — stripping scheduler noise instead of
        // widening the headroom.
        let best_of = |kind: SchedulerKind| {
            let mut best = run_scale(spec, kind, 42);
            for _ in 0..2 {
                let next = run_scale(spec, kind, 42);
                assert_eq!(
                    format!("{:?}", best.report),
                    format!("{:?}", next.report),
                    "{}: rerun changed the report",
                    spec.name
                );
                if next.wall_secs < best.wall_secs {
                    best = next;
                }
            }
            best
        };
        let heap = best_of(SchedulerKind::Heap);
        let wheel = best_of(SchedulerKind::Wheel);
        assert_eq!(
            format!("{:?}", heap.report),
            format!("{:?}", wheel.report),
            "{}: scheduler backends must be byte-identical",
            spec.name
        );
        // The wheel exists to beat the heap at scale; a row where it loses
        // is a regression (the 64-MDS row caught exactly that when the
        // wheel still had 64-slot levels). 5% headroom absorbs wall-clock
        // jitter without letting a real regression through.
        assert!(
            wheel.wall_secs <= heap.wall_secs * 1.05,
            "{}: wheel ({:.3}s) slower than heap ({:.3}s)",
            spec.name,
            wheel.wall_secs,
            heap.wall_secs
        );
        let _ = write!(
            cluster_rows,
            "{}{{ \"num_mds\": {}, \"clients\": {}, \"total_ops\": {}, \
             \"heap_s\": {:.3}, \"wheel_s\": {:.3} }}",
            if i == 0 { "" } else { ",\n      " },
            spec.num_mds,
            spec.clients,
            spec.total_ops(),
            heap.wall_secs,
            wheel.wall_secs,
        );
    }

    // --- parallel: the sharded engine on the 128-MDS row ----------------
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let par_spec = bench_scale_specs().pop().expect("bench rows are fixed");
    let (par_single, _) = run_scale_mode(&par_spec, ExecMode::Single, 42);
    let single_repr = format!("{:?}", par_single.report);
    let mut parallel_rows = format!(
        "{{ \"threads\": 1, \"wall_s\": {:.3} }}",
        par_single.wall_secs
    );
    let mut speedup_4t = 0.0;
    for threads in [2usize, 4, 8] {
        let (run, _) = run_scale_mode(&par_spec, ExecMode::Sharded { threads }, 42);
        assert_eq!(
            single_repr,
            format!("{:?}", run.report),
            "{}: {threads}-shard run must be byte-identical to the oracle",
            par_spec.name
        );
        if threads == 4 {
            speedup_4t = par_single.wall_secs / run.wall_secs.max(1e-9);
        }
        let _ = write!(
            parallel_rows,
            ",\n      {{ \"threads\": {threads}, \"wall_s\": {:.3} }}",
            run.wall_secs
        );
    }

    // --- cache: proxy-tier primitives and the flash-crowd storm ---------
    // Primitive costs on the bench namespace: in-window lookup hits and
    // barrier-time fills (with LRU eviction pressure — the cache holds
    // half the dirs it is offered).
    let cache_ns = build_namespace(700, 3, IndexMode::Incremental);
    let cache_dirs: Vec<NodeId> = cache_ns.all_dirs().collect();
    let mut gc = GroupCache::new(cache_dirs.len() / 2);
    for &d in &cache_dirs {
        gc.fill(&cache_ns, d, 0);
    }
    let mut li = 0;
    let cache_lookup_s = time_per_call(200_000, || {
        li += 1;
        black_box(gc.lookup(cache_dirs[li % cache_dirs.len()]));
    });
    let mut fi = 0;
    let cache_fill_s = time_per_call(200_000, || {
        fi += 1;
        gc.fill(&cache_ns, cache_dirs[fi % cache_dirs.len()], fi % NUM_MDS);
    });

    // The storm itself, cache off vs on (simulated ops/s — the tier's
    // acceptance bound, gated below). Client completions are conserved
    // across cache settings; only where they are served changes.
    let (storm_off, storm_on) = run_pair(ReproOpts::QUICK, BalancerSpec::None, 42);
    assert_eq!(
        client_ops(&storm_off),
        client_ops(&storm_on),
        "cache setting changed the work done"
    );
    let storm_off_rate = ops_per_sec(&storm_off);
    let storm_on_rate = ops_per_sec(&storm_on);
    let cache_speedup = storm_on_rate / storm_off_rate.max(f64::MIN_POSITIVE);
    let storm_hit_rate = storm_on.cache_hit_rate();

    // --- elastic: the howmany hook and the diurnal advantage ------------
    // The hook runs once per balancer tick on the coordinator, so its
    // cost is a per-tick tax on the whole cluster; measured on the
    // shipped scaler preset over the bench decide inputs. Then the quick
    // diurnal scenario: the elastic cluster against every fixed size in
    // its pool, scored in ops per provisioned MDS-hour (the acceptance
    // bound, gated below — the same gate `elastic --smoke` runs in CI).
    let scaler = MantleRuntime::new(
        policies::elastic_scaler_membership_only(
            elastic::GROW_THRESHOLD,
            elastic::SHRINK_THRESHOLD,
        )
        .expect("preset compiles"),
    );
    let howmany_s = time_per_call(100_000, || {
        black_box(scaler.eval_howmany(&inputs, 2, 1, elastic::POOL).unwrap());
    });

    let el_run = elastic::run_elastic(ReproOpts::QUICK, 42);
    let el_score = elastic::score(&el_run);
    let mut el_best_fixed = f64::MIN;
    for n in 1..=elastic::POOL {
        let fixed = elastic::run_fixed(ReproOpts::QUICK, n, 42);
        assert_eq!(
            elastic::client_ops(&fixed),
            elastic::client_ops(&el_run),
            "fixed-{n} did different work than the elastic run"
        );
        el_best_fixed = el_best_fixed.max(elastic::score(&fixed));
    }
    let el_advantage = el_score / el_best_fixed;

    // --- report ---------------------------------------------------------
    let snapshot_speedup = walk_s / agg_s;
    let metaload_speedup = meta_tree_s / meta_fast_s;
    let decide_speedup = decide_tree_s / decide_fast_s;
    let decide_slot_speedup = decide_slot_s / decide_fast_s;
    let migration_speedup = mig_ora_s / mig_inc_s;

    let mut json = String::new();
    let _ = write!(
        json,
        r#"{{
  "generated_by": "cargo run --release --bin bench_ticks",
  "namespace": {{ "dirs": {dirs}, "frags": {frags}, "num_mds": {NUM_MDS} }},
  "snapshot_heartbeats": {{
    "aggregate_us_per_tick": {agg:.3},
    "per_frag_us_per_tick": {walk:.3},
    "speedup": {snap:.1}
  }},
  "metaload_hook": {{
    "fast_ns_per_eval": {mf:.1},
    "slot_engine_ns_per_eval": {msl:.1},
    "tree_ns_per_eval": {mt:.1},
    "speedup": {ms:.1}
  }},
  "decide_hook": {{
    "bytecode_us_per_call": {df:.3},
    "slot_us_per_call": {dsl:.3},
    "tree_us_per_call": {dt:.3},
    "speedup_vs_slot": {dss:.1},
    "speedup_vs_tree": {ds:.1}
  }},
  "migration_tick": {{
    "dirs": {mig_dirs},
    "incremental_us_per_migration": {mi:.3},
    "walk_oracle_us_per_migration": {mo:.3},
    "speedup": {msp:.1}
  }},
  "end_to_end_create_shared": {{
    "total_ops": {ops},
    "fast_engine_s": {ef:.3},
    "slow_engine_s": {es:.3}
  }},
  "scale": {{
    "queue_backend": {{
      "pending_events": {pend},
      "heap_ns_per_push_pop": {hq:.1},
      "wheel_ns_per_push_pop": {wq:.1},
      "speedup": {qs:.1}
    }},
    "clusters": [
      {cluster_rows}
    ]
  }},
  "parallel": {{
    "host_cores": {host_cores},
    "scenario": "{par_name}",
    "total_ops": {par_ops},
    "threads": [
      {parallel_rows}
    ],
    "speedup_4t": {sp4:.2}
  }},
  "cache": {{
    "group_cache_lookup_ns": {cl:.1},
    "group_cache_fill_ns": {cf:.1},
    "flash_crowd_storm": {{
      "client_ops": {storm_ops},
      "off_ops_per_sec": {sor:.0},
      "on_ops_per_sec": {snr:.0},
      "hit_rate": {shr:.3},
      "speedup": {csp:.2}
    }}
  }},
  "elastic": {{
    "howmany_ns_per_eval": {hme:.1},
    "diurnal_quick": {{
      "client_ops": {el_ops},
      "elastic_ops_per_mds_hour": {elo:.0},
      "best_fixed_ops_per_mds_hour": {elf:.0},
      "advantage": {eladv:.2},
      "joins": {elj},
      "leaves": {ell}
    }}
  }}
}}
"#,
        agg = agg_s * 1e6,
        walk = walk_s * 1e6,
        snap = snapshot_speedup,
        mf = meta_fast_s * 1e9,
        msl = meta_slot_s * 1e9,
        mt = meta_tree_s * 1e9,
        ms = metaload_speedup,
        df = decide_fast_s * 1e6,
        dsl = decide_slot_s * 1e6,
        dt = decide_tree_s * 1e6,
        dss = decide_slot_speedup,
        ds = decide_speedup,
        mi = mig_inc_s * 1e6,
        mo = mig_ora_s * 1e6,
        msp = migration_speedup,
        ef = e2e_fast_s,
        es = e2e_slow_s,
        pend = PENDING,
        hq = heap_pp_s * 1e9,
        wq = wheel_pp_s * 1e9,
        qs = queue_speedup,
        par_name = par_spec.name,
        par_ops = par_spec.total_ops(),
        sp4 = speedup_4t,
        cl = cache_lookup_s * 1e9,
        cf = cache_fill_s * 1e9,
        storm_ops = client_ops(&storm_on),
        sor = storm_off_rate,
        snr = storm_on_rate,
        shr = storm_hit_rate,
        csp = cache_speedup,
        hme = howmany_s * 1e9,
        el_ops = elastic::client_ops(&el_run),
        elo = el_score,
        elf = el_best_fixed,
        eladv = el_advantage,
        elj = el_run.joins,
        ell = el_run.leaves,
    );

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_ticks.json");
    std::fs::write(out, &json).expect("write BENCH_ticks.json");
    println!("{json}");
    println!("wrote {out}");
    assert!(
        snapshot_speedup >= 5.0,
        "aggregate snapshot must be ≥ 5× the per-frag walk, got {snapshot_speedup:.1}×"
    );
    assert!(
        migration_speedup >= 10.0,
        "incremental migration ticks must be ≥ 10× the walk-oracle path, \
         got {migration_speedup:.1}×"
    );
    assert!(
        queue_speedup >= 5.0,
        "timing wheel must give ≥ 5× push+pop throughput over the heap at \
         {PENDING} pending events, got {queue_speedup:.1}×"
    );
    // The bytecode engine earns its default-engine status on the decide
    // path: the adaptable decision hook is a real script (loops, state,
    // no scalar shortcut), so this measures the dispatch-loop VM plus the
    // cached decide environment against the slot VM with per-call
    // environment construction.
    assert!(
        decide_slot_speedup >= 2.0,
        "bytecode decide must be ≥ 2× the slot path on the adaptable \
         (non-scalar) decision hook, got {decide_slot_speedup:.2}×"
    );
    // …and must never lose where the scalar fast path already wins: both
    // engines hit ScalarMetaload, so any gap here is engine overhead
    // creeping into the hottest hook. 1.2× headroom absorbs timer noise.
    assert!(
        meta_fast_s <= meta_slot_s * 1.2,
        "scalar metaload under the bytecode engine ({:.1} ns) must not be \
         slower than under the slot engine ({:.1} ns)",
        meta_fast_s * 1e9,
        meta_slot_s * 1e9
    );
    // The proxy-cache tier earns its keep on the flash-crowd storm: with
    // one hot directory pinning throughput to a single MDS's service
    // rate, absorbing read-class hits at the proxy must at least double
    // client-visible ops/s (in practice it is far above the gate).
    assert!(
        cache_speedup >= 2.0,
        "flash-crowd storm must be ≥ 2× faster cache-on than cache-off, \
         got {cache_speedup:.2}×"
    );
    // The elastic layer earns its keep on efficiency, not throughput:
    // the diurnal workload finishes the same ops whatever the cluster
    // does, so the bound is ops per provisioned MDS-hour — and elastic
    // must strictly beat the best fixed size in its pool.
    assert!(
        el_run.joins >= 1 && el_run.leaves >= 1,
        "elastic diurnal run never scaled (joins={}, leaves={})",
        el_run.joins,
        el_run.leaves
    );
    assert!(
        el_advantage > 1.0,
        "elastic must strictly beat every fixed size on the diurnal run, \
         got {el_advantage:.2}× the best fixed"
    );
    // The parallel gate only means something when the worker threads can
    // actually run concurrently. On a 1-core host the sharded engine pays
    // barrier overhead for zero parallelism (an honest slowdown, recorded
    // in the JSON) — so the gate arms at 4+ cores.
    if host_cores >= 4 {
        assert!(
            speedup_4t >= 2.5,
            "sharded engine must be ≥ 2.5× at 4 threads on the 128-MDS row \
             (host has {host_cores} cores), got {speedup_4t:.2}×"
        );
    } else {
        println!(
            "note: parallel speedup gate disarmed — host has {host_cores} core(s); \
             recorded 4-thread speedup {speedup_4t:.2}×"
        );
    }
}
