//! Trace a degraded-cluster scenario and dump the typed event stream and
//! the per-tick timeline as JSONL, optionally replaying the stream
//! through the invariant checker.
//!
//! ```text
//! cargo run --release --bin trace -- [--scenario NAME] [--seed N]
//!     [--level decisions|full] [--out PREFIX] [--check] [--full-size]
//! ```
//!
//! * `--scenario` — one of the `degraded` scenarios (`healthy`,
//!   `crash+restart`, `slow-mds`, `stale-heartbeats`,
//!   `poisoned-balancer`); default `healthy`;
//! * `--seed` — RNG seed, default 42;
//! * `--level` — `full` records the data plane (per-request events),
//!   `decisions` only the control plane; default `full`;
//! * `--out PREFIX` — write `PREFIX.trace.jsonl` (one record per line)
//!   and `PREFIX.timeline.jsonl` (one gauge series per MDS);
//! * `--check` — replay the stream through the invariant checker and
//!   exit non-zero if any invariant is violated;
//! * `--full-size` — run the full-size workload instead of the quick one.

use mantle::core::degraded::{run_scenario_traced, scenario_plans};
use mantle::core::repro::ReproOpts;
use mantle::mds::check_trace;
use mantle::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: trace [--scenario NAME] [--seed N] [--level decisions|full] \
         [--out PREFIX] [--check] [--full-size]"
    );
    std::process::exit(2);
}

fn main() {
    let mut scenario = "healthy".to_string();
    let mut seed = 42u64;
    let mut level = TraceLevel::Full;
    let mut out: Option<String> = None;
    let mut check = false;
    let mut opts = ReproOpts::QUICK;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => scenario = args.next().unwrap_or_else(|| usage()),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--level" => {
                level = args
                    .next()
                    .and_then(|s| TraceLevel::parse(&s))
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--check" => check = true,
            "--full-size" => opts = ReproOpts::FULL,
            _ => usage(),
        }
    }

    let Some((report, trace)) = run_scenario_traced(opts, &scenario, seed, level) else {
        let known: Vec<&str> = scenario_plans(opts).iter().map(|(n, _)| *n).collect();
        eprintln!("unknown scenario {scenario:?}; known: {known:?}");
        std::process::exit(2);
    };

    println!(
        "{scenario} (seed {seed}, {} level): {} records, {:.0} ops, makespan {:.2} s, \
         {} migrations, {} fallbacks",
        level.name(),
        trace.records().len(),
        report.total_ops(),
        report.makespan.as_secs_f64(),
        report.total_migrations(),
        report.balancer_fallbacks,
    );

    if let Some(prefix) = out {
        let events = format!("{prefix}.trace.jsonl");
        let timeline = format!("{prefix}.timeline.jsonl");
        std::fs::write(&events, trace.to_jsonl()).expect("write event stream");
        std::fs::write(&timeline, trace.timeline.to_jsonl()).expect("write timeline");
        println!("wrote {events} and {timeline}");
    }

    if check {
        let violations = check_trace(trace.records());
        if violations.is_empty() {
            println!("invariants ok ({} records replayed)", trace.records().len());
        } else {
            eprintln!("{} invariant violation(s):", violations.len());
            for v in violations.iter().take(20) {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
