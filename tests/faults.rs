//! Fault-injection integration tests: graceful degradation through the
//! facade — crashes, retries, balancer fallback, and determinism of the
//! whole degraded pipeline.

use mantle::core::degraded;
use mantle::core::repro::ReproOpts;
use mantle::prelude::*;

fn quick_cfg(num_mds: usize) -> ClusterConfig {
    ClusterConfig {
        num_mds,
        frag_split_threshold: 500,
        heartbeat_interval: SimTime::from_millis(400),
        ..Default::default()
    }
}

/// A fast reaction profile so short test runs still see retries.
fn reactions() -> FaultPlan {
    FaultPlan {
        request_timeout: SimTime::from_millis(100),
        retry_backoff: SimTime::from_millis(20),
        ..FaultPlan::default()
    }
}

#[test]
fn crash_and_restart_completes_all_ops_with_degradation() {
    // Pin client 1's directory to MDS 1, then kill MDS 1 mid-run: the
    // client's in-flight request is lost (timeout), its cached route goes
    // stale (retry re-routes via the mount authority), and the pinned
    // subtree fails over to MDS 0. Every op still completes.
    let spec = Experiment::new(
        quick_cfg(2),
        WorkloadSpec::CreateSeparate {
            clients: 2,
            files: 2_000,
        },
        BalancerSpec::None,
    )
    .assign("/client1", 1);
    let mut spec = spec;
    spec.config.faults = reactions()
        .crash(SimTime::from_millis(200), 1)
        .restart(SimTime::from_millis(600), 1);
    let r = run_experiment(&spec);

    assert_eq!(r.total_ops(), 4_000.0, "no ops lost to the crash");
    for c in &r.clients {
        assert_eq!(c.completed, 2_000, "every surviving client finishes");
    }
    assert!(r.failovers >= 1, "the pinned subtree failed over to MDS 0");
    assert!(r.timeouts >= 1, "the lost in-flight request timed out");
    assert!(r.retries >= 1, "the timed-out request was retried");
    assert_eq!(
        r.timeouts, r.retries,
        "every timeout leads to exactly one retry in this scenario"
    );
}

#[test]
fn requests_reaching_a_down_mds_are_dropped_then_recovered() {
    // Crash MDS 1 but give the client a *long* lease on its stale route:
    // with no balancer and a crash landing between two of client 1's
    // requests, the next request is sent to the dead MDS and dropped on
    // the floor; the timeout machinery recovers it.
    let mut spec = Experiment::new(
        quick_cfg(2),
        WorkloadSpec::CreateSeparate {
            clients: 2,
            files: 1_000,
        },
        BalancerSpec::None,
    )
    .assign("/client1", 1);
    spec.config.faults = reactions().crash(SimTime::from_millis(150), 1);
    let r = run_experiment(&spec);

    assert_eq!(r.total_ops(), 2_000.0);
    assert!(
        r.total_dropped() >= 1 || r.timeouts >= 1,
        "the crash was felt: dropped={} timeouts={}",
        r.total_dropped(),
        r.timeouts
    );
    // MDS 1 never comes back, so everything lands on MDS 0 afterwards.
    assert!(r.mds[0].total_ops > 1_000.0, "MDS 0 absorbed the failover");
}

#[test]
fn poisoned_balancer_falls_back_and_stays_within_2x_of_healthy() {
    let healthy = degraded::run_scenario(ReproOpts::QUICK, "healthy", 7).expect("scenario exists");
    let poisoned =
        degraded::run_scenario(ReproOpts::QUICK, "poisoned-balancer", 7).expect("scenario exists");

    assert!(
        poisoned.balancer_fallbacks >= 1,
        "repeated policy errors swapped in the CephFS fallback"
    );
    assert_eq!(
        poisoned.total_ops(),
        healthy.total_ops(),
        "poisoning the balancer loses no ops"
    );
    assert!(
        poisoned.makespan.as_secs_f64() <= 2.0 * healthy.makespan.as_secs_f64(),
        "degraded makespan {:.2}s within 2x of healthy {:.2}s",
        poisoned.makespan.as_secs_f64(),
        healthy.makespan.as_secs_f64()
    );
    // The report keeps the *configured* balancer's name after fallback.
    assert_eq!(poisoned.balancer, healthy.balancer);
}

#[test]
fn crash_scenario_meets_acceptance_criteria() {
    let healthy = degraded::run_scenario(ReproOpts::QUICK, "healthy", 42).expect("scenario exists");
    let crashed =
        degraded::run_scenario(ReproOpts::QUICK, "crash+restart", 42).expect("scenario exists");

    assert_eq!(crashed.total_ops(), healthy.total_ops(), "all ops complete");
    for c in &crashed.clients {
        assert!(c.completed > 0, "every surviving client made progress");
    }
    assert!(crashed.timeouts >= 1, "timeouts observed");
    assert!(crashed.retries >= 1, "retries observed");
    assert!(crashed.failovers >= 1, "failovers observed");
}

/// A plan exercising every fault kind at once, for the determinism tests.
fn kitchen_sink_plan() -> FaultPlan {
    FaultPlan {
        request_timeout: SimTime::from_millis(150),
        retry_backoff: SimTime::from_millis(25),
        ..FaultPlan::default()
    }
    .slowdown(
        SimTime::from_millis(500),
        1,
        3.0,
        SimTime::from_millis(1_000),
    )
    .drop_heartbeats(SimTime::from_millis(400), 1, SimTime::from_millis(800))
    .delay_heartbeats(SimTime::from_millis(800), 2, SimTime::from_millis(800))
    .crash(SimTime::from_millis(900), 2)
    .restart(SimTime::from_millis(1_800), 2)
    .poison_balancer(SimTime::from_millis(1_200), 1)
}

fn degraded_spec(balancer: BalancerSpec) -> Experiment {
    let mut spec = Experiment::new(
        quick_cfg(3),
        WorkloadSpec::CreateSeparate {
            clients: 4,
            files: 2_000,
        },
        balancer,
    );
    spec.config.faults = kitchen_sink_plan();
    spec
}

#[test]
fn fault_runs_are_deterministic_for_a_fixed_seed() {
    let spec = degraded_spec(BalancerSpec::mantle(
        "adaptable",
        policies::adaptable().unwrap(),
    ));
    let a = run_experiment(&spec);
    let b = run_experiment(&spec);
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "identical (seed, FaultPlan) must yield a byte-identical RunReport"
    );
    assert_eq!(a.total_ops(), 8_000.0, "all ops complete under faults");
}

#[test]
fn fault_runs_are_identical_across_policy_engines() {
    // The slot-compiled hook engine and the legacy tree-walking
    // interpreter must agree bit-for-bit even while faults are firing.
    let fast = run_experiment(&degraded_spec(BalancerSpec::mantle(
        "adaptable",
        policies::adaptable().unwrap(),
    )));
    let slow = run_experiment(&degraded_spec(BalancerSpec::mantle_slow_path(
        "adaptable",
        policies::adaptable().unwrap(),
    )));
    assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
}

// ---------------------------------------------------------------------------
// Elastic membership × faults
// ---------------------------------------------------------------------------

/// Crash of a freshly joined MDS mid-re-home. At seed 42 the elastic
/// diurnal run joins MDS 1 at 0.40 s and hands it six just-imported
/// subtrees; killing it at 0.60 s — deep in the morning burst, right
/// after the import freeze lifts and clients start landing on it — must
/// fail the re-homed subtrees back over to the mount authority, recover
/// the lost in-flight requests through the timeout machinery, and still
/// complete every client's budget. The restart at 2.0 s (after dark)
/// turns MDS 1 back into a joinable spare for the next morning.
#[test]
fn crash_of_joining_mds_mid_rehome_degrades_gracefully() {
    use mantle::core::elastic::{client_ops, diurnal_experiment, POOL};

    let elastic = ElasticConfig {
        enabled: true,
        min_mds: 1,
        max_mds: POOL,
        initial_mds: 1,
        ..ElasticConfig::on()
    };
    let mut spec = diurnal_experiment(ReproOpts::QUICK, POOL, elastic, 1, 42);
    spec.config.faults = reactions()
        .crash(SimTime::from_millis(600), 1)
        .restart(SimTime::from_millis(2_000), 1);
    let (r, trace) = run_experiment_traced(&spec, TraceLevel::Full);

    assert_invariants(trace.records());
    assert_eq!(client_ops(&r), 84_000, "client budgets not conserved");
    assert!(r.joins >= 1, "the cluster grew before the crash");
    assert!(
        r.failovers >= 1,
        "the re-homed subtrees failed over to the mount authority"
    );
    assert!(
        r.timeouts >= 1 && r.retries >= 1,
        "requests in flight to the crashed joiner were recovered \
         (timeouts={}, retries={})",
        r.timeouts,
        r.retries
    );
}

/// Crash of the member the evening scale-down is about to drain. At
/// seed 42 the first drain (MDS 3, the highest-id member) fires at
/// 3.6 s; killing MDS 3 at 3.5 s means the leave finds its victim
/// already dead — the crash has failed its subtrees over, so the drain
/// degenerates to pure deregistration. Work must be conserved and the
/// membership phase chain must still close cleanly.
#[test]
fn crash_of_draining_mds_mid_migrate_degrades_gracefully() {
    use mantle::core::elastic::{client_ops, diurnal_experiment, POOL};

    let elastic = ElasticConfig {
        enabled: true,
        min_mds: 1,
        max_mds: POOL,
        initial_mds: 1,
        ..ElasticConfig::on()
    };
    let mut spec = diurnal_experiment(ReproOpts::QUICK, POOL, elastic, 1, 42);
    spec.config.faults = reactions().crash(SimTime::from_millis(3_500), 3);
    let (r, trace) = run_experiment_traced(&spec, TraceLevel::Full);

    assert_invariants(trace.records());
    assert_eq!(client_ops(&r), 84_000, "client budgets not conserved");
    assert!(
        r.joins >= 1 && r.leaves >= 1,
        "the cluster scaled both ways"
    );
    assert!(
        r.failovers >= 1,
        "the crashed member's subtrees failed over before the drain"
    );
    // The run must still shed the dead member from the member set: its
    // drain chain closes (drain_start → drain_complete → departed) even
    // though there is nothing left to migrate.
    let drained_dead = trace.records().iter().any(|rec| {
        matches!(
            rec.event,
            mantle::mds::TraceEvent::MdsDrainComplete { mds: 3, .. }
        )
    });
    assert!(drained_dead, "the dead member was never deregistered");
}
