//! The bytecode hook engine is pinned byte-identical at the *report*
//! level: for a fixed seed, a full cluster run under the default
//! bytecode engine must produce exactly the same [`RunReport`] — every
//! float, every time series, every fault counter — as the slot VM and
//! the tree-walking interpreter, in both execution modes, while the
//! fault catalogue is firing.
//!
//! This is the top layer of the three-way differential stack: the
//! statement/expression layer lives in `crates/policy/src/bytecode.rs`
//! and `tests/properties.rs`, the hook layer in `crates/policy/src/env.rs`
//! and `tests/docs_examples.rs`, and this file closes the loop end to
//! end through the simulator.

use mantle::core::degraded::{base_experiment, scenario_plans};
use mantle::core::policies;
use mantle::core::repro::ReproOpts;
use mantle::core::{run_experiment, BalancerSpec, Experiment};
use mantle::mds::{ExecMode, HookEngine};
use mantle::policy::env::PolicySet;

/// The run matrix for one (policy, fault plan) cell: the bytecode engine
/// in both exec modes against the two oracle engines. Reports must be
/// identical across all four runs.
fn assert_reports_identical(label: &str, spec: &Experiment, policy: &PolicySet) {
    let runs = [
        ("bytecode/single", HookEngine::Bytecode, ExecMode::Single),
        (
            "bytecode/sharded",
            HookEngine::Bytecode,
            ExecMode::Sharded { threads: 2 },
        ),
        ("slot/single", HookEngine::Slot, ExecMode::Single),
        ("tree/single", HookEngine::Tree, ExecMode::Single),
    ];
    let mut baseline: Option<(&str, String)> = None;
    for (name, engine, mode) in runs {
        let mut spec = spec.clone();
        spec.balancer = BalancerSpec::mantle_with_engine(label, policy.clone(), engine);
        spec.config = spec.config.with_exec_mode(mode);
        let report = run_experiment(&spec);
        // Debug formatting of f64 is shortest-roundtrip: any numeric
        // divergence, however small, shows up in the string.
        let rendered = format!("{report:?}");
        match &baseline {
            None => baseline = Some((name, rendered)),
            Some((base_name, base)) => {
                assert_eq!(base, &rendered, "{label}: {name} diverged from {base_name}")
            }
        }
    }
}

/// The most hook-intensive built-in balancer (Listing 4 runs a loop over
/// the whole cluster every tick) across the full fault catalogue.
#[test]
fn adaptable_reports_identical_across_engines_and_modes_under_all_faults() {
    let policy = policies::adaptable().unwrap();
    for (scenario, plan) in scenario_plans(ReproOpts::QUICK) {
        let mut spec = base_experiment(ReproOpts::QUICK, 42);
        spec.config.faults = plan;
        assert_reports_identical(&format!("adaptable/{scenario}"), &spec, &policy);
    }
}

/// The remaining built-in balancers on the two scenarios that stress
/// hook evaluation hardest: a crash mid-run (stale state, failovers) and
/// a poisoned balancer (policy errors driving the §3.4 fallback).
#[test]
fn other_builtin_balancers_report_identical_across_engines_and_modes() {
    let plans: Vec<_> = scenario_plans(ReproOpts::QUICK)
        .into_iter()
        .filter(|(n, _)| matches!(*n, "crash+restart" | "poisoned-balancer"))
        .collect();
    assert_eq!(plans.len(), 2);
    for (name, policy) in [
        ("greedy-spill-even", policies::greedy_spill_even().unwrap()),
        ("fill-and-spill", policies::fill_and_spill(0.25).unwrap()),
    ] {
        for (scenario, plan) in &plans {
            let mut spec = base_experiment(ReproOpts::QUICK, 42);
            spec.config.faults = plan.clone();
            assert_reports_identical(&format!("{name}/{scenario}"), &spec, &policy);
        }
    }
}
