//! Property-based tests over the core data structures and invariants.
//!
//! These are hand-rolled properties (no external property-testing crate):
//! every test draws its cases from a deterministically seeded
//! [`SimRng`] stream, so a failure reproduces exactly by rerunning the
//! test — the failing case index is in the assertion message.

use mantle::mds::{select_best, DirfragSelector};
use mantle::namespace::{IndexMode, Namespace, NamespaceStats, NodeId, NsConfig, OpKind};
use mantle::policy::env::{BalancerInputs, MantleRuntime, MdsMetrics, PolicySet};
use mantle::policy::{parse_script, script_to_source, Interpreter, StepBudget, Value};
use mantle::policy::{BytecodeProgram, BytecodeVm, SlotProgram, SlotVm};
use mantle::sim::{DecayCounter, EventQueue, OnlineStats, SchedulerKind, SimRng, SimTime, Summary};

/// Per-test RNG: independent stream per property, fixed master seed.
fn cases_rng(label: &str) -> SimRng {
    SimRng::new(0x4D41_4E54_4C45).stream(label)
}

fn f64_in(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    lo + rng.f64() * (hi - lo)
}

fn vec_f64(rng: &mut SimRng, lo: f64, hi: f64, min_len: u64, max_len: u64) -> Vec<f64> {
    let len = rng.range_inclusive(min_len, max_len) as usize;
    (0..len).map(|_| f64_in(rng, lo, hi)).collect()
}

// ---------------------------------------------------------------------------
// Simulation kernel
// ---------------------------------------------------------------------------

#[test]
fn event_queue_pops_in_nondecreasing_time() {
    let mut rng = cases_rng("event-queue");
    for case in 0..100 {
        let len = rng.range_inclusive(1, 200) as usize;
        let times: Vec<u64> = (0..len).map(|_| rng.below(1_000_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "case {case}: time went backwards");
            last = t;
            popped += 1;
        }
        assert_eq!(popped, times.len(), "case {case}");
    }
}

/// Differential property for the scheduler backends: a randomized
/// interleaving of pushes, pops, and pop-and-reschedule steps produces
/// the exact same `(time, payload)` stream on the heap and the wheel —
/// including same-instant FIFO ties and far-future events that overflow
/// the wheel's 2^36 µs span.
#[test]
fn heap_and_wheel_pop_identically_under_random_interleavings() {
    let mut rng = cases_rng("scheduler-differential");
    for case in 0..48 {
        let mut heap = EventQueue::with_scheduler(SchedulerKind::Heap);
        let mut wheel = EventQueue::with_scheduler(SchedulerKind::Wheel);
        let mut next_id = 0u64;
        let steps = rng.range_inclusive(1, 400);
        for step in 0..steps {
            match rng.below(4) {
                // Push a burst; coarse delays force same-instant ties.
                0 | 1 => {
                    for _ in 0..rng.range_inclusive(1, 5) {
                        let delay = match rng.below(8) {
                            0 => 0,                              // now
                            1..=4 => rng.below(500) * 10,        // sub-5ms, coarse
                            5 | 6 => rng.below(30_000_000),      // ≤ 30 s
                            _ => (1 << 37) + rng.below(1 << 20), // overflow range
                        };
                        let at = heap.now() + SimTime::from_micros(delay);
                        heap.schedule_at(at, next_id);
                        wheel.schedule_at(at, next_id);
                        next_id += 1;
                    }
                }
                // Pop.
                2 => {
                    assert_eq!(heap.pop(), wheel.pop(), "case {case} step {step}");
                    assert_eq!(heap.now(), wheel.now(), "case {case} step {step}");
                }
                // Pop and reschedule the payload at a fresh delay (the
                // retry/heartbeat pattern).
                _ => {
                    let (a, b) = (heap.pop(), wheel.pop());
                    assert_eq!(a, b, "case {case} step {step}");
                    if let Some((_, id)) = a {
                        let delay = SimTime::from_micros(rng.below(5_000_000));
                        heap.schedule_in(delay, id);
                        wheel.schedule_in(delay, id);
                    }
                }
            }
            assert_eq!(heap.len(), wheel.len(), "case {case} step {step}");
            assert_eq!(
                heap.peek_time(),
                wheel.peek_time(),
                "case {case} step {step}"
            );
        }
        // Drain fully; order must match to the last event.
        loop {
            let (a, b) = (heap.pop(), wheel.pop());
            assert_eq!(a, b, "case {case}: drain divergence");
            if a.is_none() {
                break;
            }
        }
    }
}

#[test]
fn online_stats_matches_naive() {
    let mut rng = cases_rng("online-stats");
    for case in 0..100 {
        let xs = vec_f64(&mut rng, -1e6, 1e6, 1, 200);
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(
            (s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()),
            "case {case}: mean"
        );
        assert!(
            (s.stddev() - var.sqrt()).abs() < 1e-6 * (1.0 + var.sqrt()),
            "case {case}: stddev"
        );
    }
}

#[test]
fn summary_percentiles_are_ordered() {
    let mut rng = cases_rng("summary");
    for case in 0..100 {
        let xs = vec_f64(&mut rng, 0.0, 1e9, 1, 300);
        let s = Summary::of(&xs);
        assert!(s.min <= s.p50 + 1e-9, "case {case}");
        assert!(s.p50 <= s.p95 + 1e-9, "case {case}");
        assert!(s.p95 <= s.p99 + 1e-9, "case {case}");
        assert!(s.p99 <= s.max + 1e-9, "case {case}");
        assert!(s.min <= s.mean && s.mean <= s.max, "case {case}");
    }
}

#[test]
fn decay_counter_is_monotone_without_hits() {
    let mut rng = cases_rng("decay");
    for case in 0..200 {
        let amount = f64_in(&mut rng, 0.1, 1e6);
        let dt1 = rng.range_inclusive(1, 100_000);
        let dt2 = rng.range_inclusive(1, 100_000);
        let mut c = DecayCounter::new(SimTime::from_secs(10));
        c.hit(SimTime::ZERO, amount);
        let v1 = c.get(SimTime::from_millis(dt1));
        let v2 = c.get(SimTime::from_millis(dt1 + dt2));
        assert!(v1 <= amount + 1e-9, "case {case}");
        assert!(v2 <= v1 + 1e-9, "case {case}: decay must be monotone");
        assert!(v2 >= 0.0, "case {case}");
    }
}

// ---------------------------------------------------------------------------
// Dirfrag selectors (§3.2)
// ---------------------------------------------------------------------------

#[test]
fn selectors_return_valid_disjoint_indices() {
    let mut rng = cases_rng("selector-indices");
    for case in 0..100 {
        let loads = vec_f64(&mut rng, 0.01, 100.0, 0, 40);
        let target = f64_in(&mut rng, 0.0, 2_000.0);
        for sel in DirfragSelector::all() {
            let chosen = sel.select(&loads, target);
            let mut seen = std::collections::HashSet::new();
            for &i in &chosen {
                assert!(i < loads.len(), "case {case}: {sel}: index out of range");
                assert!(seen.insert(i), "case {case}: {sel}: duplicate index");
            }
        }
    }
}

#[test]
fn greedy_selectors_never_wildly_overshoot() {
    let mut rng = cases_rng("selector-overshoot");
    for case in 0..100 {
        let loads = vec_f64(&mut rng, 0.01, 100.0, 1, 40);
        let target = f64_in(&mut rng, 0.1, 500.0);
        // big_first/small_first stop as soon as the target is reached, so
        // the shipped load overshoots by at most one unit's load.
        for sel in [DirfragSelector::BigFirst, DirfragSelector::SmallFirst] {
            let chosen = sel.select(&loads, target);
            let shipped: f64 = chosen.iter().map(|&i| loads[i]).sum();
            let max_unit = loads.iter().cloned().fold(0.0f64, f64::max);
            assert!(
                shipped <= target + max_unit + 1e-9,
                "case {case}: {sel} shipped {shipped} for target {target}"
            );
        }
    }
}

#[test]
fn select_best_is_no_worse_than_any_single_selector() {
    let mut rng = cases_rng("select-best");
    for case in 0..100 {
        let loads = vec_f64(&mut rng, 0.01, 100.0, 1, 40);
        let target = f64_in(&mut rng, 0.1, 500.0);
        let all = DirfragSelector::all();
        let (_, _, best_shipped) = select_best(&all, &loads, target);
        let best_dist = (best_shipped - target).abs();
        for sel in all {
            let chosen = sel.select(&loads, target);
            let shipped: f64 = chosen.iter().map(|&i| loads[i]).sum();
            assert!(
                best_dist <= (shipped - target).abs() + 1e-9,
                "case {case}: select_best lost to {sel}"
            );
        }
    }
}

#[test]
fn half_selector_takes_exactly_half() {
    let mut rng = cases_rng("half");
    for case in 0..100 {
        let loads = vec_f64(&mut rng, 0.01, 10.0, 0, 32);
        let chosen = DirfragSelector::Half.select(&loads, 1.0);
        assert_eq!(chosen.len(), loads.len() / 2, "case {case}");
    }
}

// ---------------------------------------------------------------------------
// Namespace invariants
// ---------------------------------------------------------------------------

/// A random namespace operation.
#[derive(Debug, Clone)]
enum NsAction {
    Mkdir(u8),
    Create(u8),
    Unlink(u8),
    Stat(u8),
    Migrate(u8, u8),
    MigrateFrag(u8, u8),
}

fn ns_action(rng: &mut SimRng) -> NsAction {
    let d = rng.below(16) as u8;
    match rng.below(6) {
        0 => NsAction::Mkdir(d),
        1 => NsAction::Create(d),
        2 => NsAction::Unlink(d),
        3 => NsAction::Stat(d),
        4 => NsAction::Migrate(d, rng.below(4) as u8),
        _ => NsAction::MigrateFrag(d, rng.below(4) as u8),
    }
}

#[test]
fn namespace_invariants_hold_under_random_ops() {
    let mut rng = cases_rng("namespace-ops");
    for case in 0..64 {
        let n_actions = rng.range_inclusive(1, 400) as usize;
        let actions: Vec<NsAction> = (0..n_actions).map(|_| ns_action(&mut rng)).collect();
        let mut ns = Namespace::new(NsConfig {
            frag_split_threshold: 6, // force frequent splits
            ..Default::default()
        });
        let mut created: i64 = 0;
        let mut unlinked: i64 = 0;
        let mut dirs = vec![ns.root()];
        let now = SimTime::ZERO;
        for action in actions {
            match action {
                NsAction::Mkdir(p) => {
                    let parent = dirs[p as usize % dirs.len()];
                    let name = format!("d{}", dirs.len());
                    dirs.push(ns.mkdir(parent, name));
                }
                NsAction::Create(d) => {
                    let dir = dirs[d as usize % dirs.len()];
                    ns.record_op(dir, OpKind::Create, now);
                    created += 1;
                }
                NsAction::Unlink(d) => {
                    let dir = dirs[d as usize % dirs.len()];
                    let before = ns.file_count();
                    ns.record_op(dir, OpKind::Unlink, now);
                    if ns.file_count() < before {
                        unlinked += 1;
                    }
                }
                NsAction::Stat(d) => {
                    let dir = dirs[d as usize % dirs.len()];
                    ns.record_op(dir, OpKind::Stat, now);
                }
                NsAction::Migrate(d, m) => {
                    let dir = dirs[d as usize % dirs.len()];
                    ns.migrate_subtree(dir, m as usize);
                }
                NsAction::MigrateFrag(d, m) => {
                    let dir = dirs[d as usize % dirs.len()];
                    let frag = ns.peek_frag(dir);
                    ns.migrate_frag(dir, frag, m as usize);
                }
            }
            // Invariant: every directory resolves to exactly one authority.
            for &dir in &dirs {
                let _ = ns.resolve_auth(dir);
            }
        }
        // Invariant: files are conserved across splits and migrations.
        assert_eq!(ns.file_count() as i64, created - unlinked, "case {case}");
        // Invariant: auth_frags partitions the fragment set.
        let stats = NamespaceStats::collect(&ns);
        let total_from_partition: usize = (0..4).map(|m| ns.auth_frags(m).len()).sum();
        assert_eq!(total_from_partition, stats.frags, "case {case}");
        // Invariant: every dir keeps at least one fragment.
        for &dir in &dirs {
            assert!(!ns.dir(dir).frags.is_empty(), "case {case}");
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental index layer ≡ walk-based oracles
// ---------------------------------------------------------------------------

/// Apply one random action to a namespace at `now`, growing `dirs` as
/// mkdirs land. The same (action, dirs) stream applied to two namespaces
/// drives them through identical structural histories.
fn apply_ns_action(
    ns: &mut Namespace,
    dirs: &mut Vec<NodeId>,
    action: &NsAction,
    now: mantle::sim::SimTime,
) {
    match *action {
        NsAction::Mkdir(p) => {
            let parent = dirs[p as usize % dirs.len()];
            let name = format!("d{}", dirs.len());
            dirs.push(ns.mkdir(parent, name));
        }
        NsAction::Create(d) => {
            let dir = dirs[d as usize % dirs.len()];
            ns.record_op(dir, OpKind::Create, now);
        }
        NsAction::Unlink(d) => {
            let dir = dirs[d as usize % dirs.len()];
            ns.record_op(dir, OpKind::Unlink, now);
        }
        NsAction::Stat(d) => {
            let dir = dirs[d as usize % dirs.len()];
            ns.record_op(dir, OpKind::Stat, now);
        }
        NsAction::Migrate(d, m) => {
            let dir = dirs[d as usize % dirs.len()];
            ns.migrate_subtree(dir, m as usize);
        }
        NsAction::MigrateFrag(d, m) => {
            let dir = dirs[d as usize % dirs.len()];
            let frag = ns.peek_frag(dir);
            ns.migrate_frag(dir, frag, m as usize);
        }
    }
}

/// (a) Euler-interval membership answers exactly the recursive walk after
/// any sequence of mkdirs, splits, and migrations.
#[test]
fn euler_membership_matches_recursive_walk() {
    let mut rng = cases_rng("euler-membership");
    for case in 0..32 {
        let n_actions = rng.range_inclusive(1, 300) as usize;
        let mut ns = Namespace::new(NsConfig {
            frag_split_threshold: 6,
            ..Default::default()
        });
        let mut dirs = vec![ns.root()];
        for step in 0..n_actions {
            let action = ns_action(&mut rng);
            let now = mantle::sim::SimTime::from_millis(step as u64 * 20);
            apply_ns_action(&mut ns, &mut dirs, &action, now);
        }
        for &root in &dirs {
            let walk: std::collections::HashSet<NodeId> =
                ns.subtree_dirs(root, false).into_iter().collect();
            for &d in &dirs {
                assert_eq!(
                    ns.in_subtree(d, root),
                    walk.contains(&d),
                    "case {case}: membership of {d:?} under {root:?}"
                );
            }
        }
    }
}

/// (b) The per-MDS ownership indexes answer exactly what a full-namespace
/// scan answers: twin namespaces driven through an identical action
/// sequence — one incremental, one on the walk-oracle paths — agree on
/// `auth_frags`, `export_candidate_dirs`, and `resolve_auth` everywhere.
#[test]
fn indexed_ownership_matches_walk_oracle() {
    let mut rng = cases_rng("index-ownership");
    for case in 0..32 {
        let n_actions = rng.range_inclusive(1, 300) as usize;
        let mk = |mode| {
            Namespace::new(NsConfig {
                frag_split_threshold: 6,
                index_mode: mode,
                ..Default::default()
            })
        };
        let mut inc = mk(IndexMode::Incremental);
        let mut ora = mk(IndexMode::WalkOracle);
        let mut dirs_inc = vec![inc.root()];
        let mut dirs_ora = vec![ora.root()];
        for step in 0..n_actions {
            let action = ns_action(&mut rng);
            let now = mantle::sim::SimTime::from_millis(step as u64 * 20);
            apply_ns_action(&mut inc, &mut dirs_inc, &action, now);
            apply_ns_action(&mut ora, &mut dirs_ora, &action, now);
        }
        assert_eq!(dirs_inc, dirs_ora, "case {case}: structural divergence");
        for m in 0..4 {
            assert_eq!(
                inc.auth_frags(m),
                ora.auth_frags(m),
                "case {case}: auth_frags({m})"
            );
            assert_eq!(
                inc.export_candidate_dirs(m),
                ora.export_candidate_dirs(m),
                "case {case}: export_candidate_dirs({m})"
            );
        }
        for &d in &dirs_inc {
            assert_eq!(
                inc.resolve_auth(d),
                ora.resolve_auth(d),
                "case {case}: resolve_auth({d:?})"
            );
        }
    }
}

/// (c) Delta-maintained per-MDS aggregates track a from-scratch recompute
/// off per-frag truth. Migrations move heat between aggregates by sampled
/// deltas, so agreement is to floating-point tolerance, not bitwise — and
/// the incremental path must never have fallen back to a full rebuild.
#[test]
fn delta_aggregates_match_full_recompute() {
    let mut rng = cases_rng("delta-aggregates");
    for case in 0..24 {
        let n_actions = rng.range_inclusive(1, 300) as usize;
        let mut ns = Namespace::new(NsConfig {
            frag_split_threshold: 6,
            ..Default::default()
        });
        let mut dirs = vec![ns.root()];
        let mut now = mantle::sim::SimTime::ZERO;
        for step in 0..n_actions {
            let action = ns_action(&mut rng);
            now = mantle::sim::SimTime::from_millis(step as u64 * 20);
            apply_ns_action(&mut ns, &mut dirs, &action, now);
        }
        let (auth, rep) = ns.mds_load_samples(4, now);
        let (auth_o, rep_o) = ns.oracle_load_samples(4, now);
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * (1.0 + b.abs());
        for m in 0..4 {
            assert!(
                close(auth[m].cephfs_metaload(), auth_o[m].cephfs_metaload()),
                "case {case}: auth aggregate of MDS {m}: {:?} vs {:?}",
                auth[m],
                auth_o[m]
            );
            assert!(
                close(rep[m].cephfs_metaload(), rep_o[m].cephfs_metaload()),
                "case {case}: replica aggregate of MDS {m}: {:?} vs {:?}",
                rep[m],
                rep_o[m]
            );
        }
        assert_eq!(ns.rebuilds(), 0, "case {case}: incremental path fell back");
    }
}

// ---------------------------------------------------------------------------
// Policy language
// ---------------------------------------------------------------------------

/// The pretty-printer is a fixpoint: print(parse(print(x))) == print(x).
#[test]
fn printer_round_trips_random_arithmetic() {
    let mut rng = cases_rng("printer");
    for case in 0..128 {
        let a = rng.below(2_000) as i64 - 1_000;
        let b = rng.range_inclusive(1, 1_000) as i64;
        let c = rng.below(2_000) as i64 - 1_000;
        let src = format!("x = {a} + {b} * {c} y = ({a} - {c}) / {b} z = x < y and y ~= {c}");
        let first = parse_script(&src).unwrap();
        let printed = script_to_source(&first);
        let reparsed = parse_script(&printed).unwrap();
        assert_eq!(printed, script_to_source(&reparsed), "case {case}");
    }
}

/// Arithmetic in the policy language matches Rust f64 arithmetic.
#[test]
fn interpreter_arithmetic_matches_rust() {
    let mut rng = cases_rng("arith");
    for case in 0..128 {
        let a = f64_in(&mut rng, -1e6, 1e6);
        let b = f64_in(&mut rng, -1e6, 1e6);
        let c = f64_in(&mut rng, 0.001, 1e3);
        let src = format!("r = ({a}) + ({b}) * ({c})");
        let script = parse_script(&src).unwrap();
        let mut interp = Interpreter::new();
        interp.run(&script).unwrap();
        let got = interp.get_global("r").as_number(0).unwrap();
        let want = a + b * c;
        assert!(
            (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
            "case {case}: got {got}, want {want}"
        );
    }
}

/// Random balancer states never crash the shipped policies; targets are
/// finite and non-negative, and never point at self.
#[test]
fn shipped_policies_are_total_over_random_states() {
    let mut rng = cases_rng("shipped-total");
    for case in 0..48 {
        let loads = vec_f64(&mut rng, 0.0, 10_000.0, 1, 8);
        let cpus = vec_f64(&mut rng, 0.0, 100.0, 1, 8);
        let n = loads.len().min(cpus.len());
        let whoami = rng.below(8) as usize % n;
        let inputs = BalancerInputs {
            whoami,
            mds: (0..n)
                .map(|i| MdsMetrics {
                    auth: loads[i],
                    all: loads[i] * 1.2,
                    cpu: cpus[i],
                    mem: 25.0,
                    q: (loads[i] / 100.0).floor(),
                    req: loads[i],
                    cache_hits: loads[i] * 3.0,
                    cache_misses: loads[i] / 2.0,
                })
                .collect(),
            auth_metaload: loads[whoami],
            all_metaload: loads[whoami] * 1.2,
        };
        for policy in [
            mantle::core::policies::greedy_spill().unwrap(),
            mantle::core::policies::greedy_spill_even().unwrap(),
            mantle::core::policies::fill_and_spill(0.25).unwrap(),
            mantle::core::policies::adaptable().unwrap(),
            mantle::core::policies::cephfs_original().unwrap(),
        ] {
            let rt = MantleRuntime::new(policy);
            let out = rt.decide(&inputs).unwrap();
            assert_eq!(out.targets.len(), n, "case {case}");
            for (i, &t) in out.targets.iter().enumerate() {
                assert!(t.is_finite() && t >= 0.0, "case {case}");
                if i == whoami {
                    assert!(t == 0.0, "case {case}: policy exported to itself");
                }
            }
        }
    }
}

/// Scripts that loop forever always hit the step budget, regardless of
/// loop structure.
#[test]
fn budget_always_terminates_loops() {
    let mut rng = cases_rng("budget");
    for case in 0..32 {
        let body_len = rng.range_inclusive(1, 3) as usize;
        let body = "x = x + 1 ".repeat(body_len);
        let step = rng.range_inclusive(1, 4);
        let src = format!("x = 0 while true do {body} end y = {step}");
        let script = parse_script(&src).unwrap();
        let mut interp = Interpreter::new().with_budget(StepBudget(5_000));
        let err = interp.run(&script).unwrap_err();
        let budget_hit = matches!(err, mantle::policy::PolicyError::BudgetExhausted { .. });
        assert!(
            budget_hit,
            "case {case}: expected budget exhaustion, got {err}"
        );
    }
}

// ---------------------------------------------------------------------------
// Tree-walking ≡ slot-compiled ≡ bytecode evaluation
// ---------------------------------------------------------------------------

/// Generate a random expression over globals `a`, `b`, `c` mixing
/// arithmetic, comparison, and logical operators. Comparisons between
/// incompatible types are possible — the property then checks that both
/// engines produce the *same* error.
fn random_expr(rng: &mut SimRng, depth: u32) -> String {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(4) {
            0 => format!("{}", rng.below(2_000) as i64 - 1_000),
            1 => format!("{:.3}", rng.f64() * 100.0),
            2 => ["a", "b", "c"][rng.below(3) as usize].to_string(),
            _ => format!("{}", rng.below(100)),
        };
    }
    let lhs = random_expr(rng, depth - 1);
    let rhs = random_expr(rng, depth - 1);
    let op = [
        "+", "-", "*", "/", "%", "^", "<", "<=", ">", ">=", "==", "~=", "and", "or",
    ][rng.below(14) as usize];
    match rng.below(3) {
        0 => format!("({lhs} {op} {rhs})"),
        // The space after the unary minus matters: a negative literal
        // after `-` would otherwise form `--`, a Lua comment.
        1 => format!("(- {lhs} {op} {rhs})"),
        _ => format!("({lhs} {op} not {rhs})"),
    }
}

/// Run a script through all three engines (tree walker, slot VM,
/// bytecode VM) with identical globals and budget; results (success
/// value of every global, steps consumed, or the error) must be
/// identical — numbers bit-for-bit.
fn assert_engines_agree(src: &str, globals: &[(&str, f64)], case: usize) {
    let script = parse_script(src).unwrap_or_else(|e| panic!("case {case}: parse {src}: {e}"));
    let budget = StepBudget(100_000);

    let mut tree = Interpreter::new().with_budget(budget);
    for &(name, v) in globals {
        tree.set_global(name, Value::Number(v));
    }
    let tree_result = tree.run(&script);

    let prog = SlotProgram::compile(&script);
    let mut vm = SlotVm::new(&prog, budget);
    let bc = BytecodeProgram::compile(&prog);
    let mut bvm = BytecodeVm::new(&bc, budget);
    for &(name, v) in globals {
        if let Some(slot) = prog.global_slot(name) {
            vm.set_global(slot, Value::Number(v));
            bvm.set_global(slot, Value::Number(v));
        }
    }
    let vm_result = vm.run(&prog);
    let bvm_result = bvm.run(&bc);

    match (&tree_result, &vm_result, &bvm_result) {
        (Ok(_), Ok(_), Ok(_)) => {
            for (slot, name) in prog.global_names().iter().enumerate() {
                let t = tree.get_global(name);
                for (engine, v) in [
                    ("slots", vm.get_global(slot)),
                    ("bytecode", bvm.get_global(slot)),
                ] {
                    let same = match (&t, v) {
                        (Value::Number(x), Value::Number(y)) => x.to_bits() == y.to_bits(),
                        (t, v) => t.lua_eq(v),
                    };
                    assert!(
                        same,
                        "case {case}: global {name} diverged on {src}: tree={t:?} {engine}={v:?}"
                    );
                }
            }
            assert_eq!(
                tree.steps_used(),
                vm.steps_used(),
                "case {case}: tree/slot step counts diverged on {src}"
            );
            assert_eq!(
                tree.steps_used(),
                bvm.steps_used(),
                "case {case}: tree/bytecode step counts diverged on {src}"
            );
        }
        (Err(te), Err(se), Err(be)) => {
            assert_eq!(te, se, "case {case}: tree/slot errors diverged on {src}");
            assert_eq!(
                te, be,
                "case {case}: tree/bytecode errors diverged on {src}"
            );
        }
        _ => panic!(
            "case {case}: engines disagree on whether {src} errors: \
             tree={tree_result:?} slots={vm_result:?} bytecode={bvm_result:?}"
        ),
    }
}

/// All three engines agree on random expressions: same values
/// (bit-identical numbers), same step counts, same errors.
#[test]
fn all_engines_agree_on_random_expressions() {
    let mut rng = cases_rng("slots-expr");
    for case in 0..256 {
        let depth = rng.range_inclusive(1, 4) as u32;
        let expr = random_expr(&mut rng, depth);
        let src = format!("r = {expr}");
        let a = f64_in(&mut rng, -100.0, 100.0);
        let b = f64_in(&mut rng, -10.0, 10.0);
        let c = f64_in(&mut rng, 0.0, 5.0);
        assert_engines_agree(&src, &[("a", a), ("b", b), ("c", c)], case);
    }
}

/// Same property over random multi-statement scripts exercising locals,
/// scoping, conditionals, and bounded loops.
#[test]
fn all_engines_agree_on_random_scripts() {
    let mut rng = cases_rng("slots-script");
    for case in 0..128 {
        let e1 = random_expr(&mut rng, 2);
        let e2 = random_expr(&mut rng, 2);
        let e3 = random_expr(&mut rng, 1);
        let n = rng.range_inclusive(1, 8);
        let src = format!(
            "local t = {e1}\n\
             acc = 0\n\
             for i = 1, {n} do\n\
               local t = i + acc\n\
               if t > 3 then acc = acc + 1 else acc = acc + 0.5 end\n\
             end\n\
             u = {e2}\n\
             while acc > 2 do acc = acc - ({n}) end\n\
             v = {e3}"
        );
        let a = f64_in(&mut rng, -100.0, 100.0);
        let b = f64_in(&mut rng, -10.0, 10.0);
        let c = f64_in(&mut rng, 0.0, 5.0);
        assert_engines_agree(&src, &[("a", a), ("b", b), ("c", c)], case);
    }
}

// ---------------------------------------------------------------------------
// PolicySet construction is total over selector lists
// ---------------------------------------------------------------------------

#[test]
fn policy_from_combined_handles_arbitrary_howmuch() {
    let mut rng = cases_rng("howmuch");
    for _case in 0..100 {
        let n_names = rng.below(5) as usize;
        let names: Vec<String> = (0..n_names)
            .map(|_| {
                let len = rng.range_inclusive(1, 12) as usize;
                (0..len)
                    .map(|_| {
                        let alphabet = b"abcdefghijklmnopqrstuvwxyz_";
                        alphabet[rng.below(alphabet.len() as u64) as usize] as char
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        // Construction itself must not panic; unknown selector names are
        // rejected later, at balancer construction.
        let _ = PolicySet::from_combined("IWR", "MDSs[i][\"all\"]", "x = 1", &refs);
    }
}

// ---------------------------------------------------------------------------
// Elastic membership: rendezvous re-homing and drain conservation
// ---------------------------------------------------------------------------

/// Draw a sorted, duplicate-free random member set from `0..pool`.
fn random_members(rng: &mut SimRng, pool: u64, min_len: u64) -> Vec<usize> {
    loop {
        let members: Vec<usize> = (0..pool)
            .filter(|_| rng.f64() < 0.5)
            .map(|m| m as usize)
            .collect();
        if members.len() as u64 >= min_len {
            return members;
        }
    }
}

/// Rendezvous hashing's minimal-movement law, differentially against the
/// full-recompute oracle: when a member joins, the only dirs whose owner
/// changes are exactly those the full recompute assigns to the joiner.
/// Nothing shuffles between surviving members.
#[test]
fn rendezvous_join_rehomes_only_the_minimal_set() {
    let mut rng = cases_rng("rendezvous-join");
    for case in 0..200 {
        let before = random_members(&mut rng, 16, 1);
        let joiner = loop {
            let j = rng.below(16) as usize;
            if !before.contains(&j) {
                break j;
            }
        };
        let mut after = before.clone();
        after.push(joiner);
        after.sort_unstable();

        let dirs: Vec<NodeId> = (0..rng.range_inclusive(1, 300))
            .map(|_| NodeId(rng.below(1 << 30) as u32))
            .collect();
        let mut moved = 0usize;
        for &dir in &dirs {
            let old = mantle::mds::rendezvous_owner(dir, &before);
            let new = mantle::mds::rendezvous_owner(dir, &after);
            if new != old {
                assert_eq!(
                    new, joiner,
                    "case {case}: dir {dir:?} moved {old} -> {new}, not onto the joiner {joiner}"
                );
                moved += 1;
            } else {
                assert_ne!(
                    new, joiner,
                    "case {case}: oracle assigns {dir:?} to the joiner but it did not move"
                );
            }
        }
        // The moved set is the oracle's ownership set of the joiner.
        let oracle: usize = dirs
            .iter()
            .filter(|&&d| mantle::mds::rendezvous_owner(d, &after) == joiner)
            .count();
        assert_eq!(
            moved, oracle,
            "case {case}: moved set != full-recompute oracle"
        );
    }
}

/// The leave direction: removing a member re-homes exactly that member's
/// dirs; every dir owned by a survivor keeps its owner.
#[test]
fn rendezvous_leave_moves_only_the_departed_members_dirs() {
    let mut rng = cases_rng("rendezvous-leave");
    for case in 0..200 {
        let before = random_members(&mut rng, 16, 2);
        let leaver = before[rng.below(before.len() as u64) as usize];
        let after: Vec<usize> = before.iter().copied().filter(|&m| m != leaver).collect();

        for _ in 0..rng.range_inclusive(1, 300) {
            let dir = NodeId(rng.below(1 << 30) as u32);
            let old = mantle::mds::rendezvous_owner(dir, &before);
            let new = mantle::mds::rendezvous_owner(dir, &after);
            if old == leaver {
                assert!(after.contains(&new), "case {case}: orphaned dir {dir:?}");
            } else {
                assert_eq!(old, new, "case {case}: survivor-owned dir {dir:?} moved");
            }
        }
    }
}

/// End to end, across seeds: an elastic diurnal run completes every
/// client's budget (drain-on-leave loses nothing), drops no requests,
/// and its trace satisfies every membership invariant — including
/// zero dirfrag authority on a drained MDS and no service while
/// departed.
#[test]
fn elastic_runs_conserve_ops_across_seeds() {
    use mantle::core::elastic::{client_ops, diurnal_experiment, POOL};
    use mantle::core::repro::ReproOpts;
    use mantle::core::run_experiment_traced;
    use mantle::mds::{assert_invariants, ElasticConfig, TraceLevel};

    for seed in [3, 42, 1337] {
        let elastic = ElasticConfig {
            enabled: true,
            min_mds: 1,
            max_mds: POOL,
            initial_mds: 1,
            ..ElasticConfig::on()
        };
        let spec = diurnal_experiment(ReproOpts::QUICK, POOL, elastic, 1, seed);
        let expected: u64 = match spec.workload {
            mantle::core::WorkloadSpec::Diurnal {
                clients,
                days,
                ops_per_day,
                ..
            } => clients as u64 * days * ops_per_day,
            _ => unreachable!("diurnal spec"),
        };
        let (report, trace) = run_experiment_traced(&spec, TraceLevel::Full);
        assert_invariants(trace.records());
        assert_eq!(
            client_ops(&report),
            expected,
            "seed {seed}: client budget not conserved"
        );
        let dropped: u64 = report.mds.iter().map(|m| m.dropped).sum();
        assert_eq!(dropped, 0, "seed {seed}: requests dropped");
        assert!(
            report.joins >= 1 && report.leaves >= 1,
            "seed {seed}: vacuous run — never scaled ({} joins, {} leaves)",
            report.joins,
            report.leaves
        );
        assert_eq!(report.membership_epoch, report.joins + report.leaves);
    }
}
