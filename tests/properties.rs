//! Property-based tests over the core data structures and invariants.

use mantle::mds::{select_best, DirfragSelector};
use mantle::namespace::{Namespace, NamespaceStats, NsConfig, OpKind};
use mantle::policy::env::{BalancerInputs, MantleRuntime, MdsMetrics, PolicySet};
use mantle::policy::{parse_script, script_to_source};
use mantle::sim::{DecayCounter, EventQueue, OnlineStats, SimTime, Summary};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Simulation kernel
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn event_queue_pops_in_nondecreasing_time(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last, "time went backwards");
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn online_stats_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.stddev() - var.sqrt()).abs() < 1e-6 * (1.0 + var.sqrt()));
    }

    #[test]
    fn summary_percentiles_are_ordered(xs in prop::collection::vec(0.0f64..1e9, 1..300)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.p50 + 1e-9);
        prop_assert!(s.p50 <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn decay_counter_is_monotone_without_hits(
        amount in 0.1f64..1e6,
        dt1 in 1u64..100_000,
        dt2 in 1u64..100_000,
    ) {
        let mut c = DecayCounter::new(SimTime::from_secs(10));
        c.hit(SimTime::ZERO, amount);
        let v1 = c.get(SimTime::from_millis(dt1));
        let v2 = c.get(SimTime::from_millis(dt1 + dt2));
        prop_assert!(v1 <= amount + 1e-9);
        prop_assert!(v2 <= v1 + 1e-9, "decay must be monotone");
        prop_assert!(v2 >= 0.0);
    }
}

// ---------------------------------------------------------------------------
// Dirfrag selectors (§3.2)
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn selectors_return_valid_disjoint_indices(
        loads in prop::collection::vec(0.01f64..100.0, 0..40),
        target in 0.0f64..2_000.0,
    ) {
        for sel in DirfragSelector::all() {
            let chosen = sel.select(&loads, target);
            let mut seen = std::collections::HashSet::new();
            for &i in &chosen {
                prop_assert!(i < loads.len(), "{sel}: index out of range");
                prop_assert!(seen.insert(i), "{sel}: duplicate index");
            }
        }
    }

    #[test]
    fn greedy_selectors_never_wildly_overshoot(
        loads in prop::collection::vec(0.01f64..100.0, 1..40),
        target in 0.1f64..500.0,
    ) {
        // big_first/small_first stop as soon as the target is reached, so
        // the shipped load overshoots by at most one unit's load.
        for sel in [DirfragSelector::BigFirst, DirfragSelector::SmallFirst] {
            let chosen = sel.select(&loads, target);
            let shipped: f64 = chosen.iter().map(|&i| loads[i]).sum();
            let max_unit = loads.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(
                shipped <= target + max_unit + 1e-9,
                "{sel} shipped {shipped} for target {target}"
            );
        }
    }

    #[test]
    fn select_best_is_no_worse_than_any_single_selector(
        loads in prop::collection::vec(0.01f64..100.0, 1..40),
        target in 0.1f64..500.0,
    ) {
        let all = DirfragSelector::all();
        let (_, _, best_shipped) = select_best(&all, &loads, target);
        let best_dist = (best_shipped - target).abs();
        for sel in all {
            let chosen = sel.select(&loads, target);
            let shipped: f64 = chosen.iter().map(|&i| loads[i]).sum();
            prop_assert!(
                best_dist <= (shipped - target).abs() + 1e-9,
                "select_best lost to {sel}"
            );
        }
    }

    #[test]
    fn half_selector_takes_exactly_half(loads in prop::collection::vec(0.01f64..10.0, 0..33)) {
        let chosen = DirfragSelector::Half.select(&loads, 1.0);
        prop_assert_eq!(chosen.len(), loads.len() / 2);
    }
}

// ---------------------------------------------------------------------------
// Namespace invariants
// ---------------------------------------------------------------------------

/// A random namespace operation script.
#[derive(Debug, Clone)]
enum NsAction {
    Mkdir(u8),
    Create(u8),
    Unlink(u8),
    Stat(u8),
    Migrate(u8, u8),
    MigrateFrag(u8, u8),
}

fn ns_action() -> impl Strategy<Value = NsAction> {
    prop_oneof![
        (0u8..16).prop_map(NsAction::Mkdir),
        (0u8..16).prop_map(NsAction::Create),
        (0u8..16).prop_map(NsAction::Unlink),
        (0u8..16).prop_map(NsAction::Stat),
        ((0u8..16), (0u8..4)).prop_map(|(d, m)| NsAction::Migrate(d, m)),
        ((0u8..16), (0u8..4)).prop_map(|(d, m)| NsAction::MigrateFrag(d, m)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn namespace_invariants_hold_under_random_ops(
        actions in prop::collection::vec(ns_action(), 1..400),
    ) {
        let mut ns = Namespace::new(NsConfig {
            frag_split_threshold: 6, // force frequent splits
            ..Default::default()
        });
        let mut created: i64 = 0;
        let mut unlinked: i64 = 0;
        let mut dirs = vec![ns.root()];
        let now = SimTime::ZERO;
        for action in actions {
            match action {
                NsAction::Mkdir(p) => {
                    let parent = dirs[p as usize % dirs.len()];
                    let name = format!("d{}", dirs.len());
                    dirs.push(ns.mkdir(parent, name));
                }
                NsAction::Create(d) => {
                    let dir = dirs[d as usize % dirs.len()];
                    ns.record_op(dir, OpKind::Create, now);
                    created += 1;
                }
                NsAction::Unlink(d) => {
                    let dir = dirs[d as usize % dirs.len()];
                    let before = ns.file_count();
                    ns.record_op(dir, OpKind::Unlink, now);
                    if ns.file_count() < before {
                        unlinked += 1;
                    }
                }
                NsAction::Stat(d) => {
                    let dir = dirs[d as usize % dirs.len()];
                    ns.record_op(dir, OpKind::Stat, now);
                }
                NsAction::Migrate(d, m) => {
                    let dir = dirs[d as usize % dirs.len()];
                    ns.migrate_subtree(dir, m as usize);
                }
                NsAction::MigrateFrag(d, m) => {
                    let dir = dirs[d as usize % dirs.len()];
                    let frag = ns.peek_frag(dir);
                    ns.migrate_frag(dir, frag, m as usize);
                }
            }
            // Invariant: every directory resolves to exactly one authority.
            for &dir in &dirs {
                let _ = ns.resolve_auth(dir);
            }
        }
        // Invariant: files are conserved across splits and migrations.
        prop_assert_eq!(ns.file_count() as i64, created - unlinked);
        // Invariant: auth_frags partitions the fragment set.
        let stats = NamespaceStats::collect(&ns);
        let total_from_partition: usize =
            (0..4).map(|m| ns.auth_frags(m).len()).sum();
        prop_assert_eq!(total_from_partition, stats.frags);
        // Invariant: every dir keeps at least one fragment.
        for &dir in &dirs {
            prop_assert!(!ns.dir(dir).frags.is_empty());
        }
    }
}

// ---------------------------------------------------------------------------
// Policy language
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The pretty-printer is a fixpoint: print(parse(print(x))) == print(x).
    #[test]
    fn printer_round_trips_random_arithmetic(
        a in -1_000i32..1_000,
        b in 1i32..1_000,
        c in -1_000i32..1_000,
    ) {
        let src = format!("x = {a} + {b} * {c} y = ({a} - {c}) / {b} z = x < y and y ~= {c}");
        let first = parse_script(&src).unwrap();
        let printed = script_to_source(&first);
        let reparsed = parse_script(&printed).unwrap();
        prop_assert_eq!(printed, script_to_source(&reparsed));
    }

    /// Arithmetic in the policy language matches Rust f64 arithmetic.
    #[test]
    fn interpreter_arithmetic_matches_rust(
        a in -1e6f64..1e6,
        b in -1e6f64..1e6,
        c in 0.001f64..1e3,
    ) {
        let src = format!("r = ({a}) + ({b}) * ({c})");
        let script = parse_script(&src).unwrap();
        let mut interp = mantle::policy::Interpreter::new();
        interp.run(&script).unwrap();
        let got = interp.get_global("r").as_number(0).unwrap();
        let want = a + b * c;
        prop_assert!((got - want).abs() <= 1e-9 * (1.0 + want.abs()));
    }

    /// Random balancer states never crash the shipped policies; targets
    /// are finite and non-negative, and never point at self.
    #[test]
    fn shipped_policies_are_total_over_random_states(
        loads in prop::collection::vec(0.0f64..10_000.0, 1..9),
        cpus in prop::collection::vec(0.0f64..100.0, 1..9),
        whoami_raw in 0usize..8,
    ) {
        let n = loads.len().min(cpus.len());
        let whoami = whoami_raw % n;
        let inputs = BalancerInputs {
            whoami,
            mds: (0..n)
                .map(|i| MdsMetrics {
                    auth: loads[i],
                    all: loads[i] * 1.2,
                    cpu: cpus[i],
                    mem: 25.0,
                    q: (loads[i] / 100.0).floor(),
                    req: loads[i],
                })
                .collect(),
            auth_metaload: loads[whoami],
            all_metaload: loads[whoami] * 1.2,
        };
        for policy in [
            mantle::core::policies::greedy_spill().unwrap(),
            mantle::core::policies::greedy_spill_even().unwrap(),
            mantle::core::policies::fill_and_spill(0.25).unwrap(),
            mantle::core::policies::adaptable().unwrap(),
            mantle::core::policies::cephfs_original().unwrap(),
        ] {
            let rt = MantleRuntime::new(policy);
            let out = rt.decide(&inputs).unwrap();
            prop_assert_eq!(out.targets.len(), n);
            for (i, &t) in out.targets.iter().enumerate() {
                prop_assert!(t.is_finite() && t >= 0.0);
                if i == whoami {
                    prop_assert!(t == 0.0, "policy exported to itself");
                }
            }
        }
    }

    /// Scripts that loop forever always hit the step budget, regardless of
    /// loop structure.
    #[test]
    fn budget_always_terminates_loops(step in 1u32..5, body_len in 1usize..4) {
        let body = "x = x + 1 ".repeat(body_len);
        let src = format!("x = 0 while true do {body} end y = {step}");
        let script = parse_script(&src).unwrap();
        let mut interp = mantle::policy::Interpreter::new()
            .with_budget(mantle::policy::StepBudget(5_000));
        let err = interp.run(&script).unwrap_err();
        let budget_hit = matches!(err, mantle::policy::PolicyError::BudgetExhausted { .. });
        prop_assert!(budget_hit, "expected budget exhaustion, got {err}");
    }
}

// ---------------------------------------------------------------------------
// PolicySet construction is total over selector lists
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn policy_from_combined_handles_arbitrary_howmuch(
        names in prop::collection::vec("[a-z_]{1,12}", 0..5),
    ) {
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        // Construction itself must not panic; unknown selector names are
        // rejected later, at balancer construction.
        let _ = PolicySet::from_combined("IWR", "MDSs[i][\"all\"]", "x = 1", &refs);
    }
}
