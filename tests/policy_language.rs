//! Lua-subset semantics torture tests: the policy language against the
//! behaviours Lua 5.1 defines (the paper's balancers rely on several of
//! these — 1-based arrays, `and`/`or` returning operands, `#` borders,
//! floored modulo).

use mantle::policy::{compile, compile_expr, Interpreter, PolicyError, Value};

fn run(src: &str) -> Interpreter {
    let script = compile(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"));
    let mut interp = Interpreter::new();
    mantle::policy::stdlib::install(&mut interp);
    interp
        .run(&script)
        .unwrap_or_else(|e| panic!("run {src:?}: {e}"));
    interp
}

fn num(interp: &Interpreter, name: &str) -> f64 {
    interp.get_global(name).as_number(0).unwrap()
}

#[test]
fn numeric_semantics() {
    let i = run(r#"
a = 7 / 2
b = 7 % 3
c = -7 % 3
d = 2 ^ -1
e = 0.1 + 0.2
"#);
    assert_eq!(num(&i, "a"), 3.5, "no integer division in Lua 5.1");
    assert_eq!(num(&i, "b"), 1.0);
    assert_eq!(num(&i, "c"), 2.0, "floored modulo");
    assert_eq!(num(&i, "d"), 0.5);
    assert!((num(&i, "e") - 0.3).abs() < 1e-12);
}

#[test]
fn logic_returns_operands() {
    let i = run(r#"
a = nil or 5
b = false and 5
c = 3 and 4
d = nil and nil or "fallback"
e = not nil
f = not 0
"#);
    assert_eq!(num(&i, "a"), 5.0);
    assert!(matches!(i.get_global("b"), Value::Bool(false)));
    assert_eq!(num(&i, "c"), 4.0);
    assert_eq!(i.get_global("d").display_string(), "fallback");
    assert!(matches!(i.get_global("e"), Value::Bool(true)));
    assert!(
        matches!(i.get_global("f"), Value::Bool(false)),
        "0 is truthy in Lua"
    );
}

#[test]
fn table_borders_and_nil_holes() {
    let i = run(r#"
t = {10, 20, 30}
n1 = #t
t[5] = 50
n2 = #t
t[4] = 40
n3 = #t
t[1] = nil
n4 = #t
"#);
    assert_eq!(num(&i, "n1"), 3.0);
    assert_eq!(num(&i, "n2"), 3.0, "gap at 4 keeps the border at 3");
    assert_eq!(num(&i, "n3"), 5.0, "filling the gap extends to 5");
    assert_eq!(num(&i, "n4"), 0.0, "deleting index 1 resets the border");
}

#[test]
fn string_number_coercion_in_arithmetic() {
    let i = run(r#"x = "10" + 5 y = "3.5" * 2"#);
    assert_eq!(num(&i, "x"), 15.0);
    assert_eq!(num(&i, "y"), 7.0);
    // …but not in comparison.
    let err = compile(r#"z = "10" < 5"#)
        .and_then(|s| Interpreter::new().run(&s))
        .unwrap_err();
    assert!(matches!(err, PolicyError::Runtime { .. }));
}

#[test]
fn concat_formats_like_lua() {
    let i = run(r#"s = "load=" .. 3 .. "/" .. 2.5"#);
    assert_eq!(i.get_global("s").display_string(), "load=3/2.5");
}

#[test]
fn scoping_shadowing_and_loop_locals() {
    let i = run(r#"
x = 1
do
  local x = 2
  y = x
end
z = x
sum = 0
for x = 1, 3 do sum = sum + x end
after = x
"#);
    assert_eq!(num(&i, "y"), 2.0);
    assert_eq!(num(&i, "z"), 1.0, "global untouched by the local");
    assert_eq!(num(&i, "sum"), 6.0);
    assert_eq!(num(&i, "after"), 1.0, "loop var does not leak");
}

#[test]
fn break_exits_innermost_loop_only() {
    let i = run(r#"
count = 0
for i = 1, 3 do
  for j = 1, 10 do
    if j == 2 then break end
    count = count + 1
  end
end
"#);
    assert_eq!(
        num(&i, "count"),
        3.0,
        "inner loop breaks at j==2, 1 iteration each"
    );
}

#[test]
fn while_with_state_machine() {
    // A miniature of the Fill & Spill wait-counter logic.
    let i = run(r#"
wait = 3
fires = 0
ticks = 0
while ticks < 10 do
  ticks = ticks + 1
  if wait > 0 then wait = wait - 1
  else fires = fires + 1 wait = 3 end
end
"#);
    assert_eq!(num(&i, "fires"), 2.0);
}

#[test]
fn nested_table_mutation_through_shared_reference() {
    let i = run(r#"
a = {inner = {v = 1}}
b = a.inner
b.v = 42
got = a.inner.v
same = a.inner == b
"#);
    assert_eq!(num(&i, "got"), 42.0, "tables are references");
    assert!(matches!(i.get_global("same"), Value::Bool(true)));
}

#[test]
fn comparison_chain_precedence() {
    let i = run("r = 1 + 2 < 2 * 2");
    assert!(matches!(i.get_global("r"), Value::Bool(true)));
    let i2 = run("r = not (1 > 2) and 3 ~= 4");
    assert!(matches!(i2.get_global("r"), Value::Bool(true)));
}

#[test]
fn expression_mode_accepts_bare_and_scripted_forms() {
    for src in [
        "IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE",
        "0.8*MDSs[i][\"auth\"] + 0.2*MDSs[i][\"all\"]",
        "x = 4 return x * 2",
    ] {
        compile_expr(src).unwrap_or_else(|e| panic!("{src:?}: {e}"));
    }
}

#[test]
fn errors_carry_line_numbers() {
    let err = compile("x = 1\ny = 2\nz = } bad").unwrap_err();
    assert_eq!(err.line(), Some(3));
    let script = compile("a = 1\nb = nothere.field").unwrap();
    let err = Interpreter::new().run(&script).unwrap_err();
    assert_eq!(err.line(), Some(2));
}

#[test]
fn deep_nesting_within_budget() {
    // 40 nested ifs — legal, deep, and cheap.
    let mut src = String::from("x = 0\n");
    for _ in 0..40 {
        src.push_str("if x >= 0 then\n");
    }
    src.push_str("x = 1\n");
    for _ in 0..40 {
        src.push_str("end\n");
    }
    let i = run(&src);
    assert_eq!(num(&i, "x"), 1.0);
}

#[test]
fn step_budget_counts_across_hooks_independently() {
    // Each run resets the budget: 1000 runs of a small script never trip.
    let script = compile("t = 0 for i = 1, 20 do t = t + i end").unwrap();
    let mut interp = Interpreter::new().with_budget(mantle::policy::StepBudget(500));
    for _ in 0..1_000 {
        interp.run(&script).unwrap();
    }
    assert_eq!(interp.get_global("t").as_number(0).unwrap(), 210.0);
}

#[test]
fn unsupported_features_error_cleanly() {
    for src in [
        "function f() end",
        "for k, v in pairs(t) do end",
        "repeat x = 1 until x > 0",
        "t:method()",
    ] {
        let err = compile(src).unwrap_err();
        assert!(
            matches!(err, PolicyError::Unsupported { .. }),
            "{src:?} gave {err}"
        );
    }
}
