//! The daemon determinism pin: running an experiment through the live
//! **service** engine path (`Cluster::serve` with a simulated clock and
//! an idle command inbox — exactly what `mantled --scenario` does) must
//! be *byte-identical* to the batch harness (`run_experiment`) on the
//! same spec.
//!
//! Equivalence is by construction — the service pump only observes
//! (drains trace/completion streams) and never perturbs the scheduler
//! unless commands arrive — and this suite is the regression tripwire
//! for that claim. `format!("{report:?}")` comparison covers every
//! counter and every f64 bit-for-bit (Debug prints shortest-round-trip
//! floats).

use mantle::prelude::*;
use mantle_core::service::{run_service, scenario, SCENARIO_NAMES};
use mantle_daemon::wire::report_json;
use mantle_mds::{TraceEvent, TraceLevel};

/// Every named daemon scenario: service report == batch report, byte for
/// byte.
#[test]
fn every_scenario_is_byte_identical_to_batch() {
    for name in SCENARIO_NAMES {
        let spec = scenario(name).expect("listed scenario resolves");
        let batch = run_experiment(&spec);
        let (service, _) = run_service(&spec, None);
        assert_eq!(
            format!("{batch:?}"),
            format!("{service:?}"),
            "{name}: service path diverged from batch path"
        );
    }
}

/// Tracing through the service stream matches batch-mode tracing: the
/// concatenated live batches reproduce the batch-collected record
/// stream, record for record.
#[test]
fn service_trace_stream_matches_batch_trace() {
    let spec = scenario("greedyspill-shared").expect("scenario resolves");
    let (_r1, handle) = run_experiment_traced(&spec, TraceLevel::Decisions);
    let batch_records = handle.records().to_vec();
    let (_r2, live_records) = run_service(&spec, Some(TraceLevel::Decisions));
    assert_eq!(batch_records.len(), live_records.len(), "record counts");
    for (b, l) in batch_records.iter().zip(&live_records) {
        let (mut bl, mut ll) = (String::new(), String::new());
        b.write_json(&mut bl);
        l.write_json(&mut ll);
        assert_eq!(bl, ll, "trace records diverged");
    }
    assert!(
        live_records
            .iter()
            .any(|r| matches!(r.event, TraceEvent::RunEnd { .. })),
        "live stream carries the RunEnd trailer"
    );
}

/// The wire rendering of a report is deterministic too: same spec, same
/// JSON bytes (this is what `mantled` prints and `mantlectl report`
/// shows, so operators can diff runs).
#[test]
fn wire_report_is_deterministic() {
    let spec = scenario("adaptable-compile").expect("scenario resolves");
    let (a, _) = run_service(&spec, None);
    let (b, _) = run_service(&spec, None);
    assert_eq!(report_json(&a).to_string(), report_json(&b).to_string());
}

/// Repeated service runs are themselves deterministic (seeded engine, no
/// wall-clock leakage with `ClockMode::Sim`).
#[test]
fn service_runs_are_reproducible() {
    let spec = scenario("cephfs-separate").expect("scenario resolves");
    let (a, ta) = run_service(&spec, Some(TraceLevel::Decisions));
    let (b, tb) = run_service(&spec, Some(TraceLevel::Decisions));
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert_eq!(ta.len(), tb.len());
}
