//! README index drift guard: the "Runnable things" table in `README.md`
//! must list exactly the bin targets, examples, and workspace-root
//! integration tests that exist on disk. (This PR exists because the
//! table had silently lost the `elastic` bin and `elastic_equivalence`
//! test rows; now the build fails instead.)

use std::collections::BTreeSet;
use std::path::Path;

fn repo() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// File stems of every `*.rs` in `dir` (empty set if it doesn't exist).
fn stems(dir: &Path) -> BTreeSet<String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return BTreeSet::new();
    };
    entries
        .filter_map(|e| {
            let path = e.ok()?.path();
            (path.extension()?.to_str()? == "rs")
                .then(|| path.file_stem()?.to_str().map(str::to_string))?
        })
        .collect()
}

/// Bin targets on disk: the root package's `src/bin/*.rs` (auto-bins)
/// plus every workspace crate's `src/bin/*.rs` (all of which are
/// declared as `[[bin]]`s with matching names).
fn bins_on_disk() -> BTreeSet<String> {
    let mut bins = stems(&repo().join("src/bin"));
    for crate_dir in std::fs::read_dir(repo().join("crates")).expect("crates/ exists") {
        let crate_dir = crate_dir.expect("readable entry").path();
        bins.extend(stems(&crate_dir.join("src/bin")));
    }
    bins
}

/// Backticked names from the README "Runnable things" rows of one kind.
fn readme_index(kind: &str) -> BTreeSet<String> {
    let readme = std::fs::read_to_string(repo().join("README.md")).expect("README.md is readable");
    let table = readme
        .split("Runnable things:")
        .nth(1)
        .expect("README has a `Runnable things:` table");
    let mut names = BTreeSet::new();
    for line in table.lines() {
        // Rows look like `| bin | `name` | ... |` — stop at the first
        // non-table paragraph after the table started.
        let mut cells = line.split('|').map(str::trim);
        let Some(row_kind) = cells.nth(1) else {
            if names.is_empty() {
                continue; // still in the blank lines before the table
            }
            break;
        };
        if row_kind != kind {
            continue;
        }
        let name_cell = cells.next().unwrap_or("");
        for piece in name_cell.split(',') {
            let piece = piece.trim();
            if let Some(name) = piece.strip_prefix('`').and_then(|p| p.strip_suffix('`')) {
                names.insert(name.to_string());
            }
        }
    }
    names
}

fn assert_in_sync(kind: &str, on_disk: BTreeSet<String>) {
    let listed = readme_index(kind);
    let missing: Vec<_> = on_disk.difference(&listed).collect();
    let stale: Vec<_> = listed.difference(&on_disk).collect();
    assert!(
        missing.is_empty() && stale.is_empty(),
        "README `Runnable things` {kind} rows drifted from disk:\n  \
         on disk but not listed: {missing:?}\n  \
         listed but not on disk: {stale:?}"
    );
}

#[test]
fn readme_lists_every_bin() {
    assert_in_sync("bin", bins_on_disk());
}

#[test]
fn readme_lists_every_example() {
    assert_in_sync("examples", stems(&repo().join("examples")));
}

#[test]
fn readme_lists_every_workspace_test() {
    assert_in_sync("tests", stems(&repo().join("tests")));
}
