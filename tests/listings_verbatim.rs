//! The paper's listings, end to end: every published balancer script
//! compiles in the policy language, passes the validator, and drives the
//! documented decisions (Table 1 equivalence, Listing 1/2/3/4 behaviour).

use mantle::mds::balancer::{BalanceContext, Balancer, CephfsBalancer, MantleBalancer};
use mantle::mds::metrics::Heartbeat;
use mantle::mds::DirfragSelector;
use mantle::prelude::*;

fn hb(auth: f64, cpu: f64) -> Heartbeat {
    Heartbeat {
        auth_metaload: auth,
        all_metaload: auth,
        cpu,
        mem: 20.0,
        queue_len: 0.0,
        req_rate: 0.0,
        cache_hits: 0.0,
        cache_misses: 0.0,
        taken_at: SimTime::ZERO,
    }
}

fn ctx(whoami: usize, loads: &[(f64, f64)]) -> BalanceContext {
    BalanceContext {
        whoami,
        heartbeats: loads.iter().map(|&(l, c)| hb(l, c)).collect(),
    }
}

#[test]
fn all_paper_policies_validate() {
    let v = PolicyValidator::new();
    v.validate(&policies::greedy_spill().unwrap()).unwrap();
    v.validate(&policies::greedy_spill_even().unwrap()).unwrap();
    v.validate(&policies::fill_and_spill(0.25).unwrap())
        .unwrap();
    v.validate(&policies::fill_and_spill(0.10).unwrap())
        .unwrap();
    v.validate(&policies::adaptable().unwrap()).unwrap();
    v.validate(&policies::adaptable_conservative().unwrap())
        .unwrap();
    v.validate(&policies::adaptable_too_aggressive().unwrap())
        .unwrap();
    v.validate(&policies::cephfs_original().unwrap()).unwrap();
}

#[test]
fn listing1_greedy_spill_cascades() {
    let mut b = MantleBalancer::new("greedy", policies::greedy_spill().unwrap()).unwrap();
    // MDS0 loaded, MDS1 idle → spill half of allmetaload to MDS1.
    let plan = b
        .decide(&ctx(0, &[(60.0, 0.0), (0.0, 0.0), (0.0, 0.0), (0.0, 0.0)]))
        .unwrap()
        .expect("spills");
    assert_eq!(plan.targets[1], 30.0);
    assert_eq!(plan.selectors.as_ref(), [DirfragSelector::Half.into()]);
    // The cascade: MDS1 loaded, MDS2 idle → MDS1 spills too.
    let plan2 = b
        .decide(&ctx(1, &[(30.0, 0.0), (30.0, 0.0), (0.0, 0.0), (0.0, 0.0)]))
        .unwrap()
        .expect("cascade continues");
    assert!(plan2.targets[2] > 0.0);
    // The last MDS has nowhere to go.
    assert!(b
        .decide(&ctx(3, &[(30.0, 0.0), (15.0, 0.0), (8.0, 0.0), (7.0, 0.0)]))
        .unwrap()
        .is_none());
}

#[test]
fn listing2_even_spill_partitions_the_cluster() {
    let mut b = MantleBalancer::new("even", policies::greedy_spill_even().unwrap()).unwrap();
    // whoami=0 (1-based 1) on a 4-MDS cluster: midpoint target is MDS 3
    // (1-based), i.e. index 2.
    let plan = b
        .decide(&ctx(0, &[(80.0, 0.0), (0.0, 0.0), (0.0, 0.0), (0.0, 0.0)]))
        .unwrap()
        .expect("spills to the far half");
    assert!(plan.targets[2] > 0.0, "targets {:?}", plan.targets);
    assert_eq!(plan.targets[1], 0.0);
    // When the midpoint is already loaded, it walks down to a free MDS.
    let plan2 = b
        .decide(&ctx(0, &[(40.0, 0.0), (0.0, 0.0), (40.0, 0.0), (0.0, 0.0)]))
        .unwrap()
        .expect("walks down");
    assert!(plan2.targets[1] > 0.0, "targets {:?}", plan2.targets);
}

#[test]
fn listing3_fill_and_spill_waits_three_ticks() {
    let mut b = MantleBalancer::new("fs", policies::fill_and_spill(0.25).unwrap()).unwrap();
    let busy = ctx(0, &[(100.0, 95.0), (0.0, 2.0)]);
    // Cold start fires, then the 3-tick patience counter gates.
    assert!(b.decide(&busy).unwrap().is_some(), "tick 1 (cold) fires");
    assert!(b.decide(&busy).unwrap().is_none(), "tick 2 waits");
    assert!(b.decide(&busy).unwrap().is_none(), "tick 3 waits");
    let plan = b.decide(&busy).unwrap().expect("tick 4 fires again");
    assert!((plan.targets[1] - 25.0).abs() < 1e-9, "spills load/4");
    // Dropping below the CPU threshold re-arms and never fires.
    let idle = ctx(0, &[(100.0, 30.0), (0.0, 2.0)]);
    assert!(b.decide(&idle).unwrap().is_none());
    assert!(b.decide(&idle).unwrap().is_none());
}

#[test]
fn listing4_adaptable_requires_majority() {
    let mut b = MantleBalancer::new("adaptable", policies::adaptable().unwrap()).unwrap();
    // Majority holder exports toward the average.
    let plan = b
        .decide(&ctx(0, &[(70.0, 0.0), (20.0, 0.0), (10.0, 0.0)]))
        .unwrap()
        .expect("majority exports");
    let avg = 100.0 / 3.0;
    assert!((plan.targets[1] - (avg - 20.0)).abs() < 1e-9);
    assert!((plan.targets[2] - (avg - 10.0)).abs() < 1e-9);
    // No single majority → nobody moves (the "only one exporter" rule).
    assert!(b
        .decide(&ctx(0, &[(40.0, 0.0), (35.0, 0.0), (25.0, 0.0)]))
        .unwrap()
        .is_none());
    // The most loaded MDS without majority stays put too.
    assert!(b
        .decide(&ctx(1, &[(40.0, 0.0), (45.0, 0.0), (15.0, 0.0)]))
        .unwrap()
        .is_none());
}

#[test]
fn table1_script_equals_hardcoded_on_a_grid() {
    let mut hard = CephfsBalancer::default();
    let mut script =
        MantleBalancer::new("cephfs-script", policies::cephfs_original().unwrap()).unwrap();
    for n in [2usize, 3, 4, 7] {
        for hot in 0..n {
            for whoami in 0..n {
                let heartbeats: std::sync::Arc<[Heartbeat]> = (0..n)
                    .map(|i| {
                        let load = if i == hot { 120.0 } else { 12.0 + i as f64 };
                        Heartbeat {
                            auth_metaload: load,
                            all_metaload: load * 1.3,
                            cpu: 40.0,
                            mem: 25.0,
                            queue_len: (load / 30.0).floor(),
                            req_rate: load * 1.7,
                            cache_hits: 0.0,
                            cache_misses: 0.0,
                            taken_at: SimTime::ZERO,
                        }
                    })
                    .collect();
                let c = BalanceContext { whoami, heartbeats };
                let a = hard.decide(&c).unwrap();
                let b = script.decide(&c).unwrap();
                match (a, b) {
                    (None, None) => {}
                    (Some(pa), Some(pb)) => {
                        for (x, y) in pa.targets.iter().zip(&pb.targets) {
                            assert!(
                                (x - y).abs() < 1e-6,
                                "targets diverge at n={n} hot={hot} whoami={whoami}: \
                                 {:?} vs {:?}",
                                pa.targets,
                                pb.targets
                            );
                        }
                    }
                    (a, b) => panic!(
                        "when-decision diverges at n={n} hot={hot} whoami={whoami}: \
                         hard={:?} script={:?}",
                        a.is_some(),
                        b.is_some()
                    ),
                }
            }
        }
    }
}

#[test]
fn fill_and_spill_10_vs_25_matches_section_4_2() {
    // §4.2: "spilling 10% has a longer runtime … spilling 25% of the load
    // has the best performance."
    // Same shape as the Fig. 8 quick configuration (the effect needs
    // enough balancer ticks to show).
    let workload = WorkloadSpec::CreateShared {
        clients: 4,
        files: 25_000,
    };
    let cfg = ClusterConfig {
        num_mds: 4,
        heartbeat_interval: SimTime::from_secs(2),
        seed: 7,
        ..Default::default()
    };
    let r10 = run_experiment(&Experiment::new(
        cfg.clone(),
        workload.clone(),
        BalancerSpec::mantle("fs10", policies::fill_and_spill(0.10).unwrap()),
    ));
    let r25 = run_experiment(&Experiment::new(
        cfg,
        workload,
        BalancerSpec::mantle("fs25", policies::fill_and_spill(0.25).unwrap()),
    ));
    assert!(
        r25.makespan <= r10.makespan,
        "25% spill must not be slower: {} vs {}",
        r25.makespan,
        r10.makespan
    );
}
