//! Trace-driven invariant suite: every built-in balancer crossed with
//! every fault scenario, replayed through the checker at full trace depth,
//! plus proof that the checker actually catches corrupted streams and
//! that a disabled sink costs nothing.

use mantle::core::degraded::{base_experiment, scenario_plans};
use mantle::core::repro::ReproOpts;
use mantle::mds::{check_trace, TraceEvent};
use mantle::prelude::*;

/// The built-in balancers from the paper (Listing 1–4 + Table 1), as
/// specs for the degraded base experiment.
fn balancers() -> Vec<(&'static str, BalancerSpec)> {
    vec![
        (
            "greedy-spill",
            BalancerSpec::mantle("greedy-spill", policies::greedy_spill().unwrap()),
        ),
        (
            "fill-and-spill",
            BalancerSpec::mantle("fill-and-spill", policies::fill_and_spill(0.3).unwrap()),
        ),
        (
            "cephfs-adaptable",
            BalancerSpec::mantle("adaptable", policies::adaptable().unwrap()),
        ),
    ]
}

/// Trace the degraded base experiment with `balancer` swapped in and the
/// named fault plan applied.
fn traced_run(balancer: &BalancerSpec, scenario: &str) -> (RunReport, TraceBuffer) {
    let plan = scenario_plans(ReproOpts::QUICK)
        .into_iter()
        .find(|(n, _)| *n == scenario)
        .expect("known scenario")
        .1;
    let mut spec = base_experiment(ReproOpts::QUICK, 42);
    spec.balancer = balancer.clone();
    spec.config.faults = plan;
    run_experiment_traced(&spec, TraceLevel::Full)
}

#[test]
fn every_balancer_and_fault_plan_upholds_invariants() {
    for (bname, balancer) in balancers() {
        for (scenario, _) in scenario_plans(ReproOpts::QUICK) {
            let (report, trace) = traced_run(&balancer, scenario);
            let violations = check_trace(trace.records());
            assert!(
                violations.is_empty(),
                "{bname} × {scenario}: {} violation(s), first: {}",
                violations.len(),
                violations[0]
            );
            assert!(report.total_ops() > 0.0, "{bname} × {scenario} did work");
            // The stream must be non-trivial: a run with no events would
            // pass every invariant vacuously.
            assert!(
                trace.records().len() > 100,
                "{bname} × {scenario}: only {} records",
                trace.records().len()
            );
        }
    }
}

#[test]
fn traces_cover_the_interesting_events() {
    // The crash scenario under greedy-spill must exercise the full event
    // vocabulary the checker reasons about.
    let (_, trace) = traced_run(&balancers()[0].1, "crash+restart");
    let names: std::collections::HashSet<&'static str> =
        trace.records().iter().map(|r| r.event.name()).collect();
    for expect in [
        "run_start",
        "dir_added",
        "auth_snapshot",
        "heartbeat_tick",
        "migration_freeze",
        "migration_journal",
        "migration_commit",
        "migration_unfreeze",
        "session_flush",
        "request_issued",
        "served",
        "completed",
        "mds_crash",
        "mds_restart",
        "request_timeout",
        "request_retry",
        "run_end",
    ] {
        assert!(names.contains(expect), "crash trace lacks {expect}");
    }
}

#[test]
fn poisoned_balancer_trace_shows_fallback_chain() {
    let (report, trace) = traced_run(&balancers()[0].1, "poisoned-balancer");
    assert!(report.balancer_fallbacks > 0, "poison forced a fallback");
    let errors = trace
        .records()
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::PolicyError { .. }))
        .count();
    let fallbacks = trace
        .records()
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::BalancerFallback { .. }))
        .count();
    assert!(errors >= 3, "fallback takes K consecutive errors");
    assert_eq!(fallbacks as u64, report.balancer_fallbacks);
}

// ---- corruption detection: a checker that can't fail proves nothing ----

#[test]
fn checker_detects_mutated_migration_inodes() {
    let (_, mut trace) = traced_run(&balancers()[0].1, "healthy");
    let rec = trace
        .records_mut()
        .iter_mut()
        .find(|r| matches!(r.event, TraceEvent::MigrationCommit { .. }))
        .expect("healthy greedy-spill run migrates");
    let TraceEvent::MigrationCommit { inodes, .. } = &mut rec.event else {
        unreachable!();
    };
    *inodes += 7;
    let v = check_trace(trace.records());
    assert!(
        v.iter().any(|v| v.rule == "inode-conservation"),
        "inflated commit must be caught: {v:?}"
    );
}

#[test]
fn checker_detects_misrouted_serve() {
    let (_, mut trace) = traced_run(&balancers()[0].1, "healthy");
    let num_mds = 3;
    let rec = trace
        .records_mut()
        .iter_mut()
        .find(|r| matches!(r.event, TraceEvent::Served { .. }))
        .expect("requests were served");
    let TraceEvent::Served { mds, .. } = &mut rec.event else {
        unreachable!();
    };
    *mds = (*mds + 1) % num_mds;
    let v = check_trace(trace.records());
    assert!(
        v.iter().any(|v| v.rule == "authority"),
        "misrouted serve must be caught: {v:?}"
    );
}

#[test]
fn checker_detects_epoch_regression() {
    let (_, mut trace) = traced_run(&balancers()[0].1, "healthy");
    let rec = trace
        .records_mut()
        .iter_mut()
        .rev()
        .find(|r| matches!(r.event, TraceEvent::HeartbeatTick { .. }))
        .expect("run spans heartbeats");
    rec.epoch -= 1;
    let v = check_trace(trace.records());
    assert!(
        v.iter().any(|v| v.rule == "epoch-monotonicity"),
        "regressed tick epoch must be caught: {v:?}"
    );
}

#[test]
fn checker_detects_serve_inside_freeze() {
    let (_, mut trace) = traced_run(&balancers()[0].1, "healthy");
    // Fabricate a serve against the frozen root in the middle of the
    // freeze window of the first subtree migration.
    let (at, root, from) = trace
        .records()
        .iter()
        .find_map(|r| match r.event {
            TraceEvent::MigrationFreeze {
                from,
                root,
                frag: None,
                until,
                ..
            } => Some((
                mantle::sim::SimTime::from_micros((r.at.as_micros() + until.as_micros()) / 2),
                root,
                from,
            )),
            _ => None,
        })
        .expect("healthy greedy-spill run migrates a subtree");
    let idx = trace
        .records()
        .iter()
        .position(|r| r.at >= at)
        .expect("freeze midpoint is inside the run");
    let epoch = trace.records()[idx].epoch;
    trace.records_mut().insert(
        idx,
        TraceRecord {
            at,
            epoch,
            event: TraceEvent::Served {
                mds: from,
                client: 0,
                dir: root,
                frag: 0,
                kind: OpKind::Stat,
                seq: 0,
            },
        },
    );
    let v = check_trace(trace.records());
    assert!(
        v.iter().any(|v| v.rule == "freeze-discipline"),
        "serve inside a freeze window must be caught: {v:?}"
    );
}

#[test]
fn checker_detects_dropped_unfreeze() {
    let (_, mut trace) = traced_run(&balancers()[0].1, "healthy");
    let idx = trace
        .records()
        .iter()
        .position(|r| matches!(r.event, TraceEvent::MigrationUnfreeze { .. }))
        .expect("migrations unfreeze");
    trace.records_mut().remove(idx);
    let v = check_trace(trace.records());
    assert!(
        v.iter().any(|v| v.rule == "migration-phases"),
        "missing unfreeze must be caught: {v:?}"
    );
}

// ---- overhead guard: tracing must be free when off, inert when on ----

#[test]
fn disabled_sink_keeps_reports_byte_identical() {
    let spec = base_experiment(ReproOpts::QUICK, 42);
    let plain = format!("{:?}", run_experiment(&spec));
    let (traced, trace) = run_experiment_traced(&spec, TraceLevel::Full);
    assert_eq!(
        plain,
        format!("{traced:?}"),
        "attaching a sink must not change the simulation"
    );
    assert!(trace.records().len() > 100, "the sink did record");
    // Decisions level must also be inert and strictly smaller.
    let (decided, thin) = run_experiment_traced(&spec, TraceLevel::Decisions);
    assert_eq!(plain, format!("{decided:?}"));
    assert!(thin.records().len() < trace.records().len());
}

#[test]
fn timeline_tracks_every_heartbeat() {
    let (_, trace) = traced_run(&balancers()[0].1, "healthy");
    let ticks = trace
        .records()
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::HeartbeatTick { .. }))
        .count();
    assert!(ticks > 0, "run spans heartbeats");
    assert_eq!(trace.timeline.per_mds.len(), 3, "one series triple per MDS");
    for s in &trace.timeline.per_mds {
        // The series zero-fills from t = 0, so the first tick (one full
        // interval in) occupies bucket index 1: at most ticks + 1 buckets.
        let buckets = s.load.values().len();
        assert!(
            buckets > 0 && buckets <= ticks + 1,
            "at most one bucket per sampled tick: {buckets} vs {ticks}"
        );
    }
    let jsonl = trace.timeline.to_jsonl();
    assert_eq!(jsonl.lines().count(), 3, "one JSONL line per MDS");
}
