//! Every fenced code block in POLICY.md, PROTOCOL.md, and OPERATIONS.md
//! must parse and run.
//!
//! The reference documents promise that their examples are live: each
//! fence's info string names the machinery it belongs to. POLICY.md
//! fences name a hook environment (`lua`, `lua metaload`, `lua mdsload`,
//! `lua when`, `lua selector`, `lua howmany`) or a deliberately-invalid
//! example the validator must refuse (`lua reject`); those are built
//! into policy sets and pushed through [`PolicyValidator`] — the same
//! static-global check plus synthetic-cluster dry run that gates real
//! injection. PROTOCOL.md/OPERATIONS.md fences tagged `json frame` are
//! round-tripped through the real daemon codec
//! (`mantle_daemon::{json, wire}`), and `json policy-bundle` documents
//! go through the real hot-swap pipeline (`policy_source_from_json` →
//! `prepare`), with `reject` variants required to fail it. If the
//! language, the wire format, or a document drifts, this fails.

use mantle::mds::selector::ScriptedSelector;
use mantle::policy::env::{BalancerInputs, FragMetrics, MantleRuntime, MdsMetrics, PolicySet};
use mantle::policy::{prepare, HookEngine, PolicyValidator};
use mantle_daemon::engine::policy_source_from_json;
use mantle_daemon::json::{parse as parse_json, Json};
use mantle_daemon::wire::{decode_frame, encode_frame, op_kind, PROTO_VERSION};

const POLICY_MD: &str = include_str!("../POLICY.md");
const PROTOCOL_MD: &str = include_str!("../PROTOCOL.md");
const OPERATIONS_MD: &str = include_str!("../OPERATIONS.md");

/// Hooks that surround a snippet so the rest of the policy set is
/// trivially valid and the snippet under test is the only variable.
const METALOAD: &str = "IWR + IRD";
const MDSLOAD: &str = "MDSs[i][\"all\"]";
const NOOP_DECISION: &str = "x = 1";
const NOOP_WHERE: &str = "targets[1] = 0";

#[derive(Debug)]
struct Fence {
    /// The fence info string, e.g. `lua metaload`.
    tag: String,
    /// Snippet source.
    body: String,
    /// 1-based line of the opening fence, for failure messages.
    line: usize,
}

/// Extract every fenced code block, failing on unterminated fences.
fn fences_in(doc: &str, md: &str) -> Vec<Fence> {
    let mut out = Vec::new();
    let mut open: Option<(String, usize, Vec<&str>)> = None;
    for (idx, raw) in md.lines().enumerate() {
        let line = raw.trim_end();
        match &mut open {
            None => {
                if let Some(tag) = line.strip_prefix("```") {
                    open = Some((tag.trim().to_string(), idx + 1, Vec::new()));
                }
            }
            Some((tag, start, body)) => {
                if line == "```" {
                    out.push(Fence {
                        tag: std::mem::take(tag),
                        body: body.join("\n"),
                        line: *start,
                    });
                    open = None;
                } else {
                    body.push(raw);
                }
            }
        }
    }
    assert!(open.is_none(), "unterminated fence in {doc}");
    out
}

/// POLICY.md's fences (the original harness surface).
fn fences(md: &str) -> Vec<Fence> {
    fences_in("POLICY.md", md)
}

/// Belt and braces for one document: the extraction must have seen
/// every fence delimiter (an odd count would already have panicked).
fn assert_all_fences_seen(doc: &str, md: &str, extracted: usize) {
    let delimiters = md
        .lines()
        .filter(|l| l.trim_end().starts_with("```"))
        .count();
    assert_eq!(
        delimiters,
        extracted * 2,
        "{doc}: extraction missed a fence"
    );
}

/// Build the policy set a snippet belongs in, given its tag.
fn build(tag: &str, body: &str) -> Result<PolicySet, mantle::policy::PolicyError> {
    match tag {
        "lua" | "lua reject" => PolicySet::from_combined(METALOAD, MDSLOAD, body, &["half"]),
        "lua metaload" => PolicySet::from_combined(body, MDSLOAD, NOOP_DECISION, &["half"]),
        "lua mdsload" => PolicySet::from_combined(METALOAD, body, NOOP_DECISION, &["half"]),
        "lua when" => PolicySet::from_hooks(METALOAD, MDSLOAD, body, NOOP_WHERE, &["half"]),
        "lua howmany" => PolicySet::from_combined(METALOAD, MDSLOAD, NOOP_DECISION, &["half"])?
            .with_howmany(body),
        other => panic!("unknown fence tag `{other}` — document it and teach this harness"),
    }
}

#[test]
fn every_policy_md_fence_is_checked() {
    let all = fences(POLICY_MD);

    assert_all_fences_seen("POLICY.md", POLICY_MD, all.len());
    assert!(
        all.len() >= 15,
        "POLICY.md shrank to {} examples — the reference should stay comprehensive",
        all.len()
    );

    let validator = PolicyValidator::new();
    let mut seen_reject = 0;
    let mut seen_selector = 0;
    for fence in &all {
        let at = format!("POLICY.md:{} (`{}`)", fence.line, fence.tag);
        match fence.tag.as_str() {
            "lua selector" => {
                seen_selector += 1;
                let sel = ScriptedSelector::compile("doc-example", &fence.body)
                    .unwrap_or_else(|e| panic!("{at} does not compile: {e}"));
                let chosen = sel
                    .select(&[10.0, 20.0, 30.0, 40.0, 50.0], 35.0)
                    .unwrap_or_else(|e| panic!("{at} failed to select: {e}"));
                assert!(!chosen.is_empty(), "{at} selected nothing");
            }
            "lua reject" => {
                seen_reject += 1;
                // Reject examples must still *parse* — they demonstrate
                // validation, not syntax errors…
                let policy = build(&fence.tag, &fence.body).unwrap_or_else(|e| panic!("{at}: {e}"));
                // …and the validator must refuse them.
                assert!(
                    validator.validate(&policy).is_err(),
                    "{at} is documented as rejected but validated cleanly"
                );
            }
            _ => {
                let policy = build(&fence.tag, &fence.body).unwrap_or_else(|e| panic!("{at}: {e}"));
                validator
                    .validate(&policy)
                    .unwrap_or_else(|e| panic!("{at} failed validation: {e}"));
            }
        }
    }
    assert!(
        seen_reject >= 2,
        "the safety section lost its counterexamples"
    );
    assert!(
        seen_selector >= 1,
        "the howmuch section lost its scripted example"
    );
    assert!(
        all.iter().filter(|f| f.tag == "lua howmany").count() >= 2,
        "the howmany section lost its examples"
    );
}

/// Every runnable POLICY.md snippet produces bit-identical results on
/// all three hook engines (tree walker, slot VM, bytecode VM): same
/// metaload (`f64::to_bits`), same decision, same targets — or the same
/// error. This is the documentation-level arm of the engine-equivalence
/// guarantee POLICY.md states.
#[test]
fn every_policy_md_snippet_agrees_across_engines() {
    let inputs = BalancerInputs {
        whoami: 0,
        mds: vec![
            MdsMetrics {
                auth: 90.0,
                all: 95.0,
                cpu: 85.0,
                mem: 40.0,
                q: 12.0,
                req: 700.0,
                cache_hits: 1400.0,
                cache_misses: 210.0,
            },
            MdsMetrics {
                auth: 5.0,
                all: 6.5,
                cpu: 10.0,
                mem: 20.0,
                q: 0.0,
                req: 50.0,
                cache_hits: 90.0,
                cache_misses: 12.0,
            },
            MdsMetrics {
                auth: 35.0,
                all: 35.0,
                cpu: 55.0,
                mem: 30.0,
                q: 3.0,
                req: 300.0,
                cache_hits: 550.0,
                cache_misses: 75.0,
            },
        ],
        auth_metaload: 90.0,
        all_metaload: 95.0,
    };
    let frag = FragMetrics {
        ird: 0.137,
        iwr: 12.75,
        readdir: 1.0 / 3.0,
        fetch: 9e3,
        store: 0.001,
    };

    let mut checked = 0;
    for fence in fences(POLICY_MD) {
        if matches!(fence.tag.as_str(), "lua selector" | "lua reject") {
            continue;
        }
        let at = format!("POLICY.md:{} (`{}`)", fence.line, fence.tag);
        let policy = build(&fence.tag, &fence.body).unwrap_or_else(|e| panic!("{at}: {e}"));
        let runs: Vec<_> = [HookEngine::Tree, HookEngine::Slot, HookEngine::Bytecode]
            .into_iter()
            .map(|e| {
                let rt = MantleRuntime::new(policy.clone()).with_engine(e);
                (
                    e,
                    rt.eval_metaload(0, &frag),
                    rt.decide(&inputs),
                    rt.eval_howmany(&inputs, 2, 1, 3),
                )
            })
            .collect();
        for w in runs.windows(2) {
            let (ea, ml_a, d_a, hm_a) = &w[0];
            let (eb, ml_b, d_b, hm_b) = &w[1];
            match (hm_a, hm_b) {
                (Ok(x), Ok(y)) => assert_eq!(
                    x.map(f64::to_bits),
                    y.map(f64::to_bits),
                    "{at}: howmany diverged {ea:?}={x:?} vs {eb:?}={y:?}"
                ),
                (Err(x), Err(y)) => assert_eq!(x, y, "{at}: howmany errors diverged"),
                _ => panic!("{at}: {ea:?} and {eb:?} disagree on howmany erroring"),
            }
            match (ml_a, ml_b) {
                (Ok(x), Ok(y)) => assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{at}: metaload diverged {ea:?}={x} vs {eb:?}={y}"
                ),
                (Err(x), Err(y)) => assert_eq!(x, y, "{at}: metaload errors diverged"),
                _ => panic!("{at}: {ea:?} and {eb:?} disagree on metaload erroring"),
            }
            match (d_a, d_b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x, y, "{at}: decision diverged between {ea:?} and {eb:?}");
                    for (tx, ty) in x.targets.iter().zip(&y.targets) {
                        assert_eq!(tx.to_bits(), ty.to_bits(), "{at}: targets diverged");
                    }
                }
                (Err(x), Err(y)) => assert_eq!(x, y, "{at}: decision errors diverged"),
                _ => panic!("{at}: {ea:?} and {eb:?} disagree on decide erroring"),
            }
        }
        checked += 1;
    }
    assert!(
        checked >= 10,
        "only {checked} snippets cross-checked — POLICY.md shrank?"
    );
}

/// The document's claims about specific outcomes, pinned: the worked
/// selector example really does choose every other unit.
#[test]
fn selector_example_behaves_as_documented() {
    let snippet = fences(POLICY_MD)
        .into_iter()
        .find(|f| f.tag == "lua selector")
        .expect("POLICY.md documents a scripted selector");
    let sel = ScriptedSelector::compile("every_other", &snippet.body).unwrap();
    let chosen = sel.select(&[10.0, 20.0, 30.0, 40.0, 50.0], 35.0).unwrap();
    assert_eq!(chosen, vec![0, 2], "indices 1,3 (1-based) → 0,2");
}

/// Check one daemon document's fences: `json frame` examples round-trip
/// through the real codec, `json policy-bundle` documents compile and
/// validate through the real hot-swap pipeline (and `reject` variants
/// fail it), prose fences (`text`, `console`) are prose. Returns
/// (frames, bundles, rejects) counts for the per-document floors.
fn check_daemon_doc(doc: &str, md: &str) -> (usize, usize, usize) {
    let all = fences_in(doc, md);
    assert_all_fences_seen(doc, md, all.len());
    let (mut frames, mut bundles, mut rejects) = (0, 0, 0);
    for fence in &all {
        let at = format!("{doc}:{} (`{}`)", fence.line, fence.tag);
        match fence.tag.as_str() {
            "json frame" => {
                frames += 1;
                let msg = parse_json(&fence.body)
                    .unwrap_or_else(|e| panic!("{at} is not valid JSON: {e}"));
                assert!(
                    matches!(msg, Json::Obj(_)),
                    "{at}: frames carry exactly one JSON object"
                );
                // Encode: 4-byte big-endian length prefix + canonical
                // payload, within the frame bound.
                let encoded = encode_frame(&msg);
                let payload = &encoded[4..];
                assert_eq!(
                    u32::from_be_bytes(encoded[..4].try_into().unwrap()) as usize,
                    payload.len(),
                    "{at}: length prefix"
                );
                // Decode from a live buffer: one message out, buffer
                // drained, and the round trip is canonical-identical.
                let mut buf = encoded.clone();
                let decoded = decode_frame(&mut buf)
                    .unwrap_or_else(|e| panic!("{at} failed to decode: {e}"))
                    .unwrap_or_else(|| panic!("{at}: decoder wanted more bytes"));
                assert!(buf.is_empty(), "{at}: decoder left residue");
                assert_eq!(decoded.to_string(), msg.to_string(), "{at}: round trip");
                // Schema spot-checks the codec cannot see.
                match msg.get_str("type") {
                    Some("op") => {
                        let name = msg.get_str("op").expect("op frames name an op");
                        assert!(op_kind(name).is_some(), "{at}: unknown op kind `{name}`");
                    }
                    Some("hello") | Some("welcome") => {
                        assert_eq!(msg.get_u64("proto"), Some(PROTO_VERSION), "{at}: proto");
                    }
                    Some("error") => {
                        assert!(msg.get_str("code").is_some(), "{at}: errors carry a code");
                    }
                    _ => {}
                }
            }
            "json policy-bundle" => {
                bundles += 1;
                let bundle = parse_json(&fence.body)
                    .unwrap_or_else(|e| panic!("{at} is not valid JSON: {e}"));
                let src = policy_source_from_json(&bundle)
                    .unwrap_or_else(|e| panic!("{at} is not a valid bundle: {e}"));
                prepare(&src).unwrap_or_else(|e| panic!("{at} failed the install pipeline: {e}"));
            }
            "json policy-bundle reject" => {
                rejects += 1;
                // Reject bundles are well-formed JSON with a valid shape —
                // they demonstrate *validation* refusing the hooks.
                let bundle = parse_json(&fence.body)
                    .unwrap_or_else(|e| panic!("{at} is not valid JSON: {e}"));
                let src = policy_source_from_json(&bundle)
                    .unwrap_or_else(|e| panic!("{at} is not a valid bundle: {e}"));
                assert!(
                    prepare(&src).is_err(),
                    "{at} is documented as rejected but installed cleanly"
                );
            }
            "text" | "console" => {}
            other => panic!("{at}: unknown fence tag `{other}` — teach this harness"),
        }
    }
    (frames, bundles, rejects)
}

/// Every framed-message example in PROTOCOL.md round-trips through the
/// real codec, and its policy bundle installs through the real pipeline.
#[test]
fn every_protocol_md_frame_round_trips() {
    let (frames, bundles, _) = check_daemon_doc("PROTOCOL.md", PROTOCOL_MD);
    assert!(
        frames >= 15,
        "PROTOCOL.md shrank to {frames} frame examples — every message shape should stay illustrated"
    );
    assert!(
        bundles >= 1,
        "PROTOCOL.md lost its standalone bundle example"
    );
    // The op-kind table must cover the whole wire vocabulary, spelled
    // exactly as the codec spells it.
    for name in [
        "create", "stat", "setattr", "readdir", "open", "unlink", "mkdir",
    ] {
        assert!(op_kind(name).is_some(), "`{name}` fell out of the codec");
        assert!(
            PROTOCOL_MD.contains(&format!("`{name}`")),
            "PROTOCOL.md op table lost `{name}`"
        );
    }
}

/// The runbook's bundle walkthrough is live too: the good bundle
/// installs, the broken one is refused before anything is published.
#[test]
fn operations_md_walkthrough_is_live() {
    let (_, bundles, rejects) = check_daemon_doc("OPERATIONS.md", OPERATIONS_MD);
    assert!(
        bundles >= 1,
        "OPERATIONS.md lost its swap walkthrough bundle"
    );
    assert!(
        rejects >= 1,
        "OPERATIONS.md lost its rejected-bundle example"
    );
}
