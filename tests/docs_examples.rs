//! Every fenced code block in POLICY.md must parse and run.
//!
//! The reference document promises that its examples are live: each
//! fence's info string names the hook environment it belongs to
//! (`lua`, `lua metaload`, `lua mdsload`, `lua when`, `lua selector`)
//! or marks it as a deliberately-invalid example the validator must
//! refuse (`lua reject`). This test extracts every fence, builds a
//! policy set around it, and pushes it through [`PolicyValidator`] —
//! the same static-global check plus synthetic-cluster dry run that
//! gates real injection. If the language, the Table 2 environment, or
//! the document drifts, this fails.

use mantle::mds::selector::ScriptedSelector;
use mantle::policy::env::PolicySet;
use mantle::policy::PolicyValidator;

const POLICY_MD: &str = include_str!("../POLICY.md");

/// Hooks that surround a snippet so the rest of the policy set is
/// trivially valid and the snippet under test is the only variable.
const METALOAD: &str = "IWR + IRD";
const MDSLOAD: &str = "MDSs[i][\"all\"]";
const NOOP_DECISION: &str = "x = 1";
const NOOP_WHERE: &str = "targets[1] = 0";

#[derive(Debug)]
struct Fence {
    /// The fence info string, e.g. `lua metaload`.
    tag: String,
    /// Snippet source.
    body: String,
    /// 1-based line of the opening fence, for failure messages.
    line: usize,
}

/// Extract every fenced code block, failing on unterminated fences.
fn fences(md: &str) -> Vec<Fence> {
    let mut out = Vec::new();
    let mut open: Option<(String, usize, Vec<&str>)> = None;
    for (idx, raw) in md.lines().enumerate() {
        let line = raw.trim_end();
        match &mut open {
            None => {
                if let Some(tag) = line.strip_prefix("```") {
                    open = Some((tag.trim().to_string(), idx + 1, Vec::new()));
                }
            }
            Some((tag, start, body)) => {
                if line == "```" {
                    out.push(Fence {
                        tag: std::mem::take(tag),
                        body: body.join("\n"),
                        line: *start,
                    });
                    open = None;
                } else {
                    body.push(raw);
                }
            }
        }
    }
    assert!(open.is_none(), "unterminated fence in POLICY.md");
    out
}

/// Build the policy set a snippet belongs in, given its tag.
fn build(tag: &str, body: &str) -> Result<PolicySet, mantle::policy::PolicyError> {
    match tag {
        "lua" | "lua reject" => PolicySet::from_combined(METALOAD, MDSLOAD, body, &["half"]),
        "lua metaload" => PolicySet::from_combined(body, MDSLOAD, NOOP_DECISION, &["half"]),
        "lua mdsload" => PolicySet::from_combined(METALOAD, body, NOOP_DECISION, &["half"]),
        "lua when" => PolicySet::from_hooks(METALOAD, MDSLOAD, body, NOOP_WHERE, &["half"]),
        other => panic!("unknown fence tag `{other}` — document it and teach this harness"),
    }
}

#[test]
fn every_policy_md_fence_is_checked() {
    let all = fences(POLICY_MD);

    // Belt and braces: the extraction itself must have seen every fence
    // delimiter in the file (an odd count would already have panicked).
    let delimiters = POLICY_MD
        .lines()
        .filter(|l| l.trim_end().starts_with("```"))
        .count();
    assert_eq!(delimiters, all.len() * 2, "extraction missed a fence");
    assert!(
        all.len() >= 15,
        "POLICY.md shrank to {} examples — the reference should stay comprehensive",
        all.len()
    );

    let validator = PolicyValidator::new();
    let mut seen_reject = 0;
    let mut seen_selector = 0;
    for fence in &all {
        let at = format!("POLICY.md:{} (`{}`)", fence.line, fence.tag);
        match fence.tag.as_str() {
            "lua selector" => {
                seen_selector += 1;
                let sel = ScriptedSelector::compile("doc-example", &fence.body)
                    .unwrap_or_else(|e| panic!("{at} does not compile: {e}"));
                let chosen = sel
                    .select(&[10.0, 20.0, 30.0, 40.0, 50.0], 35.0)
                    .unwrap_or_else(|e| panic!("{at} failed to select: {e}"));
                assert!(!chosen.is_empty(), "{at} selected nothing");
            }
            "lua reject" => {
                seen_reject += 1;
                // Reject examples must still *parse* — they demonstrate
                // validation, not syntax errors…
                let policy = build(&fence.tag, &fence.body).unwrap_or_else(|e| panic!("{at}: {e}"));
                // …and the validator must refuse them.
                assert!(
                    validator.validate(&policy).is_err(),
                    "{at} is documented as rejected but validated cleanly"
                );
            }
            _ => {
                let policy = build(&fence.tag, &fence.body).unwrap_or_else(|e| panic!("{at}: {e}"));
                validator
                    .validate(&policy)
                    .unwrap_or_else(|e| panic!("{at} failed validation: {e}"));
            }
        }
    }
    assert!(
        seen_reject >= 2,
        "the safety section lost its counterexamples"
    );
    assert!(
        seen_selector >= 1,
        "the howmuch section lost its scripted example"
    );
}

/// The document's claims about specific outcomes, pinned: the worked
/// selector example really does choose every other unit.
#[test]
fn selector_example_behaves_as_documented() {
    let snippet = fences(POLICY_MD)
        .into_iter()
        .find(|f| f.tag == "lua selector")
        .expect("POLICY.md documents a scripted selector");
    let sel = ScriptedSelector::compile("every_other", &snippet.body).unwrap();
    let chosen = sel.select(&[10.0, 20.0, 30.0, 40.0, 50.0], 35.0).unwrap();
    assert_eq!(chosen, vec![0, 2], "indices 1,3 (1-based) → 0,2");
}
