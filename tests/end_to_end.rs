//! Cross-crate integration tests: full experiments through the facade.

use mantle::prelude::*;

fn quick_cfg(num_mds: usize) -> ClusterConfig {
    ClusterConfig {
        num_mds,
        frag_split_threshold: 500,
        heartbeat_interval: SimTime::from_millis(500),
        ..Default::default()
    }
}

#[test]
fn ops_are_conserved_across_balancers() {
    // Whatever the balancer does — including thrashing — every client op
    // completes exactly once.
    let workload = WorkloadSpec::CreateShared {
        clients: 3,
        files: 2_000,
    };
    for balancer in [
        BalancerSpec::None,
        BalancerSpec::Cephfs,
        BalancerSpec::mantle("greedy", policies::greedy_spill().unwrap()),
        BalancerSpec::mantle("even", policies::greedy_spill_even().unwrap()),
        BalancerSpec::mantle("fs", policies::fill_and_spill(0.25).unwrap()),
        BalancerSpec::mantle("adaptable", policies::adaptable().unwrap()),
        BalancerSpec::mantle(
            "too-aggressive",
            policies::adaptable_too_aggressive().unwrap(),
        ),
    ] {
        let name = balancer.name().to_string();
        let r = run_experiment(&Experiment::new(quick_cfg(3), workload.clone(), balancer));
        assert_eq!(r.total_ops(), 6_000.0, "{name}: ops lost or duplicated");
        for c in &r.clients {
            assert_eq!(c.completed, 2_000, "{name}: client shortchanged");
        }
    }
}

#[test]
fn same_seed_same_everything() {
    let spec = Experiment::new(
        quick_cfg(3),
        WorkloadSpec::Compile {
            clients: 2,
            scale: 0.2,
        },
        BalancerSpec::mantle("adaptable", policies::adaptable().unwrap()),
    );
    let a = run_experiment(&spec);
    let b = run_experiment(&spec);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.total_migrations(), b.total_migrations());
    assert_eq!(a.total_forwards(), b.total_forwards());
    assert_eq!(a.sessions_flushed, b.sessions_flushed);
    for (x, y) in a.mds.iter().zip(&b.mds) {
        assert_eq!(x.throughput.values(), y.throughput.values());
    }
}

#[test]
fn parallel_seed_sweep_matches_sequential() {
    let spec = Experiment::new(
        quick_cfg(2),
        WorkloadSpec::CreateSeparate {
            clients: 2,
            files: 800,
        },
        BalancerSpec::Cephfs,
    );
    let seeds = [3u64, 5, 9];
    let parallel = run_seeds(&spec, &seeds);
    for (seed, par) in seeds.iter().zip(&parallel) {
        let seq = run_experiment(&spec.clone().with_seed(*seed));
        assert_eq!(
            par.makespan, seq.makespan,
            "thread scheduling must not leak into results"
        );
    }
}

#[test]
fn migrations_move_authority_and_traffic() {
    let spec = Experiment::new(
        quick_cfg(2),
        WorkloadSpec::CreateShared {
            clients: 4,
            files: 4_000,
        },
        BalancerSpec::mantle("greedy", policies::greedy_spill().unwrap()),
    );
    let r = run_experiment(&spec);
    assert!(r.total_migrations() > 0);
    assert!(
        r.mds[1].total_ops > 1_000.0,
        "spilled fragments must attract real traffic: {:?}",
        r.mds.iter().map(|m| m.total_ops).collect::<Vec<_>>()
    );
    assert!(r.sessions_flushed > 0, "migrations flush client sessions");
    assert!(r.mds[0].inodes_exported > 0, "exporter counts moved inodes");
}

#[test]
fn static_partition_beats_default_when_perfect() {
    // Hand-partitioning the namespace perfectly (one client dir per MDS)
    // at t=0 avoids all migration costs.
    let workload = WorkloadSpec::CreateSeparate {
        clients: 4,
        files: 4_000,
    };
    let mut spec = Experiment::new(quick_cfg(4), workload, BalancerSpec::None);
    for c in 0..4 {
        spec = spec.assign(&format!("/client{c}"), c);
    }
    let r = run_experiment(&spec);
    // All four MDSs served their client.
    for (i, m) in r.mds.iter().enumerate() {
        assert!(m.total_ops >= 4_000.0, "MDS{i} served {}", m.total_ops);
    }
    assert_eq!(r.total_migrations(), 0);
}

#[test]
fn policy_errors_do_not_crash_the_cluster() {
    // A policy that indexes out of range at runtime (MDSs[whoami+1] on the
    // last MDS) errors every tick; the cluster must absorb it and finish.
    let policy = mantle::policy::env::PolicySet::from_combined(
        "IWR",
        "MDSs[i][\"all\"]",
        "if MDSs[whoami+1][\"load\"] < .01 then targets[whoami+1] = 1 end",
        &["half"],
    )
    .unwrap();
    let spec = Experiment::new(
        quick_cfg(1),
        WorkloadSpec::CreateSeparate {
            clients: 1,
            files: 1_500,
        },
        BalancerSpec::mantle("broken", policy),
    );
    let r = run_experiment(&spec);
    assert_eq!(r.total_ops(), 1_500.0, "the job still completes");
}

#[test]
fn hash_placement_balances_dirs() {
    use mantle::mds::PlacementPolicy;
    let spec = Experiment::new(
        ClusterConfig {
            placement: PlacementPolicy::HashDirs,
            ..quick_cfg(4)
        },
        WorkloadSpec::CreateSeparate {
            clients: 8,
            files: 500,
        },
        BalancerSpec::None,
    );
    let r = run_experiment(&spec);
    let served = r.mds.iter().filter(|m| m.total_ops > 0.0).count();
    assert!(served >= 3, "hashing spreads dirs: {served} MDSs used");
}

#[test]
fn report_accounting_is_consistent() {
    let spec = Experiment::new(
        quick_cfg(3),
        WorkloadSpec::Compile {
            clients: 3,
            scale: 0.3,
        },
        BalancerSpec::Cephfs,
    );
    let r = run_experiment(&spec);
    // Hits + forwarded arrivals = total ops served.
    let hits = r.total_hits();
    let fwd_in: u64 = r.mds.iter().map(|m| m.forwards_in).sum();
    assert_eq!(hits + fwd_in, r.total_ops() as u64);
    // Forward hops out == forwarded arrivals (each forward lands once).
    assert_eq!(r.total_forwards(), fwd_in);
    // Cluster throughput series sums to total ops.
    assert!((r.cluster_throughput().total() - r.total_ops()).abs() < 1e-6);
    // Makespan is the max client finish time.
    let max_finish = r.clients.iter().map(|c| c.finished_at).max().unwrap();
    assert_eq!(r.makespan, max_finish);
}

#[test]
fn custom_scripted_selector_drives_partitioning() {
    // A policy that ships its own dirfrag selector (DESIGN.md §7): take
    // every other fragment until the target is reached.
    let policy = mantle::policy::env::PolicySet::from_combined(
        "IWR",
        "MDSs[i][\"all\"]",
        r#"
if whoami < #MDSs and MDSs[whoami]["load"] > .01 and MDSs[whoami+1]["load"] < .01 then
  targets[whoami+1] = allmetaload / 2
end
"#,
        &[],
    )
    .unwrap()
    .with_custom_selector(
        "every_other",
        r#"
chosen = {}
sent = 0
for i = 1, #loads, 2 do
  if sent >= target then break end
  chosen[#chosen + 1] = i
  sent = sent + loads[i]
end
return chosen
"#,
    )
    .unwrap();
    let spec = Experiment::new(
        quick_cfg(2),
        WorkloadSpec::CreateShared {
            clients: 4,
            files: 4_000,
        },
        BalancerSpec::mantle("every-other-spill", policy),
    );
    let r = run_experiment(&spec);
    assert!(r.total_migrations() > 0, "custom selector produced exports");
    assert!(r.mds[1].total_ops > 0.0);
    assert_eq!(r.total_ops(), 16_000.0);
}

#[test]
fn slot_and_tree_engines_produce_identical_reports() {
    // The slot-compiled hook engine is pinned byte-identical to the
    // tree-walking interpreter: same seed, same policy → the full
    // RunReport (every float, every time series) must match exactly.
    for (name, policy) in [
        ("greedy-spill", policies::greedy_spill().unwrap()),
        ("fill-and-spill", policies::fill_and_spill(0.25).unwrap()),
        ("adaptable", policies::adaptable().unwrap()),
    ] {
        let workload = WorkloadSpec::CreateShared {
            clients: 3,
            files: 1_500,
        };
        let fast = Experiment::new(
            quick_cfg(3),
            workload.clone(),
            BalancerSpec::mantle(name, policy.clone()),
        )
        .with_seed(42);
        let slow = Experiment::new(
            quick_cfg(3),
            workload,
            BalancerSpec::mantle_slow_path(name, policy),
        )
        .with_seed(42);
        let a = run_experiment(&fast);
        let b = run_experiment(&slow);
        // Debug formatting of f64 is shortest-roundtrip, so any numeric
        // divergence — however small — shows up here.
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{name}: fast and slow evaluation paths diverged"
        );
    }
}
