//! Differential and directed tests for the proxy-cache tier.
//!
//! The cache must be *behaviorally invisible* along two axes:
//!
//! * **off** (`CacheConfig::default()`), it is inert — reports are
//!   byte-identical to a configuration that never mentions the cache,
//!   and every cache counter stays zero;
//! * **on**, the simulation stays deterministic — byte-identical
//!   reports across all three hook engines and across the sharded
//!   execution modes, because every cache mutation (fill, LRU touch,
//!   invalidation) is deferred to the window barrier and applied in
//!   global `(time, key)` order.
//!
//! And it must be *coherent*: a storm that keeps migrating subtrees
//! while the cache serves hits must never serve a stale entry — the
//! invariant checker's `cache-coherence` rule replays every fill,
//! invalidation, and migration freeze against its own superset cache
//! model and flags any hit the model cannot justify.

use mantle::core::flashcrowd::{client_ops, storm_experiment};
use mantle::mds::{ExecMode, HookEngine};
use mantle::prelude::*;

/// A mixed flash crowd: half the ops hammer the hot directory
/// (read-class, cacheable), the rest write into per-group private dirs
/// hard enough that balancers keep migrating even with the cache on —
/// so one run exercises fills, hits, dentry invalidations, *and*
/// migration-driven region invalidations.
fn mixed_storm(cache: CacheConfig, balancer: BalancerSpec, mode: ExecMode) -> Experiment {
    let config = ClusterConfig {
        num_mds: 4,
        heartbeat_interval: SimTime::from_millis(400),
        frag_split_threshold: 300,
        ..Default::default()
    }
    .with_cache(cache)
    .with_exec_mode(mode);
    Experiment::new(
        config,
        WorkloadSpec::FlashCrowd {
            clients: 16,
            ops_per_client: 1_200,
            hot_fraction: 0.5,
            write_fraction: 0.8,
        },
        balancer,
    )
}

fn migrating_balancer(engine: HookEngine) -> BalancerSpec {
    BalancerSpec::mantle_with_engine(
        "greedy-spill-even",
        policies::greedy_spill_even().expect("preset policy validates"),
        engine,
    )
}

/// `CacheConfig::default()` is inert: a config that never mentions the
/// cache and one that sets the default explicitly produce byte-identical
/// reports with every cache counter at zero.
#[test]
fn default_cache_config_is_inert() {
    let implicit = Experiment::new(
        ClusterConfig {
            num_mds: 4,
            heartbeat_interval: SimTime::from_millis(400),
            ..Default::default()
        },
        WorkloadSpec::FlashCrowd {
            clients: 8,
            ops_per_client: 600,
            hot_fraction: 0.9,
            write_fraction: 0.2,
        },
        BalancerSpec::Cephfs,
    );
    let mut explicit = implicit.clone();
    explicit.config = explicit.config.clone().with_cache(CacheConfig::default());
    let a = run_experiment(&implicit);
    let b = run_experiment(&explicit);
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "explicit default cache config changed the run"
    );
    assert_eq!(a.cache_hits, 0, "disabled cache recorded hits");
    assert_eq!(a.cache_misses, 0, "disabled cache recorded misses");
    for m in &a.mds {
        assert_eq!((m.cache_hits, m.cache_misses), (0, 0));
    }
    // `cache_invalidations` may still be nonzero: migrations always drop
    // the per-client learned route maps, cache tier or not. What must
    // hold is that no *group* cache ever filled — zero hits and misses
    // above — and the byte-equality already proved the tier changed
    // nothing.
}

/// Cache off and cache on, the report is byte-identical across all
/// three hook engines × {Single, Sharded{2}, Sharded{4}} — the oracle
/// is the single-threaded bytecode run.
#[test]
fn reports_byte_identical_across_engines_and_exec_modes() {
    for (cache_label, cache) in [("off", CacheConfig::default()), ("on", CacheConfig::on())] {
        let oracle = run_experiment(&mixed_storm(
            cache.clone(),
            migrating_balancer(HookEngine::Bytecode),
            ExecMode::Single,
        ));
        let oracle_repr = format!("{oracle:?}");
        if cache_label == "on" {
            assert!(oracle.cache_hits > 0, "storm produced no cache hits");
        }
        for engine in [HookEngine::Bytecode, HookEngine::Slot, HookEngine::Tree] {
            for mode in [
                ExecMode::Single,
                ExecMode::Sharded { threads: 2 },
                ExecMode::Sharded { threads: 4 },
            ] {
                let run = run_experiment(&mixed_storm(
                    cache.clone(),
                    migrating_balancer(engine),
                    mode,
                ));
                assert_eq!(
                    oracle_repr,
                    format!("{run:?}"),
                    "cache {cache_label}: {engine:?}/{mode:?} diverged from the oracle"
                );
            }
        }
    }
}

/// The directed stale-read hunt: migrations keep landing mid-storm
/// while the cache serves hits, and the full trace replays through the
/// invariant checker — whose `cache-coherence` rule would flag any hit
/// served from a region a migration already invalidated.
#[test]
fn migrations_mid_storm_serve_no_stale_reads() {
    let spec = mixed_storm(
        CacheConfig::on(),
        migrating_balancer(HookEngine::Bytecode),
        ExecMode::Single,
    );
    let (report, trace) = run_experiment_traced(&spec, TraceLevel::Full);
    // The run must actually exercise the dangerous interleaving…
    assert!(
        report.total_migrations() > 0,
        "no migrations — the storm never tested migration coherence"
    );
    assert!(report.cache_hits > 0, "no hits — the cache never engaged");
    assert!(
        report.cache_invalidations > 0,
        "no invalidations — writes and migrations never touched the cache"
    );
    // …and come out clean: zero violations, including `cache-coherence`.
    assert_invariants(trace.records());
    // Tracing itself must not perturb the cache-on simulation.
    let plain = run_experiment(&spec);
    assert_eq!(
        format!("{plain:?}"),
        format!("{report:?}"),
        "tracing changed the cache-on run"
    );
}

/// Hits bypass the MDS tier but never the clients: with the cache on,
/// MDS-served ops plus absorbed hits account for every client
/// completion, and the completions themselves match the cache-off run.
#[test]
fn hits_are_absorbed_not_lost() {
    let off = run_experiment(&storm_experiment(
        8,
        800,
        BalancerSpec::None,
        CacheConfig::default(),
        11,
    ));
    let on = run_experiment(&storm_experiment(
        8,
        800,
        BalancerSpec::None,
        CacheConfig::on(),
        11,
    ));
    assert_eq!(client_ops(&off), client_ops(&on), "completions diverged");
    assert_eq!(
        on.total_ops() as u64 + on.cache_hits,
        client_ops(&on),
        "served + absorbed must cover every completion"
    );
    assert!(
        on.total_ops() < off.total_ops(),
        "cache-on should off-load the MDS tier"
    );
}
