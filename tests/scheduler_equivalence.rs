//! Differential end-to-end tests for the timing-wheel scheduler.
//!
//! The event-queue backend must be *behaviorally invisible*: for a fixed
//! seed the whole simulated cluster produces a byte-identical
//! [`RunReport`] whether events drain from the binary heap (the oracle)
//! or the hierarchical timing wheel — for every built-in balancer, and
//! under every degraded-cluster fault scenario.

use mantle::core::degraded;
use mantle::core::repro::ReproOpts;
use mantle::prelude::*;

fn quick_cfg(num_mds: usize, scheduler: SchedulerKind) -> ClusterConfig {
    ClusterConfig {
        num_mds,
        frag_split_threshold: 500,
        heartbeat_interval: SimTime::from_millis(400),
        ..Default::default()
    }
    .with_scheduler(scheduler)
}

fn run_on(
    scheduler: SchedulerKind,
    balancer: &BalancerSpec,
    faults: Option<&FaultPlan>,
) -> RunReport {
    let mut spec = Experiment::new(
        quick_cfg(3, scheduler),
        WorkloadSpec::CreateShared {
            clients: 4,
            files: 2_000,
        },
        balancer.clone(),
    );
    if let Some(plan) = faults {
        spec.config.faults = plan.clone();
    }
    run_experiment(&spec)
}

fn assert_backends_agree(balancer: &BalancerSpec, faults: Option<&FaultPlan>, label: &str) {
    let heap = run_on(SchedulerKind::Heap, balancer, faults);
    let wheel = run_on(SchedulerKind::Wheel, balancer, faults);
    assert_eq!(
        format!("{heap:?}"),
        format!("{wheel:?}"),
        "{label}: scheduler backends must yield byte-identical reports"
    );
}

/// Every built-in balancer spec (the paper's Table 1 / Listings 1–4 set,
/// plus the hard-coded CephFS balancer and the no-op baseline).
fn builtin_balancers() -> Vec<(&'static str, BalancerSpec)> {
    vec![
        ("none", BalancerSpec::None),
        ("cephfs-default", BalancerSpec::Cephfs),
        (
            "greedy-spill",
            BalancerSpec::mantle("greedy-spill", policies::greedy_spill().unwrap()),
        ),
        (
            "greedy-spill-even",
            BalancerSpec::mantle("greedy-spill-even", policies::greedy_spill_even().unwrap()),
        ),
        (
            "fill-and-spill",
            BalancerSpec::mantle("fill-and-spill", policies::fill_and_spill(0.5).unwrap()),
        ),
        (
            "adaptable",
            BalancerSpec::mantle("adaptable", policies::adaptable().unwrap()),
        ),
        (
            "adaptable-conservative",
            BalancerSpec::mantle(
                "adaptable-conservative",
                policies::adaptable_conservative().unwrap(),
            ),
        ),
        (
            "adaptable-too-aggressive",
            BalancerSpec::mantle(
                "adaptable-too-aggressive",
                policies::adaptable_too_aggressive().unwrap(),
            ),
        ),
        (
            "cephfs-original",
            BalancerSpec::mantle("cephfs-original", policies::cephfs_original().unwrap()),
        ),
    ]
}

#[test]
fn all_builtin_balancers_are_identical_across_schedulers() {
    for (name, balancer) in builtin_balancers() {
        assert_backends_agree(&balancer, None, name);
    }
}

#[test]
fn all_fault_scenarios_are_identical_across_schedulers() {
    // The degraded-cluster scenario family (healthy, crash+restart,
    // slow-mds, stale-heartbeats, poisoned-balancer) at the quick cadence,
    // which matches this file's 400 ms heartbeat.
    let balancer =
        BalancerSpec::mantle("greedy-spill-even", policies::greedy_spill_even().unwrap());
    for (name, plan) in degraded::scenario_plans(ReproOpts::QUICK) {
        assert_backends_agree(&balancer, Some(&plan), name);
    }
}

#[test]
fn migrations_happen_so_the_comparison_is_not_vacuous() {
    let r = run_on(
        SchedulerKind::Wheel,
        &BalancerSpec::mantle("greedy-spill", policies::greedy_spill().unwrap()),
        None,
    );
    assert!(r.total_migrations() >= 1);
    assert_eq!(r.total_ops(), 8_000.0, "no ops lost");
}
