//! Differential pinning for elastic cluster membership.
//!
//! Membership transitions (the `howmany` hook, consistent-hash re-homing
//! on join, drains on leave) ride the coordinator's exclusive heartbeat
//! steps, so they must be *behaviorally invisible* to everything that is
//! supposed to be deterministic: for a fixed seed, an elastic diurnal
//! run must produce a byte-identical [`RunReport`] under every hook
//! engine (tree-walking interpreter, slot VM, bytecode VM) and every
//! execution mode (single-threaded oracle, 2- and 4-shard parallel).
//!
//! The inert direction is pinned too: with `elastic.enabled == false`
//! (the default) a policy set that *carries* a `howmany` hook must
//! produce exactly the report of the same policy set without the hook —
//! the hook is dead weight unless the config turns membership on. The
//! pre-PR behavior of every existing scenario is held byte-identical by
//! the committed golden trace (`tests/golden_trace.rs`) and the
//! equivalence suites next to this file, which all run with the inert
//! default.

use mantle::core::elastic::{diurnal_experiment, GROW_THRESHOLD, POOL, SHRINK_THRESHOLD};
use mantle::core::policies;
use mantle::core::repro::ReproOpts;
use mantle::core::BalancerSpec;
use mantle::mds::{ExecMode, HookEngine};
use mantle::policy::env::PolicySet;
use mantle::prelude::*;

const SEED: u64 = 42;

fn elastic_cfg() -> ElasticConfig {
    ElasticConfig {
        enabled: true,
        min_mds: 1,
        max_mds: POOL,
        initial_mds: 1,
        ..ElasticConfig::on()
    }
}

/// The quick diurnal elastic spec with an explicit hook engine and exec
/// mode. The spec is the same one the `elastic --smoke` gate scores, so
/// the matrix below exercises real joins, re-homes, and drains — not a
/// cluster that happens to stay put.
fn elastic_spec(engine: HookEngine, mode: ExecMode) -> Experiment {
    let mut spec = diurnal_experiment(ReproOpts::QUICK, POOL, elastic_cfg(), 1, SEED);
    spec.balancer = BalancerSpec::mantle_with_engine(
        "elastic-scaler",
        policies::elastic_scaler_membership_only(GROW_THRESHOLD, SHRINK_THRESHOLD).unwrap(),
        engine,
    );
    spec.config = spec.config.with_exec_mode(mode);
    spec
}

#[test]
fn elastic_reports_identical_across_engines_and_exec_modes() {
    let oracle = run_experiment(&elastic_spec(HookEngine::Tree, ExecMode::Single));
    assert!(
        oracle.joins >= 1 && oracle.leaves >= 1,
        "vacuous matrix: the oracle run never scaled ({} joins, {} leaves)",
        oracle.joins,
        oracle.leaves
    );
    let oracle_repr = format!("{oracle:?}");
    for engine in [HookEngine::Tree, HookEngine::Slot, HookEngine::Bytecode] {
        for mode in [
            ExecMode::Single,
            ExecMode::Sharded { threads: 2 },
            ExecMode::Sharded { threads: 4 },
        ] {
            let report = run_experiment(&elastic_spec(engine, mode));
            assert_eq!(
                oracle_repr,
                format!("{report:?}"),
                "{engine:?}/{mode:?} diverged from the tree/single oracle"
            );
        }
    }
}

#[test]
fn inert_default_matches_a_hookless_policy_byte_for_byte() {
    // Same cluster, same seed, same `where` script; the only difference
    // is whether the policy set carries a `howmany` hook. With the
    // default (disabled) elastic config the hook must never run, so the
    // reports must be byte-identical — in both exec modes.
    let hookless = PolicySet::from_combined(
        policies::MIXED_METALOAD,
        policies::ALL_MDSLOAD,
        policies::HOLD_LUA,
        &["half"],
    )
    .unwrap();
    for mode in [ExecMode::Single, ExecMode::Sharded { threads: 2 }] {
        let mut with_hook =
            diurnal_experiment(ReproOpts::QUICK, 2, ElasticConfig::default(), 2, SEED);
        with_hook.config = with_hook.config.with_exec_mode(mode);
        let mut without_hook = with_hook.clone();
        // Same display name so the only possible report difference is
        // behavioral, not the label.
        without_hook.balancer = BalancerSpec::mantle("elastic-scaler", hookless.clone());

        let a = run_experiment(&with_hook);
        let b = run_experiment(&without_hook);
        assert_eq!(a.joins + a.leaves, 0, "inert config must never scale");
        assert_eq!(a.membership_epoch, 0);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{mode:?}: a dormant howmany hook changed the report"
        );
    }
}
