//! Differential end-to-end tests for the incremental index layer.
//!
//! The Euler-interval membership checks, the per-MDS ownership indexes,
//! and the delta-maintained aggregates must be *behaviorally invisible*:
//! for a fixed seed the whole simulated cluster produces a byte-identical
//! [`RunReport`] whether the namespace runs its incremental machinery or
//! the retained walk-based oracle paths — under a healthy run and with
//! every fault kind firing at once.

use mantle::namespace::IndexMode;
use mantle::prelude::*;

fn quick_cfg(num_mds: usize, mode: IndexMode) -> ClusterConfig {
    ClusterConfig {
        num_mds,
        frag_split_threshold: 500,
        heartbeat_interval: SimTime::from_millis(400),
        index_mode: mode,
        ..Default::default()
    }
}

/// A plan exercising every fault kind at once (crash-driven failover
/// re-binds whole swaths of the namespace through `set_auth`, the path
/// most likely to betray an index bug).
fn kitchen_sink_plan() -> FaultPlan {
    FaultPlan {
        request_timeout: SimTime::from_millis(150),
        retry_backoff: SimTime::from_millis(25),
        ..FaultPlan::default()
    }
    .slowdown(
        SimTime::from_millis(500),
        1,
        3.0,
        SimTime::from_millis(1_000),
    )
    .drop_heartbeats(SimTime::from_millis(400), 1, SimTime::from_millis(800))
    .delay_heartbeats(SimTime::from_millis(800), 2, SimTime::from_millis(800))
    .crash(SimTime::from_millis(900), 2)
    .restart(SimTime::from_millis(1_800), 2)
    .poison_balancer(SimTime::from_millis(1_200), 1)
}

fn spec(mode: IndexMode, workload: WorkloadSpec, faults: Option<FaultPlan>) -> Experiment {
    let mut spec = Experiment::new(
        quick_cfg(3, mode),
        workload,
        BalancerSpec::mantle("greedy", policies::greedy_spill().unwrap()),
    );
    if let Some(plan) = faults {
        spec.config.faults = plan;
    }
    spec
}

fn assert_modes_agree(workload: WorkloadSpec, faults: Option<FaultPlan>, label: &str) {
    let inc = run_experiment(&spec(
        IndexMode::Incremental,
        workload.clone(),
        faults.clone(),
    ));
    let ora = run_experiment(&spec(IndexMode::WalkOracle, workload, faults));
    assert_eq!(
        format!("{inc:?}"),
        format!("{ora:?}"),
        "{label}: index modes must yield byte-identical reports"
    );
    assert!(
        inc.total_migrations() >= 1,
        "{label}: vacuous without migrations"
    );
}

#[test]
fn healthy_shared_dir_run_is_identical_across_index_modes() {
    // Greedy spill over a shared create-heavy directory: dirfrag exports,
    // frag-authority overrides, freeze/cold windows.
    assert_modes_agree(
        WorkloadSpec::CreateShared {
            clients: 4,
            files: 2_000,
        },
        None,
        "healthy create-shared",
    );
}

#[test]
fn healthy_separate_dir_run_is_identical_across_index_modes() {
    // Per-client directories: whole-subtree exports dominate, exercising
    // the single-walk migration and the delta aggregate transfer.
    assert_modes_agree(
        WorkloadSpec::CreateSeparate {
            clients: 4,
            files: 2_000,
        },
        None,
        "healthy create-separate",
    );
}

#[test]
fn all_faults_run_is_identical_across_index_modes() {
    assert_modes_agree(
        WorkloadSpec::CreateSeparate {
            clients: 4,
            files: 2_000,
        },
        Some(kitchen_sink_plan()),
        "kitchen-sink faults",
    );
}
