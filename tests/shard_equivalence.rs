//! Differential end-to-end tests for the sharded parallel engine.
//!
//! Thread-per-shard execution must be *behaviorally invisible*: for a
//! fixed seed the cluster produces a byte-identical [`RunReport`]
//! whether events drain on one thread ([`ExecMode::Single`], the
//! oracle) or across 2/4/8 worker shards with barrier-synchronized
//! cross-shard delivery — for every built-in balancer, and under every
//! degraded-cluster fault scenario. Traced runs must also merge their
//! per-shard buffers back into the exact single-threaded event order.

use mantle::core::degraded;
use mantle::core::experiment::run_experiment_with_stats;
use mantle::core::repro::ReproOpts;
use mantle::mds::ExecMode;
use mantle::prelude::*;

/// Shard counts exercised against the single-threaded oracle. 8 shards
/// on a 3-MDS cluster deliberately leaves most shards without an MDS —
/// degenerate partitions must still agree.
const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

fn quick_cfg(num_mds: usize, mode: ExecMode) -> ClusterConfig {
    ClusterConfig {
        num_mds,
        frag_split_threshold: 500,
        heartbeat_interval: SimTime::from_millis(400),
        ..Default::default()
    }
    .with_exec_mode(mode)
}

fn spec_on(mode: ExecMode, balancer: &BalancerSpec, faults: Option<&FaultPlan>) -> Experiment {
    let mut spec = Experiment::new(
        quick_cfg(3, mode),
        WorkloadSpec::CreateShared {
            clients: 4,
            files: 2_000,
        },
        balancer.clone(),
    );
    if let Some(plan) = faults {
        spec.config.faults = plan.clone();
    }
    spec
}

fn assert_modes_agree(balancer: &BalancerSpec, faults: Option<&FaultPlan>, label: &str) {
    let oracle = run_experiment(&spec_on(ExecMode::Single, balancer, faults));
    let oracle_repr = format!("{oracle:?}");
    for threads in SHARD_COUNTS {
        let sharded = run_experiment(&spec_on(ExecMode::Sharded { threads }, balancer, faults));
        assert_eq!(
            oracle_repr,
            format!("{sharded:?}"),
            "{label}: {threads}-shard run must yield a byte-identical report"
        );
    }
}

/// Every built-in balancer spec (the paper's Table 1 / Listings 1–4 set,
/// plus the hard-coded CephFS balancer and the no-op baseline).
fn builtin_balancers() -> Vec<(&'static str, BalancerSpec)> {
    vec![
        ("none", BalancerSpec::None),
        ("cephfs-default", BalancerSpec::Cephfs),
        (
            "greedy-spill",
            BalancerSpec::mantle("greedy-spill", policies::greedy_spill().unwrap()),
        ),
        (
            "greedy-spill-even",
            BalancerSpec::mantle("greedy-spill-even", policies::greedy_spill_even().unwrap()),
        ),
        (
            "fill-and-spill",
            BalancerSpec::mantle("fill-and-spill", policies::fill_and_spill(0.5).unwrap()),
        ),
        (
            "adaptable",
            BalancerSpec::mantle("adaptable", policies::adaptable().unwrap()),
        ),
        (
            "adaptable-conservative",
            BalancerSpec::mantle(
                "adaptable-conservative",
                policies::adaptable_conservative().unwrap(),
            ),
        ),
        (
            "adaptable-too-aggressive",
            BalancerSpec::mantle(
                "adaptable-too-aggressive",
                policies::adaptable_too_aggressive().unwrap(),
            ),
        ),
        (
            "cephfs-original",
            BalancerSpec::mantle("cephfs-original", policies::cephfs_original().unwrap()),
        ),
    ]
}

#[test]
fn all_builtin_balancers_are_identical_across_shard_counts() {
    for (name, balancer) in builtin_balancers() {
        assert_modes_agree(&balancer, None, name);
    }
}

#[test]
fn all_fault_scenarios_are_identical_across_shard_counts() {
    // The degraded-cluster scenario family (healthy, crash+restart,
    // slow-mds, stale-heartbeats, poisoned-balancer) at the quick cadence,
    // which matches this file's 400 ms heartbeat. Faults land via the
    // coordinator's exclusive steps, so crash/restart timing must not
    // shift relative to shard-local event processing.
    let balancer =
        BalancerSpec::mantle("greedy-spill-even", policies::greedy_spill_even().unwrap());
    for (name, plan) in degraded::scenario_plans(ReproOpts::QUICK) {
        assert_modes_agree(&balancer, Some(&plan), name);
    }
}

#[test]
fn balancer_fault_cross_product_is_identical_at_two_shards() {
    // The full built-in-balancer × fault-scenario grid. The two tests
    // above sweep shard counts along each axis separately; this one
    // covers every pairing at the cheapest sharded shape, so a
    // divergence that needs a particular balancer *and* a particular
    // fault to manifest still has a differential witness.
    for (bname, balancer) in builtin_balancers() {
        for (fname, plan) in degraded::scenario_plans(ReproOpts::QUICK) {
            let oracle = run_experiment(&spec_on(ExecMode::Single, &balancer, Some(&plan)));
            let sharded = run_experiment(&spec_on(
                ExecMode::Sharded { threads: 2 },
                &balancer,
                Some(&plan),
            ));
            assert_eq!(
                format!("{oracle:?}"),
                format!("{sharded:?}"),
                "{bname} × {fname}: 2-shard run must yield a byte-identical report"
            );
        }
    }
}

#[test]
fn traced_runs_merge_into_the_single_threaded_order() {
    // Per-shard trace buffers are merged at run end by (time, key,
    // emission index); the merged stream must match the single-threaded
    // golden ordering byte-for-byte and still satisfy every trace
    // invariant (balanced freeze/thaw, authority consistency, ...).
    let balancer = BalancerSpec::mantle("greedy-spill", policies::greedy_spill().unwrap());
    let (oracle_report, oracle_trace) = run_experiment_traced(
        &spec_on(ExecMode::Single, &balancer, None),
        TraceLevel::Full,
    );
    let oracle_jsonl = oracle_trace.to_jsonl();
    assert_invariants(oracle_trace.records());
    for threads in SHARD_COUNTS {
        let (report, trace) = run_experiment_traced(
            &spec_on(ExecMode::Sharded { threads }, &balancer, None),
            TraceLevel::Full,
        );
        assert_eq!(
            format!("{oracle_report:?}"),
            format!("{report:?}"),
            "{threads}-shard traced report drifted"
        );
        assert_eq!(
            oracle_jsonl,
            trace.to_jsonl(),
            "{threads}-shard merged trace must match the single-threaded order"
        );
        assert_invariants(trace.records());
    }
}

#[test]
fn sharded_runs_are_not_vacuous() {
    // The differential tests above prove nothing if the sharded engine
    // never actually crosses a shard boundary or migrates. Pin the
    // interesting denominators: real worker shards, real cross-shard
    // traffic, real migrations, no lost operations.
    let balancer = BalancerSpec::mantle("greedy-spill", policies::greedy_spill().unwrap());
    let (report, stats) =
        run_experiment_with_stats(&spec_on(ExecMode::Sharded { threads: 4 }, &balancer, None));
    assert_eq!(stats.threads, 4);
    assert_eq!(stats.shards.len(), 4);
    assert!(stats.windows > 0, "windowed loop must have run");
    let msgs: u64 = stats.shards.iter().map(|s| s.msgs_sent).sum();
    assert!(
        msgs > 0,
        "no cross-shard messages — partition is degenerate"
    );
    assert!(report.total_migrations() >= 1);
    assert_eq!(report.total_ops(), 8_000.0, "no ops lost");
}
