//! Golden-trace snapshot: a small fixed-seed run's decisions-level JSONL
//! stream is committed at `tests/golden/trace_small.jsonl` and compared
//! byte-for-byte. Any drift in event vocabulary, field order, number
//! formatting, or simulation behaviour shows up as a diff here.
//!
//! To bless an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```

use mantle::prelude::*;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/trace_small.jsonl"
);

/// The pinned scenario: small enough to review as text, busy enough to
/// exercise splits, migrations, and session flushes.
fn golden_spec() -> Experiment {
    Experiment::new(
        ClusterConfig {
            num_mds: 2,
            seed: 11,
            heartbeat_interval: SimTime::from_millis(400),
            frag_split_threshold: 300,
            ..Default::default()
        },
        WorkloadSpec::CreateShared {
            clients: 2,
            files: 800,
        },
        BalancerSpec::mantle("greedy-spill", policies::greedy_spill().unwrap()),
    )
}

#[test]
fn decisions_trace_matches_golden_snapshot() {
    let (report, trace) = run_experiment_traced(&golden_spec(), TraceLevel::Decisions);
    assert_eq!(report.total_ops(), 1_600.0, "the pinned run does its work");
    let got = trace.to_jsonl();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &got).expect("write golden file");
        return;
    }

    let want = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing — bless it with UPDATE_GOLDEN=1");
    assert!(
        got == want,
        "decisions trace drifted from {GOLDEN} ({} vs {} bytes).\n\
         If the change is intentional, re-bless with:\n\
         UPDATE_GOLDEN=1 cargo test --test golden_trace",
        got.len(),
        want.len()
    );
}

#[test]
fn golden_trace_itself_upholds_invariants() {
    let (_, trace) = run_experiment_traced(&golden_spec(), TraceLevel::Decisions);
    assert_invariants(trace.records());
    // The pinned stream must include the control-plane vocabulary the
    // snapshot exists to guard.
    let names: std::collections::HashSet<&'static str> =
        trace.records().iter().map(|r| r.event.name()).collect();
    for expect in [
        "run_start",
        "heartbeat_tick",
        "balancer_plan",
        "migration_freeze",
        "migration_commit",
        "migration_unfreeze",
        "frag_split",
        "session_flush",
        "run_end",
    ] {
        assert!(names.contains(expect), "golden trace lacks {expect}");
    }
}
