//! A small blocking client for the `mantled` wire protocol, used by
//! `mantlectl`, the CI smoke test, and anything else that wants to talk
//! to a daemon without writing framing code.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

use crate::json::Json;
use crate::wire::{read_frame, write_frame, PROTO_VERSION};

/// A connected, hello-completed wire connection.
pub struct MantleClient {
    stream: TcpStream,
    /// The daemon's `welcome` message (role, policy, epoch, and — for
    /// client-role connections — the assigned session `slot`).
    pub welcome: Json,
    next_id: u64,
}

impl MantleClient {
    /// Connect to `addr` and complete the hello handshake for `role`
    /// (`"client"`, `"admin"`, or `"trace"`). Reads block with a 60 s
    /// timeout so a wedged daemon fails a caller instead of hanging it.
    pub fn connect(addr: &str, role: &str) -> io::Result<MantleClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        let mut client = MantleClient {
            stream,
            welcome: Json::Null,
            next_id: 0,
        };
        let hello = Json::obj(vec![
            ("type", Json::str("hello")),
            ("role", Json::str(role)),
            ("proto", Json::num(PROTO_VERSION as f64)),
        ]);
        client.send(&hello)?;
        let welcome = client.recv_required()?;
        if welcome.get_str("type") != Some("welcome") {
            return Err(io::Error::other(format!("handshake rejected: {welcome}")));
        }
        client.welcome = welcome;
        Ok(client)
    }

    /// The session slot assigned in the welcome (client role only).
    pub fn slot(&self) -> Option<u64> {
        self.welcome.get_u64("slot")
    }

    /// Send one frame.
    pub fn send(&mut self, msg: &Json) -> io::Result<()> {
        write_frame(&mut self.stream, msg)
    }

    /// Receive one frame; `None` on clean EOF.
    pub fn recv(&mut self) -> io::Result<Option<Json>> {
        read_frame(&mut self.stream)
    }

    /// Receive one frame, treating EOF as an error.
    pub fn recv_required(&mut self) -> io::Result<Json> {
        self.recv()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed connection"))
    }

    /// Send a request carrying a fresh `id` and block for its reply.
    /// Frames with a different (or absent) `id` — e.g. a late reply the
    /// caller abandoned — are skipped.
    pub fn request(&mut self, mut msg: Json) -> io::Result<Json> {
        self.next_id += 1;
        let id = self.next_id;
        if let Json::Obj(members) = &mut msg {
            members.retain(|(k, _)| k != "id");
            members.insert(1.min(members.len()), ("id".into(), Json::num(id as f64)));
        }
        self.send(&msg)?;
        loop {
            let reply = self.recv_required()?;
            if reply.get_u64("id") == Some(id) {
                return Ok(reply);
            }
        }
    }

    /// Issue one metadata op (client role) and wait for the reply.
    pub fn op(&mut self, op: &str, path: &str) -> io::Result<Json> {
        self.request(Json::obj(vec![
            ("type", Json::str("op")),
            ("op", Json::str(op)),
            ("path", Json::str(path)),
        ]))
    }

    /// Issue an admin verb (admin role) and wait for the reply.
    pub fn admin(&mut self, verb: &str, extra: Vec<(&str, Json)>) -> io::Result<Json> {
        let mut members = vec![("type", Json::str("admin")), ("verb", Json::str(verb))];
        members.extend(extra);
        self.request(Json::obj(members))
    }
}
