//! The framed wire protocol `mantled` speaks, exactly as documented in
//! `PROTOCOL.md` (whose example frames round-trip through this codec in
//! `tests/docs_examples.rs`).
//!
//! Every message is one **frame**: a 4-byte big-endian length `N`
//! followed by `N` bytes of UTF-8 JSON encoding a single object. The
//! same framing is used in both directions and on every socket role
//! (`client`, `admin`, `trace`); a connection is one role for its whole
//! life, declared by its first frame (`{"type":"hello",...}`).

use std::fmt;
use std::io::{self, Read, Write};

use mantle_mds::RunReport;
use mantle_namespace::OpKind;

use crate::json::{parse, Json, JsonError};

/// Protocol version carried in `hello`/`welcome`. Bumped on any
/// incompatible schema change.
pub const PROTO_VERSION: u64 = 1;

/// Upper bound on a frame's payload length. A peer announcing a longer
/// frame is protocol-broken (or hostile) and gets disconnected rather
/// than buffered.
pub const MAX_FRAME: usize = 16 << 20;

/// A framing/decoding failure on a connection.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The length prefix exceeded [`MAX_FRAME`].
    Oversized(usize),
    /// The payload was not valid UTF-8.
    NotUtf8,
    /// The payload was not a valid JSON document.
    BadJson(JsonError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Oversized(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            WireError::NotUtf8 => write!(f, "frame payload is not utf-8"),
            WireError::BadJson(e) => write!(f, "frame payload is not json: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encode one message as a frame (length prefix + JSON bytes).
pub fn encode_frame(msg: &Json) -> Vec<u8> {
    let body = msg.to_string();
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

/// Pop one complete frame off the front of a receive buffer, if present.
///
/// This is the nonblocking-reactor side of the codec: the server appends
/// whatever `read` returned to `buf` and calls this in a loop. Returns
/// `Ok(None)` while the buffer holds only a partial frame.
pub fn decode_frame(buf: &mut Vec<u8>) -> Result<Option<Json>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let payload: Vec<u8> = buf.drain(..4 + len).skip(4).collect();
    let text = std::str::from_utf8(&payload).map_err(|_| WireError::NotUtf8)?;
    parse(text).map(Some).map_err(WireError::BadJson)
}

/// Blocking frame read (client side). Returns `Ok(None)` on clean EOF at
/// a frame boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Json>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::Oversized(len).to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, WireError::NotUtf8.to_string()))?;
    parse(text).map(Some).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::BadJson(e).to_string(),
        )
    })
}

/// Blocking frame write (client side).
pub fn write_frame(w: &mut impl Write, msg: &Json) -> io::Result<()> {
    w.write_all(&encode_frame(msg))?;
    w.flush()
}

/// Wire name of an op kind, as used in `{"type":"op","op":...}`.
pub fn op_name(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Create => "create",
        OpKind::Stat => "stat",
        OpKind::SetAttr => "setattr",
        OpKind::Readdir => "readdir",
        OpKind::OpenRead => "open",
        OpKind::Unlink => "unlink",
        OpKind::Mkdir => "mkdir",
    }
}

/// Parse a wire op name back to an [`OpKind`].
pub fn op_kind(name: &str) -> Option<OpKind> {
    Some(match name {
        "create" => OpKind::Create,
        "stat" => OpKind::Stat,
        "setattr" => OpKind::SetAttr,
        "readdir" => OpKind::Readdir,
        "open" => OpKind::OpenRead,
        "unlink" => OpKind::Unlink,
        "mkdir" => OpKind::Mkdir,
        _ => return None,
    })
}

/// Build an `{"type":"error",...}` reply. `id` echoes the request id
/// when the failing request carried one.
pub fn error_msg(id: Option<u64>, code: &str, detail: impl fmt::Display) -> Json {
    let mut members = vec![("type", Json::str("error"))];
    if let Some(id) = id {
        members.push(("id", Json::num(id as f64)));
    }
    members.push(("code", Json::str(code)));
    members.push(("detail", Json::str(detail.to_string())));
    Json::obj(members)
}

/// Render a [`RunReport`] as the wire JSON used by the final `report`
/// message and `mantlectl report`.
pub fn report_json(r: &RunReport) -> Json {
    let mds: Vec<Json> = r
        .mds
        .iter()
        .enumerate()
        .map(|(i, m)| {
            Json::obj(vec![
                ("mds", Json::num(i as f64)),
                ("total_ops", Json::num(m.total_ops)),
                ("hits", Json::num(m.hits as f64)),
                ("forwards_out", Json::num(m.forwards_out as f64)),
                ("forwards_in", Json::num(m.forwards_in as f64)),
                ("migrations_out", Json::num(m.migrations_out as f64)),
                ("inodes_exported", Json::num(m.inodes_exported as f64)),
                ("sessions_flushed", Json::num(m.sessions_flushed as f64)),
                ("splits", Json::num(m.splits as f64)),
            ])
        })
        .collect();
    let lat = r.latency_all();
    Json::obj(vec![
        ("type", Json::str("report")),
        ("balancer", Json::str(&r.balancer)),
        ("workload", Json::str(&r.workload)),
        ("num_mds", Json::num(r.num_mds as f64)),
        ("seed", Json::num(r.seed as f64)),
        ("makespan_us", Json::num(r.makespan.as_micros() as f64)),
        ("total_ops", Json::num(r.total_ops())),
        ("mean_throughput", Json::num(r.mean_throughput())),
        ("total_forwards", Json::num(r.total_forwards() as f64)),
        ("total_migrations", Json::num(r.total_migrations() as f64)),
        ("sessions_flushed", Json::num(r.sessions_flushed as f64)),
        ("timeouts", Json::num(r.timeouts as f64)),
        ("retries", Json::num(r.retries as f64)),
        ("failovers", Json::num(r.failovers as f64)),
        ("balancer_fallbacks", Json::num(r.balancer_fallbacks as f64)),
        ("latency_ms_mean", Json::num(lat.mean)),
        ("latency_ms_p99", Json::num(lat.p99)),
        ("mds_reports", Json::Arr(mds)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_both_codecs() {
        let msg = parse(r#"{"type":"op","id":7,"op":"create","path":"/a"}"#).unwrap();
        let bytes = encode_frame(&msg);
        // Streaming decoder, fed one byte at a time.
        let mut buf = Vec::new();
        let mut out = None;
        for b in &bytes {
            buf.push(*b);
            if let Some(v) = decode_frame(&mut buf).unwrap() {
                out = Some(v);
            }
        }
        assert_eq!(out.as_ref(), Some(&msg));
        assert!(buf.is_empty(), "frame fully consumed");
        // Blocking reader over the same bytes.
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(msg));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn two_frames_in_one_buffer_pop_in_order() {
        let a = parse(r#"{"id":1}"#).unwrap();
        let b = parse(r#"{"id":2}"#).unwrap();
        let mut buf = encode_frame(&a);
        buf.extend_from_slice(&encode_frame(&b));
        assert_eq!(decode_frame(&mut buf).unwrap(), Some(a));
        assert_eq!(decode_frame(&mut buf).unwrap(), Some(b));
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn oversized_and_malformed_frames_are_rejected() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        assert!(matches!(
            decode_frame(&mut buf),
            Err(WireError::Oversized(_))
        ));
        let mut bad = vec![0, 0, 0, 2];
        bad.extend_from_slice(b"{x");
        assert!(matches!(decode_frame(&mut bad), Err(WireError::BadJson(_))));
    }

    #[test]
    fn op_names_round_trip() {
        for kind in [
            OpKind::Create,
            OpKind::Stat,
            OpKind::SetAttr,
            OpKind::Readdir,
            OpKind::OpenRead,
            OpKind::Unlink,
            OpKind::Mkdir,
        ] {
            assert_eq!(op_kind(op_name(kind)), Some(kind));
        }
        assert_eq!(op_kind("chmod"), None);
    }
}
