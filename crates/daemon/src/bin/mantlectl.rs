//! `mantlectl` — the operator CLI for a running `mantled`.
//!
//! ```text
//! mantlectl [--addr=HOST:PORT] <command> [args]
//!
//! commands:
//!   status                      daemon status (policy epoch, sessions, op counters)
//!   policy-show                 name + epoch of the installed policy
//!   policy-swap <file.json>     validate + hot-install a policy bundle
//!   scenario <name>             run a named scenario on the daemon, print its report
//!   op <kind> <path> [n]        issue n metadata ops (default 1) and print replies
//!   trace [limit]               subscribe to the live trace stream (JSONL on stdout)
//!   shutdown                    drain the daemon and exit
//! ```
//!
//! Policy bundle files are the `policy` object of the `policy-swap`
//! request in `PROTOCOL.md`: `{"name":..., "metaload":..., "mdsload":...,
//! "when":..., "where":..., "howmuch":[...], "howmany":...}`.

use std::process::exit;

use mantle_daemon::json::{parse, Json};
use mantle_daemon::MantleClient;

const USAGE: &str = "usage: mantlectl [--addr=HOST:PORT] \
status|policy-show|policy-swap|scenario|op|trace|shutdown [args]";

fn main() {
    let mut addr = "127.0.0.1:7717".to_string();
    let mut rest = Vec::new();
    for arg in std::env::args().skip(1) {
        if let Some(a) = arg.strip_prefix("--addr=") {
            addr = a.to_string();
        } else if arg == "--help" || arg == "-h" {
            println!("{USAGE}");
            return;
        } else {
            rest.push(arg);
        }
    }
    let Some(command) = rest.first().map(String::as_str) else {
        die(USAGE);
    };
    let result = match command {
        "status" => admin(&addr, "status", vec![]),
        "policy-show" => admin(&addr, "policy-show", vec![]),
        "shutdown" => admin(&addr, "shutdown", vec![]),
        "scenario" => {
            let name = rest.get(1).unwrap_or_else(|| die("scenario needs a name"));
            admin(&addr, "scenario", vec![("name", Json::str(name.as_str()))])
        }
        "policy-swap" => {
            let path = rest
                .get(1)
                .unwrap_or_else(|| die("policy-swap needs a bundle file"));
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
            let bundle = parse(&text).unwrap_or_else(|e| die(&format!("parsing {path}: {e}")));
            admin(&addr, "policy-swap", vec![("policy", bundle)])
        }
        "op" => run_ops(&addr, &rest),
        "trace" => run_trace(&addr, &rest),
        other => die(&format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => {}
        Err(e) => die(&format!("{e}")),
    }
}

fn admin(addr: &str, verb: &str, extra: Vec<(&str, Json)>) -> std::io::Result<()> {
    let mut client = MantleClient::connect(addr, "admin")?;
    let reply = client.admin(verb, extra)?;
    println!("{reply}");
    if reply.get_str("type") == Some("error") {
        exit(1);
    }
    Ok(())
}

fn run_ops(addr: &str, rest: &[String]) -> std::io::Result<()> {
    let kind = rest
        .get(1)
        .unwrap_or_else(|| die("op needs a kind (e.g. create)"));
    let path = rest.get(2).unwrap_or_else(|| die("op needs a path"));
    let count: u64 = match rest.get(3) {
        Some(n) => n
            .parse()
            .unwrap_or_else(|_| die("op count must be a number")),
        None => 1,
    };
    let mut client = MantleClient::connect(addr, "client")?;
    for _ in 0..count {
        let reply = client.op(kind, path)?;
        println!("{reply}");
        if reply.get_str("type") == Some("error") {
            exit(1);
        }
    }
    Ok(())
}

fn run_trace(addr: &str, rest: &[String]) -> std::io::Result<()> {
    let limit: Option<u64> = rest.get(1).map(|n| {
        n.parse()
            .unwrap_or_else(|_| die("trace limit must be a number"))
    });
    let mut client = MantleClient::connect(addr, "trace")?;
    let mut seen = 0u64;
    while let Some(record) = client.recv()? {
        println!("{record}");
        seen += 1;
        if limit.is_some_and(|l| seen >= l) {
            break;
        }
    }
    Ok(())
}

fn die(msg: &str) -> ! {
    eprintln!("mantlectl: {msg}");
    exit(2)
}
