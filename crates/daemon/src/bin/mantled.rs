//! `mantled` — serve the metadata cluster over TCP.
//!
//! ```text
//! mantled [--addr=HOST:PORT] [--sessions=N] [--mds=N] [--seed=N]
//!         [--clock=wall|sim] [--trace=decisions|full|off]
//!         [--policy=PRESET] [--scenario=NAME]
//! ```
//!
//! In serve mode (the default) the daemon prints `listening <addr>` once
//! bound, runs until a `shutdown` admin request drains it, then prints
//! the final run report as JSON. With `--scenario=<name>` it instead
//! runs one named scenario through the service engine path and exits.

use std::io::Write as _;

use mantle_daemon::wire::report_json;
use mantle_daemon::{DaemonConfig, Server};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", mantle_daemon::config::USAGE);
        return;
    }
    let cfg = match DaemonConfig::parse(args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("mantled: {e}");
            std::process::exit(2);
        }
    };

    if let Some(name) = &cfg.scenario {
        let Some(spec) = mantle_core::service::scenario(name) else {
            eprintln!(
                "mantled: unknown scenario `{name}` (try one of {:?})",
                mantle_core::service::SCENARIO_NAMES
            );
            std::process::exit(2);
        };
        let (report, _) = mantle_core::service::run_service(&spec, None);
        println!("{}", report_json(&report));
        return;
    }

    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mantled: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // Scripts (and the CI smoke test) parse this line to find an
            // ephemeral port, so flush it out before serving.
            println!("listening {addr}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => eprintln!("mantled: local_addr: {e}"),
    }
    let report = server.run();
    println!("{}", report_json(&report));
}
