//! The `mantled` connection reactor: a single-threaded nonblocking
//! accept/read/dispatch/write loop over `std::net` (the workspace takes
//! no dependencies, so there is no mio — readiness is approximated by
//! polling with a short idle sleep, which at the daemon's scale costs
//! well under a millisecond of latency).
//!
//! The reactor owns the [`Engine`] handle. Inbound frames become engine
//! commands; each loop iteration drains the engine's event stream,
//! routing completions back to the issuing connection (per-slot FIFO —
//! sound because live clients are closed-loop, one outstanding op each)
//! and broadcasting trace records to every `trace`-role subscriber.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

use mantle_mds::{RunReport, ServiceEvent};
use mantle_sim::SimTime;

use crate::config::DaemonConfig;
use crate::engine::{policy_source_from_json, Engine, PRESET_NAMES};
use crate::json::Json;
use crate::wire::{decode_frame, encode_frame, error_msg, op_kind, report_json, PROTO_VERSION};

/// What a connection declared itself to be in its `hello`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Issues metadata ops, bound to one client slot.
    Client,
    /// Control plane: status, policy swap, scenarios, shutdown.
    Admin,
    /// Receives the live trace stream, one record per frame.
    Trace,
}

struct Conn {
    stream: TcpStream,
    /// Unique per accepted connection; async replies (completions, swap
    /// acks) are addressed by token, so a reply for a dead connection is
    /// dropped instead of reaching whoever reused its slab index.
    token: u64,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    role: Option<Role>,
    /// Client slot, for `Role::Client`.
    slot: Option<usize>,
    /// Set when the peer misbehaved: flush what is queued, then drop.
    closing: bool,
}

/// A client slot's reply routing: outstanding tickets in submission
/// order. Completions for a slot pop the front ticket; a ticket whose
/// connection died is popped and dropped silently.
#[derive(Default)]
struct Slot {
    bound: Option<u64>,
    tickets: VecDeque<(u64, Option<u64>)>,
}

struct PendingSwap {
    conn: u64,
    id: Option<u64>,
    epoch: u64,
    ack: Receiver<Result<SimTime, String>>,
}

/// The daemon server: listener, connections, engine.
pub struct Server {
    cfg: DaemonConfig,
    listener: TcpListener,
    engine: Engine,
    conns: Vec<Option<Conn>>,
    slots: Vec<Slot>,
    swaps: Vec<PendingSwap>,
    started: Instant,
    next_token: u64,
    ops_submitted: u64,
    ops_completed: u64,
    shutting_down: bool,
}

impl Server {
    /// Bind the listen address and boot the engine. Does not serve yet —
    /// call [`Server::run`].
    pub fn bind(cfg: DaemonConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let engine = Engine::start(&cfg).map_err(io::Error::other)?;
        let slots = (0..cfg.sessions).map(|_| Slot::default()).collect();
        Ok(Server {
            cfg,
            listener,
            engine,
            conns: Vec::new(),
            slots,
            swaps: Vec::new(),
            started: Instant::now(),
            next_token: 0,
            ops_submitted: 0,
            ops_completed: 0,
            shutting_down: false,
        })
    }

    /// The bound address (resolves `--addr=...:0` ephemeral ports).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the reactor until the engine finishes (normally: a `shutdown`
    /// admin request closed the live queues and the clients drained).
    /// Returns the engine's final report.
    pub fn run(mut self) -> RunReport {
        loop {
            let mut progressed = false;
            progressed |= self.accept_new();
            progressed |= self.read_all();
            progressed |= self.drain_events();
            progressed |= self.poll_swaps();
            progressed |= self.flush_all();
            self.reap_closed();
            if self.engine.finished() {
                // Final drain: the engine sends its tail (RunEnd and any
                // last completions) right before the thread exits.
                self.drain_events();
                self.poll_swaps();
                self.flush_all();
                break;
            }
            if !progressed {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        self.engine.finish().expect("engine thread completed")
    }

    fn accept_new(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    any = true;
                    self.next_token += 1;
                    let conn = Conn {
                        stream,
                        token: self.next_token,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        role: None,
                        slot: None,
                        closing: false,
                    };
                    match self.conns.iter().position(Option::is_none) {
                        Some(idx) => self.conns[idx] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        any
    }

    fn read_all(&mut self) -> bool {
        let mut inbound: Vec<(usize, Json)> = Vec::new();
        let mut any = false;
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_mut() else {
                continue;
            };
            if conn.closing {
                continue;
            }
            let mut tmp = [0u8; 4096];
            let mut dead = false;
            loop {
                match conn.stream.read(&mut tmp) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        conn.rbuf.extend_from_slice(&tmp[..n]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            loop {
                match decode_frame(&mut conn.rbuf) {
                    Ok(Some(msg)) => inbound.push((idx, msg)),
                    Ok(None) => break,
                    Err(e) => {
                        conn.wbuf.extend_from_slice(&encode_frame(&error_msg(
                            None,
                            "bad-frame",
                            e,
                        )));
                        conn.closing = true;
                        break;
                    }
                }
            }
            if dead {
                self.drop_conn(idx);
            }
        }
        for (idx, msg) in inbound {
            self.dispatch(idx, msg);
        }
        any
    }

    fn dispatch(&mut self, idx: usize, msg: Json) {
        let id = msg.get_u64("id");
        let reply = match (self.conn_role(idx), msg.get_str("type")) {
            (None, Some("hello")) => self.on_hello(idx, &msg),
            (None, _) => Some(self.fail(idx, id, "bad-hello", "first frame must be a hello")),
            (Some(Role::Client), Some("op")) => self.on_op(idx, id, &msg),
            (Some(Role::Admin), Some("admin")) => self.on_admin(idx, id, &msg),
            (Some(Role::Trace), _) => {
                Some(self.fail(idx, id, "bad-frame", "trace connections only receive"))
            }
            (Some(_), other) => Some(self.fail(
                idx,
                id,
                "bad-frame",
                format!("unexpected message type {other:?} for this role"),
            )),
        };
        if let Some(reply) = reply {
            self.push_msg(idx, &reply);
        }
    }

    fn conn_role(&self, idx: usize) -> Option<Role> {
        self.conns[idx].as_ref().and_then(|c| c.role)
    }

    /// Build an error reply and mark the connection for close when the
    /// failure is not recoverable at the protocol level.
    fn fail(
        &mut self,
        idx: usize,
        id: Option<u64>,
        code: &str,
        detail: impl std::fmt::Display,
    ) -> Json {
        if matches!(code, "bad-hello" | "bad-frame" | "no-slot") {
            if let Some(conn) = self.conns[idx].as_mut() {
                conn.closing = true;
            }
        }
        error_msg(id, code, detail)
    }

    fn on_hello(&mut self, idx: usize, msg: &Json) -> Option<Json> {
        if msg.get_u64("proto") != Some(PROTO_VERSION) {
            return Some(self.fail(
                idx,
                None,
                "bad-hello",
                format!("unsupported proto (want {PROTO_VERSION})"),
            ));
        }
        let role = match msg.get_str("role") {
            Some("client") => Role::Client,
            Some("admin") => Role::Admin,
            Some("trace") => Role::Trace,
            other => {
                return Some(self.fail(
                    idx,
                    None,
                    "bad-hello",
                    format!("unknown role {other:?} (client|admin|trace)"),
                ))
            }
        };
        if role == Role::Trace && self.cfg.trace.is_none() {
            return Some(self.fail(idx, None, "bad-hello", "tracing is disabled (--trace=off)"));
        }
        let mut slot = None;
        if role == Role::Client {
            let Some(free) = self.slots.iter().position(|s| s.bound.is_none()) else {
                return Some(self.fail(
                    idx,
                    None,
                    "no-slot",
                    format!("all {} client slots in use", self.slots.len()),
                ));
            };
            let token = self.conns[idx].as_ref().map(|c| c.token).unwrap_or(0);
            self.slots[free].bound = Some(token);
            slot = Some(free);
        }
        if let Some(conn) = self.conns[idx].as_mut() {
            conn.role = Some(role);
            conn.slot = slot;
        }
        let policy = self.engine.cell.current();
        let mut members = vec![
            ("type", Json::str("welcome")),
            ("proto", Json::num(PROTO_VERSION as f64)),
            (
                "role",
                Json::str(match role {
                    Role::Client => "client",
                    Role::Admin => "admin",
                    Role::Trace => "trace",
                }),
            ),
            ("policy", Json::str(&policy.name)),
            ("epoch", Json::num(policy.epoch as f64)),
        ];
        if let Some(slot) = slot {
            members.push(("slot", Json::num(slot as f64)));
        }
        Some(Json::obj(members))
    }

    fn on_op(&mut self, idx: usize, id: Option<u64>, msg: &Json) -> Option<Json> {
        if self.shutting_down {
            return Some(error_msg(id, "shutting-down", "daemon is draining"));
        }
        let Some(kind) = msg.get_str("op").and_then(op_kind) else {
            return Some(error_msg(id, "bad-op", "unknown or missing `op`"));
        };
        let path = msg.get_str("path").unwrap_or("");
        if !path.starts_with('/') || path.len() > 4096 {
            return Some(error_msg(id, "bad-op", "`path` must be absolute"));
        }
        let conn = self.conns[idx].as_ref()?;
        let (token, slot) = (conn.token, conn.slot?);
        self.slots[slot].tickets.push_back((token, id));
        self.engine.handle.submit_op(slot, path, kind);
        self.ops_submitted += 1;
        None // replied asynchronously, from the completion stream
    }

    fn on_admin(&mut self, idx: usize, id: Option<u64>, msg: &Json) -> Option<Json> {
        match msg.get_str("verb") {
            Some("status") => Some(self.status_msg(id)),
            Some("policy-show") => {
                let p = self.engine.cell.current();
                Some(Json::obj(vec![
                    ("type", Json::str("policy")),
                    ("id", id.map_or(Json::Null, |i| Json::num(i as f64))),
                    ("name", Json::str(&p.name)),
                    ("epoch", Json::num(p.epoch as f64)),
                ]))
            }
            Some("policy-swap") => {
                let Some(policy) = msg.get("policy") else {
                    return Some(error_msg(
                        id,
                        "bad-admin",
                        "policy-swap needs a `policy` object",
                    ));
                };
                let src = match policy_source_from_json(policy) {
                    Ok(src) => src,
                    Err(e) => return Some(error_msg(id, "policy-rejected", e)),
                };
                match self.engine.swap(&src) {
                    // Reply deferred until the engine acks the install
                    // from its exclusive step (see `poll_swaps`).
                    Ok((epoch, ack)) => {
                        let token = self.conns[idx].as_ref().map(|c| c.token).unwrap_or(0);
                        self.swaps.push(PendingSwap {
                            conn: token,
                            id,
                            epoch,
                            ack,
                        });
                        None
                    }
                    Err(e) => Some(error_msg(id, "policy-rejected", e)),
                }
            }
            Some("scenario") => {
                let name = msg.get_str("name").unwrap_or("");
                let Some(spec) = mantle_core::service::scenario(name) else {
                    return Some(error_msg(
                        id,
                        "unknown-scenario",
                        format!("try one of {:?}", mantle_core::service::SCENARIO_NAMES),
                    ));
                };
                // Runs synchronously on the reactor thread: scenarios are
                // small fixed workloads, and the live engine keeps running
                // independently on its own thread meanwhile.
                let (report, _) = mantle_core::service::run_service(&spec, None);
                let mut out = report_json(&report);
                if let (Json::Obj(members), Some(i)) = (&mut out, id) {
                    members.insert(1, ("id".into(), Json::num(i as f64)));
                }
                Some(out)
            }
            Some("shutdown") => {
                self.shutting_down = true;
                self.engine.handle.shutdown();
                Some(Json::obj(vec![
                    ("type", Json::str("ok")),
                    ("id", id.map_or(Json::Null, |i| Json::num(i as f64))),
                    ("detail", Json::str("draining; report follows on exit")),
                ]))
            }
            other => Some(error_msg(
                id,
                "bad-admin",
                format!("unknown verb {other:?}"),
            )),
        }
    }

    fn status_msg(&self, id: Option<u64>) -> Json {
        let policy = self.engine.cell.current();
        let bound = self.slots.iter().filter(|s| s.bound.is_some()).count();
        let conns = self.conns.iter().flatten().count();
        Json::obj(vec![
            ("type", Json::str("status")),
            ("id", id.map_or(Json::Null, |i| Json::num(i as f64))),
            ("uptime_s", Json::num(self.started.elapsed().as_secs_f64())),
            ("clock", Json::str(self.cfg.clock.name())),
            ("mds", Json::num(self.cfg.mds as f64)),
            ("seed", Json::num(self.cfg.seed as f64)),
            ("policy", Json::str(&policy.name)),
            ("epoch", Json::num(policy.epoch as f64)),
            ("sessions_total", Json::num(self.slots.len() as f64)),
            ("sessions_bound", Json::num(bound as f64)),
            ("connections", Json::num(conns as f64)),
            ("ops_submitted", Json::num(self.ops_submitted as f64)),
            ("ops_completed", Json::num(self.ops_completed as f64)),
            ("draining", Json::Bool(self.shutting_down)),
            (
                "presets",
                Json::Arr(PRESET_NAMES.iter().map(|n| Json::str(*n)).collect()),
            ),
            (
                "scenarios",
                Json::Arr(
                    mantle_core::service::SCENARIO_NAMES
                        .iter()
                        .map(|n| Json::str(*n))
                        .collect(),
                ),
            ),
        ])
    }

    /// Drain the engine's event stream: trace records broadcast to
    /// subscribers, completions matched to their tickets.
    fn drain_events(&mut self) -> bool {
        let mut any = false;
        while let Ok(ev) = self.engine.handle.events.try_recv() {
            any = true;
            match ev {
                ServiceEvent::Trace(batch) => {
                    if batch.is_empty() {
                        continue;
                    }
                    let mut frames = Vec::new();
                    for rec in &batch {
                        let mut line = String::new();
                        rec.write_json(&mut line);
                        frames.extend_from_slice(&(line.len() as u32).to_be_bytes());
                        frames.extend_from_slice(line.as_bytes());
                    }
                    for conn in self.conns.iter_mut().flatten() {
                        if conn.role == Some(Role::Trace) && !conn.closing {
                            conn.wbuf.extend_from_slice(&frames);
                        }
                    }
                }
                ServiceEvent::Completions(batch) => {
                    for done in batch {
                        self.ops_completed += 1;
                        let Some(slot) = self.slots.get_mut(done.client) else {
                            continue;
                        };
                        let Some((token, id)) = slot.tickets.pop_front() else {
                            continue;
                        };
                        let reply = Json::obj(vec![
                            ("type", Json::str("reply")),
                            ("id", id.map_or(Json::Null, |i| Json::num(i as f64))),
                            ("status", Json::str("ok")),
                            ("op", Json::str(crate::wire::op_name(done.kind))),
                            ("mds", Json::num(done.mds as f64)),
                            ("latency_ms", Json::num(done.latency_ms)),
                            ("at_us", Json::num(done.at.as_micros() as f64)),
                        ]);
                        self.push_msg_token(token, &reply);
                    }
                }
            }
        }
        any
    }

    fn poll_swaps(&mut self) -> bool {
        let mut done = Vec::new();
        for (i, swap) in self.swaps.iter().enumerate() {
            match swap.ack.try_recv() {
                Ok(result) => done.push((i, Some(result))),
                Err(std::sync::mpsc::TryRecvError::Empty) => {}
                Err(std::sync::mpsc::TryRecvError::Disconnected) => done.push((i, None)),
            }
        }
        let any = !done.is_empty();
        for (i, result) in done.into_iter().rev() {
            let swap = self.swaps.swap_remove(i);
            let reply = match result {
                Some(Ok(at)) => Json::obj(vec![
                    ("type", Json::str("swapped")),
                    ("id", swap.id.map_or(Json::Null, |i| Json::num(i as f64))),
                    ("epoch", Json::num(swap.epoch as f64)),
                    ("at_us", Json::num(at.as_micros() as f64)),
                ]),
                Some(Err(e)) => error_msg(swap.id, "swap-failed", e),
                None => error_msg(swap.id, "swap-failed", "engine exited before the install"),
            };
            self.push_msg_token(swap.conn, &reply);
        }
        any
    }

    fn push_msg(&mut self, idx: usize, msg: &Json) {
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
            conn.wbuf.extend_from_slice(&encode_frame(msg));
        }
    }

    /// Queue a message by connection token (async replies). Silently a
    /// no-op when the connection has since closed.
    fn push_msg_token(&mut self, token: u64, msg: &Json) {
        if let Some(conn) = self.conns.iter_mut().flatten().find(|c| c.token == token) {
            conn.wbuf.extend_from_slice(&encode_frame(msg));
        }
    }

    fn flush_all(&mut self) -> bool {
        let mut any = false;
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_mut() else {
                continue;
            };
            let mut dead = false;
            while !conn.wbuf.is_empty() {
                match conn.stream.write(&conn.wbuf) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        conn.wbuf.drain(..n);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if dead {
                self.drop_conn(idx);
            }
        }
        any
    }

    fn reap_closed(&mut self) {
        for idx in 0..self.conns.len() {
            let close = matches!(&self.conns[idx], Some(c) if c.closing && c.wbuf.is_empty());
            if close {
                self.drop_conn(idx);
            }
        }
    }

    fn drop_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            if let Some(slot) = conn.slot {
                self.slots[slot].bound = None;
                // Outstanding tickets stay queued: their completions pop
                // them in order and find the connection gone.
            }
        }
    }
}
