//! The engine side of the daemon: boots the cluster on its own thread
//! behind a [`LiveService`], owns the published-policy slot, and runs
//! the hot-swap pipeline (parse → validate → epoch → install).

use std::sync::mpsc::{channel, Receiver};
use std::thread::JoinHandle;

use mantle_core::policies;
use mantle_core::service::LIVE_POLL;
use mantle_mds::service::LiveService;
use mantle_mds::{Cluster, ClusterConfig, HookEngine, MantleBalancer, RunReport, ServiceHandle};
use mantle_policy::env::PolicySet;
use mantle_policy::install::{prepare, DecisionSource, PolicyCell, PolicySource};
use mantle_sim::SimTime;

use crate::config::DaemonConfig;
use crate::json::Json;

/// Balancer presets accepted by `--policy` and reported by `status`.
pub const PRESET_NAMES: &[&str] = &[
    "greedy-spill",
    "greedy-spill-even",
    "fill-and-spill",
    "adaptable",
    "adaptable-conservative",
    "cephfs-original",
];

/// Resolve a preset name to its compiled policy.
pub fn preset(name: &str) -> Option<PolicySet> {
    let set = match name {
        "greedy-spill" => policies::greedy_spill(),
        "greedy-spill-even" => policies::greedy_spill_even(),
        "fill-and-spill" => policies::fill_and_spill(0.10),
        "adaptable" => policies::adaptable(),
        "adaptable-conservative" => policies::adaptable_conservative(),
        "cephfs-original" => policies::cephfs_original(),
        _ => return None,
    };
    Some(set.expect("preset policies compile"))
}

/// Hard stop for live service: generous enough for any realistic daemon
/// session, small enough that a wedged engine cannot spin forever. The
/// batch default (60 simulated minutes) would cap a wall-paced daemon at
/// one real hour, so serve mode raises it.
const SERVE_MAX_DURATION: SimTime = SimTime::from_mins(24 * 60);

/// A running cluster engine: the daemon-facing half of
/// [`Cluster::serve`], plus the epoch-tagged policy slot.
pub struct Engine {
    /// Live command/event handle into the engine thread.
    pub handle: ServiceHandle,
    /// The currently-published policy (epoch 0 is the boot preset).
    pub cell: PolicyCell,
    report_rx: Receiver<RunReport>,
    thread: Option<JoinHandle<()>>,
}

impl Engine {
    /// Boot the cluster on a dedicated thread. The engine runs until
    /// [`ServiceHandle::shutdown`] closes the live queues (or the
    /// safety-net duration elapses), then delivers its final
    /// [`RunReport`] to [`Engine::finish`].
    pub fn start(cfg: &DaemonConfig) -> Result<Engine, String> {
        let set = preset(&cfg.policy).ok_or_else(|| {
            format!(
                "unknown policy preset `{}` (try: {PRESET_NAMES:?})",
                cfg.policy
            )
        })?;
        let (mut svc, handle) = LiveService::new(cfg.clock);
        let workload = svc.workload(cfg.sessions, LIVE_POLL);
        let name = cfg.policy.clone();
        let cell = PolicyCell::new(&name, set.clone());
        let mut ccfg = ClusterConfig::default()
            .with_mds(cfg.mds)
            .with_seed(cfg.seed);
        ccfg.max_duration = SERVE_MAX_DURATION;
        let trace = cfg.trace;
        let (tx, report_rx) = channel();
        // Balancers hold non-`Send` interpreter state, so the whole
        // cluster is built inside its thread; only `Send` inputs cross.
        let thread = std::thread::Builder::new()
            .name("mantled-engine".into())
            .spawn(move || {
                let cluster = Cluster::new(ccfg, workload, |_| {
                    Box::new(
                        MantleBalancer::new_unvalidated(name.clone(), set.clone())
                            .expect("preset policy was validated")
                            .with_engine(HookEngine::default()),
                    )
                });
                let (report, _timeline) = cluster.serve(svc, trace);
                let _ = tx.send(report);
            })
            .map_err(|e| format!("spawning engine thread: {e}"))?;
        Ok(Engine {
            handle,
            cell,
            report_rx,
            thread: Some(thread),
        })
    }

    /// Run the full hot-swap pipeline for a policy submitted over the
    /// admin socket: compile + validate (`prepare`), publish to the cell
    /// (assigning the next epoch), and hand the set to the engine, which
    /// installs it on every MDS in the coordinator's next exclusive
    /// step. Returns the assigned epoch and the engine's ack channel; a
    /// rejected policy returns `Err` and publishes nothing.
    pub fn swap(
        &self,
        src: &PolicySource,
    ) -> Result<(u64, Receiver<Result<SimTime, String>>), String> {
        let set = prepare(src).map_err(|e| e.to_string())?;
        let epoch = self.cell.install(&src.name, set.clone());
        let ack = self
            .handle
            .install_policy(&src.name, epoch, set, HookEngine::default());
        Ok((epoch, ack))
    }

    /// Whether the engine thread has already delivered its report (i.e.
    /// the run ended), without consuming it.
    pub fn finished(&self) -> bool {
        self.thread.as_ref().is_none_or(|t| t.is_finished())
    }

    /// Join the engine thread and return its final report. Call after
    /// [`ServiceHandle::shutdown`]; returns `None` only if the engine
    /// thread panicked.
    pub fn finish(mut self) -> Option<RunReport> {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.report_rx.try_recv().ok()
    }
}

/// Parse the `policy` object of a `policy-swap` admin request into a
/// [`PolicySource`]. Schema (see `PROTOCOL.md`): `name`, `metaload`,
/// `mdsload` strings; either `decision` or both `when` and `where`;
/// optional `howmuch` string array (default `["half"]`) and `howmany`
/// string.
pub fn policy_source_from_json(v: &Json) -> Result<PolicySource, String> {
    let field = |key: &str| {
        v.get_str(key)
            .map(str::to_string)
            .ok_or_else(|| format!("policy object is missing string field `{key}`"))
    };
    let decision = match v.get_str("decision") {
        Some(body) => {
            if v.get("when").is_some() || v.get("where").is_some() {
                return Err("give either `decision` or `when`+`where`, not both".into());
            }
            DecisionSource::Combined(body.to_string())
        }
        None => DecisionSource::Hooks {
            when: field("when")?,
            where_: field("where")?,
        },
    };
    let selectors = match v.get("howmuch") {
        None => vec!["half".to_string()],
        Some(Json::Arr(items)) => {
            let mut sels = Vec::new();
            for item in items {
                match item {
                    Json::Str(s) => sels.push(s.clone()),
                    _ => return Err("`howmuch` must be an array of strings".into()),
                }
            }
            if sels.is_empty() {
                return Err("`howmuch` must not be empty".into());
            }
            sels
        }
        Some(_) => return Err("`howmuch` must be an array of strings".into()),
    };
    let howmany = match v.get("howmany") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => return Err("`howmany` must be a string".into()),
    };
    Ok(PolicySource {
        name: field("name")?,
        metaload: field("metaload")?,
        mdsload: field("mdsload")?,
        decision,
        selectors,
        howmany,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn presets_resolve() {
        for name in PRESET_NAMES {
            assert!(preset(name).is_some(), "{name} missing");
        }
        assert!(preset("nope").is_none());
    }

    #[test]
    fn policy_json_parses_both_decision_forms() {
        let hooks = parse(
            r#"{"name":"g","metaload":"IWR","mdsload":"MDSs[i][\"all\"]",
                "when":"result = true","where":"targets[1] = 1",
                "howmuch":["half"],"howmany":"result = #MDSs"}"#,
        )
        .unwrap();
        let src = policy_source_from_json(&hooks).unwrap();
        assert!(matches!(src.decision, DecisionSource::Hooks { .. }));
        assert_eq!(src.howmany.as_deref(), Some("result = #MDSs"));

        let combined = parse(
            r#"{"name":"g","metaload":"IWR","mdsload":"MDSs[i][\"all\"]",
                "decision":"targets[1] = 0"}"#,
        )
        .unwrap();
        let src = policy_source_from_json(&combined).unwrap();
        assert!(matches!(src.decision, DecisionSource::Combined(_)));
        assert_eq!(src.selectors, vec!["half".to_string()]);
    }

    #[test]
    fn policy_json_rejects_bad_shapes() {
        for bad in [
            r#"{"metaload":"IWR","mdsload":"x","decision":"y"}"#,
            r#"{"name":"g","metaload":"IWR","mdsload":"x"}"#,
            r#"{"name":"g","metaload":"IWR","mdsload":"x","decision":"y","when":"z","where":"w"}"#,
            r#"{"name":"g","metaload":"IWR","mdsload":"x","decision":"y","howmuch":[]}"#,
            r#"{"name":"g","metaload":"IWR","mdsload":"x","decision":"y","howmuch":"half"}"#,
            r#"{"name":"g","metaload":"IWR","mdsload":"x","decision":"y","howmany":3}"#,
        ] {
            let v = parse(bad).unwrap();
            assert!(policy_source_from_json(&v).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn engine_boots_swaps_and_drains() {
        let cfg = DaemonConfig {
            clock: mantle_sim::ClockMode::Sim,
            sessions: 2,
            mds: 3,
            ..DaemonConfig::default()
        };
        let engine = Engine::start(&cfg).expect("engine boots");
        engine
            .handle
            .submit_op(0, "/live/a", mantle_namespace::OpKind::Create);
        let src = PolicySource {
            name: "swapped".into(),
            metaload: "IWR + IRD".into(),
            mdsload: "MDSs[i][\"all\"]".into(),
            decision: DecisionSource::Hooks {
                when: "result = MDSs[whoami][\"load\"] > total/#MDSs".into(),
                where_: "targets[1] = MDSs[whoami][\"load\"] - total/#MDSs".into(),
            },
            selectors: vec!["half".into()],
            howmany: None,
        };
        let (epoch, ack) = engine.swap(&src).expect("valid policy swaps");
        assert_eq!(epoch, 1);
        let at = ack
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("engine acks")
            .expect("install succeeds");
        assert!(at >= SimTime::ZERO);
        assert_eq!(engine.cell.current().name, "swapped");
        engine.handle.shutdown();
        let report = engine.finish().expect("engine delivers a report");
        assert_eq!(report.balancer, "swapped", "report names the live policy");
        assert!(report.total_ops() >= 1.0);
    }

    #[test]
    fn swap_rejects_invalid_policy_without_publishing() {
        let cfg = DaemonConfig {
            clock: mantle_sim::ClockMode::Sim,
            sessions: 1,
            mds: 2,
            ..DaemonConfig::default()
        };
        let engine = Engine::start(&cfg).expect("engine boots");
        let bad = PolicySource {
            name: "bad".into(),
            metaload: "IWR +".into(),
            mdsload: "MDSs[i][\"all\"]".into(),
            decision: DecisionSource::Combined("targets[1] = 0".into()),
            selectors: vec!["half".into()],
            howmany: None,
        };
        assert!(engine.swap(&bad).is_err());
        assert_eq!(engine.cell.epoch(), 0, "rejected policy must not publish");
        engine.handle.shutdown();
        engine.finish();
    }
}
