//! A minimal JSON value model, parser, and encoder.
//!
//! The workspace is dependency-free by design, and the trace subsystem
//! already hand-writes its JSONL ([`mantle_mds::trace`]); this module is
//! the matching *reader* side plus a general value type for the wire
//! protocol. It supports exactly standard JSON (RFC 8259): objects,
//! arrays, strings with `\uXXXX` escapes, numbers as `f64`, booleans,
//! `null`. Object member order is preserved (a `Vec`, not a map), so
//! encode∘parse is stable for PROTOCOL.md's round-trip fence checks.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int/float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, member order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String member by key.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Json::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Numeric member by key.
    pub fn get_num(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Json::Num(n)) => Some(*n),
            _ => None,
        }
    }

    /// Numeric member by key, as `u64` (floor).
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get_num(key).map(|n| n as u64)
    }

    /// Array member by key.
    pub fn get_arr(&self, key: &str) -> Option<&[Json]> {
        match self.get(key) {
            Some(Json::Arr(items)) => Some(items),
            _ => None,
        }
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("bad low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("bad code point"))?);
                            // `hex4` leaves `pos` on the char after the
                            // last digit; skip the outer `pos += 1`.
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction: we parse `&str`).
                    let s = &self.bytes[self.pos..];
                    let len = utf8_len(s[0]);
                    let chunk =
                        std::str::from_utf8(&s[..len]).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(s).map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

impl fmt::Display for Json {
    /// Compact canonical encoding: no whitespace, members in stored
    /// order, integers without a fractional part, other numbers in
    /// shortest-round-trip form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        for src in [
            r#"{"type":"op","id":1,"op":"create","path":"/a/b"}"#,
            r#"[1,2.5,-3,1e3,true,false,null,"x"]"#,
            r#"{"nested":{"deep":[{"k":"v"}]},"empty":{},"none":[]}"#,
            r#""esc \" \\ \n \t \u00e9 \ud83d\ude00""#,
        ] {
            let v = parse(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            let enc = v.to_string();
            assert_eq!(parse(&enc).unwrap(), v, "{src} changed across encode");
        }
    }

    #[test]
    fn rejects_malformed() {
        for src in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "\"\\ud800\"",
        ] {
            assert!(parse(src).is_err(), "{src:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"s":"x","n":3,"a":[1],"o":{"k":1}}"#).unwrap();
        assert_eq!(v.get_str("s"), Some("x"));
        assert_eq!(v.get_num("n"), Some(3.0));
        assert_eq!(v.get_u64("n"), Some(3));
        assert_eq!(v.get_arr("a").map(<[Json]>::len), Some(1));
        assert!(v.get("o").unwrap().get("k").is_some());
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn trace_records_parse() {
        // The hand-rolled trace encoder and this parser must agree: a
        // record's JSONL line is a valid document.
        use mantle_mds::{TraceEvent, TraceRecord};
        let rec = TraceRecord {
            at: mantle_sim::SimTime::from_millis(1500),
            epoch: 2,
            event: TraceEvent::PolicyInstalled {
                epoch: 1,
                name: "greedy \"v2\"".into(),
            },
        };
        let mut line = String::new();
        rec.write_json(&mut line);
        let v = parse(&line).expect("trace line parses");
        assert_eq!(v.get_str("ev"), Some("policy_installed"));
        assert_eq!(v.get_u64("install_epoch"), Some(1));
        assert_eq!(v.get_str("name"), Some("greedy \"v2\""));
    }
}
