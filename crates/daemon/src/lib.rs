//! `mantled`: the Mantle cluster as a long-running service.
//!
//! The batch harness ([`mantle_core`]) runs an experiment to completion
//! and prints a report; this crate runs the *same engine* continuously
//! behind a TCP wire protocol. Real client connections issue metadata
//! ops over length-prefixed JSON frames, an admin endpoint performs
//! **hot policy reload** (validate → compile → epoch-tagged atomic
//! install, with in-flight decisions finishing on the old policy), and
//! the trace subsystem streams live to `trace`-role subscribers.
//!
//! The split, layer by layer:
//!
//! * [`json`] / [`wire`] — a dependency-free JSON codec and the framed
//!   protocol documented in `PROTOCOL.md`;
//! * [`config`] — `mantled`'s flags and defaults;
//! * [`engine`] — boots [`Cluster::serve`](mantle_mds::Cluster::serve)
//!   on its own thread and owns the
//!   [`PolicyCell`](mantle_policy::install::PolicyCell) swap pipeline;
//! * [`server`] — the nonblocking `std::net` reactor tying sockets to
//!   the engine's command inbox and event stream;
//! * [`client`] — a blocking protocol client (`mantlectl`, smoke tests).
//!
//! Determinism is preserved across the daemon boundary: with
//! `--clock=sim` and no live traffic, a scenario run through the
//! service path is byte-identical to the batch harness (pinned by
//! `tests/daemon_equivalence.rs` at the workspace root). `--clock=wall`
//! maps the same virtual timeline onto real time without feeding wall
//! time back into the engine, so event *order* stays deterministic even
//! live — see `DESIGN.md` §18.

#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod engine;
pub mod json;
pub mod server;
pub mod wire;

pub use client::MantleClient;
pub use config::DaemonConfig;
pub use engine::Engine;
pub use json::Json;
pub use server::Server;
