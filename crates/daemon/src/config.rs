//! Daemon configuration: defaults plus `--key=value` command-line
//! parsing (the workspace is dependency-free, so flags are hand-parsed).

use mantle_mds::TraceLevel;
use mantle_sim::ClockMode;

/// Everything `mantled` needs to boot, with operational defaults.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address (`--addr`), e.g. `127.0.0.1:7717`. Port 0 binds an
    /// ephemeral port; the chosen address is printed on stdout as
    /// `listening <addr>` so scripts (and the smoke test) can find it.
    pub addr: String,
    /// Live client session slots (`--sessions`): the maximum number of
    /// concurrently connected op-issuing clients.
    pub sessions: usize,
    /// MDS count (`--mds`).
    pub mds: usize,
    /// Deterministic seed (`--seed`).
    pub seed: u64,
    /// Engine pacing (`--clock=wall|sim`). `wall` maps simulated time
    /// onto real time for live service; `sim` runs as fast as possible
    /// (scenario runs, tests).
    pub clock: ClockMode,
    /// Trace stream level (`--trace=decisions|full|off`). `off` disables
    /// the trace subsystem; trace-role subscribers then receive nothing.
    pub trace: Option<TraceLevel>,
    /// Boot balancer preset (`--policy`), one of
    /// [`crate::engine::PRESET_NAMES`].
    pub policy: String,
    /// Run one named scenario and exit (`--scenario=<name>`) instead of
    /// serving; see [`mantle_core::service::SCENARIO_NAMES`].
    pub scenario: Option<String>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:7717".into(),
            sessions: 16,
            mds: 4,
            seed: 42,
            clock: ClockMode::Wall,
            trace: Some(TraceLevel::Decisions),
            policy: "greedy-spill".into(),
            scenario: None,
        }
    }
}

impl DaemonConfig {
    /// Parse `--key=value` arguments over the defaults. Unknown keys and
    /// unparseable values are errors (returned as the usage string).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<DaemonConfig, String> {
        let mut cfg = DaemonConfig::default();
        for arg in args {
            let Some((key, value)) = arg.strip_prefix("--").and_then(|a| a.split_once('=')) else {
                return Err(format!("unrecognized argument `{arg}`\n{USAGE}"));
            };
            let bad = |what: &str| format!("bad --{what} value `{value}`\n{USAGE}");
            match key {
                "addr" => cfg.addr = value.to_string(),
                "sessions" => cfg.sessions = value.parse().map_err(|_| bad("sessions"))?,
                "mds" => cfg.mds = value.parse().map_err(|_| bad("mds"))?,
                "seed" => cfg.seed = value.parse().map_err(|_| bad("seed"))?,
                "clock" => cfg.clock = ClockMode::parse(value).ok_or_else(|| bad("clock"))?,
                "trace" => {
                    cfg.trace = match value {
                        "off" => None,
                        lvl => Some(TraceLevel::parse(lvl).ok_or_else(|| bad("trace"))?),
                    }
                }
                "policy" => cfg.policy = value.to_string(),
                "scenario" => cfg.scenario = Some(value.to_string()),
                _ => return Err(format!("unknown flag `--{key}`\n{USAGE}")),
            }
        }
        if cfg.sessions == 0 || cfg.mds == 0 {
            return Err(format!("--sessions and --mds must be at least 1\n{USAGE}"));
        }
        Ok(cfg)
    }
}

/// `mantled --help` text.
pub const USAGE: &str = "usage: mantled [--addr=HOST:PORT] [--sessions=N] [--mds=N] [--seed=N]
               [--clock=wall|sim] [--trace=decisions|full|off]
               [--policy=PRESET] [--scenario=NAME]";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<DaemonConfig, String> {
        DaemonConfig::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_overrides() {
        let cfg = parse(&[]).unwrap();
        assert_eq!(cfg.mds, 4);
        assert_eq!(cfg.clock, ClockMode::Wall);
        let cfg = parse(&[
            "--addr=127.0.0.1:0",
            "--sessions=2",
            "--mds=3",
            "--seed=7",
            "--clock=sim",
            "--trace=full",
            "--policy=adaptable",
        ])
        .unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!((cfg.sessions, cfg.mds, cfg.seed), (2, 3, 7));
        assert_eq!(cfg.clock, ClockMode::Sim);
        assert_eq!(cfg.trace, Some(TraceLevel::Full));
        assert_eq!(cfg.policy, "adaptable");
        assert_eq!(parse(&["--trace=off"]).unwrap().trace, None);
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(parse(&["--mds"]).is_err());
        assert!(parse(&["--mds=zero"]).is_err());
        assert!(parse(&["--mds=0"]).is_err());
        assert!(parse(&["--wat=1"]).is_err());
        assert!(parse(&["positional"]).is_err());
        assert!(parse(&["--clock=lunar"]).is_err());
    }
}
