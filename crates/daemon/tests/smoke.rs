//! End-to-end smoke test over a real socket: start `mantled` on an
//! ephemeral loopback port, drive metadata ops from a wire client,
//! hot-swap the policy through the admin socket, watch the install epoch
//! appear in the live trace stream, then shut down cleanly and check the
//! final report. This is the CI "daemon smoke" step.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use mantle_daemon::json::Json;
use mantle_daemon::MantleClient;

struct Daemon {
    child: Child,
    addr: String,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_mantled"))
            .arg("--addr=127.0.0.1:0")
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("mantled spawns");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("mantled announces");
        let addr = line
            .trim()
            .strip_prefix("listening ")
            .unwrap_or_else(|| panic!("unexpected announce line: {line:?}"))
            .to_string();
        Daemon {
            child,
            addr,
            stdout,
        }
    }

    /// Wait for exit; returns (exit ok, remaining stdout).
    fn finish(mut self) -> (bool, String) {
        let mut rest = String::new();
        let mut buf = String::new();
        while self.stdout.read_line(&mut buf).unwrap_or(0) > 0 {
            rest.push_str(&buf);
            buf.clear();
        }
        let status = self.child.wait().expect("mantled reaped");
        (status.success(), rest)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Belt-and-braces: never leave a daemon behind if an assert fired.
        let _ = self.child.kill();
    }
}

fn swap_bundle() -> Json {
    mantle_daemon::json::parse(
        r#"{
          "name": "greedy-smoke-v2",
          "metaload": "IWR + IRD",
          "mdsload": "MDSs[i][\"all\"]",
          "when": "result = MDSs[whoami][\"load\"] > total/#MDSs",
          "where": "targets[1] = MDSs[whoami][\"load\"] - total/#MDSs",
          "howmuch": ["half"]
        }"#,
    )
    .expect("bundle parses")
}

#[test]
fn daemon_serves_swaps_and_drains() {
    let daemon = Daemon::spawn(&[
        "--sessions=4",
        "--mds=3",
        "--clock=wall",
        "--trace=decisions",
    ]);

    // Subscribe to the trace stream before the swap so the install
    // record must pass through it.
    let mut trace = MantleClient::connect(&daemon.addr, "trace").expect("trace role connects");

    // A client issues ops and gets routed replies back.
    let mut client = MantleClient::connect(&daemon.addr, "client").expect("client role connects");
    assert_eq!(client.slot(), Some(0), "first client gets slot 0");
    for i in 0..8 {
        let reply = client
            .op(if i % 2 == 0 { "create" } else { "stat" }, "/smoke/dir")
            .expect("op round-trips");
        assert_eq!(reply.get_str("status"), Some("ok"), "reply: {reply}");
        assert!(reply.get_num("mds").is_some(), "reply names an MDS");
    }

    // Admin: status reflects the boot policy, then a hot swap bumps it.
    let mut admin = MantleClient::connect(&daemon.addr, "admin").expect("admin role connects");
    let status = admin.admin("status", vec![]).expect("status");
    assert_eq!(status.get_str("policy"), Some("greedy-spill"));
    assert_eq!(status.get_u64("epoch"), Some(0));
    assert!(status.get_num("ops_completed").unwrap_or(0.0) >= 8.0);

    let swapped = admin
        .admin("policy-swap", vec![("policy", swap_bundle())])
        .expect("swap round-trips");
    assert_eq!(swapped.get_str("type"), Some("swapped"), "swap: {swapped}");
    assert_eq!(swapped.get_u64("epoch"), Some(1));

    // A rejected policy must fail validation and leave the epoch alone.
    let mut bad = swap_bundle();
    if let Json::Obj(members) = &mut bad {
        members.retain(|(k, _)| k != "metaload");
        members.push(("metaload".into(), Json::str("IWR +")));
    }
    let rejected = admin
        .admin("policy-swap", vec![("policy", bad)])
        .expect("rejection round-trips");
    assert_eq!(rejected.get_str("type"), Some("error"));
    assert_eq!(rejected.get_str("code"), Some("policy-rejected"));

    let shown = admin.admin("policy-show", vec![]).expect("policy-show");
    assert_eq!(shown.get_str("name"), Some("greedy-smoke-v2"));
    assert_eq!(shown.get_u64("epoch"), Some(1));

    // Ops keep flowing on the new policy.
    let reply = client
        .op("mkdir", "/smoke/after-swap")
        .expect("post-swap op");
    assert_eq!(reply.get_str("status"), Some("ok"));

    // The install epoch is visible in the live trace stream.
    let mut saw_install = false;
    for _ in 0..10_000 {
        let record = trace
            .recv()
            .expect("trace stream alive")
            .expect("stream open until shutdown");
        if record.get_str("ev") == Some("policy_installed") {
            assert_eq!(record.get_u64("install_epoch"), Some(1));
            assert_eq!(record.get_str("name"), Some("greedy-smoke-v2"));
            saw_install = true;
            break;
        }
    }
    assert!(
        saw_install,
        "policy_installed record reached the subscriber"
    );

    // Clean shutdown: daemon drains, exits 0, prints the final report.
    let ok = admin.admin("shutdown", vec![]).expect("shutdown acked");
    assert_eq!(ok.get_str("type"), Some("ok"));
    let (success, rest) = daemon.finish();
    assert!(success, "mantled exits cleanly");
    let report_line = rest
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("final report printed");
    let report = mantle_daemon::json::parse(report_line).expect("report is json");
    assert_eq!(report.get_str("type"), Some("report"));
    assert_eq!(
        report.get_str("balancer"),
        Some("greedy-smoke-v2"),
        "report names the hot-swapped policy"
    );
    assert!(report.get_num("total_ops").unwrap_or(0.0) >= 9.0);
}

#[test]
fn scenario_mode_runs_one_shot() {
    let out = Command::new(env!("CARGO_BIN_EXE_mantled"))
        .arg("--scenario=static-spread")
        .output()
        .expect("mantled runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf-8 report");
    let report = mantle_daemon::json::parse(text.trim()).expect("report is json");
    assert_eq!(report.get_str("balancer"), Some("none"));
    assert_eq!(report.get_num("total_ops"), Some(1600.0));
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let daemon = Daemon::spawn(&["--sessions=1", "--mds=2", "--clock=wall"]);

    // Unknown admin verb → typed error, connection stays usable.
    let mut admin = MantleClient::connect(&daemon.addr, "admin").expect("admin connects");
    let err = admin.admin("frobnicate", vec![]).expect("error reply");
    assert_eq!(err.get_str("code"), Some("bad-admin"));
    let status = admin.admin("status", vec![]).expect("still usable");
    assert_eq!(status.get_str("type"), Some("status"));

    // Slot exhaustion: --sessions=1 means the second client is refused.
    let _first = MantleClient::connect(&daemon.addr, "client").expect("first client fits");
    let refused = MantleClient::connect(&daemon.addr, "client");
    assert!(refused.is_err(), "second client must be refused");

    // Unknown scenario → typed error.
    let err = admin
        .admin("scenario", vec![("name", Json::str("nope"))])
        .expect("error reply");
    assert_eq!(err.get_str("code"), Some("unknown-scenario"));

    let ok = admin.admin("shutdown", vec![]).expect("shutdown");
    assert_eq!(ok.get_str("type"), Some("ok"));
    let (success, _) = daemon.finish();
    assert!(success);
}
