//! Runtime values: Lua-style dynamic values with 1-based tables.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::error::{PolicyError, PolicyResult};
use crate::interp::Interpreter;

/// A host (native) function callable from scripts.
pub type NativeFn = Rc<dyn Fn(&mut Interpreter, &[Value]) -> PolicyResult<Value>>;

/// A runtime value.
#[derive(Clone)]
pub enum Value {
    /// `nil`
    Nil,
    /// Boolean.
    Bool(bool),
    /// Number (f64, as in Lua 5.1).
    Number(f64),
    /// Immutable string.
    Str(Rc<str>),
    /// Mutable shared table.
    Table(Rc<RefCell<Table>>),
    /// Host function.
    Native(&'static str, NativeFn),
}

impl Value {
    /// Make a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Make a number value.
    pub fn num(n: f64) -> Value {
        Value::Number(n)
    }

    /// Wrap a table.
    pub fn table(t: Table) -> Value {
        Value::Table(Rc::new(RefCell::new(t)))
    }

    /// Lua truthiness: only `nil` and `false` are false.
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Nil | Value::Bool(false))
    }

    /// The value's type name (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::Str(_) => "string",
            Value::Table(_) => "table",
            Value::Native(..) => "function",
        }
    }

    /// Numeric view, with Lua's string→number coercion.
    pub fn as_number(&self, line: u32) -> PolicyResult<f64> {
        match self {
            Value::Number(n) => Ok(*n),
            Value::Str(s) => s.trim().parse::<f64>().map_err(|_| {
                PolicyError::runtime(line, format!("cannot convert string '{s}' to number"))
            }),
            other => Err(PolicyError::runtime(
                line,
                format!("expected a number, got {}", other.type_name()),
            )),
        }
    }

    /// String view for messages / keys (numbers format like Lua).
    pub fn display_string(&self) -> String {
        match self {
            Value::Nil => "nil".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Number(n) => fmt_number(*n),
            Value::Str(s) => s.to_string(),
            Value::Table(_) => "table".to_string(),
            Value::Native(name, _) => format!("function: {name}"),
        }
    }

    /// Lua `==` semantics (no coercion across types).
    pub fn lua_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Table(a), Value::Table(b)) => Rc::ptr_eq(a, b),
            (Value::Native(_, a), Value::Native(_, b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Format a number the way Lua prints it: integers without a decimal point.
pub fn fmt_number(n: f64) -> String {
    if n.is_finite() && n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Table(t) => write!(f, "Table({:p})", Rc::as_ptr(t)),
            Value::Native(name, _) => write!(f, "Native({name})"),
            other => write!(f, "{}", other.display_string()),
        }
    }
}

/// A table key: integers and strings (floats with integral values are
/// normalized to integers, as Lua effectively does for array usage).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Key {
    /// Integer key (array part when ≥ 1).
    Int(i64),
    /// String key.
    Str(Rc<str>),
}

impl Key {
    /// Convert a value to a key. Floats must be integral; nil is invalid.
    pub fn from_value(v: &Value, line: u32) -> PolicyResult<Key> {
        match v {
            Value::Number(n) => {
                if n.fract() == 0.0 && n.is_finite() {
                    Ok(Key::Int(*n as i64))
                } else {
                    Err(PolicyError::runtime(
                        line,
                        format!("table index must be an integer, got {n}"),
                    ))
                }
            }
            Value::Str(s) => Ok(Key::Str(s.clone())),
            Value::Nil => Err(PolicyError::runtime(line, "table index is nil")),
            other => Err(PolicyError::runtime(
                line,
                format!("invalid table key type: {}", other.type_name()),
            )),
        }
    }
}

/// A Lua-style table: hybrid array (1-based dense prefix) + hash map.
#[derive(Default, Clone)]
pub struct Table {
    map: HashMap<Key, Value>,
}

impl Table {
    /// Empty table.
    pub fn new() -> Table {
        Table::default()
    }

    /// Build from an iterator of string-keyed fields.
    pub fn from_fields<I, S>(fields: I) -> Table
    where
        I: IntoIterator<Item = (S, Value)>,
        S: AsRef<str>,
    {
        let mut t = Table::new();
        for (k, v) in fields {
            t.set(Key::Str(Rc::from(k.as_ref())), v);
        }
        t
    }

    /// Build an array table from values (1-based).
    pub fn from_array<I>(items: I) -> Table
    where
        I: IntoIterator<Item = Value>,
    {
        let mut t = Table::new();
        for (i, v) in items.into_iter().enumerate() {
            t.set(Key::Int(i as i64 + 1), v);
        }
        t
    }

    /// Get by key; absent keys are `nil`.
    pub fn get(&self, key: &Key) -> Value {
        self.map.get(key).cloned().unwrap_or(Value::Nil)
    }

    /// Get a string-keyed field.
    pub fn get_str(&self, key: &str) -> Value {
        self.map
            .get(&Key::Str(Rc::from(key)))
            .cloned()
            .unwrap_or(Value::Nil)
    }

    /// Get an integer-keyed element.
    pub fn get_int(&self, i: i64) -> Value {
        self.map.get(&Key::Int(i)).cloned().unwrap_or(Value::Nil)
    }

    /// Set; assigning `nil` deletes the key (Lua semantics).
    pub fn set(&mut self, key: Key, value: Value) {
        match value {
            Value::Nil => {
                self.map.remove(&key);
            }
            v => {
                self.map.insert(key, v);
            }
        }
    }

    /// Set a string-keyed field.
    pub fn set_str(&mut self, key: &str, value: Value) {
        self.set(Key::Str(Rc::from(key)), value);
    }

    /// Set an integer-keyed element.
    pub fn set_int(&mut self, i: i64, value: Value) {
        self.set(Key::Int(i), value);
    }

    /// Remove every entry, keeping the allocated capacity. Lets callers
    /// reuse one table across runs instead of reallocating — observationally
    /// identical to a fresh table since keys are compared by content.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// The `#` border: length of the dense 1-based integer prefix.
    pub fn len(&self) -> i64 {
        let mut n = 0;
        while self.map.contains_key(&Key::Int(n + 1)) {
            n += 1;
        }
        n
    }

    /// True when the table has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total entry count (array + hash parts).
    pub fn entry_count(&self) -> usize {
        self.map.len()
    }

    /// Iterate all `(key, value)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.map.iter()
    }

    /// Collect the dense array part (indices 1..=len) as a Vec.
    pub fn to_vec(&self) -> Vec<Value> {
        (1..=self.len()).map(|i| self.get_int(i)).collect()
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Table[{} entries]", self.map.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Nil.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(Value::Number(0.0).truthy(), "0 is truthy in Lua");
        assert!(Value::str("").truthy(), "empty string is truthy in Lua");
    }

    #[test]
    fn number_coercion() {
        assert_eq!(Value::str(" 42 ").as_number(1).unwrap(), 42.0);
        assert!(Value::str("xyz").as_number(1).is_err());
        assert!(Value::Nil.as_number(1).is_err());
    }

    #[test]
    fn lua_equality() {
        assert!(Value::num(2.0).lua_eq(&Value::num(2.0)));
        assert!(
            !Value::num(2.0).lua_eq(&Value::str("2")),
            "no cross-type eq"
        );
        let t1 = Value::table(Table::new());
        let t2 = t1.clone();
        assert!(t1.lua_eq(&t2), "tables compare by identity");
        assert!(!t1.lua_eq(&Value::table(Table::new())));
    }

    #[test]
    fn table_len_is_dense_prefix() {
        let mut t = Table::new();
        t.set_int(1, Value::num(10.0));
        t.set_int(2, Value::num(20.0));
        t.set_int(4, Value::num(40.0));
        assert_eq!(t.len(), 2, "gap at 3 stops the border");
        t.set_int(3, Value::num(30.0));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn nil_assignment_deletes() {
        let mut t = Table::new();
        t.set_str("x", Value::num(1.0));
        t.set_str("x", Value::Nil);
        assert!(matches!(t.get_str("x"), Value::Nil));
        assert!(t.is_empty());
    }

    #[test]
    fn float_keys_normalize() {
        let k = Key::from_value(&Value::num(3.0), 1).unwrap();
        assert_eq!(k, Key::Int(3));
        assert!(Key::from_value(&Value::num(3.5), 1).is_err());
        assert!(Key::from_value(&Value::Nil, 1).is_err());
    }

    #[test]
    fn from_array_and_to_vec() {
        let t = Table::from_array([Value::num(1.0), Value::num(2.0)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.to_vec().len(), 2);
        assert_eq!(t.get_int(1).as_number(0).unwrap(), 1.0);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_number(3.0), "3");
        assert_eq!(fmt_number(3.5), "3.5");
        assert_eq!(fmt_number(-0.25), "-0.25");
    }
}
