//! The Mantle balancer environment (the paper's Table 2) and the runtime
//! that drives the four policy hooks against it.
//!
//! Per Table 2, an injected script sees:
//!
//! | global | meaning |
//! |---|---|
//! | `whoami` | current MDS (1-based, Lua style) |
//! | `authmetaload` | metadata load on this MDS's authority subtrees |
//! | `allmetaload` | metadata load on all subtrees it knows about |
//! | `IRD`, `IWR` | decayed inode reads/writes of the fragment under consideration |
//! | `READDIR`, `FETCH`, `STORE` | decayed readdirs / RADOS fetches / stores |
//! | `MDSs[i]["auth"/"all"/"cpu"/"mem"/"q"/"req"/"load"]` | per-MDS heartbeat metrics |
//! | `total` | sum of `MDSs[i]["load"]` |
//! | `targets[i]` | *output*: load to send to MDS `i` |
//! | `WRstate(s)` / `RDstate()` | persist state across balancer ticks |
//! | `max(a,b)` / `min(a,b)` | numeric helpers |

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::ast::Script;
use crate::error::{PolicyError, PolicyResult};
use crate::interp::{Interpreter, StepBudget};
use crate::parser::{parse_expression_script, parse_script, parse_when};
use crate::slots::{ScalarMetaload, SlotProgram, SlotVm};
use crate::stdlib;
use crate::value::{Table, Value};

/// Decayed popularity counters for one dirfrag/subtree — the inputs to the
/// `metaload` hook.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FragMetrics {
    /// Inode reads (decayed).
    pub ird: f64,
    /// Inode writes (decayed).
    pub iwr: f64,
    /// Directory listings (decayed).
    pub readdir: f64,
    /// Fetches from the object store (decayed).
    pub fetch: f64,
    /// Stores to the object store (decayed).
    pub store: f64,
}

/// One MDS's heartbeat metrics — the inputs to the `mdsload` hook.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MdsMetrics {
    /// Metadata load on subtrees this MDS is the authority for.
    pub auth: f64,
    /// Metadata load on all subtrees it knows about (incl. replicas).
    pub all: f64,
    /// CPU utilization, percent.
    pub cpu: f64,
    /// Memory utilization, percent.
    pub mem: f64,
    /// Requests waiting in the queue.
    pub q: f64,
    /// Request rate, req/s.
    pub req: f64,
}

/// Everything the balancer on one MDS knows when it runs: its identity and
/// the (possibly stale) heartbeat metrics for the whole cluster.
#[derive(Debug, Clone, Default)]
pub struct BalancerInputs {
    /// This MDS's index, 0-based (converted to Lua's 1-based inside).
    pub whoami: usize,
    /// Per-MDS metrics, indexed by MDS id.
    pub mds: Vec<MdsMetrics>,
    /// Metadata load on this MDS's authority subtrees.
    pub auth_metaload: f64,
    /// Metadata load on all subtrees this MDS knows about.
    pub all_metaload: f64,
}

/// The decision a balancer run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct BalancerOutcome {
    /// `mdsload` evaluated per MDS.
    pub mds_loads: Vec<f64>,
    /// Sum of the loads.
    pub total: f64,
    /// Whether the `when` hook fired.
    pub migrate: bool,
    /// `targets[i]`: load to export to MDS `i` (0-based; 0.0 when none).
    pub targets: Vec<f64>,
}

impl BalancerOutcome {
    /// A no-migration outcome.
    pub fn idle(n: usize) -> Self {
        BalancerOutcome {
            mds_loads: vec![0.0; n],
            total: 0.0,
            migrate: false,
            targets: vec![0.0; n],
        }
    }
}

/// Persistent state for `WRstate`/`RDstate`, keyed per MDS.
///
/// The paper implements this with temporary files and names RADOS objects
/// as future work; this trait is that pluggable point.
pub trait StateStore {
    /// Save `value` for `mds`.
    fn write(&mut self, mds: usize, value: f64);
    /// Read the last saved value for `mds` (0.0 when none — the listings
    /// compare `RDstate()` numerically on first run).
    fn read(&self, mds: usize) -> f64;
    /// Drop all state.
    fn clear(&mut self);
}

/// In-memory state store (the default).
#[derive(Debug, Default, Clone)]
pub struct MemoryStateStore {
    slots: HashMap<usize, f64>,
}

impl StateStore for MemoryStateStore {
    fn write(&mut self, mds: usize, value: f64) {
        self.slots.insert(mds, value);
    }
    fn read(&self, mds: usize) -> f64 {
        self.slots.get(&mds).copied().unwrap_or(0.0)
    }
    fn clear(&mut self) {
        self.slots.clear();
    }
}

/// File-backed state store — the paper's actual prototype mechanism
/// ("implemented using temporary files", §3.1).
#[derive(Debug)]
pub struct FileStateStore {
    dir: std::path::PathBuf,
}

impl FileStateStore {
    /// Store state under `dir` (created if missing).
    pub fn new(dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileStateStore { dir })
    }

    fn path(&self, mds: usize) -> std::path::PathBuf {
        self.dir.join(format!("mantle-state-mds{mds}"))
    }
}

impl StateStore for FileStateStore {
    fn write(&mut self, mds: usize, value: f64) {
        // Balancer state is advisory; losing it degrades to the cold-start
        // behaviour, so IO errors are swallowed just like the prototype.
        let _ = std::fs::write(self.path(mds), value.to_string());
    }
    fn read(&self, mds: usize) -> f64 {
        std::fs::read_to_string(self.path(mds))
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0.0)
    }
    fn clear(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
        let _ = std::fs::create_dir_all(&self.dir);
    }
}

/// How the `when`/`where` decisions are expressed.
#[derive(Debug, Clone)]
pub enum Decision {
    /// Separate `when` (predicate) and `where` (fills `targets[]`) hooks —
    /// the paper's §3.2 API.
    Hooks {
        /// The `mds_bal_when` script; its result's truthiness decides.
        when: Script,
        /// The `mds_bal_where` script; runs only when `when` fired.
        where_: Script,
    },
    /// One combined script that conditionally fills `targets[]` — the form
    /// of Listings 1–3. Migration happens iff some target is positive.
    Combined(Script),
}

/// A full set of compiled balancer policies.
#[derive(Debug, Clone)]
pub struct PolicySet {
    /// `mds_bal_metaload`: load of one dirfrag from its counters.
    pub metaload: Script,
    /// `mds_bal_mdsload`: load of MDS `i` from `MDSs[i]` metrics.
    pub mdsload: Script,
    /// when/where.
    pub decision: Decision,
    /// `mds_bal_howmuch`: dirfrag selector names, tried in order.
    pub howmuch: Vec<String>,
    /// Policy-defined dirfrag selectors: `(name, compiled script)`. The
    /// paper's §3.2 feeds the balancer "an external Lua file with a list
    /// of strategies"; this is that list, generalized so policies can ship
    /// strategies beyond the four built-ins. Referenced from `howmuch` by
    /// name.
    pub custom_selectors: Vec<(String, Script)>,
}

impl PolicySet {
    /// Compile a policy set from hook sources (the `ceph tell mds.N
    /// injectargs` form of §3.1).
    pub fn from_hooks(
        metaload: &str,
        mdsload: &str,
        when: &str,
        where_: &str,
        howmuch: &[&str],
    ) -> PolicyResult<PolicySet> {
        Ok(PolicySet {
            metaload: parse_expression_script(metaload)?,
            mdsload: parse_expression_script(mdsload)?,
            decision: Decision::Hooks {
                when: parse_when(when)?,
                where_: parse_script(where_)?,
            },
            howmuch: howmuch.iter().map(|s| s.to_string()).collect(),
            custom_selectors: Vec::new(),
        })
    }

    /// Compile a policy set whose when/where is a single combined script
    /// (the form of the paper's listings).
    pub fn from_combined(
        metaload: &str,
        mdsload: &str,
        whenwhere: &str,
        howmuch: &[&str],
    ) -> PolicyResult<PolicySet> {
        Ok(PolicySet {
            metaload: parse_expression_script(metaload)?,
            mdsload: parse_expression_script(mdsload)?,
            decision: Decision::Combined(parse_script(whenwhere)?),
            howmuch: howmuch.iter().map(|s| s.to_string()).collect(),
            custom_selectors: Vec::new(),
        })
    }

    /// Attach a policy-defined dirfrag selector (referenced from the
    /// `howmuch` list by `name`). The script sees `loads` (1-based array)
    /// and `target`, and returns a table of 1-based indices to ship.
    pub fn with_custom_selector(mut self, name: &str, src: &str) -> PolicyResult<Self> {
        let script = parse_script(src)?;
        self.custom_selectors.push((name.to_string(), script));
        if !self.howmuch.iter().any(|n| n == name) {
            self.howmuch.push(name.to_string());
        }
        Ok(self)
    }
}

/// Slot indices of the Table-2 environment names one compiled hook
/// references (`None` when the script never mentions the name, in which
/// case the runtime skips the write entirely).
#[derive(Debug, Default)]
struct EnvSlots {
    whoami: Option<usize>,
    i: Option<usize>,
    mdss: Option<usize>,
    total: Option<usize>,
    targets: Option<usize>,
    authmetaload: Option<usize>,
    allmetaload: Option<usize>,
    ird: Option<usize>,
    iwr: Option<usize>,
    readdir: Option<usize>,
    fetch: Option<usize>,
    store: Option<usize>,
}

/// One policy hook, slot-compiled at [`MantleRuntime`] construction and
/// reused for every invocation: resetting the environment between runs is a
/// `clone_from_slice` over the global frame plus a handful of slot writes —
/// no interpreter construction, no name hashing, no `String` allocation.
struct CompiledHook {
    prog: SlotProgram,
    /// Base global frame: host functions (stdlib, `WRstate`/`RDstate`) at
    /// their slots, `Nil` everywhere else.
    base: Vec<Value>,
    env: EnvSlots,
    vm: RefCell<SlotVm>,
}

impl CompiledHook {
    fn compile(script: &Script, host: &Interpreter, budget: StepBudget) -> CompiledHook {
        let prog = SlotProgram::compile(script);
        let base = prog
            .global_names()
            .iter()
            .map(|name| host.get_global(name))
            .collect();
        let slot = |name: &str| prog.global_slot(name);
        let env = EnvSlots {
            whoami: slot("whoami"),
            i: slot("i"),
            mdss: slot("MDSs"),
            total: slot("total"),
            targets: slot("targets"),
            authmetaload: slot("authmetaload"),
            allmetaload: slot("allmetaload"),
            ird: slot("IRD"),
            iwr: slot("IWR"),
            readdir: slot("READDIR"),
            fetch: slot("FETCH"),
            store: slot("STORE"),
        };
        let vm = RefCell::new(SlotVm::new(&prog, budget));
        CompiledHook {
            prog,
            base,
            env,
            vm,
        }
    }

    /// Reset the environment to the base image, apply `setup`, execute.
    fn run(&self, setup: impl FnOnce(&EnvSlots, &mut SlotVm)) -> PolicyResult<Value> {
        let mut vm = self.vm.borrow_mut();
        vm.reset_globals(&self.base);
        setup(&self.env, &mut vm);
        vm.run(&self.prog)
    }
}

/// Write a value to an environment slot the hook actually references.
fn set_slot(vm: &mut SlotVm, slot: Option<usize>, value: Value) {
    if let Some(s) = slot {
        vm.set_global(s, value);
    }
}

enum CompiledDecision {
    // Boxed to keep the enum's two variants close in size.
    Hooks {
        when: Box<CompiledHook>,
        where_: Box<CompiledHook>,
    },
    Combined(Box<CompiledHook>),
}

struct CompiledHooks {
    metaload: CompiledHook,
    mdsload: CompiledHook,
    decision: CompiledDecision,
}

/// Executes a [`PolicySet`] against [`BalancerInputs`] — the bridge between
/// the MDS (which collects metrics and performs migrations) and the policy
/// scripts (which decide).
///
/// Hooks are compiled to slot programs once, at construction (see
/// [`crate::slots`]); each invocation reuses the compiled program and its
/// VM. A `metaload` hook that is a linear combination of the five counters
/// additionally compiles to a [`ScalarMetaload`] evaluated without touching
/// the VM at all. [`Self::with_force_slow_path`] disables both and runs the
/// original tree-walking interpreter — the two paths are bit-identical (the
/// differential tests pin this), so the switch exists for benchmarks and
/// differential testing only.
pub struct MantleRuntime {
    policy: PolicySet,
    state: Rc<RefCell<dyn StateStore>>,
    budget: StepBudget,
    /// Which MDS's persistent state `WRstate`/`RDstate` touch. The compiled
    /// hooks' host functions are built once and close over this cell; the
    /// runtime sets it at each entry point instead of rebuilding closures.
    whoami_cell: Rc<Cell<usize>>,
    hooks: CompiledHooks,
    metaload_scalar: Option<ScalarMetaload>,
    force_slow_path: bool,
}

impl fmt::Debug for MantleRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MantleRuntime")
            .field("policy", &self.policy)
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

impl MantleRuntime {
    /// Build a runtime with an in-memory state store.
    pub fn new(policy: PolicySet) -> Self {
        Self::build(
            policy,
            Rc::new(RefCell::new(MemoryStateStore::default())),
            StepBudget::default(),
            false,
        )
    }

    fn build(
        policy: PolicySet,
        state: Rc<RefCell<dyn StateStore>>,
        budget: StepBudget,
        force_slow_path: bool,
    ) -> Self {
        let whoami_cell = Rc::new(Cell::new(0usize));
        let host = Self::host_env(&state, &whoami_cell, budget);
        let metaload_scalar = ScalarMetaload::extract(&policy.metaload);
        let hooks = CompiledHooks {
            metaload: CompiledHook::compile(&policy.metaload, &host, budget),
            mdsload: CompiledHook::compile(&policy.mdsload, &host, budget),
            decision: match &policy.decision {
                Decision::Hooks { when, where_ } => CompiledDecision::Hooks {
                    when: Box::new(CompiledHook::compile(when, &host, budget)),
                    where_: Box::new(CompiledHook::compile(where_, &host, budget)),
                },
                Decision::Combined(script) => CompiledDecision::Combined(Box::new(
                    CompiledHook::compile(script, &host, budget),
                )),
            },
        };
        MantleRuntime {
            policy,
            state,
            budget,
            whoami_cell,
            hooks,
            metaload_scalar,
            force_slow_path,
        }
    }

    /// The host environment compiled hooks draw their base frame from:
    /// stdlib plus `WRstate`/`RDstate` closing over the shared whoami cell.
    fn host_env(
        state: &Rc<RefCell<dyn StateStore>>,
        whoami_cell: &Rc<Cell<usize>>,
        budget: StepBudget,
    ) -> Interpreter {
        let mut interp = Interpreter::new().with_budget(budget);
        stdlib::install(&mut interp);
        let store = Rc::clone(state);
        let cell = Rc::clone(whoami_cell);
        interp.set_global(
            "WRstate",
            Value::Native(
                "WRstate",
                Rc::new(move |_, args| {
                    let v = args
                        .first()
                        .ok_or_else(|| PolicyError::runtime(0, "WRstate expects a value"))?
                        .as_number(0)?;
                    store.borrow_mut().write(cell.get(), v);
                    Ok(Value::Nil)
                }),
            ),
        );
        let store = Rc::clone(state);
        let cell = Rc::clone(whoami_cell);
        interp.set_global(
            "RDstate",
            Value::Native(
                "RDstate",
                Rc::new(move |_, _| Ok(Value::Number(store.borrow().read(cell.get())))),
            ),
        );
        interp
    }

    /// Use a custom state store.
    pub fn with_state_store(self, store: Rc<RefCell<dyn StateStore>>) -> Self {
        Self::build(self.policy, store, self.budget, self.force_slow_path)
    }

    /// Override the step budget applied to every hook invocation.
    pub fn with_budget(self, budget: StepBudget) -> Self {
        Self::build(self.policy, self.state, budget, self.force_slow_path)
    }

    /// Force every hook through the original tree-walking interpreter
    /// instead of the slot-compiled (and scalar) fast paths. The two
    /// evaluation paths are bit-identical; this switch exists so benchmarks
    /// and differential tests can compare them.
    pub fn with_force_slow_path(mut self, force: bool) -> Self {
        self.force_slow_path = force;
        self
    }

    /// The configured dirfrag selectors.
    pub fn selectors(&self) -> &[String] {
        &self.policy.howmuch
    }

    /// Access the policy set.
    pub fn policy(&self) -> &PolicySet {
        &self.policy
    }

    /// The scalar-compiled `metaload`, when the hook is a single linear
    /// combination of the five counters (true for Table 1 and every
    /// shipped policy).
    pub fn metaload_scalar(&self) -> Option<&ScalarMetaload> {
        self.metaload_scalar.as_ref()
    }

    /// True when `metaload` distributes over sums of counter vectors
    /// (linear with no constant term), which lets callers evaluate it once
    /// per MDS on aggregated heat instead of once per dirfrag.
    ///
    /// Deliberately independent of [`Self::with_force_slow_path`]: the
    /// force switch changes the evaluation engine, never the aggregation
    /// structure, so reports stay identical between the two engines.
    pub fn metaload_is_additive(&self) -> bool {
        self.metaload_scalar
            .as_ref()
            .is_some_and(|s| s.is_homogeneous())
    }

    fn base_interp(&self, whoami: usize) -> Interpreter {
        let mut interp = Interpreter::new().with_budget(self.budget);
        stdlib::install(&mut interp);
        let store = Rc::clone(&self.state);
        let store_rd = Rc::clone(&self.state);
        interp.set_global(
            "WRstate",
            Value::Native(
                "WRstate",
                Rc::new(move |_, args| {
                    let v = args
                        .first()
                        .ok_or_else(|| PolicyError::runtime(0, "WRstate expects a value"))?
                        .as_number(0)?;
                    store.borrow_mut().write(whoami, v);
                    Ok(Value::Nil)
                }),
            ),
        );
        interp.set_global(
            "RDstate",
            Value::Native(
                "RDstate",
                Rc::new(move |_, _| Ok(Value::Number(store_rd.borrow().read(whoami)))),
            ),
        );
        interp
    }

    /// Evaluate `mds_bal_metaload` for one fragment's counters.
    ///
    /// This is the hottest hook (once per dirfrag per balancer tick). The
    /// fast paths do zero interpreter constructions and zero `String`
    /// allocations: a scalar-compiled hook is a few multiply-adds; anything
    /// else reuses the hook's compiled slot program.
    pub fn eval_metaload(&self, whoami: usize, frag: &FragMetrics) -> PolicyResult<f64> {
        if self.force_slow_path {
            let mut interp = self.base_interp(whoami);
            interp.set_global("IRD", Value::Number(frag.ird));
            interp.set_global("IWR", Value::Number(frag.iwr));
            interp.set_global("READDIR", Value::Number(frag.readdir));
            interp.set_global("FETCH", Value::Number(frag.fetch));
            interp.set_global("STORE", Value::Number(frag.store));
            return interp.run(&self.policy.metaload)?.as_number(0);
        }
        if let Some(scalar) = &self.metaload_scalar {
            return Ok(scalar.eval(&[frag.ird, frag.iwr, frag.readdir, frag.fetch, frag.store]));
        }
        self.whoami_cell.set(whoami);
        self.hooks
            .metaload
            .run(|env, vm| {
                set_slot(vm, env.ird, Value::Number(frag.ird));
                set_slot(vm, env.iwr, Value::Number(frag.iwr));
                set_slot(vm, env.readdir, Value::Number(frag.readdir));
                set_slot(vm, env.fetch, Value::Number(frag.fetch));
                set_slot(vm, env.store, Value::Number(frag.store));
            })?
            .as_number(0)
    }

    /// Run the full decision pipeline: `mdsload` per MDS, then
    /// `when`/`where` (or the combined script).
    pub fn decide(&self, inputs: &BalancerInputs) -> PolicyResult<BalancerOutcome> {
        let n = inputs.mds.len();
        if n == 0 {
            return Ok(BalancerOutcome::idle(0));
        }

        // Pass 1: evaluate mdsload for every MDS, building the MDSs table.
        let mdss_table = Rc::new(RefCell::new(Table::new()));
        for (i, m) in inputs.mds.iter().enumerate() {
            let t = Table::from_fields([
                ("auth", Value::Number(m.auth)),
                ("all", Value::Number(m.all)),
                ("cpu", Value::Number(m.cpu)),
                ("mem", Value::Number(m.mem)),
                ("q", Value::Number(m.q)),
                ("req", Value::Number(m.req)),
            ]);
            mdss_table
                .borrow_mut()
                .set_int(i as i64 + 1, Value::Table(Rc::new(RefCell::new(t))));
        }

        self.whoami_cell.set(inputs.whoami);
        let mut mds_loads = Vec::with_capacity(n);
        for i in 0..n {
            let load = if self.force_slow_path {
                let mut interp = self.base_interp(inputs.whoami);
                interp.set_global("whoami", Value::Number(inputs.whoami as f64 + 1.0));
                interp.set_global("i", Value::Number(i as f64 + 1.0));
                interp.set_global("MDSs", Value::Table(Rc::clone(&mdss_table)));
                interp.set_global("authmetaload", Value::Number(inputs.auth_metaload));
                interp.set_global("allmetaload", Value::Number(inputs.all_metaload));
                interp.run(&self.policy.mdsload)?.as_number(0)?
            } else {
                self.hooks
                    .mdsload
                    .run(|env, vm| {
                        set_slot(vm, env.whoami, Value::Number(inputs.whoami as f64 + 1.0));
                        set_slot(vm, env.i, Value::Number(i as f64 + 1.0));
                        set_slot(vm, env.mdss, Value::Table(Rc::clone(&mdss_table)));
                        set_slot(vm, env.authmetaload, Value::Number(inputs.auth_metaload));
                        set_slot(vm, env.allmetaload, Value::Number(inputs.all_metaload));
                    })?
                    .as_number(0)?
            };
            mds_loads.push(load);
        }
        let total: f64 = mds_loads.iter().sum();
        for (i, load) in mds_loads.iter().enumerate() {
            if let Value::Table(t) = mdss_table.borrow().get_int(i as i64 + 1) {
                t.borrow_mut().set_str("load", Value::Number(*load));
            }
        }

        // Pass 2: when/where.
        let targets_table = Rc::new(RefCell::new(Table::new()));
        let setup = |interp: &mut Interpreter| {
            interp.set_global("whoami", Value::Number(inputs.whoami as f64 + 1.0));
            interp.set_global("MDSs", Value::Table(Rc::clone(&mdss_table)));
            interp.set_global("total", Value::Number(total));
            interp.set_global("authmetaload", Value::Number(inputs.auth_metaload));
            interp.set_global("allmetaload", Value::Number(inputs.all_metaload));
            interp.set_global("targets", Value::Table(Rc::clone(&targets_table)));
        };
        let slot_setup = |env: &EnvSlots, vm: &mut SlotVm| {
            set_slot(vm, env.whoami, Value::Number(inputs.whoami as f64 + 1.0));
            set_slot(vm, env.mdss, Value::Table(Rc::clone(&mdss_table)));
            set_slot(vm, env.total, Value::Number(total));
            set_slot(vm, env.authmetaload, Value::Number(inputs.auth_metaload));
            set_slot(vm, env.allmetaload, Value::Number(inputs.all_metaload));
            set_slot(vm, env.targets, Value::Table(Rc::clone(&targets_table)));
        };
        // The listings signal "migrate" by filling targets.
        let targets_filled = |targets_table: &Rc<RefCell<Table>>| {
            (1..=n as i64).any(|i| {
                targets_table
                    .borrow()
                    .get_int(i)
                    .as_number(0)
                    .map(|v| v > 0.0)
                    .unwrap_or(false)
            })
        };

        let migrate = if self.force_slow_path {
            match &self.policy.decision {
                Decision::Hooks { when, where_ } => {
                    let mut interp = self.base_interp(inputs.whoami);
                    setup(&mut interp);
                    let fired = interp.run(when)?.truthy();
                    if fired {
                        let mut interp = self.base_interp(inputs.whoami);
                        setup(&mut interp);
                        interp.run(where_)?;
                    }
                    fired
                }
                Decision::Combined(script) => {
                    let mut interp = self.base_interp(inputs.whoami);
                    setup(&mut interp);
                    interp.run(script)?;
                    targets_filled(&targets_table)
                }
            }
        } else {
            match &self.hooks.decision {
                CompiledDecision::Hooks { when, where_ } => {
                    let fired = when.run(slot_setup)?.truthy();
                    if fired {
                        where_.run(slot_setup)?;
                    }
                    fired
                }
                CompiledDecision::Combined(hook) => {
                    hook.run(slot_setup)?;
                    targets_filled(&targets_table)
                }
            }
        };

        let mut targets = vec![0.0; n];
        {
            let tt = targets_table.borrow();
            for (i, slot) in targets.iter_mut().enumerate() {
                if let Ok(v) = tt.get_int(i as i64 + 1).as_number(0) {
                    *slot = v.max(0.0);
                }
            }
        }
        // Migration that targets nobody is a no-op.
        let migrate = migrate && targets.iter().any(|&t| t > 0.0);

        Ok(BalancerOutcome {
            mds_loads,
            total,
            migrate,
            targets,
        })
    }
}

/// Builder for one-off script environments in tests and tools.
#[derive(Debug, Default)]
pub struct EnvBuilder {
    globals: Vec<(String, f64)>,
}

impl EnvBuilder {
    /// Empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a numeric global.
    pub fn number(mut self, name: &str, v: f64) -> Self {
        self.globals.push((name.to_string(), v));
        self
    }

    /// Build an interpreter with the stdlib plus the configured globals.
    pub fn build(self) -> Interpreter {
        let mut interp = Interpreter::new();
        stdlib::install(&mut interp);
        for (name, v) in self.globals {
            interp.set_global(&name, Value::Number(v));
        }
        interp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(loads: &[f64]) -> Vec<MdsMetrics> {
        loads
            .iter()
            .map(|&l| MdsMetrics {
                auth: l,
                all: l,
                ..Default::default()
            })
            .collect()
    }

    /// The original CephFS balancer policies from Table 1, expressed in
    /// the Mantle API (§3.2).
    fn cephfs_policy() -> PolicySet {
        PolicySet::from_hooks(
            "IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE",
            "0.8*MDSs[i][\"auth\"] + 0.2*MDSs[i][\"all\"] + MDSs[i][\"req\"] + 10*MDSs[i][\"q\"]",
            "if MDSs[whoami][\"load\"] > total/#MDSs then",
            r#"
targetLoad = total/#MDSs
for i=1,#MDSs do
  if MDSs[i]["load"] < targetLoad then
    targets[i] = targetLoad - MDSs[i]["load"]
  end
end
"#,
            &["big_first"],
        )
        .unwrap()
    }

    #[test]
    fn table1_metaload_weights() {
        let rt = MantleRuntime::new(cephfs_policy());
        let frag = FragMetrics {
            ird: 1.0,
            iwr: 2.0,
            readdir: 3.0,
            fetch: 4.0,
            store: 5.0,
        };
        // 1 + 2*2 + 3 + 2*4 + 4*5 = 36
        assert_eq!(rt.eval_metaload(0, &frag).unwrap(), 36.0);
    }

    #[test]
    fn table1_when_fires_only_above_average() {
        let rt = MantleRuntime::new(cephfs_policy());
        let hot = BalancerInputs {
            whoami: 0,
            mds: metrics(&[90.0, 5.0, 5.0]),
            ..Default::default()
        };
        let out = rt.decide(&hot).unwrap();
        assert!(out.migrate);
        // targets for the two cold MDSs, none for self.
        assert_eq!(out.targets[0], 0.0);
        assert!(out.targets[1] > 0.0 && out.targets[2] > 0.0);

        let cold = BalancerInputs {
            whoami: 1,
            mds: metrics(&[90.0, 5.0, 5.0]),
            ..Default::default()
        };
        let out = rt.decide(&cold).unwrap();
        assert!(!out.migrate, "an underloaded MDS must not export");
    }

    #[test]
    fn mdsload_weighted_sum() {
        let rt = MantleRuntime::new(cephfs_policy());
        let inputs = BalancerInputs {
            whoami: 0,
            mds: vec![MdsMetrics {
                auth: 10.0,
                all: 20.0,
                req: 5.0,
                q: 2.0,
                ..Default::default()
            }],
            ..Default::default()
        };
        let out = rt.decide(&inputs).unwrap();
        // 0.8*10 + 0.2*20 + 5 + 10*2 = 37
        assert!((out.mds_loads[0] - 37.0).abs() < 1e-9);
    }

    #[test]
    fn listing_1_greedy_spill_runs_verbatim() {
        // Listing 1, with `end` completing the truncated `if`.
        let p = PolicySet::from_combined(
            "IWR",
            "MDSs[i][\"all\"]",
            r#"
if MDSs[whoami]["load"]>.01 and MDSs[whoami+1]["load"]<.01 then
  targets[whoami+1]=allmetaload/2
end
"#,
            &["half"],
        )
        .unwrap();
        let rt = MantleRuntime::new(p);
        let inputs = BalancerInputs {
            whoami: 0,
            mds: metrics(&[50.0, 0.0, 0.0, 0.0]),
            all_metaload: 50.0,
            ..Default::default()
        };
        let out = rt.decide(&inputs).unwrap();
        assert!(out.migrate);
        assert_eq!(out.targets[1], 25.0);
        assert_eq!(out.targets[2], 0.0);

        // Neighbour already loaded → no spill.
        let inputs2 = BalancerInputs {
            whoami: 0,
            mds: metrics(&[50.0, 50.0, 0.0, 0.0]),
            all_metaload: 50.0,
            ..Default::default()
        };
        assert!(!rt.decide(&inputs2).unwrap().migrate);
    }

    #[test]
    fn listing_3_fill_and_spill_state_machine() {
        // Fill & Spill: spill 25% only after CPU > 48 for 3 straight ticks.
        let p = PolicySet::from_combined(
            "IWR + IRD",
            "MDSs[i][\"auth\"]",
            r#"
wait=RDstate()
go = 0
if MDSs[whoami]["cpu"]>48 then
  if wait>0 then WRstate(wait-1)
  else WRstate(2) go=1 end
else WRstate(2) end
if go==1 then
  targets[whoami+1] = MDSs[whoami]["load"]/4
end
"#,
            &["small_first"],
        )
        .unwrap();
        let rt = MantleRuntime::new(p);
        let busy = BalancerInputs {
            whoami: 0,
            mds: vec![
                MdsMetrics {
                    auth: 100.0,
                    cpu: 90.0,
                    ..Default::default()
                },
                MdsMetrics::default(),
            ],
            ..Default::default()
        };
        // Tick 1: cold start, wait==0 → go (the listing's semantics: an MDS
        // already past threshold with no armed counter fires and re-arms).
        assert!(rt.decide(&busy).unwrap().migrate);
        // Ticks 2-3: armed counter counts down, no migration.
        assert!(!rt.decide(&busy).unwrap().migrate);
        assert!(!rt.decide(&busy).unwrap().migrate);
        // Tick 4: counter exhausted → fires again.
        assert!(rt.decide(&busy).unwrap().migrate);
        // Idle CPU always re-arms and never fires.
        let idle = BalancerInputs {
            whoami: 0,
            mds: vec![
                MdsMetrics {
                    auth: 100.0,
                    cpu: 10.0,
                    ..Default::default()
                },
                MdsMetrics::default(),
            ],
            ..Default::default()
        };
        assert!(!rt.decide(&idle).unwrap().migrate);
    }

    #[test]
    fn combined_decision_with_no_targets_is_idle() {
        let p = PolicySet::from_combined("IWR", "MDSs[i][\"all\"]", "x = 1", &["half"]).unwrap();
        let rt = MantleRuntime::new(p);
        let out = rt
            .decide(&BalancerInputs {
                whoami: 0,
                mds: metrics(&[10.0, 0.0]),
                ..Default::default()
            })
            .unwrap();
        assert!(!out.migrate);
        assert_eq!(out.targets, vec![0.0, 0.0]);
    }

    #[test]
    fn when_true_but_empty_targets_is_idle() {
        let p =
            PolicySet::from_hooks("IWR", "MDSs[i][\"all\"]", "true", "x = 1", &["half"]).unwrap();
        let rt = MantleRuntime::new(p);
        let out = rt
            .decide(&BalancerInputs {
                whoami: 0,
                mds: metrics(&[10.0, 0.0]),
                ..Default::default()
            })
            .unwrap();
        assert!(!out.migrate, "no targets → nothing to do");
    }

    #[test]
    fn negative_targets_are_clamped() {
        let p = PolicySet::from_hooks(
            "IWR",
            "MDSs[i][\"all\"]",
            "true",
            "targets[2] = -5",
            &["half"],
        )
        .unwrap();
        let rt = MantleRuntime::new(p);
        let out = rt
            .decide(&BalancerInputs {
                whoami: 0,
                mds: metrics(&[10.0, 5.0]),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(out.targets[1], 0.0);
        assert!(!out.migrate);
    }

    #[test]
    fn file_state_store_round_trips() {
        let dir = std::env::temp_dir().join(format!("mantle-test-{}", std::process::id()));
        let mut store = FileStateStore::new(&dir).unwrap();
        assert_eq!(store.read(3), 0.0);
        store.write(3, 2.5);
        assert_eq!(store.read(3), 2.5);
        store.clear();
        assert_eq!(store.read(3), 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn state_isolated_per_mds() {
        let mut store = MemoryStateStore::default();
        store.write(0, 1.0);
        store.write(1, 2.0);
        assert_eq!(store.read(0), 1.0);
        assert_eq!(store.read(1), 2.0);
    }

    #[test]
    fn env_builder() {
        let mut interp = EnvBuilder::new().number("x", 3.0).build();
        let script = crate::parser::parse_script("y = max(x, 2)").unwrap();
        interp.run(&script).unwrap();
        assert_eq!(interp.get_global("y").as_number(0).unwrap(), 3.0);
    }

    #[test]
    fn empty_cluster_is_idle() {
        let rt = MantleRuntime::new(cephfs_policy());
        let out = rt.decide(&BalancerInputs::default()).unwrap();
        assert!(!out.migrate);
        assert!(out.targets.is_empty());
    }

    #[test]
    fn table1_policy_is_scalar_and_additive() {
        let rt = MantleRuntime::new(cephfs_policy());
        assert!(rt.metaload_scalar().is_some());
        assert!(rt.metaload_is_additive());
        // The force switch changes the engine, never the aggregation
        // structure.
        let slow = MantleRuntime::new(cephfs_policy()).with_force_slow_path(true);
        assert!(slow.metaload_is_additive());
    }

    #[test]
    fn fast_and_slow_paths_agree_bit_for_bit() {
        let fast = MantleRuntime::new(cephfs_policy());
        let slow = MantleRuntime::new(cephfs_policy()).with_force_slow_path(true);
        let frag = FragMetrics {
            ird: 0.137,
            iwr: 12.75,
            readdir: 1.0 / 3.0,
            fetch: 9e3,
            store: 0.001,
        };
        assert_eq!(
            fast.eval_metaload(2, &frag).unwrap().to_bits(),
            slow.eval_metaload(2, &frag).unwrap().to_bits()
        );
        let inputs = BalancerInputs {
            whoami: 0,
            mds: metrics(&[90.0, 5.0, 35.0]),
            auth_metaload: 90.0,
            all_metaload: 95.0,
        };
        let a = fast.decide(&inputs).unwrap();
        let b = slow.decide(&inputs).unwrap();
        assert_eq!(a, b);
        for (x, y) in a.targets.iter().zip(&b.targets) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn stateful_policy_agrees_across_paths_and_mds_identities() {
        // Fill & Spill exercises WRstate/RDstate through the shared whoami
        // cell; the state machine must evolve identically on both engines
        // and stay isolated per MDS.
        let mk = |force: bool| {
            let p = PolicySet::from_combined(
                "IWR + IRD",
                "MDSs[i][\"auth\"]",
                r#"
wait=RDstate()
go = 0
if MDSs[whoami]["cpu"]>48 then
  if wait>0 then WRstate(wait-1)
  else WRstate(2) go=1 end
else WRstate(2) end
if go==1 then
  targets[whoami+1] = MDSs[whoami]["load"]/4
end
"#,
                &["small_first"],
            )
            .unwrap();
            MantleRuntime::new(p).with_force_slow_path(force)
        };
        let fast = mk(false);
        let slow = mk(true);
        let busy = |whoami: usize| BalancerInputs {
            whoami,
            mds: vec![
                MdsMetrics {
                    auth: 100.0,
                    cpu: 90.0,
                    ..Default::default()
                };
                3
            ],
            ..Default::default()
        };
        // Interleave two MDS identities; their counters are independent.
        for tick in 0..8 {
            for whoami in 0..2 {
                let a = fast.decide(&busy(whoami)).unwrap();
                let b = slow.decide(&busy(whoami)).unwrap();
                assert_eq!(a, b, "tick {tick} whoami {whoami}");
                assert_eq!(a.migrate, tick % 3 == 0, "tick {tick} whoami {whoami}");
            }
        }
    }
}
