//! The Mantle balancer environment (the paper's Table 2) and the runtime
//! that drives the four policy hooks against it.
//!
//! Per Table 2, an injected script sees:
//!
//! | global | meaning |
//! |---|---|
//! | `whoami` | current MDS (1-based, Lua style) |
//! | `authmetaload` | metadata load on this MDS's authority subtrees |
//! | `allmetaload` | metadata load on all subtrees it knows about |
//! | `IRD`, `IWR` | decayed inode reads/writes of the fragment under consideration |
//! | `READDIR`, `FETCH`, `STORE` | decayed readdirs / RADOS fetches / stores |
//! | `MDSs[i]["auth"/"all"/"cpu"/"mem"/"q"/"req"/"load"]` | per-MDS heartbeat metrics |
//! | `total` | sum of `MDSs[i]["load"]` |
//! | `targets[i]` | *output*: load to send to MDS `i` |
//! | `WRstate(s)` / `RDstate()` | persist state across balancer ticks |
//! | `max(a,b)` / `min(a,b)` | numeric helpers |

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::ast::Script;
use crate::bytecode::{BytecodeProgram, BytecodeVm};
use crate::error::{PolicyError, PolicyResult};
use crate::interp::{Interpreter, StepBudget};
use crate::parser::{parse_expression_script, parse_script, parse_when};
use crate::slots::{ScalarMdsload, ScalarMetaload, SlotProgram, SlotVm};
use crate::stdlib;
use crate::value::{Key, Table, Value};

/// Which evaluation engine executes the policy hooks.
///
/// All three are bit-identical — same results (`f64::to_bits`-equal), same
/// step accounting, same errors on the same lines — pinned by the
/// differential suites in `crates/policy` and `tests/`. The slower two are
/// kept as selectable oracles (like `SchedulerKind::Heap` against the
/// timing wheel), so equivalence stays a runtime-checkable property rather
/// than an assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HookEngine {
    /// The original tree-walking interpreter: rebuilds the environment by
    /// name for every invocation. Slowest; first oracle.
    Tree,
    /// The slot-compiled AST evaluator ([`SlotVm`]): resolved integer
    /// slots, reusable frames, but still recursive per AST node. Second
    /// oracle.
    Slot,
    /// The flat register bytecode dispatch loop
    /// ([`BytecodeVm`]) — the default engine.
    #[default]
    Bytecode,
}

/// Decayed popularity counters for one dirfrag/subtree — the inputs to the
/// `metaload` hook.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FragMetrics {
    /// Inode reads (decayed).
    pub ird: f64,
    /// Inode writes (decayed).
    pub iwr: f64,
    /// Directory listings (decayed).
    pub readdir: f64,
    /// Fetches from the object store (decayed).
    pub fetch: f64,
    /// Stores to the object store (decayed).
    pub store: f64,
}

/// One MDS's heartbeat metrics — the inputs to the `mdsload` hook.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MdsMetrics {
    /// Metadata load on subtrees this MDS is the authority for.
    pub auth: f64,
    /// Metadata load on all subtrees it knows about (incl. replicas).
    pub all: f64,
    /// CPU utilization, percent.
    pub cpu: f64,
    /// Memory utilization, percent.
    pub mem: f64,
    /// Requests waiting in the queue.
    pub q: f64,
    /// Request rate, req/s.
    pub req: f64,
    /// Proxy-cache hits attributed to this MDS over the last heartbeat
    /// window (0 when the cache tier is disabled).
    pub cache_hits: f64,
    /// Proxy-cache misses routed to this MDS over the last heartbeat
    /// window (0 when the cache tier is disabled).
    pub cache_misses: f64,
}

/// Everything the balancer on one MDS knows when it runs: its identity and
/// the (possibly stale) heartbeat metrics for the whole cluster.
#[derive(Debug, Clone, Default)]
pub struct BalancerInputs {
    /// This MDS's index, 0-based (converted to Lua's 1-based inside).
    pub whoami: usize,
    /// Per-MDS metrics, indexed by MDS id.
    pub mds: Vec<MdsMetrics>,
    /// Metadata load on this MDS's authority subtrees.
    pub auth_metaload: f64,
    /// Metadata load on all subtrees this MDS knows about.
    pub all_metaload: f64,
}

/// The decision a balancer run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct BalancerOutcome {
    /// `mdsload` evaluated per MDS.
    pub mds_loads: Vec<f64>,
    /// Sum of the loads.
    pub total: f64,
    /// Whether the `when` hook fired.
    pub migrate: bool,
    /// `targets[i]`: load to export to MDS `i` (0-based; 0.0 when none).
    pub targets: Vec<f64>,
}

impl BalancerOutcome {
    /// A no-migration outcome.
    pub fn idle(n: usize) -> Self {
        BalancerOutcome {
            mds_loads: vec![0.0; n],
            total: 0.0,
            migrate: false,
            targets: vec![0.0; n],
        }
    }
}

/// Persistent state for `WRstate`/`RDstate`, keyed per MDS.
///
/// The paper implements this with temporary files and names RADOS objects
/// as future work; this trait is that pluggable point.
pub trait StateStore {
    /// Save `value` for `mds`.
    fn write(&mut self, mds: usize, value: f64);
    /// Read the last saved value for `mds` (0.0 when none — the listings
    /// compare `RDstate()` numerically on first run).
    fn read(&self, mds: usize) -> f64;
    /// Drop all state.
    fn clear(&mut self);
}

/// In-memory state store (the default).
#[derive(Debug, Default, Clone)]
pub struct MemoryStateStore {
    slots: HashMap<usize, f64>,
}

impl StateStore for MemoryStateStore {
    fn write(&mut self, mds: usize, value: f64) {
        self.slots.insert(mds, value);
    }
    fn read(&self, mds: usize) -> f64 {
        self.slots.get(&mds).copied().unwrap_or(0.0)
    }
    fn clear(&mut self) {
        self.slots.clear();
    }
}

/// File-backed state store — the paper's actual prototype mechanism
/// ("implemented using temporary files", §3.1).
#[derive(Debug)]
pub struct FileStateStore {
    dir: std::path::PathBuf,
}

impl FileStateStore {
    /// Store state under `dir` (created if missing).
    pub fn new(dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileStateStore { dir })
    }

    fn path(&self, mds: usize) -> std::path::PathBuf {
        self.dir.join(format!("mantle-state-mds{mds}"))
    }
}

impl StateStore for FileStateStore {
    fn write(&mut self, mds: usize, value: f64) {
        // Balancer state is advisory; losing it degrades to the cold-start
        // behaviour, so IO errors are swallowed just like the prototype.
        let _ = std::fs::write(self.path(mds), value.to_string());
    }
    fn read(&self, mds: usize) -> f64 {
        std::fs::read_to_string(self.path(mds))
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0.0)
    }
    fn clear(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
        let _ = std::fs::create_dir_all(&self.dir);
    }
}

/// How the `when`/`where` decisions are expressed.
#[derive(Debug, Clone)]
pub enum Decision {
    /// Separate `when` (predicate) and `where` (fills `targets[]`) hooks —
    /// the paper's §3.2 API.
    Hooks {
        /// The `mds_bal_when` script; its result's truthiness decides.
        when: Script,
        /// The `mds_bal_where` script; runs only when `when` fired.
        where_: Script,
    },
    /// One combined script that conditionally fills `targets[]` — the form
    /// of Listings 1–3. Migration happens iff some target is positive.
    Combined(Script),
}

/// A full set of compiled balancer policies.
#[derive(Debug, Clone)]
pub struct PolicySet {
    /// `mds_bal_metaload`: load of one dirfrag from its counters.
    pub metaload: Script,
    /// `mds_bal_mdsload`: load of MDS `i` from `MDSs[i]` metrics.
    pub mdsload: Script,
    /// when/where.
    pub decision: Decision,
    /// `mds_bal_howmuch`: dirfrag selector names, tried in order.
    pub howmuch: Vec<String>,
    /// `mds_bal_howmany`: optional auto-scaling hook. Runs once per
    /// balancer tick (on the coordinator, not per MDS) over the same
    /// heartbeat environment as the decision hooks plus `active` (current
    /// member count), `min_mds`, and `max_mds`; returns the target MDS
    /// count. `None` means the cluster size is fixed — the pre-elastic
    /// behaviour.
    pub howmany: Option<Script>,
    /// Policy-defined dirfrag selectors: `(name, compiled script)`. The
    /// paper's §3.2 feeds the balancer "an external Lua file with a list
    /// of strategies"; this is that list, generalized so policies can ship
    /// strategies beyond the four built-ins. Referenced from `howmuch` by
    /// name.
    pub custom_selectors: Vec<(String, Script)>,
}

impl PolicySet {
    /// Compile a policy set from hook sources (the `ceph tell mds.N
    /// injectargs` form of §3.1).
    pub fn from_hooks(
        metaload: &str,
        mdsload: &str,
        when: &str,
        where_: &str,
        howmuch: &[&str],
    ) -> PolicyResult<PolicySet> {
        Ok(PolicySet {
            metaload: parse_expression_script(metaload)?,
            mdsload: parse_expression_script(mdsload)?,
            decision: Decision::Hooks {
                when: parse_when(when)?,
                where_: parse_script(where_)?,
            },
            howmuch: howmuch.iter().map(|s| s.to_string()).collect(),
            howmany: None,
            custom_selectors: Vec::new(),
        })
    }

    /// Compile a policy set whose when/where is a single combined script
    /// (the form of the paper's listings).
    pub fn from_combined(
        metaload: &str,
        mdsload: &str,
        whenwhere: &str,
        howmuch: &[&str],
    ) -> PolicyResult<PolicySet> {
        Ok(PolicySet {
            metaload: parse_expression_script(metaload)?,
            mdsload: parse_expression_script(mdsload)?,
            decision: Decision::Combined(parse_script(whenwhere)?),
            howmuch: howmuch.iter().map(|s| s.to_string()).collect(),
            howmany: None,
            custom_selectors: Vec::new(),
        })
    }

    /// Attach a `mds_bal_howmany` auto-scaling hook. The script sees the
    /// pass-2 decision environment (`whoami`, `MDSs` with `load` filled
    /// in, `total`, `authmetaload`, `allmetaload`) plus `active`,
    /// `min_mds`, and `max_mds`, and returns the target MDS count (a bare
    /// expression or a full script ending in `return`).
    pub fn with_howmany(mut self, src: &str) -> PolicyResult<Self> {
        self.howmany = Some(parse_expression_script(src)?);
        Ok(self)
    }

    /// Attach a policy-defined dirfrag selector (referenced from the
    /// `howmuch` list by `name`). The script sees `loads` (1-based array)
    /// and `target`, and returns a table of 1-based indices to ship.
    pub fn with_custom_selector(mut self, name: &str, src: &str) -> PolicyResult<Self> {
        let script = parse_script(src)?;
        self.custom_selectors.push((name.to_string(), script));
        if !self.howmuch.iter().any(|n| n == name) {
            self.howmuch.push(name.to_string());
        }
        Ok(self)
    }
}

/// Slot indices of the Table-2 environment names one compiled hook
/// references (`None` when the script never mentions the name, in which
/// case the runtime skips the write entirely).
#[derive(Debug, Default)]
struct EnvSlots {
    whoami: Option<usize>,
    i: Option<usize>,
    mdss: Option<usize>,
    total: Option<usize>,
    targets: Option<usize>,
    authmetaload: Option<usize>,
    allmetaload: Option<usize>,
    ird: Option<usize>,
    iwr: Option<usize>,
    readdir: Option<usize>,
    fetch: Option<usize>,
    store: Option<usize>,
    active: Option<usize>,
    min_mds: Option<usize>,
    max_mds: Option<usize>,
}

/// One policy hook, slot-compiled at [`MantleRuntime`] construction and
/// reused for every invocation: resetting the environment between runs is a
/// `clone_from_slice` over the global frame plus a handful of slot writes —
/// no interpreter construction, no name hashing, no `String` allocation.
struct CompiledHook {
    prog: SlotProgram,
    bc: BytecodeProgram,
    /// Base global frame: host functions (stdlib, `WRstate`/`RDstate`) at
    /// their slots, `Nil` everywhere else.
    base: Vec<Value>,
    env: EnvSlots,
    vm: RefCell<SlotVm>,
    bvm: RefCell<BytecodeVm>,
}

/// The slot-write surface shared by the two compiled VMs (they use the same
/// slot numbering), so hook setup closures are engine-agnostic.
trait EnvSink {
    fn write_global(&mut self, slot: usize, value: Value);
}

impl EnvSink for SlotVm {
    fn write_global(&mut self, slot: usize, value: Value) {
        self.set_global(slot, value);
    }
}

impl EnvSink for BytecodeVm {
    fn write_global(&mut self, slot: usize, value: Value) {
        self.set_global(slot, value);
    }
}

impl CompiledHook {
    fn compile(script: &Script, host: &Interpreter, budget: StepBudget) -> CompiledHook {
        let prog = SlotProgram::compile(script);
        let bc = BytecodeProgram::compile(&prog);
        let base: Vec<Value> = prog
            .global_names()
            .iter()
            .map(|name| host.get_global(name))
            .collect();
        let slot = |name: &str| prog.global_slot(name);
        let env = EnvSlots {
            whoami: slot("whoami"),
            i: slot("i"),
            mdss: slot("MDSs"),
            total: slot("total"),
            targets: slot("targets"),
            authmetaload: slot("authmetaload"),
            allmetaload: slot("allmetaload"),
            ird: slot("IRD"),
            iwr: slot("IWR"),
            readdir: slot("READDIR"),
            fetch: slot("FETCH"),
            store: slot("STORE"),
            active: slot("active"),
            min_mds: slot("min_mds"),
            max_mds: slot("max_mds"),
        };
        let vm = RefCell::new(SlotVm::new(&prog, budget));
        let bvm = RefCell::new(BytecodeVm::new(&bc, budget));
        CompiledHook {
            prog,
            bc,
            base,
            env,
            vm,
            bvm,
        }
    }

    /// Reset the environment to the base image, apply `setup`, execute on
    /// the selected engine ([`HookEngine::Tree`] never reaches here — the
    /// runtime handles it before compiled hooks come into play).
    fn run(
        &self,
        engine: HookEngine,
        setup: impl FnOnce(&EnvSlots, &mut dyn EnvSink),
    ) -> PolicyResult<Value> {
        match engine {
            HookEngine::Slot => {
                let mut vm = self.vm.borrow_mut();
                vm.reset_globals(&self.base);
                setup(&self.env, &mut *vm);
                vm.run(&self.prog)
            }
            _ => {
                let mut vm = self.bvm.borrow_mut();
                vm.reset_globals(&self.base);
                setup(&self.env, &mut *vm);
                vm.run(&self.bc)
            }
        }
    }
}

/// Write a value to an environment slot the hook actually references.
fn set_slot(vm: &mut dyn EnvSink, slot: Option<usize>, value: Value) {
    if let Some(s) = slot {
        vm.write_global(s, value);
    }
}

enum CompiledDecision {
    // Boxed to keep the enum's two variants close in size.
    Hooks {
        when: Box<CompiledHook>,
        where_: Box<CompiledHook>,
    },
    Combined(Box<CompiledHook>),
}

struct CompiledHooks {
    metaload: CompiledHook,
    mdsload: CompiledHook,
    decision: CompiledDecision,
    howmany: Option<CompiledHook>,
}

/// Executes a [`PolicySet`] against [`BalancerInputs`] — the bridge between
/// the MDS (which collects metrics and performs migrations) and the policy
/// scripts (which decide).
///
/// Hooks are compiled to slot programs and then lowered to bytecode once,
/// at construction (see [`crate::slots`] and [`crate::bytecode`]); each
/// invocation reuses the compiled program and its VM on the engine selected
/// by [`Self::with_engine`] (bytecode by default). A `metaload` hook that
/// is a linear combination of the five counters additionally compiles to a
/// [`ScalarMetaload`] evaluated without touching any VM.
/// [`Self::with_force_slow_path`] selects the original tree-walking
/// interpreter and disables both fast paths — all engines are bit-identical
/// (the differential tests pin this), so the switches exist for benchmarks
/// and differential testing only.
pub struct MantleRuntime {
    policy: PolicySet,
    state: Rc<RefCell<dyn StateStore>>,
    budget: StepBudget,
    /// Which MDS's persistent state `WRstate`/`RDstate` touch. The compiled
    /// hooks' host functions are built once and close over this cell; the
    /// runtime sets it at each entry point instead of rebuilding closures.
    whoami_cell: Rc<Cell<usize>>,
    hooks: CompiledHooks,
    metaload_scalar: Option<ScalarMetaload>,
    mdsload_scalar: Option<ScalarMdsload>,
    /// Reusable `decide` environment (tables + interned keys), built lazily
    /// on first use. Only the default bytecode engine touches it; the
    /// oracle engines rebuild their environment from scratch every call so
    /// they keep measuring the unoptimized path.
    decide_env: RefCell<Option<DecideEnv>>,
    engine: HookEngine,
}

/// Interned string keys for the per-MDS metric fields, cloned (refcount
/// bump, no allocation) into table inserts on the decide fast path.
struct MdsKeys {
    auth: Key,
    all: Key,
    cpu: Key,
    mem: Key,
    q: Key,
    req: Key,
    cache_hits: Key,
    cache_misses: Key,
    load: Key,
}

impl MdsKeys {
    fn new() -> MdsKeys {
        let k = |s: &str| Key::Str(Rc::from(s));
        MdsKeys {
            auth: k("auth"),
            all: k("all"),
            cpu: k("cpu"),
            mem: k("mem"),
            q: k("q"),
            req: k("req"),
            cache_hits: k("cache_hits"),
            cache_misses: k("cache_misses"),
            load: k("load"),
        }
    }
}

/// The tables backing one `decide` call, reused across calls on the
/// bytecode engine. Building these fresh (nine `Rc<str>` allocations per
/// MDS row plus the hash inserts) used to dominate the hot path; reuse
/// keeps the allocations while [`DecideEnv::reset`] restores the exact
/// observable state a fresh build would have.
///
/// Reuse is invisible to scripts: globals are re-imaged from the base
/// environment on every hook run and `WRstate` persists only numbers, so
/// no table reference survives from one call to the next — `reset`'s
/// clear-and-refill therefore makes the reused tables indistinguishable
/// (content *and* error behaviour) from freshly allocated ones. The
/// report-level differential suite (`tests/bytecode_equivalence.rs`) pins
/// this against both oracle engines.
struct DecideEnv {
    mdss: Rc<RefCell<Table>>,
    /// Row tables, kept alongside `mdss` so refilling them skips the outer
    /// lookup. `rows[i]` is the table behind `MDSs[i+1]`.
    rows: Vec<Rc<RefCell<Table>>>,
    targets: Rc<RefCell<Table>>,
    keys: MdsKeys,
}

impl DecideEnv {
    fn new() -> DecideEnv {
        DecideEnv {
            mdss: Rc::new(RefCell::new(Table::new())),
            rows: Vec::new(),
            targets: Rc::new(RefCell::new(Table::new())),
            keys: MdsKeys::new(),
        }
    }

    /// Clear every table and refill from `inputs`, restoring exactly the
    /// state a fresh environment build would produce (the previous call's
    /// decision script may have written arbitrary keys anywhere).
    fn reset(&mut self, inputs: &BalancerInputs) {
        let n = inputs.mds.len();
        while self.rows.len() < n {
            self.rows.push(Rc::new(RefCell::new(Table::new())));
        }
        {
            let mut outer = self.mdss.borrow_mut();
            outer.clear();
            for (i, row) in self.rows.iter().take(n).enumerate() {
                outer.set(Key::Int(i as i64 + 1), Value::Table(Rc::clone(row)));
            }
        }
        for (row, m) in self.rows.iter().zip(&inputs.mds) {
            let mut row = row.borrow_mut();
            row.clear();
            row.set(self.keys.auth.clone(), Value::Number(m.auth));
            row.set(self.keys.all.clone(), Value::Number(m.all));
            row.set(self.keys.cpu.clone(), Value::Number(m.cpu));
            row.set(self.keys.mem.clone(), Value::Number(m.mem));
            row.set(self.keys.q.clone(), Value::Number(m.q));
            row.set(self.keys.req.clone(), Value::Number(m.req));
            row.set(self.keys.cache_hits.clone(), Value::Number(m.cache_hits));
            row.set(
                self.keys.cache_misses.clone(),
                Value::Number(m.cache_misses),
            );
        }
        self.targets.borrow_mut().clear();
    }
}

impl fmt::Debug for MantleRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MantleRuntime")
            .field("policy", &self.policy)
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

impl MantleRuntime {
    /// Build a runtime with an in-memory state store.
    pub fn new(policy: PolicySet) -> Self {
        Self::build(
            policy,
            Rc::new(RefCell::new(MemoryStateStore::default())),
            StepBudget::default(),
            HookEngine::default(),
        )
    }

    fn build(
        policy: PolicySet,
        state: Rc<RefCell<dyn StateStore>>,
        budget: StepBudget,
        engine: HookEngine,
    ) -> Self {
        let whoami_cell = Rc::new(Cell::new(0usize));
        let host = Self::host_env(&state, &whoami_cell, budget);
        let metaload_scalar = ScalarMetaload::extract(&policy.metaload);
        let mdsload_scalar = ScalarMdsload::extract(&policy.mdsload);
        let hooks = CompiledHooks {
            metaload: CompiledHook::compile(&policy.metaload, &host, budget),
            mdsload: CompiledHook::compile(&policy.mdsload, &host, budget),
            decision: match &policy.decision {
                Decision::Hooks { when, where_ } => CompiledDecision::Hooks {
                    when: Box::new(CompiledHook::compile(when, &host, budget)),
                    where_: Box::new(CompiledHook::compile(where_, &host, budget)),
                },
                Decision::Combined(script) => CompiledDecision::Combined(Box::new(
                    CompiledHook::compile(script, &host, budget),
                )),
            },
            howmany: policy
                .howmany
                .as_ref()
                .map(|s| CompiledHook::compile(s, &host, budget)),
        };
        MantleRuntime {
            policy,
            state,
            budget,
            whoami_cell,
            hooks,
            metaload_scalar,
            mdsload_scalar,
            decide_env: RefCell::new(None),
            engine,
        }
    }

    /// The host environment compiled hooks draw their base frame from:
    /// stdlib plus `WRstate`/`RDstate` closing over the shared whoami cell.
    fn host_env(
        state: &Rc<RefCell<dyn StateStore>>,
        whoami_cell: &Rc<Cell<usize>>,
        budget: StepBudget,
    ) -> Interpreter {
        let mut interp = Interpreter::new().with_budget(budget);
        stdlib::install(&mut interp);
        let store = Rc::clone(state);
        let cell = Rc::clone(whoami_cell);
        interp.set_global(
            "WRstate",
            Value::Native(
                "WRstate",
                Rc::new(move |_, args| {
                    let v = args
                        .first()
                        .ok_or_else(|| PolicyError::runtime(0, "WRstate expects a value"))?
                        .as_number(0)?;
                    store.borrow_mut().write(cell.get(), v);
                    Ok(Value::Nil)
                }),
            ),
        );
        let store = Rc::clone(state);
        let cell = Rc::clone(whoami_cell);
        interp.set_global(
            "RDstate",
            Value::Native(
                "RDstate",
                Rc::new(move |_, _| Ok(Value::Number(store.borrow().read(cell.get())))),
            ),
        );
        interp
    }

    /// Use a custom state store.
    pub fn with_state_store(self, store: Rc<RefCell<dyn StateStore>>) -> Self {
        Self::build(self.policy, store, self.budget, self.engine)
    }

    /// Override the step budget applied to every hook invocation.
    pub fn with_budget(self, budget: StepBudget) -> Self {
        Self::build(self.policy, self.state, budget, self.engine)
    }

    /// Select the evaluation engine (bytecode by default). All engines are
    /// bit-identical; the oracles exist so benchmarks and differential
    /// tests can compare them.
    pub fn with_engine(mut self, engine: HookEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The engine hooks currently run on.
    pub fn engine(&self) -> HookEngine {
        self.engine
    }

    /// Force every hook through the original tree-walking interpreter
    /// instead of the compiled (and scalar) fast paths — shorthand for
    /// [`Self::with_engine`]`(HookEngine::Tree)`; `force == false` restores
    /// the default bytecode engine.
    pub fn with_force_slow_path(self, force: bool) -> Self {
        self.with_engine(if force {
            HookEngine::Tree
        } else {
            HookEngine::default()
        })
    }

    /// The configured dirfrag selectors.
    pub fn selectors(&self) -> &[String] {
        &self.policy.howmuch
    }

    /// Access the policy set.
    pub fn policy(&self) -> &PolicySet {
        &self.policy
    }

    /// The scalar-compiled `metaload`, when the hook is a single linear
    /// combination of the five counters (true for Table 1 and every
    /// shipped policy).
    pub fn metaload_scalar(&self) -> Option<&ScalarMetaload> {
        self.metaload_scalar.as_ref()
    }

    /// The scalar-compiled `mdsload`, when the hook is a single linear
    /// combination of the current row's metric fields (true for Table 1
    /// and every shipped policy). Consumed by the bytecode engine's
    /// `decide` fast path; the oracle engines ignore it.
    pub fn mdsload_scalar(&self) -> Option<&ScalarMdsload> {
        self.mdsload_scalar.as_ref()
    }

    /// True when `metaload` distributes over sums of counter vectors
    /// (linear with no constant term), which lets callers evaluate it once
    /// per MDS on aggregated heat instead of once per dirfrag.
    ///
    /// Deliberately independent of [`Self::with_force_slow_path`]: the
    /// force switch changes the evaluation engine, never the aggregation
    /// structure, so reports stay identical between the two engines.
    pub fn metaload_is_additive(&self) -> bool {
        self.metaload_scalar
            .as_ref()
            .is_some_and(|s| s.is_homogeneous())
    }

    fn base_interp(&self, whoami: usize) -> Interpreter {
        let mut interp = Interpreter::new().with_budget(self.budget);
        stdlib::install(&mut interp);
        let store = Rc::clone(&self.state);
        let store_rd = Rc::clone(&self.state);
        interp.set_global(
            "WRstate",
            Value::Native(
                "WRstate",
                Rc::new(move |_, args| {
                    let v = args
                        .first()
                        .ok_or_else(|| PolicyError::runtime(0, "WRstate expects a value"))?
                        .as_number(0)?;
                    store.borrow_mut().write(whoami, v);
                    Ok(Value::Nil)
                }),
            ),
        );
        interp.set_global(
            "RDstate",
            Value::Native(
                "RDstate",
                Rc::new(move |_, _| Ok(Value::Number(store_rd.borrow().read(whoami)))),
            ),
        );
        interp
    }

    /// Evaluate `mds_bal_metaload` for one fragment's counters.
    ///
    /// This is the hottest hook (once per dirfrag per balancer tick). The
    /// fast paths do zero interpreter constructions and zero `String`
    /// allocations: a scalar-compiled hook is a few multiply-adds; anything
    /// else reuses the hook's compiled slot program.
    pub fn eval_metaload(&self, whoami: usize, frag: &FragMetrics) -> PolicyResult<f64> {
        if self.engine == HookEngine::Tree {
            let mut interp = self.base_interp(whoami);
            interp.set_global("IRD", Value::Number(frag.ird));
            interp.set_global("IWR", Value::Number(frag.iwr));
            interp.set_global("READDIR", Value::Number(frag.readdir));
            interp.set_global("FETCH", Value::Number(frag.fetch));
            interp.set_global("STORE", Value::Number(frag.store));
            return interp.run(&self.policy.metaload)?.as_number(0);
        }
        if let Some(scalar) = &self.metaload_scalar {
            return Ok(scalar.eval(&[frag.ird, frag.iwr, frag.readdir, frag.fetch, frag.store]));
        }
        self.whoami_cell.set(whoami);
        self.hooks
            .metaload
            .run(self.engine, |env, vm| {
                set_slot(vm, env.ird, Value::Number(frag.ird));
                set_slot(vm, env.iwr, Value::Number(frag.iwr));
                set_slot(vm, env.readdir, Value::Number(frag.readdir));
                set_slot(vm, env.fetch, Value::Number(frag.fetch));
                set_slot(vm, env.store, Value::Number(frag.store));
            })?
            .as_number(0)
    }

    /// Run the full decision pipeline: `mdsload` per MDS, then
    /// `when`/`where` (or the combined script).
    pub fn decide(&self, inputs: &BalancerInputs) -> PolicyResult<BalancerOutcome> {
        let n = inputs.mds.len();
        if n == 0 {
            return Ok(BalancerOutcome::idle(0));
        }
        if self.engine == HookEngine::Bytecode {
            return self.decide_bytecode(inputs);
        }

        // Pass 1: evaluate mdsload for every MDS, building the MDSs table.
        let mdss_table = Rc::new(RefCell::new(Table::new()));
        for (i, m) in inputs.mds.iter().enumerate() {
            let t = Table::from_fields([
                ("auth", Value::Number(m.auth)),
                ("all", Value::Number(m.all)),
                ("cpu", Value::Number(m.cpu)),
                ("mem", Value::Number(m.mem)),
                ("q", Value::Number(m.q)),
                ("req", Value::Number(m.req)),
                ("cache_hits", Value::Number(m.cache_hits)),
                ("cache_misses", Value::Number(m.cache_misses)),
            ]);
            mdss_table
                .borrow_mut()
                .set_int(i as i64 + 1, Value::Table(Rc::new(RefCell::new(t))));
        }

        self.whoami_cell.set(inputs.whoami);
        let mut mds_loads = Vec::with_capacity(n);
        for i in 0..n {
            let load = if self.engine == HookEngine::Tree {
                let mut interp = self.base_interp(inputs.whoami);
                interp.set_global("whoami", Value::Number(inputs.whoami as f64 + 1.0));
                interp.set_global("i", Value::Number(i as f64 + 1.0));
                interp.set_global("MDSs", Value::Table(Rc::clone(&mdss_table)));
                interp.set_global("authmetaload", Value::Number(inputs.auth_metaload));
                interp.set_global("allmetaload", Value::Number(inputs.all_metaload));
                interp.run(&self.policy.mdsload)?.as_number(0)?
            } else {
                self.hooks
                    .mdsload
                    .run(self.engine, |env, vm| {
                        set_slot(vm, env.whoami, Value::Number(inputs.whoami as f64 + 1.0));
                        set_slot(vm, env.i, Value::Number(i as f64 + 1.0));
                        set_slot(vm, env.mdss, Value::Table(Rc::clone(&mdss_table)));
                        set_slot(vm, env.authmetaload, Value::Number(inputs.auth_metaload));
                        set_slot(vm, env.allmetaload, Value::Number(inputs.all_metaload));
                    })?
                    .as_number(0)?
            };
            mds_loads.push(load);
        }
        let total: f64 = mds_loads.iter().sum();
        for (i, load) in mds_loads.iter().enumerate() {
            if let Value::Table(t) = mdss_table.borrow().get_int(i as i64 + 1) {
                t.borrow_mut().set_str("load", Value::Number(*load));
            }
        }

        // Pass 2: when/where.
        let targets_table = Rc::new(RefCell::new(Table::new()));
        let setup = |interp: &mut Interpreter| {
            interp.set_global("whoami", Value::Number(inputs.whoami as f64 + 1.0));
            interp.set_global("MDSs", Value::Table(Rc::clone(&mdss_table)));
            interp.set_global("total", Value::Number(total));
            interp.set_global("authmetaload", Value::Number(inputs.auth_metaload));
            interp.set_global("allmetaload", Value::Number(inputs.all_metaload));
            interp.set_global("targets", Value::Table(Rc::clone(&targets_table)));
        };
        let slot_setup = |env: &EnvSlots, vm: &mut dyn EnvSink| {
            set_slot(vm, env.whoami, Value::Number(inputs.whoami as f64 + 1.0));
            set_slot(vm, env.mdss, Value::Table(Rc::clone(&mdss_table)));
            set_slot(vm, env.total, Value::Number(total));
            set_slot(vm, env.authmetaload, Value::Number(inputs.auth_metaload));
            set_slot(vm, env.allmetaload, Value::Number(inputs.all_metaload));
            set_slot(vm, env.targets, Value::Table(Rc::clone(&targets_table)));
        };
        // The listings signal "migrate" by filling targets.
        let targets_filled = |targets_table: &Rc<RefCell<Table>>| {
            (1..=n as i64).any(|i| {
                targets_table
                    .borrow()
                    .get_int(i)
                    .as_number(0)
                    .map(|v| v > 0.0)
                    .unwrap_or(false)
            })
        };

        let migrate = if self.engine == HookEngine::Tree {
            match &self.policy.decision {
                Decision::Hooks { when, where_ } => {
                    let mut interp = self.base_interp(inputs.whoami);
                    setup(&mut interp);
                    let fired = interp.run(when)?.truthy();
                    if fired {
                        let mut interp = self.base_interp(inputs.whoami);
                        setup(&mut interp);
                        interp.run(where_)?;
                    }
                    fired
                }
                Decision::Combined(script) => {
                    let mut interp = self.base_interp(inputs.whoami);
                    setup(&mut interp);
                    interp.run(script)?;
                    targets_filled(&targets_table)
                }
            }
        } else {
            match &self.hooks.decision {
                CompiledDecision::Hooks { when, where_ } => {
                    let fired = when.run(self.engine, slot_setup)?.truthy();
                    if fired {
                        where_.run(self.engine, slot_setup)?;
                    }
                    fired
                }
                CompiledDecision::Combined(hook) => {
                    hook.run(self.engine, slot_setup)?;
                    targets_filled(&targets_table)
                }
            }
        };

        let mut targets = vec![0.0; n];
        {
            let tt = targets_table.borrow();
            for (i, slot) in targets.iter_mut().enumerate() {
                if let Ok(v) = tt.get_int(i as i64 + 1).as_number(0) {
                    *slot = v.max(0.0);
                }
            }
        }
        // Migration that targets nobody is a no-op.
        let migrate = migrate && targets.iter().any(|&t| t > 0.0);

        Ok(BalancerOutcome {
            mds_loads,
            total,
            migrate,
            targets,
        })
    }

    /// [`Self::decide`] on the default bytecode engine: same pipeline, same
    /// observable behaviour, but the environment tables are reused across
    /// calls (see [`DecideEnv`]) and an `mdsload` hook that compiled to
    /// [`ScalarMdsload`] is evaluated straight off the input metrics —
    /// no VM run, no table lookups — exactly as [`Self::eval_metaload`]
    /// does for scalar `metaload` hooks.
    ///
    /// Structure deliberately mirrors the oracle path statement for
    /// statement; any divergence is caught by the three-way differential
    /// suites at hook and report level.
    fn decide_bytecode(&self, inputs: &BalancerInputs) -> PolicyResult<BalancerOutcome> {
        let n = inputs.mds.len();
        let mut cached = self.decide_env.borrow_mut();
        let env = cached.get_or_insert_with(DecideEnv::new);
        env.reset(inputs);
        let mdss_table = Rc::clone(&env.mdss);
        let targets_table = Rc::clone(&env.targets);
        let load_key = env.keys.load.clone();

        // Pass 1: evaluate mdsload for every MDS.
        self.whoami_cell.set(inputs.whoami);
        let mut mds_loads = Vec::with_capacity(n);
        if let Some(scalar) = &self.mdsload_scalar {
            for m in &inputs.mds {
                mds_loads.push(scalar.eval(&[
                    m.auth,
                    m.all,
                    m.cpu,
                    m.mem,
                    m.q,
                    m.req,
                    m.cache_hits,
                    m.cache_misses,
                ]));
            }
            let total: f64 = mds_loads.iter().sum();
            // A scalar mdsload runs no script, so `MDSs` is exactly as
            // `reset` built it and `rows[i]` *is* the table behind
            // `MDSs[i+1]` — write the loads back without the outer lookup.
            for (row, load) in env.rows.iter().zip(&mds_loads) {
                row.borrow_mut().set(load_key.clone(), Value::Number(*load));
            }
            return self.decide_bytecode_pass2(inputs, mds_loads, total, mdss_table, targets_table);
        }
        for i in 0..n {
            let load = self
                .hooks
                .mdsload
                .run(HookEngine::Bytecode, |env, vm| {
                    set_slot(vm, env.whoami, Value::Number(inputs.whoami as f64 + 1.0));
                    set_slot(vm, env.i, Value::Number(i as f64 + 1.0));
                    set_slot(vm, env.mdss, Value::Table(Rc::clone(&mdss_table)));
                    set_slot(vm, env.authmetaload, Value::Number(inputs.auth_metaload));
                    set_slot(vm, env.allmetaload, Value::Number(inputs.all_metaload));
                })?
                .as_number(0)?;
            mds_loads.push(load);
        }
        let total: f64 = mds_loads.iter().sum();
        // Write back through the outer table, as the oracle path does — an
        // exotic mdsload hook could have rearranged `MDSs` and the
        // write-back must see exactly what it left behind.
        for (i, load) in mds_loads.iter().enumerate() {
            if let Value::Table(t) = mdss_table.borrow().get_int(i as i64 + 1) {
                t.borrow_mut().set(load_key.clone(), Value::Number(*load));
            }
        }
        self.decide_bytecode_pass2(inputs, mds_loads, total, mdss_table, targets_table)
    }

    /// Pass 2 of [`Self::decide_bytecode`]: run the decision hook(s) and
    /// extract the targets vector.
    fn decide_bytecode_pass2(
        &self,
        inputs: &BalancerInputs,
        mds_loads: Vec<f64>,
        total: f64,
        mdss_table: Rc<RefCell<Table>>,
        targets_table: Rc<RefCell<Table>>,
    ) -> PolicyResult<BalancerOutcome> {
        let n = inputs.mds.len();

        let slot_setup = |env: &EnvSlots, vm: &mut dyn EnvSink| {
            set_slot(vm, env.whoami, Value::Number(inputs.whoami as f64 + 1.0));
            set_slot(vm, env.mdss, Value::Table(Rc::clone(&mdss_table)));
            set_slot(vm, env.total, Value::Number(total));
            set_slot(vm, env.authmetaload, Value::Number(inputs.auth_metaload));
            set_slot(vm, env.allmetaload, Value::Number(inputs.all_metaload));
            set_slot(vm, env.targets, Value::Table(Rc::clone(&targets_table)));
        };
        // `fired` for the two-hook form; `None` for the combined form,
        // where "migrate" is simply "the script filled targets" — which
        // the clamp-and-extract below already determines (a slot ends up
        // > 0 exactly when `targets_filled` on the oracle path would have
        // seen a positive number there), so the separate pre-scan the
        // oracle path performs is skipped.
        let fired = match &self.hooks.decision {
            CompiledDecision::Hooks { when, where_ } => {
                let fired = when.run(HookEngine::Bytecode, slot_setup)?.truthy();
                if fired {
                    where_.run(HookEngine::Bytecode, slot_setup)?;
                }
                Some(fired)
            }
            CompiledDecision::Combined(hook) => {
                hook.run(HookEngine::Bytecode, slot_setup)?;
                None
            }
        };

        let mut targets = vec![0.0; n];
        {
            let tt = targets_table.borrow();
            for (i, slot) in targets.iter_mut().enumerate() {
                if let Ok(v) = tt.get_int(i as i64 + 1).as_number(0) {
                    *slot = v.max(0.0);
                }
            }
        }
        // Migration that targets nobody is a no-op (and for the combined
        // form, targeting nobody means the decision never fired at all).
        let migrate = fired.unwrap_or(true) && targets.iter().any(|&t| t > 0.0);

        Ok(BalancerOutcome {
            mds_loads,
            total,
            migrate,
            targets,
        })
    }

    /// Whether this policy carries a `mds_bal_howmany` auto-scaling hook.
    pub fn has_howmany(&self) -> bool {
        self.policy.howmany.is_some()
    }

    /// Run the `mds_bal_howmany` auto-scaling hook: `mdsload` per MDS
    /// (pass 1, the same per-engine pipeline [`Self::decide`] uses), then
    /// the hook itself over the pass-2 decision environment extended with
    /// `active` (current member count), `min_mds`, and `max_mds`. Returns
    /// the raw target count (callers round and clamp), or `None` when the
    /// policy has no hook.
    ///
    /// Runs once per balancer tick on the coordinator, so the environment
    /// is built fresh on every engine — there is no hot path to protect.
    /// All three engines are bit-identical here exactly as for `decide`.
    pub fn eval_howmany(
        &self,
        inputs: &BalancerInputs,
        active: usize,
        min_mds: usize,
        max_mds: usize,
    ) -> PolicyResult<Option<f64>> {
        let Some(script) = &self.policy.howmany else {
            return Ok(None);
        };
        let n = inputs.mds.len();
        if n == 0 {
            return Ok(None);
        }
        self.whoami_cell.set(inputs.whoami);

        // Pass 1: evaluate mdsload for every MDS, building the MDSs table.
        let mdss_table = Rc::new(RefCell::new(Table::new()));
        for (i, m) in inputs.mds.iter().enumerate() {
            let t = Table::from_fields([
                ("auth", Value::Number(m.auth)),
                ("all", Value::Number(m.all)),
                ("cpu", Value::Number(m.cpu)),
                ("mem", Value::Number(m.mem)),
                ("q", Value::Number(m.q)),
                ("req", Value::Number(m.req)),
                ("cache_hits", Value::Number(m.cache_hits)),
                ("cache_misses", Value::Number(m.cache_misses)),
            ]);
            mdss_table
                .borrow_mut()
                .set_int(i as i64 + 1, Value::Table(Rc::new(RefCell::new(t))));
        }
        let mut mds_loads = Vec::with_capacity(n);
        for (i, m) in inputs.mds.iter().enumerate() {
            let load = match self.engine {
                HookEngine::Tree => {
                    let mut interp = self.base_interp(inputs.whoami);
                    interp.set_global("whoami", Value::Number(inputs.whoami as f64 + 1.0));
                    interp.set_global("i", Value::Number(i as f64 + 1.0));
                    interp.set_global("MDSs", Value::Table(Rc::clone(&mdss_table)));
                    interp.set_global("authmetaload", Value::Number(inputs.auth_metaload));
                    interp.set_global("allmetaload", Value::Number(inputs.all_metaload));
                    interp.run(&self.policy.mdsload)?.as_number(0)?
                }
                HookEngine::Bytecode if self.mdsload_scalar.is_some() => {
                    self.mdsload_scalar.as_ref().expect("checked above").eval(&[
                        m.auth,
                        m.all,
                        m.cpu,
                        m.mem,
                        m.q,
                        m.req,
                        m.cache_hits,
                        m.cache_misses,
                    ])
                }
                engine => self
                    .hooks
                    .mdsload
                    .run(engine, |env, vm| {
                        set_slot(vm, env.whoami, Value::Number(inputs.whoami as f64 + 1.0));
                        set_slot(vm, env.i, Value::Number(i as f64 + 1.0));
                        set_slot(vm, env.mdss, Value::Table(Rc::clone(&mdss_table)));
                        set_slot(vm, env.authmetaload, Value::Number(inputs.auth_metaload));
                        set_slot(vm, env.allmetaload, Value::Number(inputs.all_metaload));
                    })?
                    .as_number(0)?,
            };
            mds_loads.push(load);
        }
        let total: f64 = mds_loads.iter().sum();
        for (i, load) in mds_loads.iter().enumerate() {
            if let Value::Table(t) = mdss_table.borrow().get_int(i as i64 + 1) {
                t.borrow_mut().set_str("load", Value::Number(*load));
            }
        }

        // Pass 2: the howmany hook itself.
        let target = if self.engine == HookEngine::Tree {
            let mut interp = self.base_interp(inputs.whoami);
            interp.set_global("whoami", Value::Number(inputs.whoami as f64 + 1.0));
            interp.set_global("MDSs", Value::Table(Rc::clone(&mdss_table)));
            interp.set_global("total", Value::Number(total));
            interp.set_global("authmetaload", Value::Number(inputs.auth_metaload));
            interp.set_global("allmetaload", Value::Number(inputs.all_metaload));
            interp.set_global("active", Value::Number(active as f64));
            interp.set_global("min_mds", Value::Number(min_mds as f64));
            interp.set_global("max_mds", Value::Number(max_mds as f64));
            interp.run(script)?.as_number(0)?
        } else {
            self.hooks
                .howmany
                .as_ref()
                .expect("compiled alongside policy.howmany")
                .run(self.engine, |env, vm| {
                    set_slot(vm, env.whoami, Value::Number(inputs.whoami as f64 + 1.0));
                    set_slot(vm, env.mdss, Value::Table(Rc::clone(&mdss_table)));
                    set_slot(vm, env.total, Value::Number(total));
                    set_slot(vm, env.authmetaload, Value::Number(inputs.auth_metaload));
                    set_slot(vm, env.allmetaload, Value::Number(inputs.all_metaload));
                    set_slot(vm, env.active, Value::Number(active as f64));
                    set_slot(vm, env.min_mds, Value::Number(min_mds as f64));
                    set_slot(vm, env.max_mds, Value::Number(max_mds as f64));
                })?
                .as_number(0)?
        };
        Ok(Some(target))
    }
}

/// Builder for one-off script environments in tests and tools.
#[derive(Debug, Default)]
pub struct EnvBuilder {
    globals: Vec<(String, f64)>,
}

impl EnvBuilder {
    /// Empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a numeric global.
    pub fn number(mut self, name: &str, v: f64) -> Self {
        self.globals.push((name.to_string(), v));
        self
    }

    /// Build an interpreter with the stdlib plus the configured globals.
    pub fn build(self) -> Interpreter {
        let mut interp = Interpreter::new();
        stdlib::install(&mut interp);
        for (name, v) in self.globals {
            interp.set_global(&name, Value::Number(v));
        }
        interp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(loads: &[f64]) -> Vec<MdsMetrics> {
        loads
            .iter()
            .map(|&l| MdsMetrics {
                auth: l,
                all: l,
                ..Default::default()
            })
            .collect()
    }

    /// The original CephFS balancer policies from Table 1, expressed in
    /// the Mantle API (§3.2).
    fn cephfs_policy() -> PolicySet {
        PolicySet::from_hooks(
            "IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE",
            "0.8*MDSs[i][\"auth\"] + 0.2*MDSs[i][\"all\"] + MDSs[i][\"req\"] + 10*MDSs[i][\"q\"]",
            "if MDSs[whoami][\"load\"] > total/#MDSs then",
            r#"
targetLoad = total/#MDSs
for i=1,#MDSs do
  if MDSs[i]["load"] < targetLoad then
    targets[i] = targetLoad - MDSs[i]["load"]
  end
end
"#,
            &["big_first"],
        )
        .unwrap()
    }

    #[test]
    fn table1_metaload_weights() {
        let rt = MantleRuntime::new(cephfs_policy());
        let frag = FragMetrics {
            ird: 1.0,
            iwr: 2.0,
            readdir: 3.0,
            fetch: 4.0,
            store: 5.0,
        };
        // 1 + 2*2 + 3 + 2*4 + 4*5 = 36
        assert_eq!(rt.eval_metaload(0, &frag).unwrap(), 36.0);
    }

    #[test]
    fn table1_when_fires_only_above_average() {
        let rt = MantleRuntime::new(cephfs_policy());
        let hot = BalancerInputs {
            whoami: 0,
            mds: metrics(&[90.0, 5.0, 5.0]),
            ..Default::default()
        };
        let out = rt.decide(&hot).unwrap();
        assert!(out.migrate);
        // targets for the two cold MDSs, none for self.
        assert_eq!(out.targets[0], 0.0);
        assert!(out.targets[1] > 0.0 && out.targets[2] > 0.0);

        let cold = BalancerInputs {
            whoami: 1,
            mds: metrics(&[90.0, 5.0, 5.0]),
            ..Default::default()
        };
        let out = rt.decide(&cold).unwrap();
        assert!(!out.migrate, "an underloaded MDS must not export");
    }

    #[test]
    fn mdsload_weighted_sum() {
        let rt = MantleRuntime::new(cephfs_policy());
        let inputs = BalancerInputs {
            whoami: 0,
            mds: vec![MdsMetrics {
                auth: 10.0,
                all: 20.0,
                req: 5.0,
                q: 2.0,
                ..Default::default()
            }],
            ..Default::default()
        };
        let out = rt.decide(&inputs).unwrap();
        // 0.8*10 + 0.2*20 + 5 + 10*2 = 37
        assert!((out.mds_loads[0] - 37.0).abs() < 1e-9);
    }

    #[test]
    fn listing_1_greedy_spill_runs_verbatim() {
        // Listing 1, with `end` completing the truncated `if`.
        let p = PolicySet::from_combined(
            "IWR",
            "MDSs[i][\"all\"]",
            r#"
if MDSs[whoami]["load"]>.01 and MDSs[whoami+1]["load"]<.01 then
  targets[whoami+1]=allmetaload/2
end
"#,
            &["half"],
        )
        .unwrap();
        let rt = MantleRuntime::new(p);
        let inputs = BalancerInputs {
            whoami: 0,
            mds: metrics(&[50.0, 0.0, 0.0, 0.0]),
            all_metaload: 50.0,
            ..Default::default()
        };
        let out = rt.decide(&inputs).unwrap();
        assert!(out.migrate);
        assert_eq!(out.targets[1], 25.0);
        assert_eq!(out.targets[2], 0.0);

        // Neighbour already loaded → no spill.
        let inputs2 = BalancerInputs {
            whoami: 0,
            mds: metrics(&[50.0, 50.0, 0.0, 0.0]),
            all_metaload: 50.0,
            ..Default::default()
        };
        assert!(!rt.decide(&inputs2).unwrap().migrate);
    }

    #[test]
    fn listing_3_fill_and_spill_state_machine() {
        // Fill & Spill: spill 25% only after CPU > 48 for 3 straight ticks.
        let p = PolicySet::from_combined(
            "IWR + IRD",
            "MDSs[i][\"auth\"]",
            r#"
wait=RDstate()
go = 0
if MDSs[whoami]["cpu"]>48 then
  if wait>0 then WRstate(wait-1)
  else WRstate(2) go=1 end
else WRstate(2) end
if go==1 then
  targets[whoami+1] = MDSs[whoami]["load"]/4
end
"#,
            &["small_first"],
        )
        .unwrap();
        let rt = MantleRuntime::new(p);
        let busy = BalancerInputs {
            whoami: 0,
            mds: vec![
                MdsMetrics {
                    auth: 100.0,
                    cpu: 90.0,
                    ..Default::default()
                },
                MdsMetrics::default(),
            ],
            ..Default::default()
        };
        // Tick 1: cold start, wait==0 → go (the listing's semantics: an MDS
        // already past threshold with no armed counter fires and re-arms).
        assert!(rt.decide(&busy).unwrap().migrate);
        // Ticks 2-3: armed counter counts down, no migration.
        assert!(!rt.decide(&busy).unwrap().migrate);
        assert!(!rt.decide(&busy).unwrap().migrate);
        // Tick 4: counter exhausted → fires again.
        assert!(rt.decide(&busy).unwrap().migrate);
        // Idle CPU always re-arms and never fires.
        let idle = BalancerInputs {
            whoami: 0,
            mds: vec![
                MdsMetrics {
                    auth: 100.0,
                    cpu: 10.0,
                    ..Default::default()
                },
                MdsMetrics::default(),
            ],
            ..Default::default()
        };
        assert!(!rt.decide(&idle).unwrap().migrate);
    }

    #[test]
    fn combined_decision_with_no_targets_is_idle() {
        let p = PolicySet::from_combined("IWR", "MDSs[i][\"all\"]", "x = 1", &["half"]).unwrap();
        let rt = MantleRuntime::new(p);
        let out = rt
            .decide(&BalancerInputs {
                whoami: 0,
                mds: metrics(&[10.0, 0.0]),
                ..Default::default()
            })
            .unwrap();
        assert!(!out.migrate);
        assert_eq!(out.targets, vec![0.0, 0.0]);
    }

    #[test]
    fn when_true_but_empty_targets_is_idle() {
        let p =
            PolicySet::from_hooks("IWR", "MDSs[i][\"all\"]", "true", "x = 1", &["half"]).unwrap();
        let rt = MantleRuntime::new(p);
        let out = rt
            .decide(&BalancerInputs {
                whoami: 0,
                mds: metrics(&[10.0, 0.0]),
                ..Default::default()
            })
            .unwrap();
        assert!(!out.migrate, "no targets → nothing to do");
    }

    #[test]
    fn negative_targets_are_clamped() {
        let p = PolicySet::from_hooks(
            "IWR",
            "MDSs[i][\"all\"]",
            "true",
            "targets[2] = -5",
            &["half"],
        )
        .unwrap();
        let rt = MantleRuntime::new(p);
        let out = rt
            .decide(&BalancerInputs {
                whoami: 0,
                mds: metrics(&[10.0, 5.0]),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(out.targets[1], 0.0);
        assert!(!out.migrate);
    }

    #[test]
    fn file_state_store_round_trips() {
        let dir = std::env::temp_dir().join(format!("mantle-test-{}", std::process::id()));
        let mut store = FileStateStore::new(&dir).unwrap();
        assert_eq!(store.read(3), 0.0);
        store.write(3, 2.5);
        assert_eq!(store.read(3), 2.5);
        store.clear();
        assert_eq!(store.read(3), 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn state_isolated_per_mds() {
        let mut store = MemoryStateStore::default();
        store.write(0, 1.0);
        store.write(1, 2.0);
        assert_eq!(store.read(0), 1.0);
        assert_eq!(store.read(1), 2.0);
    }

    #[test]
    fn env_builder() {
        let mut interp = EnvBuilder::new().number("x", 3.0).build();
        let script = crate::parser::parse_script("y = max(x, 2)").unwrap();
        interp.run(&script).unwrap();
        assert_eq!(interp.get_global("y").as_number(0).unwrap(), 3.0);
    }

    #[test]
    fn empty_cluster_is_idle() {
        let rt = MantleRuntime::new(cephfs_policy());
        let out = rt.decide(&BalancerInputs::default()).unwrap();
        assert!(!out.migrate);
        assert!(out.targets.is_empty());
    }

    #[test]
    fn table1_policy_is_scalar_and_additive() {
        let rt = MantleRuntime::new(cephfs_policy());
        assert!(rt.metaload_scalar().is_some());
        assert!(rt.metaload_is_additive());
        // The force switch changes the engine, never the aggregation
        // structure.
        let slow = MantleRuntime::new(cephfs_policy()).with_force_slow_path(true);
        assert!(slow.metaload_is_additive());
    }

    #[test]
    fn fast_and_slow_paths_agree_bit_for_bit() {
        let fast = MantleRuntime::new(cephfs_policy());
        let slow = MantleRuntime::new(cephfs_policy()).with_force_slow_path(true);
        let frag = FragMetrics {
            ird: 0.137,
            iwr: 12.75,
            readdir: 1.0 / 3.0,
            fetch: 9e3,
            store: 0.001,
        };
        assert_eq!(
            fast.eval_metaload(2, &frag).unwrap().to_bits(),
            slow.eval_metaload(2, &frag).unwrap().to_bits()
        );
        let inputs = BalancerInputs {
            whoami: 0,
            mds: metrics(&[90.0, 5.0, 35.0]),
            auth_metaload: 90.0,
            all_metaload: 95.0,
        };
        let a = fast.decide(&inputs).unwrap();
        let b = slow.decide(&inputs).unwrap();
        assert_eq!(a, b);
        for (x, y) in a.targets.iter().zip(&b.targets) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn all_three_engines_agree_on_decide() {
        let inputs = BalancerInputs {
            whoami: 0,
            mds: metrics(&[90.0, 5.0, 35.0]),
            auth_metaload: 90.0,
            all_metaload: 95.0,
        };
        let frag = FragMetrics {
            ird: 0.137,
            iwr: 12.75,
            readdir: 1.0 / 3.0,
            fetch: 9e3,
            store: 0.001,
        };
        let engines = [HookEngine::Tree, HookEngine::Slot, HookEngine::Bytecode];
        let runs: Vec<_> = engines
            .iter()
            .map(|&e| {
                let rt = MantleRuntime::new(cephfs_policy()).with_engine(e);
                assert_eq!(rt.engine(), e);
                (
                    rt.eval_metaload(2, &frag).unwrap(),
                    rt.decide(&inputs).unwrap(),
                )
            })
            .collect();
        for w in runs.windows(2) {
            assert_eq!(w[0].0.to_bits(), w[1].0.to_bits());
            assert_eq!(w[0].1, w[1].1);
            for (x, y) in w[0].1.targets.iter().zip(&w[1].1.targets) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn decide_env_reuse_is_invisible_across_calls() {
        // The bytecode engine reuses its decide tables; a decision script
        // that scribbles junk keys into MDSs rows, the outer table, and
        // targets must not be able to observe (or leak) anything across
        // calls. Every repeat call must match the slot oracle bit for bit.
        let p = PolicySet::from_combined(
            "IWR + IRD",
            "MDSs[i][\"all\"]",
            r#"
MDSs[1]["junk"] = 99
MDSs[4] = 7
targets["stray"] = 5
if MDSs[1]["polluted"] == nil then
  targets[2] = MDSs[1]["all"] / 2
end
MDSs[1]["polluted"] = 1
"#,
            &["half"],
        )
        .unwrap();
        let fast = MantleRuntime::new(p.clone());
        assert_eq!(fast.engine(), HookEngine::Bytecode);
        let oracle = MantleRuntime::new(p).with_engine(HookEngine::Slot);
        let inputs = |hot: f64| BalancerInputs {
            whoami: 0,
            mds: metrics(&[hot, 5.0, 35.0]),
            auth_metaload: hot,
            all_metaload: 95.0,
        };
        // Vary the cluster size mid-stream so stale rows from a larger
        // call can't bleed into a smaller one.
        for inp in [inputs(90.0), inputs(64.0), inputs(90.0)] {
            let a = fast.decide(&inp).unwrap();
            let b = oracle.decide(&inp).unwrap();
            assert_eq!(a, b);
            for (x, y) in a.targets.iter().zip(&b.targets) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let mut small = inputs(90.0);
        small.mds.truncate(2);
        let a = fast.decide(&small).unwrap();
        let b = oracle.decide(&small).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn non_scalar_mdsload_agrees_across_engines() {
        // An mdsload the scalar extractor refuses (function call) drives
        // the bytecode path through the compiled hook against the cached
        // MDSs table — which must still match the oracles exactly.
        let p = PolicySet::from_hooks(
            "IWR",
            "max(MDSs[i][\"all\"], 10*MDSs[i][\"q\"])",
            "if MDSs[whoami][\"load\"] > total/#MDSs then",
            "targets[2] = MDSs[whoami][\"load\"]/4",
            &["half"],
        )
        .unwrap();
        assert!(MantleRuntime::new(p.clone()).mdsload_scalar().is_none());
        let inputs = BalancerInputs {
            whoami: 0,
            mds: metrics(&[90.0, 5.0, 35.0]),
            auth_metaload: 90.0,
            all_metaload: 95.0,
        };
        let runs: Vec<_> = [HookEngine::Tree, HookEngine::Slot, HookEngine::Bytecode]
            .iter()
            .map(|&e| {
                MantleRuntime::new(p.clone())
                    .with_engine(e)
                    .decide(&inputs)
                    .unwrap()
            })
            .collect();
        for w in runs.windows(2) {
            assert_eq!(w[0], w[1]);
            for (x, y) in w[0].targets.iter().zip(&w[1].targets) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn cache_fields_reach_scripts_on_every_engine() {
        // A cache-aware mdsload: absorbed hits are nearly free, misses
        // carry full service cost. Linear, so bytecode takes the scalar
        // path; Tree and Slot read the same values out of the MDSs table.
        let p = PolicySet::from_hooks(
            "IWR",
            "MDSs[i][\"all\"] + 0.1*MDSs[i][\"cache_hits\"] + MDSs[i][\"cache_misses\"]",
            "if MDSs[whoami][\"load\"] > total/#MDSs then",
            "targets[2] = MDSs[whoami][\"load\"]/4",
            &["half"],
        )
        .unwrap();
        assert!(MantleRuntime::new(p.clone()).mdsload_scalar().is_some());
        let mut mds = metrics(&[80.0, 10.0]);
        mds[0].cache_hits = 400.0;
        mds[0].cache_misses = 30.0;
        mds[1].cache_hits = 20.0;
        mds[1].cache_misses = 5.0;
        let inputs = BalancerInputs {
            whoami: 0,
            mds,
            auth_metaload: 80.0,
            all_metaload: 80.0,
        };
        let runs: Vec<_> = [HookEngine::Tree, HookEngine::Slot, HookEngine::Bytecode]
            .iter()
            .map(|&e| {
                MantleRuntime::new(p.clone())
                    .with_engine(e)
                    .decide(&inputs)
                    .unwrap()
            })
            .collect();
        // 80 + 0.1*400 + 30 = 150; 10 + 0.1*20 + 5 = 17.
        assert_eq!(runs[0].mds_loads, vec![150.0, 17.0]);
        for w in runs.windows(2) {
            assert_eq!(w[0], w[1]);
            for (x, y) in w[0].targets.iter().zip(&w[1].targets) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn shipped_mdsload_hooks_take_the_scalar_path() {
        let rt = MantleRuntime::new(cephfs_policy());
        assert!(rt.mdsload_scalar().is_some(), "Table 1 mdsload is linear");
    }

    #[test]
    fn nan_in_policy_surfaces_as_error_on_every_engine() {
        // The NaN-strict stdlib lives in shared natives, so every engine
        // raises the same error for a policy that feeds 0/0 into max().
        let p = PolicySet::from_hooks(
            "max(IWR / (IRD - IRD), 1)",
            "MDSs[i][\"all\"]",
            "true",
            "targets[2] = 1",
            &["half"],
        )
        .unwrap();
        for e in [HookEngine::Tree, HookEngine::Slot, HookEngine::Bytecode] {
            let rt = MantleRuntime::new(p.clone()).with_engine(e);
            let err = rt.eval_metaload(0, &FragMetrics::default()).unwrap_err();
            assert!(err.to_string().contains("NaN argument"), "{e:?}: {err}");
        }
    }

    #[test]
    fn howmany_absent_yields_none() {
        let rt = MantleRuntime::new(cephfs_policy());
        assert!(!rt.has_howmany());
        let inputs = BalancerInputs {
            whoami: 0,
            mds: metrics(&[50.0, 5.0]),
            ..Default::default()
        };
        assert_eq!(rt.eval_howmany(&inputs, 2, 1, 2).unwrap(), None);
    }

    #[test]
    fn howmany_agrees_across_all_three_engines() {
        // A hook using the full environment: scale so per-member load sits
        // near 25, clamped by the runtime's callers.
        let p = cephfs_policy()
            .with_howmany("max(min_mds, min(max_mds, total / 25))")
            .unwrap();
        let inputs = BalancerInputs {
            whoami: 0,
            mds: metrics(&[90.0, 5.0, 35.0]),
            auth_metaload: 90.0,
            all_metaload: 95.0,
        };
        let runs: Vec<f64> = [HookEngine::Tree, HookEngine::Slot, HookEngine::Bytecode]
            .iter()
            .map(|&e| {
                MantleRuntime::new(p.clone())
                    .with_engine(e)
                    .eval_howmany(&inputs, 2, 1, 3)
                    .unwrap()
                    .expect("hook present")
            })
            .collect();
        for w in runs.windows(2) {
            assert_eq!(w[0].to_bits(), w[1].to_bits());
        }
        // Table-1 mdsload of metrics(&[l..]): 0.8l + 0.2l = l, so total is
        // 130 and the hook asks for 130/25 = 5.2 pre-clamp.
        assert!(
            (runs[0] - 3.0).abs() < 1e-12,
            "clamped to max_mds: {}",
            runs[0]
        );
    }

    #[test]
    fn howmany_sees_active_and_bounds() {
        let p = cephfs_policy()
            .with_howmany("active + min_mds + max_mds")
            .unwrap();
        for e in [HookEngine::Tree, HookEngine::Slot, HookEngine::Bytecode] {
            let rt = MantleRuntime::new(p.clone()).with_engine(e);
            let inputs = BalancerInputs {
                whoami: 0,
                mds: metrics(&[10.0, 10.0]),
                ..Default::default()
            };
            assert_eq!(rt.eval_howmany(&inputs, 2, 1, 4).unwrap(), Some(7.0));
        }
    }

    #[test]
    fn stateful_howmany_evolves_identically_across_engines() {
        // Hysteresis via WRstate/RDstate: grow only after two consecutive
        // over-threshold ticks.
        let p = cephfs_policy()
            .with_howmany(
                r#"
hot = 0
if total / active > 40 then hot = RDstate() + 1 end
WRstate(hot)
if hot >= 2 then return min(active + 1, max_mds) end
return active
"#,
            )
            .unwrap();
        let inputs = BalancerInputs {
            whoami: 0,
            mds: metrics(&[90.0, 60.0]),
            ..Default::default()
        };
        for e in [HookEngine::Tree, HookEngine::Slot, HookEngine::Bytecode] {
            let rt = MantleRuntime::new(p.clone()).with_engine(e);
            assert_eq!(rt.eval_howmany(&inputs, 2, 1, 4).unwrap(), Some(2.0));
            assert_eq!(rt.eval_howmany(&inputs, 2, 1, 4).unwrap(), Some(3.0));
        }
    }

    #[test]
    fn stateful_policy_agrees_across_paths_and_mds_identities() {
        // Fill & Spill exercises WRstate/RDstate through the shared whoami
        // cell; the state machine must evolve identically on both engines
        // and stay isolated per MDS.
        let mk = |force: bool| {
            let p = PolicySet::from_combined(
                "IWR + IRD",
                "MDSs[i][\"auth\"]",
                r#"
wait=RDstate()
go = 0
if MDSs[whoami]["cpu"]>48 then
  if wait>0 then WRstate(wait-1)
  else WRstate(2) go=1 end
else WRstate(2) end
if go==1 then
  targets[whoami+1] = MDSs[whoami]["load"]/4
end
"#,
                &["small_first"],
            )
            .unwrap();
            MantleRuntime::new(p).with_force_slow_path(force)
        };
        let fast = mk(false);
        let slow = mk(true);
        let busy = |whoami: usize| BalancerInputs {
            whoami,
            mds: vec![
                MdsMetrics {
                    auth: 100.0,
                    cpu: 90.0,
                    ..Default::default()
                };
                3
            ],
            ..Default::default()
        };
        // Interleave two MDS identities; their counters are independent.
        for tick in 0..8 {
            for whoami in 0..2 {
                let a = fast.decide(&busy(whoami)).unwrap();
                let b = slow.decide(&busy(whoami)).unwrap();
                assert_eq!(a, b, "tick {tick} whoami {whoami}");
                assert_eq!(a.migrate, tick % 3 == 0, "tick {tick} whoami {whoami}");
            }
        }
    }
}
