//! Flat register bytecode for slot-compiled policies: a lowering pass +
//! dispatch-loop VM.
//!
//! [`SlotVm`](crate::SlotVm) removed the name hashing
//! from the tree walker but still executes the (slotted) AST: every
//! statement and expression is a recursive `match` with `Flow` plumbing, so
//! loop-heavy hooks pay call/return and enum-dispatch overhead per node per
//! iteration. This module adds the third and final stage of the pipeline:
//! [`BytecodeProgram::compile`] lowers a [`SlotProgram`] to a linear
//! instruction stream (control flow becomes pre-patched jumps, operands are
//! resolved register/slot indices), and [`BytecodeVm`] executes it in a
//! single non-recursive dispatch loop.
//!
//! # Bit-identity with the other engines
//!
//! The VM is pinned bit-identical to the tree interpreter and `SlotVm`:
//! same `f64` results (`to_bits`-equal), same [`steps_used`] after a run,
//! same errors on the same source lines — including
//! [`BudgetExhausted`](crate::PolicyError::BudgetExhausted) firing on the
//! same script step. Differential tests below, in `tests/properties.rs`,
//! and in `tests/docs_examples.rs` hold all three engines together.
//!
//! # Step accounting
//!
//! The tree walker charges one step at the *entry* of every statement
//! (except `do` blocks) and every expression node, pre-order, plus one step
//! per loop-iteration check and one for each constant-key index (where it
//! evaluates the literal key expression). A post-order instruction stream
//! executes an operation *after* its operands, so charging at the operation
//! would reorder charges against runtime errors and change which error a
//! tight budget surfaces. Instead, every instruction carries a `charge`
//! field and the lowering pass folds each AST node's entry charge onto the
//! **first instruction emitted for that node's code** — which is the first
//! instruction of its leftmost descendant. Between a node's entry charge
//! and its leftmost descendant's entry charge the tree walker executes
//! nothing fallible, so consecutive charges collapse into one instruction's
//! `charge` without reordering anything observable; when a batched charge
//! crosses the budget, `steps` is clamped to `budget + 1`, exactly where
//! the one-at-a-time walker stops. Charges that are *not* consecutive with
//! an entry chain (per-iteration loop checks, constant-key steps) stay on
//! their own instruction (the `ForLoop` op, the `Index`/`SetIndex` const
//! forms, the re-charged loop-head of `while`).
//!
//! [`steps_used`]: BytecodeVm::steps_used

use std::rc::Rc;

use crate::ast::{BinOp, UnOp};
use crate::error::{PolicyError, PolicyResult};
use crate::interp::{compare, concat_operand, Interpreter, StepBudget};
use crate::slots::{SExpr, SKey, SLValue, SStmt, SlotProgram};
use crate::value::{Key, Table, Value};

// ---------------------------------------------------------------------------
// Instruction set
// ---------------------------------------------------------------------------

/// One decoded instruction: a step charge applied at entry, then an
/// operation.
#[derive(Debug, Clone)]
struct Instr {
    /// Steps to charge before executing `op` (0 for most interior ops; the
    /// folded entry charges of the AST nodes whose code begins here).
    charge: u32,
    op: Op,
}

/// Operations. Registers (`dst`/`src`/`obj`/...) index the VM's register
/// file; `slot` fields index the local/global frames shared with
/// [`SlotProgram`]'s numbering.
#[derive(Debug, Clone)]
enum Op {
    LoadNil {
        dst: u32,
    },
    LoadBool {
        dst: u32,
        v: bool,
    },
    LoadNum {
        dst: u32,
        v: f64,
    },
    /// Pre-built `Value::Str`: evaluating is an `Rc` clone.
    LoadStr {
        dst: u32,
        v: Value,
    },
    LoadLocal {
        dst: u32,
        slot: u32,
    },
    LoadGlobal {
        dst: u32,
        slot: u32,
    },
    StoreLocal {
        slot: u32,
        src: u32,
    },
    StoreLocalNil {
        slot: u32,
    },
    StoreGlobal {
        slot: u32,
        src: u32,
    },
    /// `dst = obj[key]` with an interned constant key. `charge` includes
    /// the constant-key step the tree walker pays evaluating the literal.
    IndexConst {
        dst: u32,
        obj: u32,
        key: Key,
        text: Rc<str>,
        line: u32,
    },
    /// `dst = obj[key]` with a computed key.
    IndexExpr {
        dst: u32,
        obj: u32,
        key: u32,
        line: u32,
    },
    /// `obj[key] = src` with an interned constant key (charge as above).
    SetIndexConst {
        obj: u32,
        key: Key,
        src: u32,
        line: u32,
    },
    /// `obj[key] = src` with a computed key.
    SetIndexExpr {
        obj: u32,
        key: u32,
        src: u32,
        line: u32,
    },
    /// `dst = callee(regs[base..base+n_args])`.
    Call {
        dst: u32,
        callee: u32,
        base: u32,
        n_args: u32,
        line: u32,
    },
    Neg {
        dst: u32,
        src: u32,
        line: u32,
    },
    Not {
        dst: u32,
        src: u32,
    },
    Len {
        dst: u32,
        src: u32,
        line: u32,
    },
    /// Add/Sub/Mul/Div/Mod/Pow.
    Arith {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        line: u32,
    },
    Concat {
        dst: u32,
        lhs: u32,
        rhs: u32,
        line: u32,
    },
    /// `==` / `~=` (negate).
    Eq {
        dst: u32,
        lhs: u32,
        rhs: u32,
        negate: bool,
    },
    /// Lt/Le/Gt/Ge.
    Cmp {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        line: u32,
    },
    Jump {
        target: u32,
    },
    /// Jump when `src` is falsy, leaving the operand in place (`and`
    /// short-circuit, `if`/`while` exits).
    JumpIfFalse {
        src: u32,
        target: u32,
    },
    /// Jump when `src` is truthy (`or` short-circuit).
    JumpIfTrue {
        src: u32,
        target: u32,
    },
    NewTable {
        dst: u32,
    },
    /// Positional constructor item: `table[idx] = src`.
    TableAppend {
        table: u32,
        idx: i64,
        src: u32,
    },
    /// `[k] = v` constructor pair.
    TableSetPair {
        table: u32,
        key: u32,
        val: u32,
        line: u32,
    },
    /// `frame.i = tonumber(src)` — numeric-for start bound.
    ForNumStart {
        frame: u32,
        src: u32,
        line: u32,
    },
    /// `frame.stop = tonumber(src)`.
    ForNumStop {
        frame: u32,
        src: u32,
        line: u32,
    },
    /// `frame.step = tonumber(src)`.
    ForNumStep {
        frame: u32,
        src: u32,
        line: u32,
    },
    /// Zero-step check; installs the default step of 1.0 when the source
    /// omitted one.
    ForPrep {
        frame: u32,
        default_step: bool,
        line: u32,
    },
    /// Per-iteration check: charges one step (like the walker's loop-top
    /// `step()`), then either writes the loop variable and falls through or
    /// jumps to `end`.
    ForLoop {
        frame: u32,
        slot: u32,
        end: u32,
    },
    /// `frame.i += frame.step`, jump back to the `ForLoop` at `back`.
    ForNext {
        frame: u32,
        back: u32,
    },
    Return {
        src: u32,
    },
    ReturnNil,
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// A [`SlotProgram`] lowered to flat bytecode.
///
/// Slot numbering (locals and globals) is shared verbatim with the source
/// `SlotProgram`, so `global_slot`/`global_names` lookups made against the
/// slot program address a [`BytecodeVm`] too.
///
/// ```
/// use mantle_policy::{compile, BytecodeProgram, BytecodeVm, SlotProgram, StepBudget, Value};
///
/// let script = compile("score = 0 for i = 1, n do score = score + i end return score")?;
/// let prog = SlotProgram::compile(&script);
/// let bc = BytecodeProgram::compile(&prog);
/// let n_slot = prog.global_slot("n").expect("script reads `n`");
///
/// let mut vm = BytecodeVm::new(&bc, StepBudget::default());
/// let base: Vec<Value> = prog.global_names().iter().map(|_| Value::Nil).collect();
/// for (n, expected) in [(3.0, 6.0), (10.0, 55.0)] {
///     vm.reset_globals(&base);
///     vm.set_global(n_slot, Value::Number(n));
///     assert_eq!(vm.run(&bc)?.as_number(0)?, expected);
/// }
/// # Ok::<(), mantle_policy::PolicyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BytecodeProgram {
    code: Vec<Instr>,
    n_regs: u32,
    n_frames: u32,
    n_locals: u32,
    n_globals: u32,
}

impl BytecodeProgram {
    /// Lower a slot program to bytecode.
    pub fn compile(prog: &SlotProgram) -> BytecodeProgram {
        let mut l = Lower {
            code: Vec::new(),
            pending: 0,
            n_regs: 0,
            n_frames: 0,
            loops: Vec::new(),
            top_breaks: Vec::new(),
        };
        l.block(prog.stmts());
        let end = l.code.len() as u32;
        for pc in l.top_breaks.clone() {
            l.patch(pc, end);
        }
        debug_assert_eq!(l.pending, 0, "unconsumed step charge after lowering");
        BytecodeProgram {
            code: l.code,
            n_regs: l.n_regs,
            n_frames: l.n_frames,
            n_locals: prog.n_locals() as u32,
            n_globals: prog.n_globals() as u32,
        }
    }

    /// Number of instructions in the stream.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the source script was empty.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

struct Lower {
    code: Vec<Instr>,
    /// Entry charges accumulated since the last emitted instruction; folded
    /// onto the next `emit`.
    pending: u32,
    n_regs: u32,
    n_frames: u32,
    /// Break-jump patch lists, one per enclosing loop.
    loops: Vec<Vec<usize>>,
    /// Breaks with no enclosing loop: the walker unwinds to the end of the
    /// program (yielding `Nil`), so these jump past the last instruction.
    top_breaks: Vec<usize>,
}

impl Lower {
    fn emit(&mut self, op: Op) -> usize {
        self.emit_extra(0, op)
    }

    /// Emit with `extra` non-entry charges (const-key steps, per-iteration
    /// loop steps) on top of any pending entry charges.
    fn emit_extra(&mut self, extra: u32, op: Op) -> usize {
        let charge = std::mem::take(&mut self.pending) + extra;
        self.code.push(Instr { charge, op });
        self.code.len() - 1
    }

    fn patch(&mut self, pc: usize, target: u32) {
        match &mut self.code[pc].op {
            Op::Jump { target: t }
            | Op::JumpIfFalse { target: t, .. }
            | Op::JumpIfTrue { target: t, .. }
            | Op::ForLoop { end: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn block(&mut self, stmts: &[SStmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &SStmt) {
        match s {
            SStmt::Assign {
                target,
                value,
                line,
            } => {
                self.pending += 1;
                match target {
                    SLValue::Local(slot) => {
                        self.expr(value, 0);
                        self.emit(Op::StoreLocal {
                            slot: *slot,
                            src: 0,
                        });
                    }
                    SLValue::Global(slot) => {
                        self.expr(value, 0);
                        self.emit(Op::StoreGlobal {
                            slot: *slot,
                            src: 0,
                        });
                    }
                    SLValue::Index { object, key } => {
                        // Walker order: value, then object, then key.
                        self.expr(value, 0);
                        self.expr(object, 1);
                        match key {
                            SKey::Const { key, .. } => {
                                self.emit_extra(
                                    1,
                                    Op::SetIndexConst {
                                        obj: 1,
                                        key: key.clone(),
                                        src: 0,
                                        line: *line,
                                    },
                                );
                            }
                            SKey::Expr(k) => {
                                self.expr(k, 2);
                                self.emit(Op::SetIndexExpr {
                                    obj: 1,
                                    key: 2,
                                    src: 0,
                                    line: *line,
                                });
                            }
                        }
                    }
                }
            }
            SStmt::LocalDecl { slot, value } => {
                self.pending += 1;
                match value {
                    Some(e) => {
                        self.expr(e, 0);
                        self.emit(Op::StoreLocal {
                            slot: *slot,
                            src: 0,
                        });
                    }
                    None => {
                        self.emit(Op::StoreLocalNil { slot: *slot });
                    }
                }
            }
            SStmt::If { arms, else_block } => {
                // One entry charge for the whole statement, folded into the
                // first arm's condition; later arms charge only their own
                // condition entries (evaluated only when reached).
                self.pending += 1;
                let mut end_jumps = Vec::new();
                let n = arms.len();
                for (i, (cond, body)) in arms.iter().enumerate() {
                    self.expr(cond, 0);
                    let skip = self.emit(Op::JumpIfFalse { src: 0, target: 0 });
                    self.block(body);
                    let last_arm = i + 1 == n && else_block.is_none();
                    if !last_arm {
                        end_jumps.push(self.emit(Op::Jump { target: 0 }));
                    }
                    let here = self.here();
                    self.patch(skip, here);
                }
                if let Some(body) = else_block {
                    self.block(body);
                }
                let end = self.here();
                for j in end_jumps {
                    self.patch(j, end);
                }
            }
            SStmt::While { cond, body } => {
                // The statement's step is charged once per iteration check
                // in the walker; the back-jump re-enters the condition's
                // first instruction, which carries it.
                self.pending += 1;
                let head = self.here();
                self.expr(cond, 0);
                let exit = self.emit(Op::JumpIfFalse { src: 0, target: 0 });
                self.loops.push(Vec::new());
                self.block(body);
                self.emit(Op::Jump { target: head });
                let end = self.here();
                self.patch(exit, end);
                for b in self.loops.pop().expect("loop stack") {
                    self.patch(b, end);
                }
            }
            SStmt::NumericFor {
                slot,
                start,
                stop,
                step,
                body,
                line,
            } => {
                self.pending += 1;
                let frame = self.n_frames;
                self.n_frames += 1;
                self.expr(start, 0);
                self.emit(Op::ForNumStart {
                    frame,
                    src: 0,
                    line: *line,
                });
                self.expr(stop, 0);
                self.emit(Op::ForNumStop {
                    frame,
                    src: 0,
                    line: *line,
                });
                if let Some(e) = step {
                    self.expr(e, 0);
                    self.emit(Op::ForNumStep {
                        frame,
                        src: 0,
                        line: *line,
                    });
                }
                self.emit(Op::ForPrep {
                    frame,
                    default_step: step.is_none(),
                    line: *line,
                });
                let head = self.here();
                let loop_pc = self.emit_extra(
                    1,
                    Op::ForLoop {
                        frame,
                        slot: *slot,
                        end: 0,
                    },
                );
                self.loops.push(Vec::new());
                self.block(body);
                self.emit(Op::ForNext { frame, back: head });
                let end = self.here();
                self.patch(loop_pc, end);
                for b in self.loops.pop().expect("loop stack") {
                    self.patch(b, end);
                }
            }
            SStmt::ExprStmt { expr } => {
                self.pending += 1;
                self.expr(expr, 0);
            }
            SStmt::Do { body } => self.block(body),
            SStmt::Return { value } => {
                self.pending += 1;
                match value {
                    Some(e) => {
                        self.expr(e, 0);
                        self.emit(Op::Return { src: 0 });
                    }
                    None => {
                        self.emit(Op::ReturnNil);
                    }
                }
            }
            SStmt::Break => {
                self.pending += 1;
                let j = self.emit(Op::Jump { target: 0 });
                match self.loops.last_mut() {
                    Some(l) => l.push(j),
                    None => self.top_breaks.push(j),
                }
            }
        }
    }

    /// Lower an expression into `dst`, using registers `dst..` as scratch.
    fn expr(&mut self, e: &SExpr, dst: u32) {
        self.pending += 1;
        self.n_regs = self.n_regs.max(dst + 1);
        match e {
            SExpr::Nil => {
                self.emit(Op::LoadNil { dst });
            }
            SExpr::Bool(b) => {
                self.emit(Op::LoadBool { dst, v: *b });
            }
            SExpr::Number(n) => {
                self.emit(Op::LoadNum { dst, v: *n });
            }
            SExpr::Str(v) => {
                self.emit(Op::LoadStr { dst, v: v.clone() });
            }
            SExpr::Local { slot } => {
                self.emit(Op::LoadLocal { dst, slot: *slot });
            }
            SExpr::Global { slot } => {
                self.emit(Op::LoadGlobal { dst, slot: *slot });
            }
            SExpr::Index { object, key, line } => {
                self.expr(object, dst);
                match key {
                    SKey::Const { key, text } => {
                        self.emit_extra(
                            1,
                            Op::IndexConst {
                                dst,
                                obj: dst,
                                key: key.clone(),
                                text: Rc::clone(text),
                                line: *line,
                            },
                        );
                    }
                    SKey::Expr(k) => {
                        self.expr(k, dst + 1);
                        self.emit(Op::IndexExpr {
                            dst,
                            obj: dst,
                            key: dst + 1,
                            line: *line,
                        });
                    }
                }
            }
            SExpr::Call { callee, args, line } => {
                self.expr(callee, dst);
                for (i, a) in args.iter().enumerate() {
                    self.expr(a, dst + 1 + i as u32);
                }
                self.emit(Op::Call {
                    dst,
                    callee: dst,
                    base: dst + 1,
                    n_args: args.len() as u32,
                    line: *line,
                });
            }
            SExpr::Unary { op, operand, line } => {
                self.expr(operand, dst);
                match op {
                    UnOp::Neg => {
                        self.emit(Op::Neg {
                            dst,
                            src: dst,
                            line: *line,
                        });
                    }
                    UnOp::Not => {
                        self.emit(Op::Not { dst, src: dst });
                    }
                    UnOp::Len => {
                        self.emit(Op::Len {
                            dst,
                            src: dst,
                            line: *line,
                        });
                    }
                }
            }
            SExpr::Binary { op, lhs, rhs, line } => match op {
                BinOp::And => {
                    self.expr(lhs, dst);
                    let j = self.emit(Op::JumpIfFalse {
                        src: dst,
                        target: 0,
                    });
                    self.expr(rhs, dst);
                    let here = self.here();
                    self.patch(j, here);
                }
                BinOp::Or => {
                    self.expr(lhs, dst);
                    let j = self.emit(Op::JumpIfTrue {
                        src: dst,
                        target: 0,
                    });
                    self.expr(rhs, dst);
                    let here = self.here();
                    self.patch(j, here);
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod | BinOp::Pow => {
                    self.expr(lhs, dst);
                    self.expr(rhs, dst + 1);
                    self.emit(Op::Arith {
                        op: *op,
                        dst,
                        lhs: dst,
                        rhs: dst + 1,
                        line: *line,
                    });
                }
                BinOp::Concat => {
                    self.expr(lhs, dst);
                    self.expr(rhs, dst + 1);
                    self.emit(Op::Concat {
                        dst,
                        lhs: dst,
                        rhs: dst + 1,
                        line: *line,
                    });
                }
                BinOp::Eq | BinOp::Ne => {
                    self.expr(lhs, dst);
                    self.expr(rhs, dst + 1);
                    self.emit(Op::Eq {
                        dst,
                        lhs: dst,
                        rhs: dst + 1,
                        negate: *op == BinOp::Ne,
                    });
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    self.expr(lhs, dst);
                    self.expr(rhs, dst + 1);
                    self.emit(Op::Cmp {
                        op: *op,
                        dst,
                        lhs: dst,
                        rhs: dst + 1,
                        line: *line,
                    });
                }
            },
            SExpr::TableCtor { items, pairs, line } => {
                // NewTable runs before the item/pair code, carrying the
                // constructor's entry charge — the same position the walker
                // charges it.
                self.emit(Op::NewTable { dst });
                for (i, item) in items.iter().enumerate() {
                    self.expr(item, dst + 1);
                    self.emit(Op::TableAppend {
                        table: dst,
                        idx: i as i64 + 1,
                        src: dst + 1,
                    });
                }
                for (k, v) in pairs {
                    self.expr(k, dst + 1);
                    self.expr(v, dst + 2);
                    self.emit(Op::TableSetPair {
                        table: dst,
                        key: dst + 1,
                        val: dst + 2,
                        line: *line,
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// VM
// ---------------------------------------------------------------------------

/// Loop state for one `for` statement (statically allocated: the subset has
/// no recursion, so each `NumericFor` needs exactly one frame).
#[derive(Debug, Clone, Copy, Default)]
struct ForFrame {
    i: f64,
    stop: f64,
    step: f64,
}

/// Executes a [`BytecodeProgram`] against reusable flat frames.
///
/// Mirrors [`SlotVm`](crate::SlotVm)'s surface (`new` / `reset_globals` /
/// `set_global` / `get_global` / `steps_used` / `run`) so compiled hooks
/// can host either engine; global and local slot numbering is shared with
/// the source [`SlotProgram`].
pub struct BytecodeVm {
    globals: Vec<Value>,
    locals: Vec<Value>,
    regs: Vec<Value>,
    frames: Vec<ForFrame>,
    steps: u64,
    budget: StepBudget,
    /// Handed to native functions, which take `&mut Interpreter` by
    /// signature (every in-tree native ignores it).
    scratch: Interpreter,
}

impl BytecodeVm {
    /// A fresh VM sized for `prog`.
    pub fn new(prog: &BytecodeProgram, budget: StepBudget) -> BytecodeVm {
        BytecodeVm {
            globals: vec![Value::Nil; prog.n_globals as usize],
            locals: vec![Value::Nil; prog.n_locals as usize],
            regs: vec![Value::Nil; prog.n_regs as usize],
            frames: vec![ForFrame::default(); prog.n_frames as usize],
            steps: 0,
            budget,
            scratch: Interpreter::new().with_budget(budget),
        }
    }

    /// Overwrite the whole global frame from a base image. `base` must have
    /// one entry per global slot of the program this VM was sized for.
    pub fn reset_globals(&mut self, base: &[Value]) {
        self.globals.clone_from_slice(base);
    }

    /// Write one global slot (slot indices come from the source
    /// [`SlotProgram`]'s `global_slot`).
    pub fn set_global(&mut self, slot: usize, value: Value) {
        self.globals[slot] = value;
    }

    /// Read one global slot.
    pub fn get_global(&self, slot: usize) -> &Value {
        &self.globals[slot]
    }

    /// Steps consumed by the last run.
    pub fn steps_used(&self) -> u64 {
        self.steps
    }

    #[inline]
    fn charge(&mut self, n: u32) -> PolicyResult<()> {
        let next = self.steps + n as u64;
        if next > self.budget.0 {
            // The one-at-a-time walker stops on the increment that crosses
            // the budget, leaving `steps == budget + 1`.
            self.steps = self.budget.0 + 1;
            return Err(PolicyError::BudgetExhausted {
                budget: self.budget.0,
            });
        }
        self.steps = next;
        Ok(())
    }

    /// Execute a program; returns its `return` value (or `Nil`).
    ///
    /// Register, local, and for-frame state needs no reset between runs:
    /// every read is dominated by a write in the instruction stream.
    pub fn run(&mut self, prog: &BytecodeProgram) -> PolicyResult<Value> {
        debug_assert_eq!(self.globals.len(), prog.n_globals as usize);
        debug_assert_eq!(self.locals.len(), prog.n_locals as usize);
        self.steps = 0;
        let code = &prog.code;
        let mut pc = 0usize;
        while let Some(inst) = code.get(pc) {
            if inst.charge != 0 {
                self.charge(inst.charge)?;
            }
            pc += 1;
            match &inst.op {
                Op::LoadNil { dst } => self.regs[*dst as usize] = Value::Nil,
                Op::LoadBool { dst, v } => self.regs[*dst as usize] = Value::Bool(*v),
                Op::LoadNum { dst, v } => self.regs[*dst as usize] = Value::Number(*v),
                Op::LoadStr { dst, v } => self.regs[*dst as usize] = v.clone(),
                Op::LoadLocal { dst, slot } => {
                    self.regs[*dst as usize] = self.locals[*slot as usize].clone();
                }
                Op::LoadGlobal { dst, slot } => {
                    self.regs[*dst as usize] = self.globals[*slot as usize].clone();
                }
                Op::StoreLocal { slot, src } => {
                    self.locals[*slot as usize] = self.regs[*src as usize].clone();
                }
                Op::StoreLocalNil { slot } => self.locals[*slot as usize] = Value::Nil,
                Op::StoreGlobal { slot, src } => {
                    self.globals[*slot as usize] = self.regs[*src as usize].clone();
                }
                Op::IndexConst {
                    dst,
                    obj,
                    key,
                    text,
                    line,
                } => {
                    let v = match &self.regs[*obj as usize] {
                        Value::Table(t) => t.borrow().get(key),
                        Value::Nil => {
                            return Err(PolicyError::runtime(
                                *line,
                                format!("attempt to index a nil value (key '{text}')"),
                            ))
                        }
                        other => {
                            return Err(PolicyError::runtime(
                                *line,
                                format!("cannot index a {} value", other.type_name()),
                            ))
                        }
                    };
                    self.regs[*dst as usize] = v;
                }
                Op::IndexExpr {
                    dst,
                    obj,
                    key,
                    line,
                } => {
                    let v = match &self.regs[*obj as usize] {
                        Value::Table(t) => {
                            let k = Key::from_value(&self.regs[*key as usize], *line)?;
                            t.borrow().get(&k)
                        }
                        Value::Nil => {
                            return Err(PolicyError::runtime(
                                *line,
                                format!(
                                    "attempt to index a nil value (key '{}')",
                                    self.regs[*key as usize].display_string()
                                ),
                            ))
                        }
                        other => {
                            return Err(PolicyError::runtime(
                                *line,
                                format!("cannot index a {} value", other.type_name()),
                            ))
                        }
                    };
                    self.regs[*dst as usize] = v;
                }
                Op::SetIndexConst {
                    obj,
                    key,
                    src,
                    line,
                } => match &self.regs[*obj as usize] {
                    Value::Table(t) => {
                        let v = self.regs[*src as usize].clone();
                        t.borrow_mut().set(key.clone(), v);
                    }
                    other => {
                        return Err(PolicyError::runtime(
                            *line,
                            format!("cannot index a {} value", other.type_name()),
                        ))
                    }
                },
                Op::SetIndexExpr {
                    obj,
                    key,
                    src,
                    line,
                } => match &self.regs[*obj as usize] {
                    Value::Table(t) => {
                        let k = Key::from_value(&self.regs[*key as usize], *line)?;
                        let v = self.regs[*src as usize].clone();
                        t.borrow_mut().set(k, v);
                    }
                    other => {
                        return Err(PolicyError::runtime(
                            *line,
                            format!("cannot index a {} value", other.type_name()),
                        ))
                    }
                },
                Op::Call {
                    dst,
                    callee,
                    base,
                    n_args,
                    line,
                } => {
                    let v = match &self.regs[*callee as usize] {
                        Value::Native(_, func) => {
                            let func = Rc::clone(func);
                            let b = *base as usize;
                            func(&mut self.scratch, &self.regs[b..b + *n_args as usize])?
                        }
                        Value::Nil => {
                            return Err(PolicyError::runtime(
                                *line,
                                "attempt to call a nil value (is the function defined in the \
                                 Mantle environment?)",
                            ))
                        }
                        other => {
                            return Err(PolicyError::runtime(
                                *line,
                                format!("attempt to call a {} value", other.type_name()),
                            ))
                        }
                    };
                    self.regs[*dst as usize] = v;
                }
                Op::Neg { dst, src, line } => {
                    let n = self.regs[*src as usize].as_number(*line)?;
                    self.regs[*dst as usize] = Value::Number(-n);
                }
                Op::Not { dst, src } => {
                    let b = !self.regs[*src as usize].truthy();
                    self.regs[*dst as usize] = Value::Bool(b);
                }
                Op::Len { dst, src, line } => {
                    let v = match &self.regs[*src as usize] {
                        Value::Table(t) => Value::Number(t.borrow().len() as f64),
                        Value::Str(s) => Value::Number(s.len() as f64),
                        other => {
                            return Err(PolicyError::runtime(
                                *line,
                                format!("attempt to get length of a {} value", other.type_name()),
                            ))
                        }
                    };
                    self.regs[*dst as usize] = v;
                }
                Op::Arith {
                    op,
                    dst,
                    lhs,
                    rhs,
                    line,
                } => {
                    let a = self.regs[*lhs as usize].as_number(*line)?;
                    let b = self.regs[*rhs as usize].as_number(*line)?;
                    let n = match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div => a / b,
                        BinOp::Mod => a - (a / b).floor() * b,
                        BinOp::Pow => a.powf(b),
                        _ => unreachable!("non-arithmetic op in Arith"),
                    };
                    self.regs[*dst as usize] = Value::Number(n);
                }
                Op::Concat {
                    dst,
                    lhs,
                    rhs,
                    line,
                } => {
                    let ls = concat_operand(&self.regs[*lhs as usize], *line)?;
                    let rs = concat_operand(&self.regs[*rhs as usize], *line)?;
                    self.regs[*dst as usize] = Value::str(format!("{ls}{rs}"));
                }
                Op::Eq {
                    dst,
                    lhs,
                    rhs,
                    negate,
                } => {
                    let eq = self.regs[*lhs as usize].lua_eq(&self.regs[*rhs as usize]);
                    self.regs[*dst as usize] = Value::Bool(eq != *negate);
                }
                Op::Cmp {
                    op,
                    dst,
                    lhs,
                    rhs,
                    line,
                } => {
                    let ord = compare(&self.regs[*lhs as usize], &self.regs[*rhs as usize], *line)?;
                    let b = match op {
                        BinOp::Lt => ord == std::cmp::Ordering::Less,
                        BinOp::Le => ord != std::cmp::Ordering::Greater,
                        BinOp::Gt => ord == std::cmp::Ordering::Greater,
                        BinOp::Ge => ord != std::cmp::Ordering::Less,
                        _ => unreachable!("non-comparison op in Cmp"),
                    };
                    self.regs[*dst as usize] = Value::Bool(b);
                }
                Op::Jump { target } => pc = *target as usize,
                Op::JumpIfFalse { src, target } => {
                    if !self.regs[*src as usize].truthy() {
                        pc = *target as usize;
                    }
                }
                Op::JumpIfTrue { src, target } => {
                    if self.regs[*src as usize].truthy() {
                        pc = *target as usize;
                    }
                }
                Op::NewTable { dst } => {
                    self.regs[*dst as usize] = Value::table(Table::new());
                }
                Op::TableAppend { table, idx, src } => {
                    let v = self.regs[*src as usize].clone();
                    match &self.regs[*table as usize] {
                        Value::Table(t) => t.borrow_mut().set_int(*idx, v),
                        _ => unreachable!("TableAppend on non-table"),
                    }
                }
                Op::TableSetPair {
                    table,
                    key,
                    val,
                    line,
                } => {
                    let k = Key::from_value(&self.regs[*key as usize], *line)?;
                    let v = self.regs[*val as usize].clone();
                    match &self.regs[*table as usize] {
                        Value::Table(t) => t.borrow_mut().set(k, v),
                        _ => unreachable!("TableSetPair on non-table"),
                    }
                }
                Op::ForNumStart { frame, src, line } => {
                    self.frames[*frame as usize].i = self.regs[*src as usize].as_number(*line)?;
                }
                Op::ForNumStop { frame, src, line } => {
                    self.frames[*frame as usize].stop =
                        self.regs[*src as usize].as_number(*line)?;
                }
                Op::ForNumStep { frame, src, line } => {
                    self.frames[*frame as usize].step =
                        self.regs[*src as usize].as_number(*line)?;
                }
                Op::ForPrep {
                    frame,
                    default_step,
                    line,
                } => {
                    let f = &mut self.frames[*frame as usize];
                    if *default_step {
                        f.step = 1.0;
                    }
                    if f.step == 0.0 {
                        return Err(PolicyError::runtime(*line, "'for' step is zero"));
                    }
                }
                Op::ForLoop { frame, slot, end } => {
                    let f = self.frames[*frame as usize];
                    let cont = if f.step > 0.0 {
                        f.i <= f.stop
                    } else {
                        f.i >= f.stop
                    };
                    if cont {
                        self.locals[*slot as usize] = Value::Number(f.i);
                    } else {
                        pc = *end as usize;
                    }
                }
                Op::ForNext { frame, back } => {
                    let f = &mut self.frames[*frame as usize];
                    f.i += f.step;
                    pc = *back as usize;
                }
                Op::Return { src } => return Ok(self.regs[*src as usize].clone()),
                Op::ReturnNil => return Ok(Value::Nil),
            }
        }
        Ok(Value::Nil)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;
    use crate::stdlib;

    fn values_identical(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Number(x), Value::Number(y)) => x.to_bits() == y.to_bits(),
            _ => a.lua_eq(b) || (matches!(a, Value::Nil) && matches!(b, Value::Nil)),
        }
    }

    /// Run a script on all three engines with the given numeric globals and
    /// assert results, step counts, and errors agree exactly.
    fn differential3(src: &str, globals: &[(&str, f64)]) {
        let script = parse_script(src).unwrap();

        let mut interp = Interpreter::new();
        stdlib::install(&mut interp);
        for (name, v) in globals {
            interp.set_global(name, Value::Number(*v));
        }
        let tree = interp.run(&script);

        let prog = SlotProgram::compile(&script);
        let mut stdlib_interp = Interpreter::new();
        stdlib::install(&mut stdlib_interp);
        let mut base: Vec<Value> = prog
            .global_names()
            .iter()
            .map(|n| stdlib_interp.get_global(n))
            .collect();
        for (name, v) in globals {
            if let Some(slot) = prog.global_slot(name) {
                base[slot] = Value::Number(*v);
            }
        }

        let mut svm = crate::slots::SlotVm::new(&prog, StepBudget::default());
        svm.reset_globals(&base);
        let slot = svm.run(&prog);

        let bc = BytecodeProgram::compile(&prog);
        let mut bvm = BytecodeVm::new(&bc, StepBudget::default());
        bvm.reset_globals(&base);
        let byte = bvm.run(&bc);

        match (&tree, &byte) {
            (Ok(a), Ok(b)) => {
                assert!(
                    values_identical(a, b),
                    "mismatch on {src:?}: tree={a:?} bytecode={b:?}"
                );
                assert_eq!(
                    interp.steps_used(),
                    bvm.steps_used(),
                    "step divergence on {src:?}"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "error mismatch on {src:?}"),
            (a, b) => panic!("outcome mismatch on {src:?}: tree={a:?} bytecode={b:?}"),
        }
        match (&slot, &byte) {
            (Ok(a), Ok(b)) => {
                assert!(
                    values_identical(a, b),
                    "mismatch on {src:?}: slot={a:?} bytecode={b:?}"
                );
                assert_eq!(svm.steps_used(), bvm.steps_used());
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "error mismatch on {src:?}"),
            (a, b) => panic!("outcome mismatch on {src:?}: slot={a:?} bytecode={b:?}"),
        }
    }

    #[test]
    fn arithmetic_and_logic_agree() {
        differential3("return 1 + 2 * 3 - 4 / 8", &[]);
        differential3("return 2 ^ 3 ^ 2", &[]);
        differential3("return -7 % 3", &[]);
        differential3("return (x > 2) and x or -x", &[("x", 5.0)]);
        differential3("return (x > 2) and x or -x", &[("x", 1.0)]);
        differential3("return \"n=\" .. 3 .. \"!\"", &[]);
        differential3("return not nil and 1 ~= 2", &[]);
    }

    #[test]
    fn locals_and_scoping_agree() {
        differential3("x = 1 local y = 2 x = x + y return x", &[]);
        differential3("local x = 1 do local x = 2 end return x", &[]);
        differential3("local x = x return x", &[("x", 9.0)]);
        differential3("g = 10 y = g local g = 1 return y + g", &[]);
        differential3("local a return a", &[]);
    }

    #[test]
    fn loops_agree() {
        differential3("s = 0 for i = 1, 10 do s = s + i end return s", &[]);
        differential3("s = 0 for i = 10, 1, -2 do s = s + i end return s", &[]);
        differential3(
            "i = 0 while true do i = i + 1 if i >= 5 then break end end return i",
            &[],
        );
        differential3(
            "y = 0 for i = 1, 3 do y = y + v local v = i end return y",
            &[("v", 100.0)],
        );
        differential3(
            "s = 0 for i = 1, 3 do for j = 1, 3 do if j > i then break end s = s + 1 end end \
             return s",
            &[],
        );
        differential3("for i = 1, 5 do if i == 3 then return i * 10 end end", &[]);
        differential3("while false do end return 1", &[]);
    }

    #[test]
    fn tables_agree() {
        differential3(
            "t = {10, 20, 30} t[4] = 40 t[\"name\"] = 7 return #t + t[2] + t.name",
            &[],
        );
        differential3("m = {a = {1, 2}, b = {x = 9}} return m.a[2] + m.b.x", &[]);
        differential3("t = {} t[1] = 5 t[1] = nil return #t", &[]);
        differential3("t = {[2] = 7, [1 + 1 + 1] = 9} return t[2] + t[3]", &[]);
    }

    #[test]
    fn natives_agree() {
        differential3("return max(3, min(x, 10)) + math.floor(2.7)", &[("x", 7.0)]);
        differential3("return tostring(4) .. tonumber(\"2\")", &[]);
    }

    #[test]
    fn errors_agree() {
        differential3("return nothere[\"load\"]", &[]);
        differential3("return nothere[x]", &[("x", 2.0)]);
        differential3("return RDstate()", &[]);
        differential3("for i=1,10,0 do end", &[]);
        differential3("return 1 < \"2\"", &[]);
        differential3("return #x", &[("x", 1.0)]);
        differential3("x[1] = 2", &[]);
        differential3("x[1] = 2", &[("x", 3.0)]);
        differential3("t = {} t[nil] = 1", &[]);
        differential3("t = {} t[1.5] = 1", &[]);
        differential3("return x .. {}", &[("x", 1.0)]);
        differential3("return x(1)", &[("x", 1.0)]);
        differential3("return -{}", &[]);
    }

    #[test]
    fn top_level_break_unwinds_to_nil() {
        differential3("break x = 1 return 2", &[]);
        differential3("if true then break end return 3", &[]);
    }

    #[test]
    fn budget_errors_agree_on_step() {
        for src in [
            "while 1 do end",
            "s = 0 for i = 1, 1000000 do s = s + i end return s",
            "return nothere[\"load\"]",
        ] {
            let script = parse_script(src).unwrap();
            for budget in [1u64, 2, 3, 4, 5, 7, 10, 100, 10_000] {
                let mut interp = Interpreter::new().with_budget(StepBudget(budget));
                let tree = interp.run(&script);
                let prog = SlotProgram::compile(&script);
                let mut svm = crate::slots::SlotVm::new(&prog, StepBudget(budget));
                let slot = svm.run(&prog);
                let bc = BytecodeProgram::compile(&prog);
                let mut bvm = BytecodeVm::new(&bc, StepBudget(budget));
                let byte = bvm.run(&bc);
                // Every case here errors at some budget-independent step or
                // exhausts the budget first; the three engines must agree on
                // which.
                let (tree, slot, byte) = (tree.unwrap_err(), slot.unwrap_err(), byte.unwrap_err());
                assert_eq!(tree, slot, "{src:?} at budget {budget}");
                assert_eq!(slot, byte, "{src:?} at budget {budget}");
            }
        }
    }

    #[test]
    fn vm_reuse_resets_environment() {
        let script = parse_script("seen = seen + 1 return seen").unwrap();
        let prog = SlotProgram::compile(&script);
        let bc = BytecodeProgram::compile(&prog);
        let mut vm = BytecodeVm::new(&bc, StepBudget::default());
        let base = vec![Value::Number(0.0); prog.n_globals()];
        for _ in 0..3 {
            vm.reset_globals(&base);
            let v = vm.run(&bc).unwrap();
            assert_eq!(v.as_number(0).unwrap(), 1.0);
        }
    }

    #[test]
    fn listing_4_differential() {
        let src = r#"
mymax = 0
for i=1,#MDSs do
  if MDSs[i]["load"] > mymax then mymax = MDSs[i]["load"] end
end
return mymax
"#;
        let script = parse_script(src).unwrap();
        let mk = |load: f64| Value::table(Table::from_fields([("load", Value::Number(load))]));
        let mdss = || Value::table(Table::from_array([mk(90.0), mk(5.0), mk(35.0)]));

        let mut interp = Interpreter::new();
        interp.set_global("MDSs", mdss());
        let tree = interp.run(&script).unwrap();

        let prog = SlotProgram::compile(&script);
        let bc = BytecodeProgram::compile(&prog);
        let mut vm = BytecodeVm::new(&bc, StepBudget::default());
        vm.set_global(prog.global_slot("MDSs").unwrap(), mdss());
        let byte = vm.run(&bc).unwrap();
        assert!(values_identical(&tree, &byte));
        assert_eq!(interp.steps_used(), vm.steps_used());
    }

    #[test]
    fn empty_program_returns_nil() {
        let script = parse_script("").unwrap();
        let prog = SlotProgram::compile(&script);
        let bc = BytecodeProgram::compile(&prog);
        assert!(bc.is_empty());
        let mut vm = BytecodeVm::new(&bc, StepBudget::default());
        assert!(matches!(vm.run(&bc).unwrap(), Value::Nil));
        assert_eq!(vm.steps_used(), 0);
    }
}
