//! Error type shared by the lexer, parser, and interpreter.

use std::fmt;

/// Result alias for policy operations.
pub type PolicyResult<T> = Result<T, PolicyError>;

/// An error raised while compiling or running a policy script.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyError {
    /// Lexical error (bad character, unterminated string, malformed number).
    Lex {
        /// 1-based source line.
        line: u32,
        /// Description.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based source line.
        line: u32,
        /// Description.
        message: String,
    },
    /// Runtime error (type errors, undefined operations).
    Runtime {
        /// 1-based source line of the failing construct, when known.
        line: u32,
        /// Description.
        message: String,
    },
    /// The script exceeded its step budget — the `while 1 do end` guard the
    /// paper calls for in §4.4.
    BudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// The script is syntactically valid Lua but uses a feature outside the
    /// supported subset (e.g. `function` definitions, generic `for`).
    Unsupported {
        /// 1-based source line.
        line: u32,
        /// The feature.
        feature: String,
    },
    /// Validation failed (static check or dry-run rejected the policy).
    Rejected {
        /// Why the validator rejected the script.
        reason: String,
    },
}

impl PolicyError {
    /// Shorthand runtime error constructor.
    pub fn runtime(line: u32, message: impl Into<String>) -> Self {
        PolicyError::Runtime {
            line,
            message: message.into(),
        }
    }

    /// The source line associated with the error, if any.
    pub fn line(&self) -> Option<u32> {
        match self {
            PolicyError::Lex { line, .. }
            | PolicyError::Parse { line, .. }
            | PolicyError::Runtime { line, .. }
            | PolicyError::Unsupported { line, .. } => Some(*line),
            _ => None,
        }
    }
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Lex { line, message } => write!(f, "lex error (line {line}): {message}"),
            PolicyError::Parse { line, message } => {
                write!(f, "syntax error (line {line}): {message}")
            }
            PolicyError::Runtime { line, message } => {
                write!(f, "runtime error (line {line}): {message}")
            }
            PolicyError::BudgetExhausted { budget } => {
                write!(f, "policy exceeded its step budget of {budget} steps")
            }
            PolicyError::Unsupported { line, feature } => {
                write!(f, "unsupported feature (line {line}): {feature}")
            }
            PolicyError::Rejected { reason } => write!(f, "policy rejected: {reason}"),
        }
    }
}

impl std::error::Error for PolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_line() {
        let e = PolicyError::runtime(4, "boom");
        assert_eq!(e.to_string(), "runtime error (line 4): boom");
        assert_eq!(e.line(), Some(4));
        let b = PolicyError::BudgetExhausted { budget: 10 };
        assert_eq!(b.line(), None);
        assert!(b.to_string().contains("10"));
    }
}
