//! Hand-written lexer for the policy language.

use crate::error::{PolicyError, PolicyResult};
use crate::token::{Token, TokenKind};

/// Tokenize `src` into a token stream terminated by [`TokenKind::Eof`].
pub fn lex(src: &str) -> PolicyResult<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokenKind) {
        let line = self.line;
        self.out.push(Token { kind, line });
    }

    fn err(&self, message: impl Into<String>) -> PolicyError {
        PolicyError::Lex {
            line: self.line,
            message: message.into(),
        }
    }

    fn run(mut self) -> PolicyResult<Vec<Token>> {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'-' => {
                    if self.peek2() == Some(b'-') {
                        self.skip_comment();
                    } else {
                        self.bump();
                        self.push(TokenKind::Minus);
                    }
                }
                b'+' => {
                    self.bump();
                    self.push(TokenKind::Plus);
                }
                b'*' => {
                    self.bump();
                    self.push(TokenKind::Star);
                }
                b'/' => {
                    self.bump();
                    self.push(TokenKind::Slash);
                }
                b'%' => {
                    self.bump();
                    self.push(TokenKind::Percent);
                }
                b'^' => {
                    self.bump();
                    self.push(TokenKind::Caret);
                }
                b'#' => {
                    self.bump();
                    self.push(TokenKind::Hash);
                }
                b'(' => {
                    self.bump();
                    self.push(TokenKind::LParen);
                }
                b')' => {
                    self.bump();
                    self.push(TokenKind::RParen);
                }
                b'{' => {
                    self.bump();
                    self.push(TokenKind::LBrace);
                }
                b'}' => {
                    self.bump();
                    self.push(TokenKind::RBrace);
                }
                b'[' => {
                    self.bump();
                    self.push(TokenKind::LBracket);
                }
                b']' => {
                    self.bump();
                    self.push(TokenKind::RBracket);
                }
                b';' => {
                    self.bump();
                    self.push(TokenKind::Semi);
                }
                b':' => {
                    self.bump();
                    self.push(TokenKind::Colon);
                }
                b',' => {
                    self.bump();
                    self.push(TokenKind::Comma);
                }
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::EqEq);
                    } else {
                        self.push(TokenKind::Assign);
                    }
                }
                b'~' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::NotEq);
                    } else {
                        return Err(self.err("expected '=' after '~'"));
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Le);
                    } else {
                        self.push(TokenKind::Lt);
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Ge);
                    } else {
                        self.push(TokenKind::Gt);
                    }
                }
                b'.' => {
                    // '.' can start a number (`.01`), a concat (`..`), or be
                    // an index dot.
                    if self.peek2().is_some_and(|c| c.is_ascii_digit()) {
                        self.number()?;
                    } else if self.peek2() == Some(b'.') {
                        self.bump();
                        self.bump();
                        self.push(TokenKind::Concat);
                    } else {
                        self.bump();
                        self.push(TokenKind::Dot);
                    }
                }
                b'"' | b'\'' => self.string(b)?,
                b'0'..=b'9' => self.number()?,
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.name(),
                other => {
                    return Err(self.err(format!("unexpected character '{}'", other as char)));
                }
            }
        }
        self.push(TokenKind::Eof);
        Ok(self.out)
    }

    fn skip_comment(&mut self) {
        // Only line comments; Lua's long-bracket comments are not in the
        // listings and stay out of the subset.
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
    }

    fn string(&mut self, quote: u8) -> PolicyResult<()> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => return Err(self.err("unterminated string")),
                Some(b) if b == quote => break,
                Some(b'\\') => {
                    let esc = self.bump().ok_or_else(|| self.err("unterminated escape"))?;
                    match esc {
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'\\' => s.push('\\'),
                        b'"' => s.push('"'),
                        b'\'' => s.push('\''),
                        other => {
                            return Err(self.err(format!("unknown escape '\\{}'", other as char)));
                        }
                    }
                }
                Some(b) => s.push(b as char),
            }
        }
        self.push(TokenKind::Str(s));
        Ok(())
    }

    fn number(&mut self) -> PolicyResult<()> {
        let start = self.pos;
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if !seen_dot && !seen_exp => {
                    // Don't swallow a concat operator `1..2`.
                    if self.peek2() == Some(b'.') {
                        break;
                    }
                    seen_dot = true;
                    self.bump();
                }
                b'e' | b'E' if !seen_exp => {
                    seen_exp = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("malformed number '{text}'")))?;
        self.push(TokenKind::Number(n));
        Ok(())
    }

    fn name(&mut self) {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii name");
        match TokenKind::keyword(text) {
            Some(kw) => self.push(kw),
            None => self.push(TokenKind::Name(text.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 .01 1e3 2.5e-2"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Number(2.5),
                TokenKind::Number(0.01),
                TokenKind::Number(1e3),
                TokenKind::Number(2.5e-2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn leading_dot_number_from_listing_1() {
        // Listing 1 uses `.01` literally.
        let toks = kinds("MDSs[whoami][\"load\"]>.01");
        assert!(toks.contains(&TokenKind::Number(0.01)));
        assert!(toks.contains(&TokenKind::Gt));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("-- Metadata load\nmetaload = IWR -- trailing"),
            vec![
                TokenKind::Name("metaload".into()),
                TokenKind::Assign,
                TokenKind::Name("IWR".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a ~= b <= c .. d"),
            vec![
                TokenKind::Name("a".into()),
                TokenKind::NotEq,
                TokenKind::Name("b".into()),
                TokenKind::Le,
                TokenKind::Name("c".into()),
                TokenKind::Concat,
                TokenKind::Name("d".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#" "big_first" 'half' "a\nb" "#),
            vec![
                TokenKind::Str("big_first".into()),
                TokenKind::Str("half".into()),
                TokenKind::Str("a\nb".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(
            lex("\"oops"),
            Err(PolicyError::Lex { line: 1, .. })
        ));
    }

    #[test]
    fn keywords_vs_names() {
        assert_eq!(
            kinds("while whilex do"),
            vec![
                TokenKind::While,
                TokenKind::Name("whilex".into()),
                TokenKind::Do,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_tracking() {
        let toks = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]); // c and EOF on line 4
    }

    #[test]
    fn concat_vs_number_dots() {
        assert_eq!(
            kinds("1 .. 2"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Concat,
                TokenKind::Number(2.0),
                TokenKind::Eof
            ]
        );
        // Adjacent form: `1..2` must lex as 1 .. 2 too.
        assert_eq!(
            kinds("1..2"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Concat,
                TokenKind::Number(2.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn bad_character() {
        assert!(matches!(lex("a @ b"), Err(PolicyError::Lex { .. })));
        assert!(matches!(lex("a ~ b"), Err(PolicyError::Lex { .. })));
    }

    #[test]
    fn listing_fragment_lexes() {
        let src = r#"
-- When policy
t=((#MDSs-whoami+1)/2)+whoami
if t>#MDSs then t=whoami end
while t~=whoami and MDSs[t]["load"]<.01 do t=t-1 end
"#;
        assert!(lex(src).is_ok());
    }
}
