//! The hot-reload install lifecycle: raw Lua sources arrive from
//! outside (an admin socket, a config file), get compiled and validated,
//! and are then published atomically as an epoch-tagged snapshot that
//! readers pick up without locking out in-flight decisions.
//!
//! The pipeline is deliberately staged so a bad policy can never reach a
//! running balancer:
//!
//! 1. **Parse/compile** — [`PolicySource::compile`] builds a
//!    [`PolicySet`] from the raw hook sources; syntax errors stop here.
//! 2. **Validate** — [`prepare`] runs the full [`PolicyValidator`]
//!    gauntlet: the static global scan plus dry runs over the synthetic
//!    clusters, each evaluated at *both membership extremes* (all MDSs
//!    up, and a single survivor) exactly as the elastic validator does,
//!    so a policy that only divides by `#MDSs - 1` when the cluster is
//!    full is caught before installation.
//! 3. **Install** — [`PolicyCell::install`] swaps the published
//!    [`InstalledPolicy`] under a write lock and bumps the epoch.
//!    Readers hold `Arc` snapshots ([`PolicyCell::current`]), so a
//!    decision that began under epoch *n* finishes under epoch *n* even
//!    if epoch *n + 1* lands mid-decision.

use std::sync::{Arc, RwLock};

use crate::env::PolicySet;
use crate::error::PolicyResult;
use crate::validate::PolicyValidator;

/// Raw Lua sources for a complete policy, as received over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicySource {
    /// Human-facing policy name (reports, trace records).
    pub name: String,
    /// The `metaload` hook body.
    pub metaload: String,
    /// The `mdsload` hook body.
    pub mdsload: String,
    /// The decision logic: one combined body, or split when/where hooks.
    pub decision: DecisionSource,
    /// `howmuch` selector names, in preference order.
    pub selectors: Vec<String>,
    /// Optional `howmany` hook body (elastic sizing).
    pub howmany: Option<String>,
}

/// How the decision logic is expressed in the source form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecisionSource {
    /// A single body that both decides and fills `targets`.
    Combined(String),
    /// Separate `when` / `where` hooks, as in the paper's Table 3.
    Hooks {
        /// The `when` hook body (boolean result).
        when: String,
        /// The `where` hook body (fills `targets`).
        where_: String,
    },
}

impl PolicySource {
    /// Compile the raw sources into a [`PolicySet`]. Syntax and
    /// structural errors surface here; semantic validation is
    /// [`prepare`]'s job.
    pub fn compile(&self) -> PolicyResult<PolicySet> {
        let sels: Vec<&str> = self.selectors.iter().map(String::as_str).collect();
        let set = match &self.decision {
            DecisionSource::Combined(body) => {
                PolicySet::from_combined(&self.metaload, &self.mdsload, body, &sels)?
            }
            DecisionSource::Hooks { when, where_ } => {
                PolicySet::from_hooks(&self.metaload, &self.mdsload, when, where_, &sels)?
            }
        };
        match &self.howmany {
            Some(src) => set.with_howmany(src),
            None => Ok(set),
        }
    }
}

/// Compile **and** validate a source bundle — the full pre-install
/// gauntlet. On success the returned [`PolicySet`] is safe to hand to a
/// balancer constructor that skips re-validation.
pub fn prepare(source: &PolicySource) -> PolicyResult<PolicySet> {
    let set = source.compile()?;
    PolicyValidator::new().validate(&set)?;
    Ok(set)
}

/// A validated policy published at a specific epoch.
#[derive(Debug, Clone)]
pub struct InstalledPolicy {
    /// Monotonic install counter; epoch 0 is the boot policy.
    pub epoch: u64,
    /// The policy's name.
    pub name: String,
    /// The compiled policy.
    pub set: PolicySet,
}

/// An atomically-swappable policy slot.
///
/// Readers call [`PolicyCell::current`] and get an `Arc` snapshot they
/// can keep for the duration of a decision; [`PolicyCell::install`]
/// replaces the published snapshot and bumps the epoch. The lock is held
/// only for the pointer swap — never across compilation, validation, or
/// a decision — so installs are effectively wait-free for readers.
#[derive(Debug)]
pub struct PolicyCell {
    slot: RwLock<Arc<InstalledPolicy>>,
}

impl PolicyCell {
    /// Publish `set` as the boot policy (epoch 0).
    pub fn new(name: impl Into<String>, set: PolicySet) -> Self {
        PolicyCell {
            slot: RwLock::new(Arc::new(InstalledPolicy {
                epoch: 0,
                name: name.into(),
                set,
            })),
        }
    }

    /// The currently-published policy. The returned snapshot stays valid
    /// (and unchanged) even if an install lands immediately after.
    pub fn current(&self) -> Arc<InstalledPolicy> {
        Arc::clone(&self.slot.read().expect("policy slot never poisoned"))
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.slot.read().expect("policy slot never poisoned").epoch
    }

    /// Atomically publish a new policy, returning its epoch. The caller
    /// is expected to have run [`prepare`] (or equivalent validation)
    /// first — the cell itself only swaps.
    pub fn install(&self, name: impl Into<String>, set: PolicySet) -> u64 {
        let mut slot = self.slot.write().expect("policy slot never poisoned");
        let epoch = slot.epoch + 1;
        *slot = Arc::new(InstalledPolicy {
            epoch,
            name: name.into(),
            set,
        });
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn greedy() -> PolicySource {
        PolicySource {
            name: "greedy".into(),
            metaload: "IWR + IRD".into(),
            mdsload: "MDSs[i][\"all\"]".into(),
            decision: DecisionSource::Hooks {
                when: "result = MDSs[whoami][\"load\"] > total/#MDSs".into(),
                where_: "targets[1] = MDSs[whoami][\"load\"] - total/#MDSs".into(),
            },
            selectors: vec!["half".into()],
            howmany: None,
        }
    }

    #[test]
    fn prepare_accepts_a_sane_policy() {
        prepare(&greedy()).expect("greedy spill validates");
    }

    #[test]
    fn prepare_rejects_syntax_and_semantics() {
        let mut bad = greedy();
        bad.metaload = "IWR +".into();
        assert!(prepare(&bad).is_err(), "syntax error must fail compile");

        let mut unknown = greedy();
        unknown.decision = DecisionSource::Combined("x = unknowng".into());
        assert!(prepare(&unknown).is_err(), "unknown global must fail");
    }

    #[test]
    fn install_bumps_epoch_and_keeps_old_snapshots_alive() {
        let set = prepare(&greedy()).unwrap();
        let cell = PolicyCell::new("greedy", set.clone());
        let before = cell.current();
        assert_eq!(before.epoch, 0);
        let epoch = cell.install("greedy-v2", set);
        assert_eq!(epoch, 1);
        assert_eq!(cell.epoch(), 1);
        // The pre-install snapshot is untouched: in-flight decisions
        // finish on the policy they started with.
        assert_eq!(before.epoch, 0);
        assert_eq!(before.name, "greedy");
        assert_eq!(cell.current().name, "greedy-v2");
    }
}
