//! Tokens for the policy language.

use std::fmt;

/// A lexical token with its source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// The kinds of token the lexer produces.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and names
    /// Numeric literal (always an f64, as in Lua 5.1).
    Number(f64),
    /// String literal (single- or double-quoted).
    Str(String),
    /// Identifier.
    Name(String),

    // Keywords
    /// `and`
    And,
    /// `break`
    Break,
    /// `do`
    Do,
    /// `else`
    Else,
    /// `elseif`
    Elseif,
    /// `end`
    End,
    /// `false`
    False,
    /// `for`
    For,
    /// `function` (recognized so we can give a useful "unsupported" error)
    Function,
    /// `if`
    If,
    /// `local`
    Local,
    /// `nil`
    Nil,
    /// `not`
    Not,
    /// `or`
    Or,
    /// `return`
    Return,
    /// `then`
    Then,
    /// `true`
    True,
    /// `while`
    While,
    /// `in` (recognized for error reporting on generic-for)
    In,
    /// `repeat`
    Repeat,
    /// `until`
    Until,

    // Symbols
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^`
    Caret,
    /// `#`
    Hash,
    /// `==`
    EqEq,
    /// `~=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Assign,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..`
    Concat,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier.
    pub fn keyword(name: &str) -> Option<TokenKind> {
        Some(match name {
            "and" => TokenKind::And,
            "break" => TokenKind::Break,
            "do" => TokenKind::Do,
            "else" => TokenKind::Else,
            "elseif" => TokenKind::Elseif,
            "end" => TokenKind::End,
            "false" => TokenKind::False,
            "for" => TokenKind::For,
            "function" => TokenKind::Function,
            "if" => TokenKind::If,
            "in" => TokenKind::In,
            "local" => TokenKind::Local,
            "nil" => TokenKind::Nil,
            "not" => TokenKind::Not,
            "or" => TokenKind::Or,
            "repeat" => TokenKind::Repeat,
            "return" => TokenKind::Return,
            "then" => TokenKind::Then,
            "true" => TokenKind::True,
            "until" => TokenKind::Until,
            "while" => TokenKind::While,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::Name(n) => write!(f, "name '{n}'"),
            TokenKind::Eof => write!(f, "end of input"),
            other => {
                let s = match other {
                    TokenKind::And => "and",
                    TokenKind::Break => "break",
                    TokenKind::Do => "do",
                    TokenKind::Else => "else",
                    TokenKind::Elseif => "elseif",
                    TokenKind::End => "end",
                    TokenKind::False => "false",
                    TokenKind::For => "for",
                    TokenKind::Function => "function",
                    TokenKind::If => "if",
                    TokenKind::In => "in",
                    TokenKind::Local => "local",
                    TokenKind::Nil => "nil",
                    TokenKind::Not => "not",
                    TokenKind::Or => "or",
                    TokenKind::Repeat => "repeat",
                    TokenKind::Return => "return",
                    TokenKind::Then => "then",
                    TokenKind::True => "true",
                    TokenKind::Until => "until",
                    TokenKind::While => "while",
                    TokenKind::Plus => "+",
                    TokenKind::Minus => "-",
                    TokenKind::Star => "*",
                    TokenKind::Slash => "/",
                    TokenKind::Percent => "%",
                    TokenKind::Caret => "^",
                    TokenKind::Hash => "#",
                    TokenKind::EqEq => "==",
                    TokenKind::NotEq => "~=",
                    TokenKind::Lt => "<",
                    TokenKind::Le => "<=",
                    TokenKind::Gt => ">",
                    TokenKind::Ge => ">=",
                    TokenKind::Assign => "=",
                    TokenKind::LParen => "(",
                    TokenKind::RParen => ")",
                    TokenKind::LBrace => "{",
                    TokenKind::RBrace => "}",
                    TokenKind::LBracket => "[",
                    TokenKind::RBracket => "]",
                    TokenKind::Semi => ";",
                    TokenKind::Colon => ":",
                    TokenKind::Comma => ",",
                    TokenKind::Dot => ".",
                    TokenKind::Concat => "..",
                    _ => unreachable!(),
                };
                write!(f, "'{s}'")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::While));
        assert_eq!(TokenKind::keyword("whoami"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TokenKind::NotEq.to_string(), "'~='");
        assert_eq!(TokenKind::Number(3.5).to_string(), "number 3.5");
        assert_eq!(TokenKind::Name("t".into()).to_string(), "name 't'");
    }
}
