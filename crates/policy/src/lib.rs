//! The Mantle policy language: a from-scratch interpreter for the Lua
//! subset the paper's balancers are written in (Listings 1–4).
//!
//! The real Mantle embeds LuaJIT inside `ceph-mds`. This crate plays that
//! role here: balancer policies are plain-text scripts, injected at run
//! time, executed in a sandboxed environment that exposes exactly the
//! metrics and functions of the paper's Table 2 (`whoami`, `MDSs[i][...]`,
//! `total`, `IRD`/`IWR`/`READDIR`/`FETCH`/`STORE`, `WRstate`/`RDstate`,
//! `max`/`min`) plus a `targets[]` output array.
//!
//! Supported language (a strict Lua 5.1 subset — the paper's listings run
//! verbatim):
//!
//! * values: `nil`, booleans, f64 numbers, strings, tables (1-based arrays
//!   + string keys), host functions;
//! * statements: assignment, `local`, `if/elseif/else/end`, `while`,
//!   numeric `for`, `do/end`, `break`, `return`, call statements,
//!   `--` comments;
//! * expressions: arithmetic (`+ - * / % ^`), comparison
//!   (`== ~= < <= > >=`), logical (`and or not`, short-circuiting,
//!   value-returning), concatenation (`..`), length (`#`), indexing
//!   (`t.k` / `t[e]`), calls, table constructors.
//!
//! Scripts run under a *step budget* so an injected `while 1 do end` cannot
//! take an MDS down — the safety point of the paper's §4.4 — and a
//! [`validate::PolicyValidator`] dry-runs scripts against a synthetic
//! environment before they are accepted, the "simulator that checks the
//! logic before injecting policies in the running cluster".
//!
//! ```
//! use mantle_policy::{compile, Interpreter, Value};
//!
//! let script = compile("total = 0 for i = 1, #loads do total = total + loads[i] end")?;
//! let mut interp = Interpreter::new();
//! interp.set_global(
//!     "loads",
//!     Value::table(mantle_policy::Table::from_array(
//!         [12.7, 13.3, 15.7].map(Value::Number),
//!     )),
//! );
//! interp.run(&script)?;
//! assert!((interp.get_global("total").as_number(0)? - 41.7).abs() < 1e-9);
//! # Ok::<(), mantle_policy::PolicyError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod bytecode;
pub mod env;
pub mod error;
pub mod fmt;
pub mod install;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod slots;
pub mod stdlib;
pub mod token;
pub mod validate;
pub mod value;

pub use bytecode::{BytecodeProgram, BytecodeVm};
pub use env::{BalancerInputs, BalancerOutcome, EnvBuilder, HookEngine, MdsMetrics, StateStore};
pub use error::{PolicyError, PolicyResult};
pub use fmt::script_to_source;
pub use install::{prepare, DecisionSource, InstalledPolicy, PolicyCell, PolicySource};
pub use interp::{Interpreter, StepBudget};
pub use parser::parse_script;
pub use slots::{ScalarMdsload, ScalarMetaload, SlotProgram, SlotVm};
pub use validate::PolicyValidator;
pub use value::{Table, Value};

/// Compile source text into an executable script (lex + parse).
pub fn compile(src: &str) -> PolicyResult<ast::Script> {
    parser::parse_script(src)
}

/// Convenience: compile a source string that is either a bare expression or
/// a full script; used for `metaload`/`mdsload` hooks which the paper
/// writes as expressions.
pub fn compile_expr(src: &str) -> PolicyResult<ast::Script> {
    parser::parse_expression_script(src)
}
