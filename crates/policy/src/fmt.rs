//! Pretty-printer for policy ASTs: renders a compiled script back to
//! canonical source. Used by diagnostics (`ceph tell mds.N dump_policy`
//! moral equivalent) and by the parse→print→parse round-trip property
//! tests.

use std::fmt::Write;

use crate::ast::{BinOp, Block, Expr, LValue, Script, Stmt, UnOp};

/// Render a script as canonical source text.
pub fn script_to_source(script: &Script) -> String {
    let mut out = String::new();
    block(&mut out, &script.block, 0);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn block(out: &mut String, b: &Block, level: usize) {
    for stmt in &b.stmts {
        statement(out, stmt, level);
    }
}

fn statement(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    match stmt {
        Stmt::Assign { target, value, .. } => {
            match target {
                LValue::Name(n) => out.push_str(n),
                LValue::Index { object, key } => index_str(out, object, key),
            }
            out.push_str(" = ");
            expr(out, value);
            out.push('\n');
        }
        Stmt::Local { name, value, .. } => {
            out.push_str("local ");
            out.push_str(name);
            if let Some(v) = value {
                out.push_str(" = ");
                expr(out, v);
            }
            out.push('\n');
        }
        Stmt::If {
            arms, else_block, ..
        } => {
            for (i, (cond, body)) in arms.iter().enumerate() {
                indent(out, if i == 0 { 0 } else { level });
                out.push_str(if i == 0 { "if " } else { "elseif " });
                expr(out, cond);
                out.push_str(" then\n");
                block(out, body, level + 1);
            }
            if let Some(body) = else_block {
                indent(out, level);
                out.push_str("else\n");
                block(out, body, level + 1);
            }
            indent(out, level);
            out.push_str("end\n");
        }
        Stmt::While { cond, body, .. } => {
            out.push_str("while ");
            expr(out, cond);
            out.push_str(" do\n");
            block(out, body, level + 1);
            indent(out, level);
            out.push_str("end\n");
        }
        Stmt::NumericFor {
            var,
            start,
            stop,
            step,
            body,
            ..
        } => {
            let _ = write!(out, "for {var} = ");
            expr(out, start);
            out.push_str(", ");
            expr(out, stop);
            if let Some(s) = step {
                out.push_str(", ");
                expr(out, s);
            }
            out.push_str(" do\n");
            block(out, body, level + 1);
            indent(out, level);
            out.push_str("end\n");
        }
        Stmt::ExprStmt { expr: e, .. } => {
            expr(out, e);
            out.push('\n');
        }
        Stmt::Do { body } => {
            out.push_str("do\n");
            block(out, body, level + 1);
            indent(out, level);
            out.push_str("end\n");
        }
        Stmt::Return { value, .. } => {
            out.push_str("return");
            if let Some(v) = value {
                out.push(' ');
                expr(out, v);
            }
            out.push('\n');
        }
        Stmt::Break { .. } => out.push_str("break\n"),
    }
}

fn index_str(out: &mut String, object: &Expr, key: &Expr) {
    expr(out, object);
    // Sugar string keys that are identifiers back to dot form.
    if let Expr::Str(s) = key {
        if is_identifier(s) {
            out.push('.');
            out.push_str(s);
            return;
        }
    }
    out.push('[');
    expr(out, key);
    out.push(']');
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && crate::token::TokenKind::keyword(s).is_none()
}

/// Render an expression. Parenthesizes defensively: every non-atomic
/// subexpression is wrapped, which keeps the printer trivially correct
/// under re-parsing (canonical, not minimal, output).
pub fn expr(out: &mut String, e: &Expr) {
    match e {
        Expr::Nil => out.push_str("nil"),
        Expr::Bool(true) => out.push_str("true"),
        Expr::Bool(false) => out.push_str("false"),
        Expr::Number(n) => {
            let _ = write!(out, "{}", crate::value::fmt_number(*n));
        }
        Expr::Str(s) => {
            let _ = write!(out, "\"{}\"", escape(s));
        }
        Expr::Name(n, _) => out.push_str(n),
        Expr::Index { object, key, .. } => index_str(out, object, key),
        Expr::Call { callee, args, .. } => {
            expr(out, callee);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(out, a);
            }
            out.push(')');
        }
        Expr::Unary { op, operand, .. } => {
            match op {
                UnOp::Neg => out.push('-'),
                UnOp::Not => out.push_str("not "),
                UnOp::Len => out.push('#'),
            }
            paren(out, operand);
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            paren(out, lhs);
            let _ = write!(out, " {} ", bin_op_str(*op));
            paren(out, rhs);
        }
        Expr::TableCtor { items, pairs, .. } => {
            out.push('{');
            let mut first = true;
            for item in items {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                expr(out, item);
            }
            for (k, v) in pairs {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push('[');
                expr(out, k);
                out.push_str("] = ");
                expr(out, v);
            }
            out.push('}');
        }
    }
}

fn paren(out: &mut String, e: &Expr) {
    let atomic = matches!(
        e,
        Expr::Nil
            | Expr::Bool(_)
            | Expr::Number(_)
            | Expr::Str(_)
            | Expr::Name(..)
            | Expr::Index { .. }
            | Expr::Call { .. }
            | Expr::TableCtor { .. }
    );
    if atomic {
        expr(out, e);
    } else {
        out.push('(');
        expr(out, e);
        out.push(')');
    }
}

fn bin_op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Pow => "^",
        BinOp::Concat => "..",
        BinOp::Eq => "==",
        BinOp::Ne => "~=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "and",
        BinOp::Or => "or",
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            '\t' => vec!['\\', 't'],
            other => vec![other],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;

    fn round_trip(src: &str) {
        let first = parse_script(src).expect("source parses");
        let printed = script_to_source(&first);
        let second = parse_script(&printed)
            .unwrap_or_else(|e| panic!("printed source fails to parse: {e}\n{printed}"));
        // Line numbers differ; compare semantic structure via re-print.
        let reprinted = script_to_source(&second);
        assert_eq!(printed, reprinted, "print is a fixpoint");
    }

    #[test]
    fn prints_assignment() {
        let s = parse_script("x = 1 + 2 * 3").unwrap();
        assert_eq!(script_to_source(&s), "x = 1 + (2 * 3)\n");
    }

    #[test]
    fn prints_dot_indexing() {
        let s = parse_script("x = t.load").unwrap();
        assert_eq!(script_to_source(&s), "x = t.load\n");
        let s2 = parse_script("x = t[\"not valid ident\"]").unwrap();
        assert_eq!(script_to_source(&s2), "x = t[\"not valid ident\"]\n");
    }

    #[test]
    fn keyword_string_keys_stay_bracketed() {
        let s = parse_script("x = t[\"end\"]").unwrap();
        assert_eq!(script_to_source(&s), "x = t[\"end\"]\n");
        round_trip("x = t[\"end\"]");
    }

    #[test]
    fn round_trips_the_listings() {
        round_trip(tests_support::GREEDY_SPILL_SNIPPET);
        round_trip("for i = 1, #MDSs do targets[i] = total / #MDSs end");
        round_trip("while t ~= whoami and MDSs[t][\"load\"] < .01 do t = t - 1 end");
        round_trip("if a then x = 1 elseif b then x = 2 else x = 3 end");
        round_trip("local w = RDstate() WRstate(w - 1) return w > 0");
        round_trip("t = {1, 2, [\"k\"] = 3, x = 4}");
        round_trip("y = -x ^ 2 z = not (a and b) n = #\"str\"");
    }

    #[test]
    fn string_escapes_round_trip() {
        round_trip(r#"s = "a\nb\t\"q\" \\" "#);
    }
}

#[cfg(test)]
mod tests_support {
    /// A Listing-1-shaped snippet reused across tests.
    pub const GREEDY_SPILL_SNIPPET: &str = r#"
if whoami < #MDSs and MDSs[whoami]["load"] > .01 and MDSs[whoami+1]["load"] < .01 then
  targets[whoami+1] = allmetaload / 2
end
"#;
}
