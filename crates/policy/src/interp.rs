//! Tree-walking interpreter with a step budget.

use std::collections::HashMap;

use crate::ast::{BinOp, Block, Expr, LValue, Script, Stmt, UnOp};
use crate::error::{PolicyError, PolicyResult};
use crate::value::{fmt_number, Key, Table, Value};

/// Execution budget: the maximum number of AST steps a single run may take.
///
/// This is Mantle's §4.4 safety net — an injected `while 1 do end` hits the
/// budget and returns an error instead of hanging the MDS balancer tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepBudget(pub u64);

impl Default for StepBudget {
    fn default() -> Self {
        // Generous for real balancers (the paper's listings take < 1k steps
        // on a 64-MDS cluster) while still bounding runaway scripts.
        StepBudget(1_000_000)
    }
}

/// Control flow signal threaded through block execution.
enum Flow {
    Normal,
    Break,
    Return(Value),
}

/// The interpreter: a global scope (the Mantle environment), a stack of
/// lexical scopes for `local`s and loop variables, and a step counter.
pub struct Interpreter {
    globals: HashMap<String, Value>,
    scopes: Vec<HashMap<String, Value>>,
    steps: u64,
    budget: StepBudget,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// New interpreter with the default budget and empty globals.
    pub fn new() -> Self {
        Interpreter {
            globals: HashMap::new(),
            scopes: Vec::new(),
            steps: 0,
            budget: StepBudget::default(),
        }
    }

    /// Override the step budget.
    pub fn with_budget(mut self, budget: StepBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Define (or overwrite) a global.
    pub fn set_global(&mut self, name: &str, value: Value) {
        self.globals.insert(name.to_string(), value);
    }

    /// Read a global (nil when undefined).
    pub fn get_global(&self, name: &str) -> Value {
        self.globals.get(name).cloned().unwrap_or(Value::Nil)
    }

    /// Steps consumed by the last run (diagnostics / tests).
    pub fn steps_used(&self) -> u64 {
        self.steps
    }

    /// Execute a script; returns its `return` value (or `Nil`).
    ///
    /// The step counter resets per run, so one interpreter can evaluate
    /// many hooks against the same environment.
    pub fn run(&mut self, script: &Script) -> PolicyResult<Value> {
        self.steps = 0;
        self.scopes.clear();
        self.scopes.push(HashMap::new());
        let flow = self.exec_block(&script.block)?;
        self.scopes.pop();
        Ok(match flow {
            Flow::Return(v) => v,
            _ => Value::Nil,
        })
    }

    fn step(&mut self, line: u32) -> PolicyResult<()> {
        self.steps += 1;
        if self.steps > self.budget.0 {
            let _ = line;
            Err(PolicyError::BudgetExhausted {
                budget: self.budget.0,
            })
        } else {
            Ok(())
        }
    }

    fn exec_block(&mut self, block: &Block) -> PolicyResult<Flow> {
        for stmt in &block.stmts {
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> PolicyResult<Flow> {
        match stmt {
            Stmt::Assign {
                target,
                value,
                line,
            } => {
                self.step(*line)?;
                let v = self.eval(value)?;
                self.assign(target, v, *line)?;
                Ok(Flow::Normal)
            }
            Stmt::Local { name, value, line } => {
                self.step(*line)?;
                let v = match value {
                    Some(e) => self.eval(e)?,
                    None => Value::Nil,
                };
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::If {
                arms,
                else_block,
                line,
            } => {
                self.step(*line)?;
                for (cond, body) in arms {
                    if self.eval(cond)?.truthy() {
                        return self.scoped(|me| me.exec_block(body));
                    }
                }
                if let Some(body) = else_block {
                    return self.scoped(|me| me.exec_block(body));
                }
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body, line } => {
                loop {
                    self.step(*line)?;
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                    match self.scoped(|me| me.exec_block(body))? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::NumericFor {
                var,
                start,
                stop,
                step,
                body,
                line,
            } => {
                self.step(*line)?;
                let start = self.eval(start)?.as_number(*line)?;
                let stop = self.eval(stop)?.as_number(*line)?;
                let step_v = match step {
                    Some(e) => self.eval(e)?.as_number(*line)?,
                    None => 1.0,
                };
                if step_v == 0.0 {
                    return Err(PolicyError::runtime(*line, "'for' step is zero"));
                }
                let mut i = start;
                loop {
                    self.step(*line)?;
                    let cont = if step_v > 0.0 { i <= stop } else { i >= stop };
                    if !cont {
                        break;
                    }
                    let flow = self.scoped(|me| {
                        me.scopes
                            .last_mut()
                            .expect("scope stack never empty")
                            .insert(var.clone(), Value::Number(i));
                        me.exec_block(body)
                    })?;
                    match flow {
                        Flow::Normal => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    i += step_v;
                }
                Ok(Flow::Normal)
            }
            Stmt::ExprStmt { expr, line } => {
                self.step(*line)?;
                self.eval(expr)?;
                Ok(Flow::Normal)
            }
            Stmt::Do { body } => self.scoped(|me| me.exec_block(body)),
            Stmt::Return { value, line } => {
                self.step(*line)?;
                let v = match value {
                    Some(e) => self.eval(e)?,
                    None => Value::Nil,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break { line } => {
                self.step(*line)?;
                Ok(Flow::Break)
            }
        }
    }

    fn scoped<F>(&mut self, f: F) -> PolicyResult<Flow>
    where
        F: FnOnce(&mut Self) -> PolicyResult<Flow>,
    {
        self.scopes.push(HashMap::new());
        let r = f(self);
        self.scopes.pop();
        r
    }

    fn assign(&mut self, target: &LValue, value: Value, line: u32) -> PolicyResult<()> {
        match target {
            LValue::Name(name) => {
                // Lua scoping: assignment to a declared local updates it,
                // otherwise it creates/updates a global.
                for scope in self.scopes.iter_mut().rev() {
                    if let Some(slot) = scope.get_mut(name) {
                        *slot = value;
                        return Ok(());
                    }
                }
                self.globals.insert(name.clone(), value);
                Ok(())
            }
            LValue::Index { object, key } => {
                let obj = self.eval(object)?;
                let key_v = self.eval(key)?;
                match obj {
                    Value::Table(t) => {
                        let k = Key::from_value(&key_v, line)?;
                        t.borrow_mut().set(k, value);
                        Ok(())
                    }
                    other => Err(PolicyError::runtime(
                        line,
                        format!("cannot index a {} value", other.type_name()),
                    )),
                }
            }
        }
    }

    /// Evaluate an expression.
    pub fn eval(&mut self, expr: &Expr) -> PolicyResult<Value> {
        self.step(expr.line())?;
        match expr {
            Expr::Nil => Ok(Value::Nil),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Number(n) => Ok(Value::Number(*n)),
            Expr::Str(s) => Ok(Value::str(s)),
            Expr::Name(name, _) => {
                for scope in self.scopes.iter().rev() {
                    if let Some(v) = scope.get(name) {
                        return Ok(v.clone());
                    }
                }
                Ok(self.get_global(name))
            }
            Expr::Index { object, key, line } => {
                let obj = self.eval(object)?;
                let key_v = self.eval(key)?;
                match obj {
                    Value::Table(t) => {
                        let k = Key::from_value(&key_v, *line)?;
                        Ok(t.borrow().get(&k))
                    }
                    Value::Nil => Err(PolicyError::runtime(
                        *line,
                        format!(
                            "attempt to index a nil value (key '{}')",
                            key_v.display_string()
                        ),
                    )),
                    other => Err(PolicyError::runtime(
                        *line,
                        format!("cannot index a {} value", other.type_name()),
                    )),
                }
            }
            Expr::Call { callee, args, line } => {
                let f = self.eval(callee)?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a)?);
                }
                match f {
                    Value::Native(_, func) => func(self, &argv),
                    Value::Nil => Err(PolicyError::runtime(
                        *line,
                        "attempt to call a nil value (is the function defined in the Mantle \
                         environment?)",
                    )),
                    other => Err(PolicyError::runtime(
                        *line,
                        format!("attempt to call a {} value", other.type_name()),
                    )),
                }
            }
            Expr::Unary { op, operand, line } => {
                let v = self.eval(operand)?;
                match op {
                    UnOp::Neg => Ok(Value::Number(-v.as_number(*line)?)),
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                    UnOp::Len => match v {
                        Value::Table(t) => Ok(Value::Number(t.borrow().len() as f64)),
                        Value::Str(s) => Ok(Value::Number(s.len() as f64)),
                        other => Err(PolicyError::runtime(
                            *line,
                            format!("attempt to get length of a {} value", other.type_name()),
                        )),
                    },
                }
            }
            Expr::Binary { op, lhs, rhs, line } => self.eval_binary(*op, lhs, rhs, *line),
            Expr::TableCtor { items, pairs, line } => {
                let mut t = Table::new();
                for (i, item) in items.iter().enumerate() {
                    let v = self.eval(item)?;
                    t.set_int(i as i64 + 1, v);
                }
                for (k, v) in pairs {
                    let key_v = self.eval(k)?;
                    let val = self.eval(v)?;
                    t.set(Key::from_value(&key_v, *line)?, val);
                }
                Ok(Value::table(t))
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, line: u32) -> PolicyResult<Value> {
        // Short-circuit forms first: they return operand values, not bools.
        match op {
            BinOp::And => {
                let l = self.eval(lhs)?;
                return if l.truthy() { self.eval(rhs) } else { Ok(l) };
            }
            BinOp::Or => {
                let l = self.eval(lhs)?;
                return if l.truthy() { Ok(l) } else { self.eval(rhs) };
            }
            _ => {}
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        match op {
            BinOp::Add => Ok(Value::Number(l.as_number(line)? + r.as_number(line)?)),
            BinOp::Sub => Ok(Value::Number(l.as_number(line)? - r.as_number(line)?)),
            BinOp::Mul => Ok(Value::Number(l.as_number(line)? * r.as_number(line)?)),
            BinOp::Div => Ok(Value::Number(l.as_number(line)? / r.as_number(line)?)),
            BinOp::Mod => {
                let (a, b) = (l.as_number(line)?, r.as_number(line)?);
                // Lua's % is floored modulo.
                Ok(Value::Number(a - (a / b).floor() * b))
            }
            BinOp::Pow => Ok(Value::Number(l.as_number(line)?.powf(r.as_number(line)?))),
            BinOp::Concat => {
                let ls = concat_operand(&l, line)?;
                let rs = concat_operand(&r, line)?;
                Ok(Value::str(format!("{ls}{rs}")))
            }
            BinOp::Eq => Ok(Value::Bool(l.lua_eq(&r))),
            BinOp::Ne => Ok(Value::Bool(!l.lua_eq(&r))),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let ord = compare(&l, &r, line)?;
                Ok(Value::Bool(match op {
                    BinOp::Lt => ord == std::cmp::Ordering::Less,
                    BinOp::Le => ord != std::cmp::Ordering::Greater,
                    BinOp::Gt => ord == std::cmp::Ordering::Greater,
                    BinOp::Ge => ord != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                }))
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }
}

pub(crate) fn concat_operand(v: &Value, line: u32) -> PolicyResult<String> {
    match v {
        Value::Str(s) => Ok(s.to_string()),
        Value::Number(n) => Ok(fmt_number(*n)),
        other => Err(PolicyError::runtime(
            line,
            format!("attempt to concatenate a {} value", other.type_name()),
        )),
    }
}

pub(crate) fn compare(l: &Value, r: &Value, line: u32) -> PolicyResult<std::cmp::Ordering> {
    match (l, r) {
        (Value::Number(a), Value::Number(b)) => a
            .partial_cmp(b)
            .ok_or_else(|| PolicyError::runtime(line, "comparison with NaN has no defined order")),
        (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
        (a, b) => Err(PolicyError::runtime(
            line,
            format!(
                "attempt to compare {} with {}",
                a.type_name(),
                b.type_name()
            ),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expression_script, parse_script};
    use std::rc::Rc;

    fn eval_str(src: &str) -> Value {
        let script = parse_expression_script(src).unwrap();
        Interpreter::new().run(&script).unwrap()
    }

    fn eval_num(src: &str) -> f64 {
        eval_str(src).as_number(0).unwrap()
    }

    fn run_script(src: &str) -> Interpreter {
        let script = parse_script(src).unwrap();
        let mut interp = Interpreter::new();
        interp.run(&script).unwrap();
        interp
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_num("1 + 2 * 3"), 7.0);
        assert_eq!(eval_num("(1 + 2) * 3"), 9.0);
        assert_eq!(eval_num("2 ^ 10"), 1024.0);
        assert_eq!(eval_num("2 ^ 3 ^ 2"), 512.0, "pow is right-assoc");
        assert_eq!(eval_num("7 % 3"), 1.0);
        assert_eq!(eval_num("-7 % 3"), 2.0, "Lua floored modulo");
        assert_eq!(eval_num("10 / 4"), 2.5);
    }

    #[test]
    fn comparisons_and_logic() {
        assert!(matches!(eval_str("1 < 2"), Value::Bool(true)));
        assert!(matches!(eval_str("1 ~= 2"), Value::Bool(true)));
        assert!(matches!(eval_str("\"a\" < \"b\""), Value::Bool(true)));
        // and/or return operands.
        assert_eq!(eval_num("false or 5"), 5.0);
        assert_eq!(eval_num("nil and 3 or 4"), 4.0);
        assert_eq!(eval_num("2 and 3"), 3.0);
    }

    #[test]
    fn short_circuit_skips_rhs() {
        // rhs would error (call nil), but lhs short-circuits.
        assert!(matches!(
            eval_str("false and undefined_fn()"),
            Value::Bool(false)
        ));
        assert_eq!(eval_num("1 or undefined_fn()"), 1.0);
    }

    #[test]
    fn concat() {
        let v = eval_str("\"load=\" .. 2.5 .. \"!\"");
        assert_eq!(v.display_string(), "load=2.5!");
        let v2 = eval_str("\"n=\" .. 3");
        assert_eq!(v2.display_string(), "n=3", "integral floats print as ints");
    }

    #[test]
    fn globals_and_locals() {
        let interp = run_script("x = 1 local y = 2 x = x + y");
        assert_eq!(interp.get_global("x").as_number(0).unwrap(), 3.0);
        // locals don't leak to globals
        assert!(matches!(interp.get_global("y"), Value::Nil));
    }

    #[test]
    fn block_scoping() {
        let interp =
            run_script("x = 0\nif true then local x2 = 5 x = x2 end\ndo local z = 9 end\nw = 1");
        assert_eq!(interp.get_global("x").as_number(0).unwrap(), 5.0);
        assert!(matches!(interp.get_global("z"), Value::Nil));
    }

    #[test]
    fn while_loop_and_break() {
        let interp = run_script("i = 0 while true do i = i + 1 if i >= 5 then break end end");
        assert_eq!(interp.get_global("i").as_number(0).unwrap(), 5.0);
    }

    #[test]
    fn numeric_for() {
        let interp = run_script("s = 0 for i=1,10 do s = s + i end");
        assert_eq!(interp.get_global("s").as_number(0).unwrap(), 55.0);
        let interp2 = run_script("s = 0 for i=10,1,-2 do s = s + i end");
        assert_eq!(interp2.get_global("s").as_number(0).unwrap(), 30.0);
        // loop var is scoped
        assert!(matches!(interp.get_global("i"), Value::Nil));
    }

    #[test]
    fn for_zero_step_errors() {
        let script = parse_script("for i=1,10,0 do end").unwrap();
        assert!(matches!(
            Interpreter::new().run(&script),
            Err(PolicyError::Runtime { .. })
        ));
    }

    #[test]
    fn tables() {
        let interp = run_script(
            "t = {10, 20, 30}\nt[4] = 40\nt[\"name\"] = \"frag\"\nn = #t\nv = t[2]\ns = t.name",
        );
        assert_eq!(interp.get_global("n").as_number(0).unwrap(), 4.0);
        assert_eq!(interp.get_global("v").as_number(0).unwrap(), 20.0);
        assert_eq!(interp.get_global("s").display_string(), "frag");
    }

    #[test]
    fn nested_tables() {
        let interp = run_script("m = {a = {1, 2}, b = {x = 9}}\nv = m.a[2] + m.b.x");
        assert_eq!(interp.get_global("v").as_number(0).unwrap(), 11.0);
    }

    #[test]
    fn indexing_nil_errors_helpfully() {
        let script = parse_script("x = nothere[\"load\"]").unwrap();
        let err = Interpreter::new().run(&script).unwrap_err();
        assert!(err.to_string().contains("index a nil value"), "{err}");
    }

    #[test]
    fn calling_nil_errors_helpfully() {
        let script = parse_script("x = RDstate()").unwrap();
        let err = Interpreter::new().run(&script).unwrap_err();
        assert!(err.to_string().contains("call a nil value"), "{err}");
    }

    #[test]
    fn native_functions() {
        let script = parse_script("m = double(21)").unwrap();
        let mut interp = Interpreter::new();
        interp.set_global(
            "double",
            Value::Native(
                "double",
                Rc::new(|_, args| Ok(Value::Number(args[0].as_number(0)? * 2.0))),
            ),
        );
        interp.run(&script).unwrap();
        assert_eq!(interp.get_global("m").as_number(0).unwrap(), 42.0);
    }

    #[test]
    fn return_value() {
        let script = parse_script("if 3 > 2 then return 7 end return 8").unwrap();
        let v = Interpreter::new().run(&script).unwrap();
        assert_eq!(v.as_number(0).unwrap(), 7.0);
    }

    #[test]
    fn budget_stops_infinite_loop() {
        let script = parse_script("while 1 do end").unwrap();
        let mut interp = Interpreter::new().with_budget(StepBudget(10_000));
        assert!(matches!(
            interp.run(&script),
            Err(PolicyError::BudgetExhausted { budget: 10_000 })
        ));
    }

    #[test]
    fn budget_resets_between_runs() {
        let script = parse_script("x = 1").unwrap();
        let mut interp = Interpreter::new().with_budget(StepBudget(50));
        for _ in 0..100 {
            interp.run(&script).unwrap();
        }
    }

    #[test]
    fn length_operator() {
        assert_eq!(eval_num("#\"hello\""), 5.0);
        let interp = run_script("t = {1,2,3} n = #t");
        assert_eq!(interp.get_global("n").as_number(0).unwrap(), 3.0);
    }

    #[test]
    fn comparing_mixed_types_errors() {
        let script = parse_script("x = 1 < \"2\"").unwrap();
        assert!(Interpreter::new().run(&script).is_err());
    }

    #[test]
    fn listing_4_semantics() {
        // The Adaptable Balancer (Listing 4), with the environment stubbed
        // in directly as globals.
        let src = r#"
mymax = 0
for i=1,#MDSs do
  if MDSs[i]["load"] > mymax then mymax = MDSs[i]["load"] end
end
myLoad = MDSs[whoami]["load"]
if myLoad>total/2 and myLoad>=mymax then
  targetLoad=total/#MDSs
  for i=1,#MDSs do
    if MDSs[i]["load"]<targetLoad then
      targets[i]=targetLoad-MDSs[i]["load"]
    end
  end
end
"#;
        let script = parse_script(src).unwrap();
        let mut interp = Interpreter::new();
        let mk = |load: f64| Value::table(Table::from_fields([("load", Value::Number(load))]));
        let mdss = Table::from_array([mk(90.0), mk(5.0), mk(5.0)]);
        interp.set_global("MDSs", Value::table(mdss));
        interp.set_global("whoami", Value::Number(1.0));
        interp.set_global("total", Value::Number(100.0));
        let targets = Table::new();
        interp.set_global("targets", Value::table(targets));
        interp.run(&script).unwrap();
        let Value::Table(t) = interp.get_global("targets") else {
            panic!()
        };
        let t = t.borrow();
        // targetLoad = 33.33; MDS2 and MDS3 get 28.33 each; MDS1 none.
        assert!(matches!(t.get_int(1), Value::Nil));
        let t2 = t.get_int(2).as_number(0).unwrap();
        assert!((t2 - (100.0 / 3.0 - 5.0)).abs() < 1e-9);
    }
}
