//! Built-in functions available to every policy: `max`, `min` (Table 2),
//! plus a small `math` table (`math.max`, `math.min`, `math.abs`,
//! `math.floor`, `math.ceil`, `math.sqrt`, `math.huge`) and `tonumber` /
//! `tostring`. Everything is pure: policies stay sandboxed and
//! deterministic.

use std::rc::Rc;

use crate::error::{PolicyError, PolicyResult};
use crate::interp::Interpreter;
use crate::value::{Table, Value};

fn numeric_fold(
    name: &'static str,
    args: &[Value],
    f: impl Fn(f64, f64) -> f64,
) -> PolicyResult<Value> {
    if args.is_empty() {
        return Err(PolicyError::runtime(
            0,
            format!("{name} expects at least one argument"),
        ));
    }
    let mut acc = args[0].as_number(0)?;
    for a in &args[1..] {
        acc = f(acc, a.as_number(0)?);
    }
    Ok(Value::Number(acc))
}

fn unary(name: &'static str, args: &[Value], f: impl Fn(f64) -> f64) -> PolicyResult<Value> {
    if args.len() != 1 {
        return Err(PolicyError::runtime(
            0,
            format!("{name} expects exactly one argument"),
        ));
    }
    Ok(Value::Number(f(args[0].as_number(0)?)))
}

/// Install the standard library into an interpreter's globals.
pub fn install(interp: &mut Interpreter) {
    interp.set_global(
        "max",
        Value::Native("max", Rc::new(|_, a| numeric_fold("max", a, f64::max))),
    );
    interp.set_global(
        "min",
        Value::Native("min", Rc::new(|_, a| numeric_fold("min", a, f64::min))),
    );
    interp.set_global(
        "tonumber",
        Value::Native(
            "tonumber",
            Rc::new(|_, a| match a.first() {
                Some(v) => Ok(v.as_number(0).map(Value::Number).unwrap_or(Value::Nil)),
                None => Ok(Value::Nil),
            }),
        ),
    );
    interp.set_global(
        "tostring",
        Value::Native(
            "tostring",
            Rc::new(|_, a| {
                Ok(Value::str(
                    a.first().map(|v| v.display_string()).unwrap_or_default(),
                ))
            }),
        ),
    );

    let mut math = Table::new();
    math.set_str(
        "max",
        Value::Native(
            "math.max",
            Rc::new(|_, a| numeric_fold("math.max", a, f64::max)),
        ),
    );
    math.set_str(
        "min",
        Value::Native(
            "math.min",
            Rc::new(|_, a| numeric_fold("math.min", a, f64::min)),
        ),
    );
    math.set_str(
        "abs",
        Value::Native("math.abs", Rc::new(|_, a| unary("math.abs", a, f64::abs))),
    );
    math.set_str(
        "floor",
        Value::Native(
            "math.floor",
            Rc::new(|_, a| unary("math.floor", a, f64::floor)),
        ),
    );
    math.set_str(
        "ceil",
        Value::Native(
            "math.ceil",
            Rc::new(|_, a| unary("math.ceil", a, f64::ceil)),
        ),
    );
    math.set_str(
        "sqrt",
        Value::Native(
            "math.sqrt",
            Rc::new(|_, a| unary("math.sqrt", a, f64::sqrt)),
        ),
    );
    math.set_str("huge", Value::Number(f64::INFINITY));
    interp.set_global("math", Value::table(math));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;

    fn run(src: &str) -> Interpreter {
        let script = parse_script(src).unwrap();
        let mut interp = Interpreter::new();
        install(&mut interp);
        interp.run(&script).unwrap();
        interp
    }

    #[test]
    fn max_min() {
        let i = run("a = max(1, 5, 3) b = min(2, -1)");
        assert_eq!(i.get_global("a").as_number(0).unwrap(), 5.0);
        assert_eq!(i.get_global("b").as_number(0).unwrap(), -1.0);
    }

    #[test]
    fn math_table() {
        let i = run("a = math.floor(2.7) b = math.ceil(2.1) c = math.abs(-3) d = math.sqrt(16)");
        assert_eq!(i.get_global("a").as_number(0).unwrap(), 2.0);
        assert_eq!(i.get_global("b").as_number(0).unwrap(), 3.0);
        assert_eq!(i.get_global("c").as_number(0).unwrap(), 3.0);
        assert_eq!(i.get_global("d").as_number(0).unwrap(), 4.0);
    }

    #[test]
    fn math_huge() {
        let i = run("h = math.huge x = min(h, 5)");
        assert_eq!(i.get_global("x").as_number(0).unwrap(), 5.0);
    }

    #[test]
    fn tostring_tonumber() {
        let i = run("s = tostring(42) n = tonumber(\"2.5\") bad = tonumber(\"zz\")");
        assert_eq!(i.get_global("s").display_string(), "42");
        assert_eq!(i.get_global("n").as_number(0).unwrap(), 2.5);
        assert!(matches!(i.get_global("bad"), Value::Nil));
    }

    #[test]
    fn max_with_no_args_errors() {
        let script = parse_script("x = max()").unwrap();
        let mut interp = Interpreter::new();
        install(&mut interp);
        assert!(interp.run(&script).is_err());
    }
}
