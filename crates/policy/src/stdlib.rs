//! Built-in functions available to every policy: `max`, `min` (Table 2),
//! plus a small `math` table (`math.max`, `math.min`, `math.abs`,
//! `math.floor`, `math.ceil`, `math.sqrt`, `math.huge`) and `tonumber` /
//! `tostring`. Everything is pure: policies stay sandboxed and
//! deterministic.

use std::rc::Rc;

use crate::error::{PolicyError, PolicyResult};
use crate::interp::Interpreter;
use crate::value::{Table, Value};

/// Fold for `max`/`min`. NaN arguments raise a runtime error rather than
/// being silently dropped: `f64::max`/`f64::min` return the *other* operand
/// when one side is NaN, so a policy that computed `0/0` would get a
/// confident-looking load out of `max(...)` and the CephFS fallback (which
/// triggers on policy *errors*) would never engage. Erroring matches the
/// strictness of `as_number` elsewhere in the language — garbage in the
/// load calculation is a policy bug, not a value.
fn numeric_fold(
    name: &'static str,
    args: &[Value],
    f: impl Fn(f64, f64) -> f64,
) -> PolicyResult<Value> {
    if args.is_empty() {
        return Err(PolicyError::runtime(
            0,
            format!("{name} expects at least one argument"),
        ));
    }
    let nan_check = |v: f64| {
        if v.is_nan() {
            Err(PolicyError::runtime(
                0,
                format!("{name} got a NaN argument"),
            ))
        } else {
            Ok(v)
        }
    };
    let mut acc = nan_check(args[0].as_number(0)?)?;
    for a in &args[1..] {
        acc = f(acc, nan_check(a.as_number(0)?)?);
    }
    Ok(Value::Number(acc))
}

fn unary(name: &'static str, args: &[Value], f: impl Fn(f64) -> f64) -> PolicyResult<Value> {
    if args.len() != 1 {
        return Err(PolicyError::runtime(
            0,
            format!("{name} expects exactly one argument"),
        ));
    }
    Ok(Value::Number(f(args[0].as_number(0)?)))
}

/// Install the standard library into an interpreter's globals.
pub fn install(interp: &mut Interpreter) {
    interp.set_global(
        "max",
        Value::Native("max", Rc::new(|_, a| numeric_fold("max", a, f64::max))),
    );
    interp.set_global(
        "min",
        Value::Native("min", Rc::new(|_, a| numeric_fold("min", a, f64::min))),
    );
    interp.set_global(
        "tonumber",
        Value::Native(
            "tonumber",
            Rc::new(|_, a| match a.first() {
                Some(v) => Ok(v.as_number(0).map(Value::Number).unwrap_or(Value::Nil)),
                None => Ok(Value::Nil),
            }),
        ),
    );
    interp.set_global(
        "tostring",
        Value::Native(
            "tostring",
            Rc::new(|_, a| {
                Ok(Value::str(
                    a.first().map(|v| v.display_string()).unwrap_or_default(),
                ))
            }),
        ),
    );

    let mut math = Table::new();
    math.set_str(
        "max",
        Value::Native(
            "math.max",
            Rc::new(|_, a| numeric_fold("math.max", a, f64::max)),
        ),
    );
    math.set_str(
        "min",
        Value::Native(
            "math.min",
            Rc::new(|_, a| numeric_fold("math.min", a, f64::min)),
        ),
    );
    math.set_str(
        "abs",
        Value::Native("math.abs", Rc::new(|_, a| unary("math.abs", a, f64::abs))),
    );
    math.set_str(
        "floor",
        Value::Native(
            "math.floor",
            Rc::new(|_, a| unary("math.floor", a, f64::floor)),
        ),
    );
    math.set_str(
        "ceil",
        Value::Native(
            "math.ceil",
            Rc::new(|_, a| unary("math.ceil", a, f64::ceil)),
        ),
    );
    math.set_str(
        "sqrt",
        Value::Native(
            "math.sqrt",
            Rc::new(|_, a| unary("math.sqrt", a, f64::sqrt)),
        ),
    );
    math.set_str("huge", Value::Number(f64::INFINITY));
    interp.set_global("math", Value::table(math));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;

    fn run(src: &str) -> Interpreter {
        let script = parse_script(src).unwrap();
        let mut interp = Interpreter::new();
        install(&mut interp);
        interp.run(&script).unwrap();
        interp
    }

    #[test]
    fn max_min() {
        let i = run("a = max(1, 5, 3) b = min(2, -1)");
        assert_eq!(i.get_global("a").as_number(0).unwrap(), 5.0);
        assert_eq!(i.get_global("b").as_number(0).unwrap(), -1.0);
    }

    #[test]
    fn math_table() {
        let i = run("a = math.floor(2.7) b = math.ceil(2.1) c = math.abs(-3) d = math.sqrt(16)");
        assert_eq!(i.get_global("a").as_number(0).unwrap(), 2.0);
        assert_eq!(i.get_global("b").as_number(0).unwrap(), 3.0);
        assert_eq!(i.get_global("c").as_number(0).unwrap(), 3.0);
        assert_eq!(i.get_global("d").as_number(0).unwrap(), 4.0);
    }

    #[test]
    fn math_huge() {
        let i = run("h = math.huge x = min(h, 5)");
        assert_eq!(i.get_global("x").as_number(0).unwrap(), 5.0);
    }

    #[test]
    fn tostring_tonumber() {
        let i = run("s = tostring(42) n = tonumber(\"2.5\") bad = tonumber(\"zz\")");
        assert_eq!(i.get_global("s").display_string(), "42");
        assert_eq!(i.get_global("n").as_number(0).unwrap(), 2.5);
        assert!(matches!(i.get_global("bad"), Value::Nil));
    }

    #[test]
    fn max_with_no_args_errors() {
        let script = parse_script("x = max()").unwrap();
        let mut interp = Interpreter::new();
        install(&mut interp);
        assert!(interp.run(&script).is_err());
    }

    #[test]
    fn nan_arguments_error_instead_of_vanishing() {
        // `f64::max(NaN, x)` returns `x` — with the raw fold, 0/0 inside a
        // policy would silently pick the other argument. Pinned: it errors.
        for src in [
            "x = max(0/0, 5)",
            "x = max(5, 0/0)",
            "x = min(0/0, 5)",
            "x = math.max(1, 2, 0/0)",
            "x = math.min(0/0)",
        ] {
            let script = parse_script(src).unwrap();
            let mut interp = Interpreter::new();
            install(&mut interp);
            let err = interp.run(&script).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("NaN argument"), "{src}: {msg}");
        }
        // Infinities are fine — math.huge stays usable.
        let i = run("x = max(math.huge, 5) y = min(-math.huge, 5)");
        assert_eq!(i.get_global("x").as_number(0).unwrap(), f64::INFINITY);
        assert_eq!(i.get_global("y").as_number(0).unwrap(), f64::NEG_INFINITY);
    }
}
