//! Recursive-descent parser with Lua 5.1 operator precedence.

use crate::ast::{BinOp, Block, Expr, LValue, Script, Stmt, UnOp};
use crate::error::{PolicyError, PolicyResult};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parse a full script (a block of statements).
pub fn parse_script(src: &str) -> PolicyResult<Script> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let block = p.block()?;
    p.expect(TokenKind::Eof)?;
    Ok(Script { block })
}

/// Parse source that may be either a bare expression (the common form of
/// the `metaload` / `mdsload` hooks, e.g. `IRD + 2*IWR`) or a full script.
///
/// A bare expression compiles to `return <expr>`.
pub fn parse_expression_script(src: &str) -> PolicyResult<Script> {
    // Try the expression interpretation first; a script like `x = 1` will
    // fail it and fall through to the full parser.
    if let Ok(tokens) = lex(src) {
        let mut p = Parser::new(tokens);
        if let Ok(expr) = p.expr() {
            if p.check(&TokenKind::Eof) {
                return Ok(Script {
                    block: Block {
                        stmts: vec![Stmt::Return {
                            value: Some(expr),
                            line: 1,
                        }],
                    },
                });
            }
        }
    }
    parse_script(src)
}

/// Parse the condition of a "when" hook. The paper writes these either as a
/// bare condition or in the truncated form `if <cond> then` (Table 1); both
/// are accepted, as is a full script that `return`s the decision.
pub fn parse_when(src: &str) -> PolicyResult<Script> {
    let trimmed = strip_comments(src);
    let trimmed = trimmed.trim();
    if let Some(rest) = trimmed.strip_prefix("if ") {
        if let Some(cond) = rest.trim_end().strip_suffix("then") {
            // `if <cond> then` with nothing after: treat as the condition.
            return parse_expression_script(cond);
        }
    }
    parse_expression_script(trimmed)
}

fn strip_comments(src: &str) -> String {
    src.lines()
        .map(|l| match l.find("--") {
            Some(i) => &l[..i],
            None => l,
        })
        .collect::<Vec<_>>()
        .join("\n")
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn line(&self) -> u32 {
        self.peek().line
    }

    fn check(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> PolicyResult<Token> {
        if self.check(&kind) {
            Ok(self.advance())
        } else {
            Err(PolicyError::Parse {
                line: self.line(),
                message: format!("expected {kind}, found {}", self.peek().kind),
            })
        }
    }

    fn block_ends(&self) -> bool {
        matches!(
            self.peek().kind,
            TokenKind::End
                | TokenKind::Else
                | TokenKind::Elseif
                | TokenKind::Until
                | TokenKind::Eof
        )
    }

    fn block(&mut self) -> PolicyResult<Block> {
        let mut stmts = Vec::new();
        while !self.block_ends() {
            // `return` must be the last statement of a block in Lua.
            let is_return = self.check(&TokenKind::Return);
            stmts.push(self.statement()?);
            while self.eat(&TokenKind::Semi) {}
            if is_return {
                break;
            }
        }
        Ok(Block { stmts })
    }

    fn statement(&mut self) -> PolicyResult<Stmt> {
        let line = self.line();
        match &self.peek().kind {
            TokenKind::Local => {
                self.advance();
                let name = self.name()?;
                let value = if self.eat(&TokenKind::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                Ok(Stmt::Local { name, value, line })
            }
            TokenKind::If => self.if_statement(),
            TokenKind::While => {
                self.advance();
                let cond = self.expr()?;
                self.expect(TokenKind::Do)?;
                let body = self.block()?;
                self.expect(TokenKind::End)?;
                Ok(Stmt::While { cond, body, line })
            }
            TokenKind::For => self.for_statement(),
            TokenKind::Do => {
                self.advance();
                let body = self.block()?;
                self.expect(TokenKind::End)?;
                Ok(Stmt::Do { body })
            }
            TokenKind::Return => {
                self.advance();
                let value = if self.block_ends() || self.check(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                Ok(Stmt::Return { value, line })
            }
            TokenKind::Break => {
                self.advance();
                Ok(Stmt::Break { line })
            }
            TokenKind::Function => Err(PolicyError::Unsupported {
                line,
                feature: "function definitions (policies are single scripts; use the host \
                          functions from the Mantle environment)"
                    .into(),
            }),
            TokenKind::Repeat => Err(PolicyError::Unsupported {
                line,
                feature: "repeat/until loops (use while)".into(),
            }),
            _ => self.assignment_or_call(),
        }
    }

    fn if_statement(&mut self) -> PolicyResult<Stmt> {
        let line = self.line();
        self.expect(TokenKind::If)?;
        let mut arms = Vec::new();
        let cond = self.expr()?;
        self.expect(TokenKind::Then)?;
        let body = self.block()?;
        arms.push((cond, body));
        let mut else_block = None;
        loop {
            match self.peek().kind {
                TokenKind::Elseif => {
                    self.advance();
                    let c = self.expr()?;
                    self.expect(TokenKind::Then)?;
                    let b = self.block()?;
                    arms.push((c, b));
                }
                TokenKind::Else => {
                    self.advance();
                    else_block = Some(self.block()?);
                    self.expect(TokenKind::End)?;
                    break;
                }
                TokenKind::End => {
                    self.advance();
                    break;
                }
                _ => {
                    return Err(PolicyError::Parse {
                        line: self.line(),
                        message: format!(
                            "expected 'elseif', 'else' or 'end', found {}",
                            self.peek().kind
                        ),
                    });
                }
            }
        }
        Ok(Stmt::If {
            arms,
            else_block,
            line,
        })
    }

    fn for_statement(&mut self) -> PolicyResult<Stmt> {
        let line = self.line();
        self.expect(TokenKind::For)?;
        let var = self.name()?;
        if self.check(&TokenKind::In) || self.check(&TokenKind::Comma) {
            return Err(PolicyError::Unsupported {
                line,
                feature: "generic for-in loops (use numeric for over 1..#MDSs)".into(),
            });
        }
        self.expect(TokenKind::Assign)?;
        let start = self.expr()?;
        self.expect(TokenKind::Comma)?;
        let stop = self.expr()?;
        let step = if self.eat(&TokenKind::Comma) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(TokenKind::Do)?;
        let body = self.block()?;
        self.expect(TokenKind::End)?;
        Ok(Stmt::NumericFor {
            var,
            start,
            stop,
            step,
            body,
            line,
        })
    }

    fn assignment_or_call(&mut self) -> PolicyResult<Stmt> {
        let line = self.line();
        let expr = self.prefix_expr()?;
        if self.eat(&TokenKind::Assign) {
            let target = match expr {
                Expr::Name(name, _) => LValue::Name(name),
                Expr::Index { object, key, .. } => LValue::Index {
                    object: *object,
                    key: *key,
                },
                _ => {
                    return Err(PolicyError::Parse {
                        line,
                        message: "invalid assignment target".into(),
                    });
                }
            };
            let value = self.expr()?;
            Ok(Stmt::Assign {
                target,
                value,
                line,
            })
        } else {
            if !matches!(expr, Expr::Call { .. }) {
                return Err(PolicyError::Parse {
                    line,
                    message: "expected statement (only calls can stand alone)".into(),
                });
            }
            Ok(Stmt::ExprStmt { expr, line })
        }
    }

    fn name(&mut self) -> PolicyResult<String> {
        match self.peek().kind.clone() {
            TokenKind::Name(n) => {
                self.advance();
                Ok(n)
            }
            other => Err(PolicyError::Parse {
                line: self.line(),
                message: format!("expected a name, found {other}"),
            }),
        }
    }

    // ---- expressions (precedence climbing, Lua 5.1 table) ----

    fn expr(&mut self) -> PolicyResult<Expr> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> PolicyResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, lprec, rprec) = match self.peek().kind {
                TokenKind::Or => (BinOp::Or, 1, 2),
                TokenKind::And => (BinOp::And, 3, 4),
                TokenKind::Lt => (BinOp::Lt, 5, 6),
                TokenKind::Gt => (BinOp::Gt, 5, 6),
                TokenKind::Le => (BinOp::Le, 5, 6),
                TokenKind::Ge => (BinOp::Ge, 5, 6),
                TokenKind::NotEq => (BinOp::Ne, 5, 6),
                TokenKind::EqEq => (BinOp::Eq, 5, 6),
                // `..` is right-associative.
                TokenKind::Concat => (BinOp::Concat, 9, 8),
                TokenKind::Plus => (BinOp::Add, 10, 11),
                TokenKind::Minus => (BinOp::Sub, 10, 11),
                TokenKind::Star => (BinOp::Mul, 12, 13),
                TokenKind::Slash => (BinOp::Div, 12, 13),
                TokenKind::Percent => (BinOp::Mod, 12, 13),
                _ => break,
            };
            if lprec < min_prec {
                break;
            }
            let line = self.line();
            self.advance();
            let rhs = self.binary_expr(rprec)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> PolicyResult<Expr> {
        let line = self.line();
        let op = match self.peek().kind {
            TokenKind::Not => Some(UnOp::Not),
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Hash => Some(UnOp::Len),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            // Unary binds tighter than binary ops except `^`.
            let operand = self.unary_expr()?;
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
                line,
            });
        }
        self.pow_expr()
    }

    fn pow_expr(&mut self) -> PolicyResult<Expr> {
        let base = self.postfix_expr()?;
        if self.check(&TokenKind::Caret) {
            let line = self.line();
            self.advance();
            // Right-associative and tighter than unary on the right:
            // `a ^ -b ^ c` parses as `a ^ (-(b ^ c))`.
            let exp = self.unary_expr()?;
            return Ok(Expr::Binary {
                op: BinOp::Pow,
                lhs: Box::new(base),
                rhs: Box::new(exp),
                line,
            });
        }
        Ok(base)
    }

    fn postfix_expr(&mut self) -> PolicyResult<Expr> {
        let mut expr = self.primary_expr()?;
        loop {
            match self.peek().kind {
                TokenKind::Dot => {
                    let line = self.line();
                    self.advance();
                    let key = self.name()?;
                    expr = Expr::Index {
                        object: Box::new(expr),
                        key: Box::new(Expr::Str(key)),
                        line,
                    };
                }
                TokenKind::LBracket => {
                    let line = self.line();
                    self.advance();
                    let key = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    expr = Expr::Index {
                        object: Box::new(expr),
                        key: Box::new(key),
                        line,
                    };
                }
                TokenKind::LParen => {
                    let line = self.line();
                    self.advance();
                    let mut args = Vec::new();
                    if !self.check(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    expr = Expr::Call {
                        callee: Box::new(expr),
                        args,
                        line,
                    };
                }
                TokenKind::Colon => {
                    return Err(PolicyError::Unsupported {
                        line: self.line(),
                        feature: "method calls (t:f())".into(),
                    });
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    /// A prefix expression: name or parenthesized expression followed by
    /// postfix operators. Used for statement heads (assignment targets and
    /// call statements).
    fn prefix_expr(&mut self) -> PolicyResult<Expr> {
        match self.peek().kind {
            TokenKind::Name(_) | TokenKind::LParen => self.postfix_expr(),
            _ => Err(PolicyError::Parse {
                line: self.line(),
                message: format!("expected statement, found {}", self.peek().kind),
            }),
        }
    }

    fn primary_expr(&mut self) -> PolicyResult<Expr> {
        let line = self.line();
        match self.peek().kind.clone() {
            TokenKind::Nil => {
                self.advance();
                Ok(Expr::Nil)
            }
            TokenKind::True => {
                self.advance();
                Ok(Expr::Bool(true))
            }
            TokenKind::False => {
                self.advance();
                Ok(Expr::Bool(false))
            }
            TokenKind::Number(n) => {
                self.advance();
                Ok(Expr::Number(n))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            TokenKind::Name(n) => {
                self.advance();
                Ok(Expr::Name(n, line))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBrace => self.table_ctor(),
            TokenKind::Function => Err(PolicyError::Unsupported {
                line,
                feature: "function expressions".into(),
            }),
            other => Err(PolicyError::Parse {
                line,
                message: format!("expected an expression, found {other}"),
            }),
        }
    }

    fn table_ctor(&mut self) -> PolicyResult<Expr> {
        let line = self.line();
        self.expect(TokenKind::LBrace)?;
        let mut items = Vec::new();
        let mut pairs = Vec::new();
        while !self.check(&TokenKind::RBrace) {
            match self.peek().kind.clone() {
                TokenKind::LBracket => {
                    self.advance();
                    let key = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    self.expect(TokenKind::Assign)?;
                    let value = self.expr()?;
                    pairs.push((key, value));
                }
                TokenKind::Name(n)
                    if self.tokens.get(self.pos + 1).map(|t| &t.kind)
                        == Some(&TokenKind::Assign) =>
                {
                    self.advance();
                    self.advance();
                    let value = self.expr()?;
                    pairs.push((Expr::Str(n), value));
                }
                _ => items.push(self.expr()?),
            }
            if !(self.eat(&TokenKind::Comma) || self.eat(&TokenKind::Semi)) {
                break;
            }
        }
        self.expect(TokenKind::RBrace)?;
        Ok(Expr::TableCtor { items, pairs, line })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_assignment() {
        let s = parse_script("metaload = IWR").unwrap();
        assert_eq!(s.block.stmts.len(), 1);
        assert!(matches!(
            &s.block.stmts[0],
            Stmt::Assign {
                target: LValue::Name(n),
                ..
            } if n == "metaload"
        ));
    }

    #[test]
    fn parses_indexed_assignment() {
        let s = parse_script("targets[whoami+1]=allmetaload/2").unwrap();
        assert!(matches!(
            &s.block.stmts[0],
            Stmt::Assign {
                target: LValue::Index { .. },
                ..
            }
        ));
    }

    #[test]
    fn precedence_mul_over_add() {
        let s = parse_expression_script("1 + 2 * 3").unwrap();
        let Stmt::Return {
            value: Some(Expr::Binary { op, rhs, .. }),
            ..
        } = &s.block.stmts[0]
        else {
            panic!("expected return of binary expr");
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let s = parse_expression_script("a or b and c").unwrap();
        let Stmt::Return {
            value: Some(Expr::Binary { op, .. }),
            ..
        } = &s.block.stmts[0]
        else {
            panic!()
        };
        assert_eq!(*op, BinOp::Or);
    }

    #[test]
    fn comparison_chain_from_listing_1() {
        let src = r#"MDSs[whoami]["load"]>.01 and MDSs[whoami+1]["load"]<.01"#;
        assert!(parse_expression_script(src).is_ok());
    }

    #[test]
    fn parses_if_elseif_else() {
        let src = "if a then x=1 elseif b then x=2 else x=3 end";
        let s = parse_script(src).unwrap();
        let Stmt::If {
            arms, else_block, ..
        } = &s.block.stmts[0]
        else {
            panic!()
        };
        assert_eq!(arms.len(), 2);
        assert!(else_block.is_some());
    }

    #[test]
    fn parses_while_with_complex_cond() {
        let src = r#"while t~=whoami and MDSs[t]["load"]<.01 do t=t-1 end"#;
        assert!(parse_script(src).is_ok());
    }

    #[test]
    fn parses_numeric_for() {
        let src = "for i=1,#MDSs do targets[i]=0 end";
        let s = parse_script(src).unwrap();
        assert!(matches!(
            &s.block.stmts[0],
            Stmt::NumericFor { step: None, .. }
        ));
        let src2 = "for i=10,1,-1 do x=i end";
        let s2 = parse_script(src2).unwrap();
        assert!(matches!(
            &s2.block.stmts[0],
            Stmt::NumericFor { step: Some(_), .. }
        ));
    }

    #[test]
    fn generic_for_is_unsupported() {
        assert!(matches!(
            parse_script("for k,v in pairs(t) do end"),
            Err(PolicyError::Unsupported { .. })
        ));
    }

    #[test]
    fn function_defs_are_unsupported() {
        assert!(matches!(
            parse_script("function f() end"),
            Err(PolicyError::Unsupported { .. })
        ));
    }

    #[test]
    fn table_constructors() {
        let s = parse_expression_script(r#"{"half","small","big","big_small"}"#).unwrap();
        let Stmt::Return {
            value: Some(Expr::TableCtor { items, pairs, .. }),
            ..
        } = &s.block.stmts[0]
        else {
            panic!()
        };
        assert_eq!(items.len(), 4);
        assert!(pairs.is_empty());
        let s2 = parse_expression_script(r#"{a=1, ["b"]=2, 3}"#).unwrap();
        let Stmt::Return {
            value: Some(Expr::TableCtor { items, pairs, .. }),
            ..
        } = &s2.block.stmts[0]
        else {
            panic!()
        };
        assert_eq!(items.len(), 1);
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn call_statement() {
        let s = parse_script("WRstate(2)").unwrap();
        assert!(matches!(&s.block.stmts[0], Stmt::ExprStmt { .. }));
    }

    #[test]
    fn bare_expression_is_not_a_statement() {
        assert!(matches!(
            parse_script("1 + 2"),
            Err(PolicyError::Parse { .. })
        ));
    }

    #[test]
    fn return_statement() {
        let s = parse_script("return MDSs[whoami][\"load\"] > 5").unwrap();
        assert!(matches!(
            &s.block.stmts[0],
            Stmt::Return { value: Some(_), .. }
        ));
        let s2 = parse_script("if a then return end").unwrap();
        assert_eq!(s2.block.stmts.len(), 1);
    }

    #[test]
    fn when_hook_forms() {
        // Table 1 truncated form.
        assert!(parse_when("if MDSs[whoami][\"load\"] > total/#MDSs then").is_ok());
        // Bare condition.
        assert!(parse_when("MDSs[whoami][\"cpu\"] > 48").is_ok());
        // Full script.
        assert!(parse_when("wait=RDstate() return wait > 0").is_ok());
    }

    #[test]
    fn concat_right_associative() {
        let s = parse_expression_script("\"a\" .. \"b\" .. \"c\"").unwrap();
        let Stmt::Return {
            value: Some(Expr::Binary { rhs, .. }),
            ..
        } = &s.block.stmts[0]
        else {
            panic!()
        };
        assert!(matches!(
            **rhs,
            Expr::Binary {
                op: BinOp::Concat,
                ..
            }
        ));
    }

    #[test]
    fn pow_tighter_than_neg() {
        // -x^2 must parse as -(x^2).
        let s = parse_expression_script("-x^2").unwrap();
        let Stmt::Return {
            value: Some(Expr::Unary { op, operand, .. }),
            ..
        } = &s.block.stmts[0]
        else {
            panic!()
        };
        assert_eq!(*op, UnOp::Neg);
        assert!(matches!(**operand, Expr::Binary { op: BinOp::Pow, .. }));
    }

    #[test]
    fn listing_2_parses_fully() {
        let src = r#"
-- When policy
t=((#MDSs-whoami+1)/2)+whoami
if t>#MDSs then t=whoami end
while t~=whoami and MDSs[t]["load"]<.01 do t=t-1 end
if MDSs[whoami]["load"]>.01 and MDSs[t]["load"]<.01 then
  -- Where policy
  targets[t]=MDSs[whoami]["load"]/2
end
"#;
        assert!(parse_script(src).is_ok());
    }

    #[test]
    fn listing_4_parses_fully() {
        let src = r#"
max=0
for i=1,#MDSs do
  max = math_max(MDSs[i]["load"], max)
end
myLoad = MDSs[whoami]["load"]
if myLoad>total/2 and myLoad>=max then
  targetLoad=total/#MDSs
  for i=1,#MDSs do
    if MDSs[i]["load"]<targetLoad then
      targets[i]=targetLoad-MDSs[i]["load"]
    end
  end
end
"#;
        assert!(parse_script(src).is_ok());
    }

    #[test]
    fn dot_indexing() {
        let s = parse_script("x = mds.load").unwrap();
        let Stmt::Assign { value, .. } = &s.block.stmts[0] else {
            panic!()
        };
        assert!(matches!(value, Expr::Index { .. }));
    }

    #[test]
    fn error_reports_line() {
        let err = parse_script("x = 1\ny = = 2").unwrap_err();
        assert_eq!(err.line(), Some(2));
    }
}
