//! Abstract syntax tree for the policy language.

/// A compiled script: a block of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// Top-level statements.
    pub block: Block,
}

/// A sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lhs = expr` — assignment to a name or index chain.
    Assign {
        /// Assignment target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `local name = expr` (initializer optional).
    Local {
        /// Variable name.
        name: String,
        /// Optional initializer.
        value: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `if c then ... elseif c2 then ... else ... end`
    If {
        /// `(condition, block)` pairs: the `if` arm plus any `elseif` arms.
        arms: Vec<(Expr, Block)>,
        /// The `else` block, if present.
        else_block: Option<Block>,
        /// Source line.
        line: u32,
    },
    /// `while c do ... end`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source line.
        line: u32,
    },
    /// Numeric `for name = start, stop [, step] do ... end`
    NumericFor {
        /// Loop variable (fresh local per Lua semantics).
        var: String,
        /// Start expression.
        start: Expr,
        /// Stop expression (inclusive).
        stop: Expr,
        /// Optional step expression (default 1).
        step: Option<Expr>,
        /// Loop body.
        body: Block,
        /// Source line.
        line: u32,
    },
    /// A call evaluated for its side effects.
    ExprStmt {
        /// The call (or other expression; non-call expression statements are
        /// accepted in "expression script" mode).
        expr: Expr,
        /// Source line.
        line: u32,
    },
    /// `do ... end`
    Do {
        /// Inner block.
        body: Block,
    },
    /// `return [expr]`
    Return {
        /// Optional return value.
        value: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `break`
    Break {
        /// Source line.
        line: u32,
    },
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A plain name (`x = ...`): local if declared, else global.
    Name(String),
    /// An indexed location (`t[k] = ...` / `t.k = ...`).
    Index {
        /// The table expression.
        object: Expr,
        /// The key expression.
        key: Expr,
    },
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `nil`
    Nil,
    /// `true` / `false`
    Bool(bool),
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Str(String),
    /// Variable reference.
    Name(String, u32),
    /// `object[key]` or `object.key`.
    Index {
        /// Table expression.
        object: Box<Expr>,
        /// Key expression.
        key: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Function call.
    Call {
        /// Callee expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Table constructor: positional items and keyed items.
    TableCtor {
        /// Array-part entries (`{a, b, c}`), appended at indices 1..
        items: Vec<Expr>,
        /// Hash-part entries (`{k = v}` / `{["k"] = v}`).
        pairs: Vec<(Expr, Expr)>,
        /// Source line.
        line: u32,
    },
}

impl Expr {
    /// The source line the expression starts on (0 for literals, which never
    /// fail at runtime).
    pub fn line(&self) -> u32 {
        match self {
            Expr::Name(_, line)
            | Expr::Index { line, .. }
            | Expr::Call { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::TableCtor { line, .. } => *line,
            _ => 0,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical `not`.
    Not,
    /// Length `#`.
    Len,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `^`
    Pow,
    /// `..`
    Concat,
    /// `==`
    Eq,
    /// `~=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` (short-circuit)
    And,
    /// `or` (short-circuit)
    Or,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_line_accessor() {
        assert_eq!(Expr::Nil.line(), 0);
        assert_eq!(Expr::Name("x".into(), 7).line(), 7);
        let call = Expr::Call {
            callee: Box::new(Expr::Name("f".into(), 3)),
            args: vec![],
            line: 3,
        };
        assert_eq!(call.line(), 3);
    }
}
