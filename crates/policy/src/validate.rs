//! Policy validation — the §4.4 "simulator that checks the logic before
//! injecting policies in the running cluster".
//!
//! Validation has two stages:
//!
//! 1. **static**: the script must compile, and may only reference globals
//!    from the Mantle environment (Table 2) — a typo like `MDSS` is caught
//!    here rather than producing `nil` at 2 a.m. on a production MDS;
//! 2. **dynamic**: every hook is dry-run under a small step budget against
//!    a family of synthetic clusters (idle, hot-self, hot-other, single
//!    MDS) and must complete without runtime errors on all of them.

use std::collections::HashSet;

use crate::ast::{Block, Expr, LValue, Script, Stmt};
use crate::env::{BalancerInputs, FragMetrics, MantleRuntime, MdsMetrics, PolicySet};
use crate::error::{PolicyError, PolicyResult};
use crate::interp::StepBudget;

/// Globals every policy may reference (Table 2 plus the stdlib).
const KNOWN_GLOBALS: &[&str] = &[
    "whoami",
    // The MDS index the runtime sets while evaluating `mdsload`.
    "i",
    "authmetaload",
    "allmetaload",
    "IRD",
    "IWR",
    "READDIR",
    "FETCH",
    "STORE",
    "MDSs",
    "total",
    "targets",
    // The `howmany` auto-scaling environment.
    "active",
    "min_mds",
    "max_mds",
    "WRstate",
    "RDstate",
    "max",
    "min",
    "math",
    "tonumber",
    "tostring",
];

/// Validates policy sets before they are injected.
#[derive(Debug, Clone)]
pub struct PolicyValidator {
    budget: StepBudget,
}

impl Default for PolicyValidator {
    fn default() -> Self {
        PolicyValidator {
            // Dry runs get a tighter budget than production: a validator
            // tick must be quick.
            budget: StepBudget(200_000),
        }
    }
}

impl PolicyValidator {
    /// Validator with the default dry-run budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the dry-run step budget.
    pub fn with_budget(mut self, budget: StepBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Validate a policy set; `Ok(())` means safe to inject.
    pub fn validate(&self, policy: &PolicySet) -> PolicyResult<()> {
        self.check_globals(policy)?;
        self.dry_run(policy)
    }

    fn check_globals(&self, policy: &PolicySet) -> PolicyResult<()> {
        let mut scripts: Vec<&Script> = vec![&policy.metaload, &policy.mdsload];
        match &policy.decision {
            crate::env::Decision::Hooks { when, where_ } => {
                scripts.push(when);
                scripts.push(where_);
            }
            crate::env::Decision::Combined(s) => scripts.push(s),
        }
        if let Some(h) = &policy.howmany {
            scripts.push(h);
        }
        for script in scripts {
            let unknown = unknown_globals(script);
            if let Some(name) = unknown.into_iter().next() {
                return Err(PolicyError::Rejected {
                    reason: format!(
                        "script reads global '{name}' which is not part of the Mantle \
                         environment (Table 2) and is never assigned"
                    ),
                });
            }
        }
        Ok(())
    }

    fn dry_run(&self, policy: &PolicySet) -> PolicyResult<()> {
        let scenarios = synthetic_clusters();
        for (label, inputs) in &scenarios {
            let rt = MantleRuntime::new(policy.clone()).with_budget(self.budget);
            rt.eval_metaload(
                inputs.whoami,
                &FragMetrics {
                    ird: 3.0,
                    iwr: 7.0,
                    readdir: 1.0,
                    fetch: 0.5,
                    store: 0.25,
                },
            )
            .map_err(|e| reject(label, "metaload", e))?;
            // Run the decision twice so WRstate/RDstate interplay is
            // exercised (first tick cold, second tick warm).
            rt.decide(inputs)
                .map_err(|e| reject(label, "decision", e))?;
            rt.decide(inputs)
                .map_err(|e| reject(label, "decision", e))?;
            // Same warm/cold discipline for the auto-scaling hook, across
            // the full membership range it can be asked about.
            let n = inputs.mds.len();
            rt.eval_howmany(inputs, n, 1, n)
                .map_err(|e| reject(label, "howmany", e))?;
            rt.eval_howmany(inputs, 1, 1, n)
                .map_err(|e| reject(label, "howmany", e))?;
        }
        Ok(())
    }
}

fn reject(scenario: &str, hook: &str, err: PolicyError) -> PolicyError {
    PolicyError::Rejected {
        reason: format!("dry run '{scenario}' failed in {hook}: {err}"),
    }
}

/// The synthetic clusters every policy must survive.
fn synthetic_clusters() -> Vec<(&'static str, BalancerInputs)> {
    let mk = |loads: &[f64], cpus: &[f64], whoami: usize| {
        let mds = loads
            .iter()
            .zip(cpus)
            .map(|(&l, &c)| MdsMetrics {
                auth: l,
                all: l * 1.2,
                cpu: c,
                mem: 20.0,
                q: (l / 10.0).floor(),
                req: l * 5.0,
                cache_hits: l * 2.0,
                cache_misses: l,
            })
            .collect();
        BalancerInputs {
            whoami,
            mds,
            auth_metaload: loads[whoami],
            all_metaload: loads[whoami] * 1.2,
        }
    };
    vec![
        ("single-mds", mk(&[40.0], &[50.0], 0)),
        ("idle-cluster", mk(&[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0], 0)),
        ("hot-self", mk(&[95.0, 2.0, 3.0], &[92.0, 5.0, 5.0], 0)),
        ("hot-other", mk(&[2.0, 95.0, 3.0], &[5.0, 92.0, 5.0], 0)),
        ("last-mds", mk(&[10.0, 10.0, 80.0], &[20.0, 20.0, 85.0], 2)),
        ("even-cluster", mk(&[25.0, 25.0, 25.0, 25.0], &[50.0; 4], 1)),
    ]
}

/// Collect globals a script reads before ever assigning them, excluding the
/// known environment.
fn unknown_globals(script: &Script) -> Vec<String> {
    let mut ctx = GlobalScan::default();
    ctx.block(&script.block);
    let mut out: Vec<String> = ctx
        .reads
        .into_iter()
        .filter(|name| !KNOWN_GLOBALS.contains(&name.as_str()) && !ctx.writes.contains(name))
        .collect();
    out.sort();
    out
}

#[derive(Default)]
struct GlobalScan {
    reads: HashSet<String>,
    writes: HashSet<String>,
    locals: HashSet<String>,
}

impl GlobalScan {
    fn block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.stmt(stmt);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Assign { target, value, .. } => {
                self.expr(value);
                match target {
                    LValue::Name(n) => {
                        if !self.locals.contains(n) {
                            self.writes.insert(n.clone());
                        }
                    }
                    LValue::Index { object, key } => {
                        self.expr(object);
                        self.expr(key);
                    }
                }
            }
            Stmt::Local { name, value, .. } => {
                if let Some(v) = value {
                    self.expr(v);
                }
                self.locals.insert(name.clone());
            }
            Stmt::If {
                arms, else_block, ..
            } => {
                for (c, b) in arms {
                    self.expr(c);
                    self.block(b);
                }
                if let Some(b) = else_block {
                    self.block(b);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.expr(cond);
                self.block(body);
            }
            Stmt::NumericFor {
                var,
                start,
                stop,
                step,
                body,
                ..
            } => {
                self.expr(start);
                self.expr(stop);
                if let Some(s) = step {
                    self.expr(s);
                }
                let fresh = self.locals.insert(var.clone());
                self.block(body);
                if fresh {
                    self.locals.remove(var);
                }
            }
            Stmt::ExprStmt { expr, .. } => self.expr(expr),
            Stmt::Do { body } => self.block(body),
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    self.expr(v);
                }
            }
            Stmt::Break { .. } => {}
        }
    }

    fn expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Name(n, _) if !self.locals.contains(n) && !self.writes.contains(n) => {
                self.reads.insert(n.clone());
            }
            Expr::Name(..) => {}
            Expr::Index { object, key, .. } => {
                self.expr(object);
                self.expr(key);
            }
            Expr::Call { callee, args, .. } => {
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Unary { operand, .. } => self.expr(operand),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::TableCtor { items, pairs, .. } => {
                for i in items {
                    self.expr(i);
                }
                for (k, v) in pairs {
                    self.expr(k);
                    self.expr(v);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn greedy() -> PolicySet {
        PolicySet::from_combined(
            "IWR",
            "MDSs[i][\"all\"]",
            r#"
if MDSs[whoami]["load"]>.01 and whoami < #MDSs and MDSs[whoami+1]["load"]<.01 then
  targets[whoami+1]=allmetaload/2
end
"#,
            &["half"],
        )
        .unwrap()
    }

    #[test]
    fn valid_policy_passes() {
        PolicyValidator::new().validate(&greedy()).unwrap();
    }

    #[test]
    fn typo_in_global_is_rejected_statically() {
        let p = PolicySet::from_combined(
            "IWR",
            "MDSs[i][\"all\"]",
            // `MDSS` (typo) is not in the environment.
            "if MDSS[whoami] then targets[1] = 1 end",
            &["half"],
        )
        .unwrap();
        let err = PolicyValidator::new().validate(&p).unwrap_err();
        assert!(err.to_string().contains("MDSS"), "{err}");
    }

    #[test]
    fn infinite_loop_is_rejected_dynamically() {
        let p =
            PolicySet::from_combined("IWR", "MDSs[i][\"all\"]", "while 1 do x = 1 end", &["half"])
                .unwrap();
        let err = PolicyValidator::new().validate(&p).unwrap_err();
        assert!(err.to_string().contains("step budget"), "{err}");
    }

    #[test]
    fn out_of_range_neighbour_is_caught_by_dry_run() {
        // Indexes MDSs[whoami+1] unconditionally: fine on 3-MDS clusters
        // when whoami=0, but the "last-mds"/"single-mds" scenarios blow up.
        let p = PolicySet::from_combined(
            "IWR",
            "MDSs[i][\"all\"]",
            "if MDSs[whoami+1][\"load\"]<.01 then targets[whoami+1]=1 end",
            &["half"],
        )
        .unwrap();
        let err = PolicyValidator::new().validate(&p).unwrap_err();
        assert!(matches!(err, PolicyError::Rejected { .. }));
    }

    #[test]
    fn assigned_globals_are_not_unknown() {
        let p = PolicySet::from_combined(
            "IWR",
            "MDSs[i][\"all\"]",
            "myload = MDSs[whoami][\"load\"] if myload > 1 then targets[1] = myload end",
            &["half"],
        )
        .unwrap();
        PolicyValidator::new().validate(&p).unwrap();
    }

    #[test]
    fn howmany_globals_are_known_and_typos_rejected() {
        let good = greedy()
            .with_howmany("max(min_mds, min(max_mds, total / 25))")
            .unwrap();
        PolicyValidator::new().validate(&good).unwrap();

        let bad = greedy().with_howmany("actve + 1").unwrap();
        let err = PolicyValidator::new().validate(&bad).unwrap_err();
        assert!(err.to_string().contains("actve"), "{err}");
    }

    #[test]
    fn diverging_howmany_is_rejected_dynamically() {
        let p = greedy()
            .with_howmany("while 1 do x = 1 end return active")
            .unwrap();
        let err = PolicyValidator::new().validate(&p).unwrap_err();
        assert!(err.to_string().contains("howmany"), "{err}");
    }

    #[test]
    fn state_functions_are_known() {
        let p = PolicySet::from_combined(
            "IWR",
            "MDSs[i][\"all\"]",
            "w = RDstate() WRstate(w + 1)",
            &["half"],
        )
        .unwrap();
        PolicyValidator::new().validate(&p).unwrap();
    }

    #[test]
    fn for_loop_variable_is_local_to_loop() {
        let script = crate::parser::parse_script("for j=1,3 do x = j end y = j").unwrap();
        let unknown = unknown_globals(&script);
        assert_eq!(unknown, vec!["j".to_string()], "j leaks outside the loop");
    }
}
