//! Slot-compiled policy hooks: a resolve pass + flat-frame evaluator.
//!
//! The tree-walking [`Interpreter`] resolves
//! every variable read and write by hashing its name against a stack of
//! `HashMap<String, Value>` scopes. For the `metaload` hook — which runs
//! once per dirfrag per balancer tick — that hash traffic (plus building a
//! fresh interpreter and re-`set_global`ing the environment per call)
//! dominates the tick cost.
//!
//! This module adds a second stage to the pipeline: after parsing, a
//! **resolve pass** ([`SlotProgram::compile`]) walks the AST once, mapping
//! every name to an integer slot:
//!
//! * names in lexical scope of a `local` declaration (or a `for` loop
//!   variable) become *local slots* — indices into one flat frame;
//! * everything else becomes a *global slot* — an index into a per-program
//!   global vector whose layout is fixed at compile time.
//!
//! Static resolution is valid because the language subset has no closures,
//! no `goto`, and no `function` definitions: a block's statements execute
//! in source order, so a name read lexically after a `local` declaration
//! in the same (or an enclosing) block is that local, and a read before it
//! is whatever the enclosing scope says — exactly what the dynamic scope
//! stack would have found.
//!
//! The evaluator ([`SlotVm`]) then executes the slotted AST against two
//! `Vec<Value>` frames with plain indexing. It is written to be
//! **bit-identical** to the tree-walking interpreter: the same evaluation
//! order, the same IEEE-754 operation order, the same error messages, and
//! the same step accounting (a step is charged exactly where
//! `Interpreter::step` would charge one, so even
//! [`BudgetExhausted`](crate::error::PolicyError::BudgetExhausted) errors
//! fire on the same script step). Differential tests below and in
//! `tests/properties.rs` pin this.
//!
//! Finally, [`ScalarMetaload`] covers the common case from the paper's
//! Table 1 and every shipped policy: a `metaload` hook that is a linear
//! combination of the five counters. Such hooks compile to a coefficient
//! term list evaluated as a handful of fused multiply-adds — no `Value`
//! boxing, no step counting, no table lookups — while still reproducing
//! the interpreter's result bit for bit (the term list preserves the
//! source's association order).

use std::collections::HashMap;
use std::rc::Rc;

use crate::ast::{BinOp, Block, Expr, LValue, Script, Stmt, UnOp};
use crate::error::{PolicyError, PolicyResult};
use crate::interp::{compare, concat_operand, Interpreter, StepBudget};
use crate::value::{Key, Table, Value};

// ---------------------------------------------------------------------------
// Slotted AST
// ---------------------------------------------------------------------------

/// A statement with all names resolved to slots.
///
/// `pub(crate)` so the bytecode lowering pass (`crate::bytecode`) can
/// consume the slotted AST directly.
#[derive(Debug, Clone)]
pub(crate) enum SStmt {
    Assign {
        target: SLValue,
        value: SExpr,
        line: u32,
    },
    /// `local` declaration: assigns its slot when executed.
    LocalDecl {
        slot: u32,
        value: Option<SExpr>,
    },
    If {
        arms: Vec<(SExpr, Vec<SStmt>)>,
        else_block: Option<Vec<SStmt>>,
    },
    While {
        cond: SExpr,
        body: Vec<SStmt>,
    },
    NumericFor {
        slot: u32,
        start: SExpr,
        stop: SExpr,
        step: Option<SExpr>,
        body: Vec<SStmt>,
        line: u32,
    },
    ExprStmt {
        expr: SExpr,
    },
    Do {
        body: Vec<SStmt>,
    },
    Return {
        value: Option<SExpr>,
    },
    Break,
}

/// An assignable location, resolved.
#[derive(Debug, Clone)]
pub(crate) enum SLValue {
    Local(u32),
    Global(u32),
    Index { object: SExpr, key: SKey },
}

/// An expression with resolved names and pre-interned constant keys.
#[derive(Debug, Clone)]
pub(crate) enum SExpr {
    Nil,
    Bool(bool),
    /// String literals are pre-built `Value::Str`s: evaluating one is an
    /// `Rc` clone, where the tree walker allocates a fresh `Rc<str>`.
    Str(Value),
    Number(f64),
    Local {
        slot: u32,
    },
    Global {
        slot: u32,
    },
    Index {
        object: Box<SExpr>,
        key: SKey,
        line: u32,
    },
    Call {
        callee: Box<SExpr>,
        args: Vec<SExpr>,
        line: u32,
    },
    Unary {
        op: UnOp,
        operand: Box<SExpr>,
        line: u32,
    },
    Binary {
        op: BinOp,
        lhs: Box<SExpr>,
        rhs: Box<SExpr>,
        line: u32,
    },
    TableCtor {
        items: Vec<SExpr>,
        pairs: Vec<(SExpr, SExpr)>,
        line: u32,
    },
}

/// A table key: pre-interned when the source wrote a literal string
/// (`t.auth` / `t["auth"]`), so the hot `MDSs[i]["load"]` lookups never
/// allocate.
#[derive(Debug, Clone)]
pub(crate) enum SKey {
    Const {
        key: Key,
        /// The literal text, shared with `key`, for error messages.
        text: Rc<str>,
    },
    Expr(Box<SExpr>),
}

// ---------------------------------------------------------------------------
// Resolve pass
// ---------------------------------------------------------------------------

/// A script compiled to slot form: the product of the resolve pass.
///
/// Compile once, then run any number of times through a [`SlotVm`],
/// writing the environment into integer slots instead of re-binding
/// names:
///
/// ```
/// use mantle_policy::{compile, SlotProgram, SlotVm, StepBudget, Value};
///
/// let script = compile("score = 0 for i = 1, n do score = score + i end return score")?;
/// let prog = SlotProgram::compile(&script);
/// let n_slot = prog.global_slot("n").expect("script reads `n`");
///
/// let mut vm = SlotVm::new(&prog, StepBudget::default());
/// let base: Vec<Value> = prog.global_names().iter().map(|_| Value::Nil).collect();
/// for (n, expected) in [(3.0, 6.0), (10.0, 55.0)] {
///     vm.reset_globals(&base);
///     vm.set_global(n_slot, Value::Number(n));
///     assert_eq!(vm.run(&prog)?.as_number(0)?, expected);
/// }
/// # Ok::<(), mantle_policy::PolicyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SlotProgram {
    body: Vec<SStmt>,
    n_locals: u32,
    globals: Vec<Rc<str>>,
}

impl SlotProgram {
    /// Resolve every name in `script` to a slot.
    pub fn compile(script: &Script) -> SlotProgram {
        let mut r = Resolver {
            globals: Vec::new(),
            by_name: HashMap::new(),
            scopes: vec![HashMap::new()],
            n_locals: 0,
        };
        let body = r.block(&script.block);
        SlotProgram {
            body,
            n_locals: r.n_locals,
            globals: r.globals,
        }
    }

    /// The global slot a name resolved to, if the script mentions it.
    pub fn global_slot(&self, name: &str) -> Option<usize> {
        self.globals.iter().position(|g| &**g == name)
    }

    /// Names of all global slots, in slot order.
    pub fn global_names(&self) -> &[Rc<str>] {
        &self.globals
    }

    /// Number of global slots.
    pub fn n_globals(&self) -> usize {
        self.globals.len()
    }

    /// Size of the local frame.
    pub fn n_locals(&self) -> usize {
        self.n_locals as usize
    }

    /// The slotted statement list, for the bytecode lowering pass.
    pub(crate) fn stmts(&self) -> &[SStmt] {
        &self.body
    }
}

struct Resolver {
    globals: Vec<Rc<str>>,
    by_name: HashMap<String, u32>,
    scopes: Vec<HashMap<String, u32>>,
    n_locals: u32,
}

impl Resolver {
    fn global(&mut self, name: &str) -> u32 {
        if let Some(&slot) = self.by_name.get(name) {
            return slot;
        }
        let slot = self.globals.len() as u32;
        self.globals.push(Rc::from(name));
        self.by_name.insert(name.to_string(), slot);
        slot
    }

    fn lookup_local(&self, name: &str) -> Option<u32> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare_local(&mut self, name: &str) -> u32 {
        let slot = self.n_locals;
        self.n_locals += 1;
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), slot);
        slot
    }

    fn scoped<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        self.scopes.push(HashMap::new());
        let out = f(self);
        self.scopes.pop();
        out
    }

    fn block(&mut self, b: &Block) -> Vec<SStmt> {
        b.stmts.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, s: &Stmt) -> SStmt {
        match s {
            Stmt::Assign {
                target,
                value,
                line,
            } => SStmt::Assign {
                target: self.lvalue(target),
                value: self.expr(value),
                line: *line,
            },
            Stmt::Local { name, value, .. } => {
                // Initializer resolves before the name is in scope, so
                // `local x = x` reads the outer binding — as at run time.
                let value = value.as_ref().map(|e| self.expr(e));
                let slot = self.declare_local(name);
                SStmt::LocalDecl { slot, value }
            }
            Stmt::If {
                arms, else_block, ..
            } => SStmt::If {
                arms: arms
                    .iter()
                    .map(|(c, b)| {
                        let c = self.expr(c);
                        let b = self.scoped(|r| r.block(b));
                        (c, b)
                    })
                    .collect(),
                else_block: else_block.as_ref().map(|b| self.scoped(|r| r.block(b))),
            },
            Stmt::While { cond, body, .. } => SStmt::While {
                cond: self.expr(cond),
                body: self.scoped(|r| r.block(body)),
            },
            Stmt::NumericFor {
                var,
                start,
                stop,
                step,
                body,
                line,
            } => {
                // Bounds evaluate outside the loop scope.
                let start = self.expr(start);
                let stop = self.expr(stop);
                let step = step.as_ref().map(|e| self.expr(e));
                let (slot, body) = self.scoped(|r| {
                    let slot = r.declare_local(var);
                    (slot, r.block(body))
                });
                SStmt::NumericFor {
                    slot,
                    start,
                    stop,
                    step,
                    body,
                    line: *line,
                }
            }
            Stmt::ExprStmt { expr, .. } => SStmt::ExprStmt {
                expr: self.expr(expr),
            },
            Stmt::Do { body } => SStmt::Do {
                body: self.scoped(|r| r.block(body)),
            },
            Stmt::Return { value, .. } => SStmt::Return {
                value: value.as_ref().map(|e| self.expr(e)),
            },
            Stmt::Break { .. } => SStmt::Break,
        }
    }

    fn lvalue(&mut self, lv: &LValue) -> SLValue {
        match lv {
            LValue::Name(name) => match self.lookup_local(name) {
                Some(slot) => SLValue::Local(slot),
                None => SLValue::Global(self.global(name)),
            },
            LValue::Index { object, key } => SLValue::Index {
                object: self.expr(object),
                key: self.key(key),
            },
        }
    }

    fn key(&mut self, key: &Expr) -> SKey {
        match key {
            Expr::Str(s) => {
                let text: Rc<str> = Rc::from(s.as_str());
                SKey::Const {
                    key: Key::Str(Rc::clone(&text)),
                    text,
                }
            }
            other => SKey::Expr(Box::new(self.expr(other))),
        }
    }

    fn expr(&mut self, e: &Expr) -> SExpr {
        match e {
            Expr::Nil => SExpr::Nil,
            Expr::Bool(b) => SExpr::Bool(*b),
            Expr::Number(n) => SExpr::Number(*n),
            Expr::Str(s) => SExpr::Str(Value::str(s)),
            Expr::Name(name, _) => match self.lookup_local(name) {
                Some(slot) => SExpr::Local { slot },
                None => SExpr::Global {
                    slot: self.global(name),
                },
            },
            Expr::Index { object, key, line } => SExpr::Index {
                object: Box::new(self.expr(object)),
                key: self.key(key),
                line: *line,
            },
            Expr::Call { callee, args, line } => SExpr::Call {
                callee: Box::new(self.expr(callee)),
                args: args.iter().map(|a| self.expr(a)).collect(),
                line: *line,
            },
            Expr::Unary { op, operand, line } => SExpr::Unary {
                op: *op,
                operand: Box::new(self.expr(operand)),
                line: *line,
            },
            Expr::Binary { op, lhs, rhs, line } => SExpr::Binary {
                op: *op,
                lhs: Box::new(self.expr(lhs)),
                rhs: Box::new(self.expr(rhs)),
                line: *line,
            },
            Expr::TableCtor { items, pairs, line } => SExpr::TableCtor {
                items: items.iter().map(|i| self.expr(i)).collect(),
                pairs: pairs
                    .iter()
                    .map(|(k, v)| (self.expr(k), self.expr(v)))
                    .collect(),
                line: *line,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

enum Flow {
    Normal,
    Break,
    Return(Value),
}

/// Executes a [`SlotProgram`] against reusable flat frames.
///
/// One `SlotVm` is built per compiled hook and reused across runs: resetting
/// the environment between runs is `clone_from_slice` over the global frame
/// (reference-count bumps, no heap allocation) instead of re-building an
/// interpreter and re-hashing every `set_global`.
pub struct SlotVm {
    globals: Vec<Value>,
    locals: Vec<Value>,
    steps: u64,
    budget: StepBudget,
    /// Handed to native functions, which take `&mut Interpreter` by
    /// signature. Every in-tree native ignores it; it exists so host
    /// functions keep one callable type across both evaluators.
    scratch: Interpreter,
}

impl SlotVm {
    /// A fresh VM sized for `prog`.
    pub fn new(prog: &SlotProgram, budget: StepBudget) -> SlotVm {
        SlotVm {
            globals: vec![Value::Nil; prog.n_globals()],
            locals: vec![Value::Nil; prog.n_locals()],
            steps: 0,
            budget,
            scratch: Interpreter::new().with_budget(budget),
        }
    }

    /// Overwrite the whole global frame from a base image. `base` must have
    /// one entry per global slot of the program this VM was sized for.
    pub fn reset_globals(&mut self, base: &[Value]) {
        self.globals.clone_from_slice(base);
    }

    /// Write one global slot.
    pub fn set_global(&mut self, slot: usize, value: Value) {
        self.globals[slot] = value;
    }

    /// Read one global slot.
    pub fn get_global(&self, slot: usize) -> &Value {
        &self.globals[slot]
    }

    /// Steps consumed by the last run.
    pub fn steps_used(&self) -> u64 {
        self.steps
    }

    /// Execute a program; returns its `return` value (or `Nil`).
    ///
    /// Local slots need no reset between runs: every read of a local slot
    /// is dominated by its declaration (statements run in source order and
    /// the subset has no `goto`), and the declaration re-assigns the slot.
    pub fn run(&mut self, prog: &SlotProgram) -> PolicyResult<Value> {
        debug_assert_eq!(self.globals.len(), prog.n_globals());
        debug_assert_eq!(self.locals.len(), prog.n_locals());
        self.steps = 0;
        let flow = self.exec_block(&prog.body)?;
        Ok(match flow {
            Flow::Return(v) => v,
            _ => Value::Nil,
        })
    }

    fn step(&mut self) -> PolicyResult<()> {
        self.steps += 1;
        if self.steps > self.budget.0 {
            Err(PolicyError::BudgetExhausted {
                budget: self.budget.0,
            })
        } else {
            Ok(())
        }
    }

    fn exec_block(&mut self, stmts: &[SStmt]) -> PolicyResult<Flow> {
        for stmt in stmts {
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &SStmt) -> PolicyResult<Flow> {
        match stmt {
            SStmt::Assign {
                target,
                value,
                line,
            } => {
                self.step()?;
                let v = self.eval(value)?;
                self.assign(target, v, *line)?;
                Ok(Flow::Normal)
            }
            SStmt::LocalDecl { slot, value } => {
                self.step()?;
                let v = match value {
                    Some(e) => self.eval(e)?,
                    None => Value::Nil,
                };
                self.locals[*slot as usize] = v;
                Ok(Flow::Normal)
            }
            SStmt::If { arms, else_block } => {
                self.step()?;
                for (cond, body) in arms {
                    if self.eval(cond)?.truthy() {
                        return self.exec_block(body);
                    }
                }
                if let Some(body) = else_block {
                    return self.exec_block(body);
                }
                Ok(Flow::Normal)
            }
            SStmt::While { cond, body } => {
                loop {
                    self.step()?;
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                    match self.exec_block(body)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            SStmt::NumericFor {
                slot,
                start,
                stop,
                step,
                body,
                line,
            } => {
                self.step()?;
                let start = self.eval(start)?.as_number(*line)?;
                let stop = self.eval(stop)?.as_number(*line)?;
                let step_v = match step {
                    Some(e) => self.eval(e)?.as_number(*line)?,
                    None => 1.0,
                };
                if step_v == 0.0 {
                    return Err(PolicyError::runtime(*line, "'for' step is zero"));
                }
                let mut i = start;
                loop {
                    self.step()?;
                    let cont = if step_v > 0.0 { i <= stop } else { i >= stop };
                    if !cont {
                        break;
                    }
                    self.locals[*slot as usize] = Value::Number(i);
                    match self.exec_block(body)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    i += step_v;
                }
                Ok(Flow::Normal)
            }
            SStmt::ExprStmt { expr } => {
                self.step()?;
                self.eval(expr)?;
                Ok(Flow::Normal)
            }
            SStmt::Do { body } => self.exec_block(body),
            SStmt::Return { value } => {
                self.step()?;
                let v = match value {
                    Some(e) => self.eval(e)?,
                    None => Value::Nil,
                };
                Ok(Flow::Return(v))
            }
            SStmt::Break => {
                self.step()?;
                Ok(Flow::Break)
            }
        }
    }

    fn assign(&mut self, target: &SLValue, value: Value, line: u32) -> PolicyResult<()> {
        match target {
            SLValue::Local(slot) => {
                self.locals[*slot as usize] = value;
                Ok(())
            }
            SLValue::Global(slot) => {
                self.globals[*slot as usize] = value;
                Ok(())
            }
            SLValue::Index { object, key } => {
                let obj = self.eval(object)?;
                let k = match key {
                    SKey::Const { key, .. } => {
                        // Step parity: the tree walker evaluates the
                        // literal key expression here.
                        self.step()?;
                        key.clone()
                    }
                    SKey::Expr(e) => {
                        let key_v = self.eval(e)?;
                        match &obj {
                            Value::Table(_) => Key::from_value(&key_v, line)?,
                            _ => Key::Int(0), // unused: the error below wins
                        }
                    }
                };
                match obj {
                    Value::Table(t) => {
                        t.borrow_mut().set(k, value);
                        Ok(())
                    }
                    other => Err(PolicyError::runtime(
                        line,
                        format!("cannot index a {} value", other.type_name()),
                    )),
                }
            }
        }
    }

    fn eval(&mut self, expr: &SExpr) -> PolicyResult<Value> {
        self.step()?;
        match expr {
            SExpr::Nil => Ok(Value::Nil),
            SExpr::Bool(b) => Ok(Value::Bool(*b)),
            SExpr::Number(n) => Ok(Value::Number(*n)),
            SExpr::Str(v) => Ok(v.clone()),
            SExpr::Local { slot } => Ok(self.locals[*slot as usize].clone()),
            SExpr::Global { slot } => Ok(self.globals[*slot as usize].clone()),
            SExpr::Index { object, key, line } => {
                let obj = self.eval(object)?;
                match key {
                    SKey::Const { key, text } => {
                        // Step parity with evaluating the literal key.
                        self.step()?;
                        match obj {
                            Value::Table(t) => Ok(t.borrow().get(key)),
                            Value::Nil => Err(PolicyError::runtime(
                                *line,
                                format!("attempt to index a nil value (key '{text}')"),
                            )),
                            other => Err(PolicyError::runtime(
                                *line,
                                format!("cannot index a {} value", other.type_name()),
                            )),
                        }
                    }
                    SKey::Expr(e) => {
                        let key_v = self.eval(e)?;
                        match obj {
                            Value::Table(t) => {
                                let k = Key::from_value(&key_v, *line)?;
                                Ok(t.borrow().get(&k))
                            }
                            Value::Nil => Err(PolicyError::runtime(
                                *line,
                                format!(
                                    "attempt to index a nil value (key '{}')",
                                    key_v.display_string()
                                ),
                            )),
                            other => Err(PolicyError::runtime(
                                *line,
                                format!("cannot index a {} value", other.type_name()),
                            )),
                        }
                    }
                }
            }
            SExpr::Call { callee, args, line } => {
                let f = self.eval(callee)?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a)?);
                }
                match f {
                    Value::Native(_, func) => func(&mut self.scratch, &argv),
                    Value::Nil => Err(PolicyError::runtime(
                        *line,
                        "attempt to call a nil value (is the function defined in the Mantle \
                         environment?)",
                    )),
                    other => Err(PolicyError::runtime(
                        *line,
                        format!("attempt to call a {} value", other.type_name()),
                    )),
                }
            }
            SExpr::Unary { op, operand, line } => {
                let v = self.eval(operand)?;
                match op {
                    UnOp::Neg => Ok(Value::Number(-v.as_number(*line)?)),
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                    UnOp::Len => match v {
                        Value::Table(t) => Ok(Value::Number(t.borrow().len() as f64)),
                        Value::Str(s) => Ok(Value::Number(s.len() as f64)),
                        other => Err(PolicyError::runtime(
                            *line,
                            format!("attempt to get length of a {} value", other.type_name()),
                        )),
                    },
                }
            }
            SExpr::Binary { op, lhs, rhs, line } => self.eval_binary(*op, lhs, rhs, *line),
            SExpr::TableCtor { items, pairs, line } => {
                let mut t = Table::new();
                for (i, item) in items.iter().enumerate() {
                    let v = self.eval(item)?;
                    t.set_int(i as i64 + 1, v);
                }
                for (k, v) in pairs {
                    let key_v = self.eval(k)?;
                    let val = self.eval(v)?;
                    t.set(Key::from_value(&key_v, *line)?, val);
                }
                Ok(Value::table(t))
            }
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        lhs: &SExpr,
        rhs: &SExpr,
        line: u32,
    ) -> PolicyResult<Value> {
        match op {
            BinOp::And => {
                let l = self.eval(lhs)?;
                return if l.truthy() { self.eval(rhs) } else { Ok(l) };
            }
            BinOp::Or => {
                let l = self.eval(lhs)?;
                return if l.truthy() { Ok(l) } else { self.eval(rhs) };
            }
            _ => {}
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        match op {
            BinOp::Add => Ok(Value::Number(l.as_number(line)? + r.as_number(line)?)),
            BinOp::Sub => Ok(Value::Number(l.as_number(line)? - r.as_number(line)?)),
            BinOp::Mul => Ok(Value::Number(l.as_number(line)? * r.as_number(line)?)),
            BinOp::Div => Ok(Value::Number(l.as_number(line)? / r.as_number(line)?)),
            BinOp::Mod => {
                let (a, b) = (l.as_number(line)?, r.as_number(line)?);
                Ok(Value::Number(a - (a / b).floor() * b))
            }
            BinOp::Pow => Ok(Value::Number(l.as_number(line)?.powf(r.as_number(line)?))),
            BinOp::Concat => {
                let ls = concat_operand(&l, line)?;
                let rs = concat_operand(&r, line)?;
                Ok(Value::str(format!("{ls}{rs}")))
            }
            BinOp::Eq => Ok(Value::Bool(l.lua_eq(&r))),
            BinOp::Ne => Ok(Value::Bool(!l.lua_eq(&r))),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let ord = compare(&l, &r, line)?;
                Ok(Value::Bool(match op {
                    BinOp::Lt => ord == std::cmp::Ordering::Less,
                    BinOp::Le => ord != std::cmp::Ordering::Greater,
                    BinOp::Gt => ord == std::cmp::Ordering::Greater,
                    BinOp::Ge => ord != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                }))
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar metaload fast path
// ---------------------------------------------------------------------------

/// Position of each counter in the 5-vector handed to
/// [`ScalarMetaload::eval`]: `IRD`, `IWR`, `READDIR`, `FETCH`, `STORE`.
pub const COUNTER_NAMES: [&str; 5] = ["IRD", "IWR", "READDIR", "FETCH", "STORE"];

fn counter_index(name: &str) -> Option<usize> {
    COUNTER_NAMES.iter().position(|&n| n == name)
}

/// One term of a linear `metaload` expression.
#[derive(Debug, Clone, PartialEq)]
enum ScalarTerm {
    /// A bare counter, e.g. `IWR`.
    Counter(usize),
    /// `c * COUNTER` (coefficient written first, as in Table 1).
    CoeffCounter(f64, usize),
    /// `COUNTER * c`.
    CounterCoeff(usize, f64),
    /// A numeric literal.
    Const(f64),
    /// Arithmetic negation of a term.
    Neg(Box<ScalarTerm>),
}

impl ScalarTerm {
    fn eval(&self, counters: &[f64; 5]) -> f64 {
        match self {
            ScalarTerm::Counter(i) => counters[*i],
            ScalarTerm::CoeffCounter(c, i) => c * counters[*i],
            ScalarTerm::CounterCoeff(i, c) => counters[*i] * c,
            ScalarTerm::Const(c) => *c,
            ScalarTerm::Neg(t) => -t.eval(counters),
        }
    }

    fn is_homogeneous(&self) -> bool {
        match self {
            ScalarTerm::Const(_) => false,
            ScalarTerm::Neg(t) => t.is_homogeneous(),
            _ => true,
        }
    }
}

/// A `metaload` hook compiled to a coefficient term list — the fast path
/// for hooks that are pure arithmetic over the five counters, which covers
/// Table 1 and every shipped policy.
///
/// Terms are kept in source order and evaluated as the interpreter's
/// left-associative `+`/`-` chain would be, so the result is bit-identical
/// to running the script (same IEEE-754 operations in the same order). For
/// the common `a*IRD + b*IWR + ...` shape this is exactly a dot product
/// against the counter vector.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarMetaload {
    first: ScalarTerm,
    /// `(is_subtraction, term)`, applied left to right.
    rest: Vec<(bool, ScalarTerm)>,
}

impl ScalarMetaload {
    /// Try to compile `script` to scalar form. Returns `None` when the hook
    /// is anything but a single-expression linear combination of the five
    /// counters (callers fall back to the slot evaluator).
    pub fn extract(script: &Script) -> Option<ScalarMetaload> {
        let [Stmt::Return {
            value: Some(expr), ..
        }] = script.block.stmts.as_slice()
        else {
            return None;
        };
        let mut terms = Vec::new();
        flatten_chain(expr, &mut terms)?;
        let mut it = terms.into_iter();
        let (_, first) = it.next()?;
        Some(ScalarMetaload {
            first,
            rest: it.collect(),
        })
    }

    /// Evaluate against `[ird, iwr, readdir, fetch, store]`.
    pub fn eval(&self, counters: &[f64; 5]) -> f64 {
        let mut acc = self.first.eval(counters);
        for (sub, term) in &self.rest {
            let v = term.eval(counters);
            acc = if *sub { acc - v } else { acc + v };
        }
        acc
    }

    /// True when the expression has no constant term, i.e. it is a linear
    /// map with `metaload(0) = 0`. Only such hooks distribute over sums of
    /// counter vectors, which is what lets the cluster evaluate them once
    /// per MDS on aggregated heat instead of once per dirfrag.
    pub fn is_homogeneous(&self) -> bool {
        self.first.is_homogeneous() && self.rest.iter().all(|(_, t)| t.is_homogeneous())
    }
}

/// Flatten a left-associative `+`/`-` chain into `(is_sub, term)` pairs.
fn flatten_chain(e: &Expr, out: &mut Vec<(bool, ScalarTerm)>) -> Option<()> {
    if let Expr::Binary {
        op: op @ (BinOp::Add | BinOp::Sub),
        lhs,
        rhs,
        ..
    } = e
    {
        flatten_chain(lhs, out)?;
        out.push((*op == BinOp::Sub, term_of(rhs)?));
        Some(())
    } else {
        out.push((false, term_of(e)?));
        Some(())
    }
}

fn term_of(e: &Expr) -> Option<ScalarTerm> {
    match e {
        Expr::Number(n) => Some(ScalarTerm::Const(*n)),
        Expr::Name(name, _) => Some(ScalarTerm::Counter(counter_index(name)?)),
        Expr::Unary {
            op: UnOp::Neg,
            operand,
            ..
        } => Some(ScalarTerm::Neg(Box::new(term_of(operand)?))),
        Expr::Binary {
            op: BinOp::Mul,
            lhs,
            rhs,
            ..
        } => match (&**lhs, &**rhs) {
            (Expr::Number(c), Expr::Name(n, _)) => {
                Some(ScalarTerm::CoeffCounter(*c, counter_index(n)?))
            }
            (Expr::Name(n, _), Expr::Number(c)) => {
                Some(ScalarTerm::CounterCoeff(counter_index(n)?, *c))
            }
            _ => None,
        },
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Scalar mdsload
// ---------------------------------------------------------------------------

/// Position of each per-MDS metric in the 8-vector handed to
/// [`ScalarMdsload::eval`]: `auth`, `all`, `cpu`, `mem`, `q`, `req`,
/// `cache_hits`, `cache_misses`.
pub const MDS_FIELD_NAMES: [&str; 8] = [
    "auth",
    "all",
    "cpu",
    "mem",
    "q",
    "req",
    "cache_hits",
    "cache_misses",
];

fn mds_field_index(name: &str) -> Option<usize> {
    MDS_FIELD_NAMES.iter().position(|&n| n == name)
}

/// One term of a linear `mdsload` expression, over `MDSs[i]["<field>"]`
/// reads instead of bare counters.
#[derive(Debug, Clone, PartialEq)]
enum MdsTerm {
    /// `MDSs[i]["<field>"]`.
    Field(usize),
    /// `c * MDSs[i]["<field>"]` (coefficient first, as in Table 1).
    CoeffField(f64, usize),
    /// `MDSs[i]["<field>"] * c`.
    FieldCoeff(usize, f64),
    /// A numeric literal.
    Const(f64),
    /// Arithmetic negation of a term.
    Neg(Box<MdsTerm>),
}

impl MdsTerm {
    fn eval(&self, fields: &[f64; 8]) -> f64 {
        match self {
            MdsTerm::Field(i) => fields[*i],
            MdsTerm::CoeffField(c, i) => c * fields[*i],
            MdsTerm::FieldCoeff(i, c) => fields[*i] * c,
            MdsTerm::Const(c) => *c,
            MdsTerm::Neg(t) => -t.eval(fields),
        }
    }
}

/// An `mdsload` hook compiled to a coefficient term list — the counterpart
/// of [`ScalarMetaload`] for the per-MDS pass. It covers hooks that are
/// pure arithmetic over the current row's metric fields (`MDSs[i][…]`),
/// which is Table 1's weighted sum and every shipped policy.
///
/// Same bit-identity argument as [`ScalarMetaload`]: terms stay in source
/// order and are folded with the interpreter's left-associative `+`/`-`
/// chain, and each `MDSs[i]["<field>"]` read yields exactly the `f64` the
/// environment builder would have stored in the table — so the fast path
/// performs the identical IEEE-754 operations in the identical order,
/// without building any table or running any VM.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarMdsload {
    first: MdsTerm,
    /// `(is_subtraction, term)`, applied left to right.
    rest: Vec<(bool, MdsTerm)>,
}

impl ScalarMdsload {
    /// Try to compile `script` to scalar form. Returns `None` when the hook
    /// is anything but a single-expression linear combination of the
    /// current row's metric fields — callers fall back to running the
    /// compiled hook against the real `MDSs` table. Reads of other rows
    /// (`MDSs[1][…]`), of the pass-2-only `"load"` field, and any call or
    /// comparison all bail, so error behaviour is preserved exactly.
    pub fn extract(script: &Script) -> Option<ScalarMdsload> {
        let [Stmt::Return {
            value: Some(expr), ..
        }] = script.block.stmts.as_slice()
        else {
            return None;
        };
        let mut terms = Vec::new();
        flatten_mds_chain(expr, &mut terms)?;
        let mut it = terms.into_iter();
        let (_, first) = it.next()?;
        Some(ScalarMdsload {
            first,
            rest: it.collect(),
        })
    }

    /// Evaluate against `[auth, all, cpu, mem, q, req, cache_hits,
    /// cache_misses]`.
    pub fn eval(&self, fields: &[f64; 8]) -> f64 {
        let mut acc = self.first.eval(fields);
        for (sub, term) in &self.rest {
            let v = term.eval(fields);
            acc = if *sub { acc - v } else { acc + v };
        }
        acc
    }
}

/// Flatten a left-associative `+`/`-` chain of mdsload terms.
fn flatten_mds_chain(e: &Expr, out: &mut Vec<(bool, MdsTerm)>) -> Option<()> {
    if let Expr::Binary {
        op: op @ (BinOp::Add | BinOp::Sub),
        lhs,
        rhs,
        ..
    } = e
    {
        flatten_mds_chain(lhs, out)?;
        out.push((*op == BinOp::Sub, mds_term_of(rhs)?));
        Some(())
    } else {
        out.push((false, mds_term_of(e)?));
        Some(())
    }
}

/// Match exactly `MDSs[i]["<field>"]` for one of the pass-1 metric fields.
fn current_row_field(e: &Expr) -> Option<usize> {
    let Expr::Index { object, key, .. } = e else {
        return None;
    };
    let Expr::Str(field) = &**key else {
        return None;
    };
    let Expr::Index {
        object: table,
        key: row,
        ..
    } = &**object
    else {
        return None;
    };
    match (&**table, &**row) {
        (Expr::Name(t, _), Expr::Name(r, _)) if t == "MDSs" && r == "i" => mds_field_index(field),
        _ => None,
    }
}

fn mds_term_of(e: &Expr) -> Option<MdsTerm> {
    if let Some(f) = current_row_field(e) {
        return Some(MdsTerm::Field(f));
    }
    match e {
        Expr::Number(n) => Some(MdsTerm::Const(*n)),
        Expr::Unary {
            op: UnOp::Neg,
            operand,
            ..
        } => Some(MdsTerm::Neg(Box::new(mds_term_of(operand)?))),
        Expr::Binary {
            op: BinOp::Mul,
            lhs,
            rhs,
            ..
        } => match (&**lhs, &**rhs) {
            (Expr::Number(c), field) => Some(MdsTerm::CoeffField(*c, current_row_field(field)?)),
            (field, Expr::Number(c)) => Some(MdsTerm::FieldCoeff(current_row_field(field)?, *c)),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expression_script, parse_script};
    use crate::stdlib;

    /// Run a script on both evaluators with the given numeric globals and
    /// assert results (and step counts) agree exactly.
    fn differential(src: &str, globals: &[(&str, f64)]) -> (Value, Value) {
        let script = parse_script(src).unwrap();

        let mut interp = Interpreter::new();
        stdlib::install(&mut interp);
        for (name, v) in globals {
            interp.set_global(name, Value::Number(*v));
        }
        let tree = interp.run(&script);

        let prog = SlotProgram::compile(&script);
        let mut vm = SlotVm::new(&prog, StepBudget::default());
        // Base env: stdlib + numeric globals, written straight to slots.
        let mut stdlib_interp = Interpreter::new();
        stdlib::install(&mut stdlib_interp);
        for (i, name) in prog.global_names().iter().enumerate() {
            vm.set_global(i, stdlib_interp.get_global(name));
        }
        for (name, v) in globals {
            if let Some(slot) = prog.global_slot(name) {
                vm.set_global(slot, Value::Number(*v));
            }
        }
        let slot = vm.run(&prog);

        match (&tree, &slot) {
            (Ok(a), Ok(b)) => {
                assert!(
                    values_identical(a, b),
                    "mismatch on {src:?}: tree={a:?} slot={b:?}"
                );
                assert_eq!(
                    interp.steps_used(),
                    vm.steps_used(),
                    "step divergence on {src:?}"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "error mismatch on {src:?}"),
            (a, b) => panic!("outcome mismatch on {src:?}: tree={a:?} slot={b:?}"),
        }
        (tree.unwrap_or(Value::Nil), slot.unwrap_or(Value::Nil))
    }

    fn values_identical(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Number(x), Value::Number(y)) => x.to_bits() == y.to_bits(),
            _ => a.lua_eq(b) || (matches!(a, Value::Nil) && matches!(b, Value::Nil)),
        }
    }

    #[test]
    fn arithmetic_and_logic_agree() {
        differential("return 1 + 2 * 3 - 4 / 8", &[]);
        differential("return 2 ^ 3 ^ 2", &[]);
        differential("return -7 % 3", &[]);
        differential("return (x > 2) and x or -x", &[("x", 5.0)]);
        differential("return \"n=\" .. 3 .. \"!\"", &[]);
    }

    #[test]
    fn locals_and_scoping_agree() {
        differential("x = 1 local y = 2 x = x + y return x", &[]);
        differential("local x = 1 do local x = 2 end return x", &[]);
        differential("local x = x return x", &[("x", 9.0)]);
        // Read before the `local` in the same block sees the global.
        differential("g = 10 y = g local g = 1 return y + g", &[]);
    }

    #[test]
    fn loops_agree() {
        differential("s = 0 for i = 1, 10 do s = s + i end return s", &[]);
        differential("s = 0 for i = 10, 1, -2 do s = s + i end return s", &[]);
        differential(
            "i = 0 while true do i = i + 1 if i >= 5 then break end end return i",
            &[],
        );
        // Loop-carried local shadowing: iteration 2 must re-resolve like
        // the dynamic scope stack (fresh scope per iteration).
        differential(
            "y = 0 for i = 1, 3 do y = y + v local v = i end return y",
            &[("v", 100.0)],
        );
    }

    #[test]
    fn tables_agree() {
        differential(
            "t = {10, 20, 30} t[4] = 40 t[\"name\"] = 7 return #t + t[2] + t.name",
            &[],
        );
        differential("m = {a = {1, 2}, b = {x = 9}} return m.a[2] + m.b.x", &[]);
    }

    #[test]
    fn natives_agree() {
        differential("return max(3, min(x, 10)) + math.floor(2.7)", &[("x", 7.0)]);
    }

    #[test]
    fn errors_agree() {
        differential("return nothere[\"load\"]", &[]);
        differential("return RDstate()", &[]);
        differential("for i=1,10,0 do end", &[]);
        differential("return 1 < \"2\"", &[]);
        differential("return #x", &[("x", 1.0)]);
    }

    #[test]
    fn budget_errors_agree_on_step() {
        let script = parse_script("while 1 do end").unwrap();
        let mut interp = Interpreter::new().with_budget(StepBudget(10_000));
        let tree = interp.run(&script).unwrap_err();
        let prog = SlotProgram::compile(&script);
        let mut vm = SlotVm::new(&prog, StepBudget(10_000));
        let slot = vm.run(&prog).unwrap_err();
        assert_eq!(tree, slot);
    }

    #[test]
    fn listing_4_differential() {
        // The Adaptable Balancer body shape, with table env.
        let src = r#"
mymax = 0
for i=1,#MDSs do
  if MDSs[i]["load"] > mymax then mymax = MDSs[i]["load"] end
end
return mymax
"#;
        let script = parse_script(src).unwrap();
        let mk = |load: f64| Value::table(Table::from_fields([("load", Value::Number(load))]));
        let mdss = || Value::table(Table::from_array([mk(90.0), mk(5.0), mk(35.0)]));

        let mut interp = Interpreter::new();
        interp.set_global("MDSs", mdss());
        let tree = interp.run(&script).unwrap();

        let prog = SlotProgram::compile(&script);
        let mut vm = SlotVm::new(&prog, StepBudget::default());
        vm.set_global(prog.global_slot("MDSs").unwrap(), mdss());
        let slot = vm.run(&prog).unwrap();
        assert!(values_identical(&tree, &slot));
        assert_eq!(interp.steps_used(), vm.steps_used());
    }

    #[test]
    fn vm_reuse_resets_environment() {
        let script = parse_script("seen = seen + 1 return seen").unwrap();
        let prog = SlotProgram::compile(&script);
        let mut vm = SlotVm::new(&prog, StepBudget::default());
        let base = vec![Value::Number(0.0); prog.n_globals()];
        for _ in 0..3 {
            vm.reset_globals(&base);
            let v = vm.run(&prog).unwrap();
            // Each run starts from the base image, as a fresh interpreter
            // with `set_global` calls would.
            assert_eq!(v.as_number(0).unwrap(), 1.0);
        }
    }

    // ---- scalar fast path ----

    fn scalar_of(src: &str) -> Option<ScalarMetaload> {
        ScalarMetaload::extract(&parse_expression_script(src).unwrap())
    }

    fn interp_metaload(src: &str, c: &[f64; 5]) -> f64 {
        let script = parse_expression_script(src).unwrap();
        let mut interp = Interpreter::new();
        for (i, name) in COUNTER_NAMES.iter().enumerate() {
            interp.set_global(name, Value::Number(c[i]));
        }
        interp.run(&script).unwrap().as_number(0).unwrap()
    }

    #[test]
    fn table1_compiles_to_scalar() {
        let s = scalar_of("IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE").unwrap();
        assert!(s.is_homogeneous());
        let c = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(s.eval(&c), 36.0);
    }

    #[test]
    fn shipped_policy_metaloads_compile_to_scalar() {
        for src in [
            "IWR",
            "IWR + IRD",
            "IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE",
        ] {
            let s = scalar_of(src).unwrap_or_else(|| panic!("{src} must be scalar"));
            assert!(s.is_homogeneous(), "{src} must be homogeneous");
        }
    }

    #[test]
    fn scalar_is_bit_identical_to_interpreter() {
        let cases = [
            "IWR",
            "IWR + IRD",
            "IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE",
            "0.1*IRD + 0.3*IWR - 0.7*STORE",
            "IWR*2.5 - -FETCH + 1e-3",
            "3 + IWR - READDIR",
            "-IRD + IWR",
        ];
        let counters = [
            [0.1, 0.2, 0.3, 0.4, 0.5],
            [1e9, 1e-9, 3.3333, 7.77, 0.0],
            [5.5, 2.25, 0.125, 9.0, 1.0 / 3.0],
        ];
        for src in cases {
            let s = scalar_of(src).unwrap_or_else(|| panic!("{src} must be scalar"));
            for c in &counters {
                let fast = s.eval(c);
                let slow = interp_metaload(src, c);
                assert_eq!(
                    fast.to_bits(),
                    slow.to_bits(),
                    "{src} diverged on {c:?}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn non_scalar_hooks_fall_back() {
        for src in [
            "IRD * IWR",             // nonlinear
            "max(IRD, IWR)",         // call
            "IRD + unknown",         // unknown name
            "x = IWR return x",      // multi-statement
            "IRD + 2*(IWR + FETCH)", // non-term rhs
            "(IRD + IWR) * 2",       // chain under a multiply
        ] {
            assert!(scalar_of(src).is_none(), "{src} must not compile to scalar");
        }
    }

    #[test]
    fn constant_terms_are_not_homogeneous() {
        assert!(!scalar_of("IWR + 1").unwrap().is_homogeneous());
        assert!(!scalar_of("IWR - -3").unwrap().is_homogeneous());
        assert!(scalar_of("IWR - -FETCH").unwrap().is_homogeneous());
    }

    // ---- scalar mdsload ----

    use std::cell::RefCell;

    fn mds_scalar_of(src: &str) -> Option<ScalarMdsload> {
        ScalarMdsload::extract(&parse_expression_script(src).unwrap())
    }

    #[test]
    fn shipped_mdsload_hooks_compile_to_scalar() {
        // Listing 1 (and every listing balancer), Table 1's weighted sum,
        // and the grid search's queue-aware capacity term.
        for src in [
            "MDSs[i][\"all\"]",
            "0.8*MDSs[i][\"auth\"] + 0.2*MDSs[i][\"all\"] + MDSs[i][\"req\"] + 10*MDSs[i][\"q\"]",
            "MDSs[i][\"all\"] + 10*MDSs[i][\"q\"]",
        ] {
            assert!(mds_scalar_of(src).is_some(), "{src} must be scalar");
        }
    }

    #[test]
    fn scalar_mdsload_is_bit_identical_to_interpreter() {
        let cases = [
            "MDSs[i][\"all\"]",
            "0.8*MDSs[i][\"auth\"] + 0.2*MDSs[i][\"all\"] + MDSs[i][\"req\"] + 10*MDSs[i][\"q\"]",
            "MDSs[i][\"all\"] + 10*MDSs[i][\"q\"]",
            "MDSs[i][\"cpu\"]*0.5 - -MDSs[i][\"mem\"] + 1e-3",
            "-MDSs[i][\"q\"] + 3",
        ];
        let rows = [
            [90.0, 95.0, 85.0, 40.0, 12.0, 700.0, 250.0, 31.0],
            [1e9, 1e-9, 3.3333, 7.77, 0.0, 1.0 / 3.0, 0.0, 1e6],
        ];
        for src in cases {
            let s = mds_scalar_of(src).unwrap_or_else(|| panic!("{src} must be scalar"));
            for fields in &rows {
                // Oracle: run the expression against a real MDSs table.
                let script = parse_expression_script(src).unwrap();
                let row = Table::from_fields(
                    MDS_FIELD_NAMES
                        .iter()
                        .zip(fields)
                        .map(|(k, v)| (*k, Value::Number(*v))),
                );
                let mut mdss = Table::new();
                mdss.set_int(1, Value::Table(Rc::new(RefCell::new(row))));
                let mut interp = Interpreter::new();
                interp.set_global("MDSs", Value::Table(Rc::new(RefCell::new(mdss))));
                interp.set_global("i", Value::Number(1.0));
                let slow = interp.run(&script).unwrap().as_number(0).unwrap();
                let fast = s.eval(fields);
                assert_eq!(
                    fast.to_bits(),
                    slow.to_bits(),
                    "{src} diverged on {fields:?}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn non_scalar_mdsload_hooks_fall_back() {
        for src in [
            "MDSs[i][\"load\"]",                 // pass-2-only field (reads nil in pass 1)
            "MDSs[1][\"all\"]",                  // other row
            "MDSs[whoami][\"all\"]",             // not the loop index
            "max(MDSs[i][\"all\"], 1)",          // call
            "MDSs[i][\"all\"] / 2",              // division
            "MDSs[i][\"all\"] * MDSs[i][\"q\"]", // nonlinear
            "allmetaload",                       // plain global
            "x = MDSs[i][\"all\"] return x",     // multi-statement
        ] {
            assert!(
                mds_scalar_of(src).is_none(),
                "{src} must not compile to scalar"
            );
        }
    }
}
