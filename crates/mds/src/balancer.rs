//! The balancing framework: a [`Balancer`] trait with two implementations —
//! the hard-coded CephFS balancer (Table 1) and the programmable
//! [`MantleBalancer`] driving injected policy scripts.
//!
//! A balancer answers three questions each tick (the fourth, *which*
//! concrete dirfrags move, is the partitioner's job in
//! [`crate::partition`], parameterized by the balancer's selectors):
//!
//! * **load**: how much work is a dirfrag / an MDS doing?
//! * **when**: should this MDS migrate anything right now?
//! * **where**: how much load should go to which MDS (`targets[]`)?

use mantle_namespace::HeatSample;
use mantle_namespace::MdsId;
use mantle_policy::env::{FragMetrics, MantleRuntime, PolicySet};
use mantle_policy::{
    BalancerInputs, HookEngine, MdsMetrics, PolicyError, PolicyResult, PolicyValidator,
};

use crate::metrics::Heartbeat;
use crate::selector::{DirfragSelector, ScriptedSelector, SelectorKind};
use std::rc::Rc;
use std::sync::Arc;

/// What a balancer sees when it runs: its identity and the (stale)
/// heartbeat snapshots of the whole cluster.
#[derive(Debug, Clone)]
pub struct BalanceContext {
    /// The MDS running this balancer.
    pub whoami: MdsId,
    /// Heartbeat snapshot per MDS (index = MDS id). These are the values
    /// from the *previous* exchange — stale by up to one interval, exactly
    /// like the real system (§2.2.2). Shared: every MDS's balancer reads
    /// the same snapshot, so the tick hands out references instead of
    /// cloning the vector per MDS.
    pub heartbeats: Arc<[Heartbeat]>,
}

/// The outcome of the when/where decision.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationPlan {
    /// Load to ship to each MDS (0 for self and for non-targets).
    pub targets: Vec<f64>,
    /// Dirfrag selectors to try when partitioning the namespace (built-in
    /// or policy-defined). Shared with the balancer that produced the
    /// plan — selectors are fixed per policy, so plans don't copy them.
    pub selectors: Rc<[SelectorKind]>,
}

impl MigrationPlan {
    /// Total load this plan wants to move.
    pub fn total_target(&self) -> f64 {
        self.targets.iter().sum()
    }
}

/// A metadata load balancer living on one MDS.
///
/// Implement this to plug arbitrary balancing logic into the cluster —
/// the two shipped implementations are [`CephfsBalancer`] (Table 1,
/// hard-coded) and [`MantleBalancer`] (injected policy scripts). A toy
/// balancer that always sheds one unit of load to MDS 0:
///
/// ```
/// use std::rc::Rc;
/// use std::sync::Arc;
/// use mantle_mds::balancer::{BalanceContext, Balancer, MigrationPlan};
/// use mantle_mds::metrics::Heartbeat;
/// use mantle_mds::selector::{DirfragSelector, SelectorKind};
/// use mantle_namespace::HeatSample;
/// use mantle_policy::PolicyResult;
///
/// struct ShedToZero;
///
/// impl Balancer for ShedToZero {
///     fn name(&self) -> &str {
///         "shed-to-zero"
///     }
///     fn metaload(&self, heat: &HeatSample) -> PolicyResult<f64> {
///         Ok(heat.cephfs_metaload())
///     }
///     fn decide(&mut self, ctx: &BalanceContext) -> PolicyResult<Option<MigrationPlan>> {
///         if ctx.whoami == 0 {
///             return Ok(None);
///         }
///         let mut targets = vec![0.0; ctx.heartbeats.len()];
///         targets[0] = 1.0;
///         Ok(Some(MigrationPlan {
///             targets,
///             selectors: Rc::from([SelectorKind::Builtin(DirfragSelector::Half)].as_slice()),
///         }))
///     }
/// }
///
/// let mut b = ShedToZero;
/// let ctx = BalanceContext {
///     whoami: 1,
///     heartbeats: Arc::from([Heartbeat::default(), Heartbeat::default()].as_slice()),
/// };
/// let plan = b.decide(&ctx)?.expect("MDS 1 always sheds");
/// assert_eq!(plan.targets, vec![1.0, 0.0]);
/// # Ok::<(), mantle_policy::PolicyError>(())
/// ```
pub trait Balancer {
    /// Human-readable name (for reports).
    fn name(&self) -> &str;

    /// The `metaload` hook: scalar load of one dirfrag from its decayed
    /// counters.
    fn metaload(&self, heat: &HeatSample) -> PolicyResult<f64>;

    /// True when [`Balancer::metaload`] is linear with no constant term,
    /// i.e. `metaload(a + b) == metaload(a) + metaload(b)`. The cluster
    /// then computes heartbeat loads from per-MDS heat aggregates (O(MDSs)
    /// per tick) instead of evaluating the hook once per dirfrag.
    fn metaload_is_additive(&self) -> bool {
        false
    }

    /// The when/where decision. `Ok(None)` = no migration this tick.
    fn decide(&mut self, ctx: &BalanceContext) -> PolicyResult<Option<MigrationPlan>>;

    /// The `howmany` auto-scaling hook: the target member count for an
    /// elastic cluster, given the member heartbeats in `ctx`, the current
    /// member count `active`, and the configured `[min_mds, max_mds]`
    /// bounds. `Ok(None)` (the default — balancers without an auto-scaling
    /// policy) leaves the cluster size alone. The raw value is rounded and
    /// clamped by the coordinator.
    fn howmany(
        &mut self,
        ctx: &BalanceContext,
        active: usize,
        min_mds: usize,
        max_mds: usize,
    ) -> PolicyResult<Option<f64>> {
        let (_, _, _, _) = (ctx, active, min_mds, max_mds);
        Ok(None)
    }
}

// ---------------------------------------------------------------------------
// The original CephFS balancer (Table 1), hard-coded.
// ---------------------------------------------------------------------------

/// The CephFS balancer with its policies compiled in, as the shipping
/// system does (§2.2.3 / Table 1).
#[derive(Debug, Clone)]
pub struct CephfsBalancer {
    /// The `mds_bal_need_min` tunable: targets are scaled by this factor to
    /// absorb measurement noise (0.8 by default — the §2.2.3 example).
    pub need_min: f64,
}

impl Default for CephfsBalancer {
    fn default() -> Self {
        CephfsBalancer { need_min: 0.8 }
    }
}

impl CephfsBalancer {
    /// The Table 1 `MDSload` formula.
    pub fn mds_load(hb: &Heartbeat) -> f64 {
        0.8 * hb.auth_metaload + 0.2 * hb.all_metaload + hb.req_rate + 10.0 * hb.queue_len
    }
}

impl Balancer for CephfsBalancer {
    fn name(&self) -> &str {
        "cephfs-default"
    }

    fn metaload(&self, heat: &HeatSample) -> PolicyResult<f64> {
        // metaload = IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE
        Ok(heat.cephfs_metaload())
    }

    fn metaload_is_additive(&self) -> bool {
        true
    }

    fn decide(&mut self, ctx: &BalanceContext) -> PolicyResult<Option<MigrationPlan>> {
        let n = ctx.heartbeats.len();
        if n < 2 {
            return Ok(None);
        }
        let loads: Vec<f64> = ctx.heartbeats.iter().map(Self::mds_load).collect();
        let total: f64 = loads.iter().sum();
        let avg = total / n as f64;
        // when: my load > cluster average.
        if loads[ctx.whoami] <= avg || total <= 0.0 {
            return Ok(None);
        }
        // where: fill every under-average MDS up to the average, scaled by
        // need_min to absorb noise.
        let mut targets = vec![0.0; n];
        for (i, &l) in loads.iter().enumerate() {
            if i != ctx.whoami && l < avg {
                targets[i] = (avg - l) * self.need_min;
            }
        }
        // Never plan to send more than we have above the average.
        let surplus = loads[ctx.whoami] - avg;
        let planned: f64 = targets.iter().sum();
        if planned > surplus && planned > 0.0 {
            let scale = surplus / planned;
            for t in &mut targets {
                *t *= scale;
            }
        }
        if targets.iter().all(|&t| t <= 0.0) {
            return Ok(None);
        }
        Ok(Some(MigrationPlan {
            targets,
            selectors: Rc::from([DirfragSelector::BigFirst.into()]),
        }))
    }
}

// ---------------------------------------------------------------------------
// The Mantle balancer: injected policy scripts.
// ---------------------------------------------------------------------------

/// A balancer whose policies are injected Lua-subset scripts executed by
/// [`mantle_policy`].
pub struct MantleBalancer {
    name: String,
    runtime: MantleRuntime,
    selectors: Rc<[SelectorKind]>,
}

impl std::fmt::Debug for MantleBalancer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MantleBalancer")
            .field("name", &self.name)
            .field("selectors", &self.selectors)
            .finish_non_exhaustive()
    }
}

impl MantleBalancer {
    /// Wrap a compiled policy set. The policy is validated first — the
    /// §4.4 safety simulator runs before anything reaches the cluster.
    pub fn new(name: impl Into<String>, policy: PolicySet) -> PolicyResult<Self> {
        PolicyValidator::new().validate(&policy)?;
        Self::new_unvalidated(name, policy)
    }

    /// Wrap a policy set without dry-run validation (tests of pathological
    /// policies use this; production callers want [`MantleBalancer::new`]).
    pub fn new_unvalidated(name: impl Into<String>, policy: PolicySet) -> PolicyResult<Self> {
        let selectors = policy
            .howmuch
            .iter()
            .map(|name| {
                if let Some(builtin) = DirfragSelector::parse(name) {
                    return Ok(SelectorKind::Builtin(builtin));
                }
                policy
                    .custom_selectors
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(n, script)| {
                        SelectorKind::Scripted(Rc::new(ScriptedSelector {
                            name: n.clone(),
                            script: script.clone(),
                        }))
                    })
                    .ok_or_else(|| PolicyError::Rejected {
                        reason: format!("unknown dirfrag selector '{name}'"),
                    })
            })
            .collect::<PolicyResult<Vec<_>>>()?;
        let selectors: Rc<[SelectorKind]> = if selectors.is_empty() {
            Rc::from([DirfragSelector::BigFirst.into()])
        } else {
            selectors.into()
        };
        Ok(MantleBalancer {
            name: name.into(),
            runtime: MantleRuntime::new(policy),
            selectors,
        })
    }

    /// Evaluate hooks on the legacy tree-walking interpreter instead of
    /// the default bytecode engine. Differential testing only — the
    /// engines are pinned byte-identical.
    pub fn with_force_slow_path(mut self, force: bool) -> Self {
        self.runtime = self.runtime.with_force_slow_path(force);
        self
    }

    /// Select the policy evaluation engine explicitly (bytecode by
    /// default; tree walker and slot evaluator are kept as differential
    /// oracles, like `SchedulerKind::Heap` against the timing wheel).
    pub fn with_engine(mut self, engine: HookEngine) -> Self {
        self.runtime = self.runtime.with_engine(engine);
        self
    }

    /// The engine policy hooks currently run on.
    pub fn engine(&self) -> HookEngine {
        self.runtime.engine()
    }

    fn inputs(ctx: &BalanceContext) -> BalancerInputs {
        let mds = ctx
            .heartbeats
            .iter()
            .map(|hb| MdsMetrics {
                auth: hb.auth_metaload,
                all: hb.all_metaload,
                cpu: hb.cpu,
                mem: hb.mem,
                q: hb.queue_len,
                req: hb.req_rate,
                cache_hits: hb.cache_hits,
                cache_misses: hb.cache_misses,
            })
            .collect();
        BalancerInputs {
            whoami: ctx.whoami,
            mds,
            auth_metaload: ctx.heartbeats[ctx.whoami].auth_metaload,
            all_metaload: ctx.heartbeats[ctx.whoami].all_metaload,
        }
    }
}

impl Balancer for MantleBalancer {
    fn name(&self) -> &str {
        &self.name
    }

    fn metaload(&self, heat: &HeatSample) -> PolicyResult<f64> {
        self.runtime.eval_metaload(
            0,
            &FragMetrics {
                ird: heat.ird,
                iwr: heat.iwr,
                readdir: heat.readdir,
                fetch: heat.fetch,
                store: heat.store,
            },
        )
    }

    fn metaload_is_additive(&self) -> bool {
        self.runtime.metaload_is_additive()
    }

    fn decide(&mut self, ctx: &BalanceContext) -> PolicyResult<Option<MigrationPlan>> {
        if ctx.heartbeats.is_empty() {
            return Ok(None);
        }
        let outcome = self.runtime.decide(&Self::inputs(ctx))?;
        if !outcome.migrate {
            return Ok(None);
        }
        Ok(Some(MigrationPlan {
            targets: outcome.targets,
            // Reference-count bump, not a per-decision vector copy.
            selectors: Rc::clone(&self.selectors),
        }))
    }

    fn howmany(
        &mut self,
        ctx: &BalanceContext,
        active: usize,
        min_mds: usize,
        max_mds: usize,
    ) -> PolicyResult<Option<f64>> {
        if ctx.heartbeats.is_empty() {
            return Ok(None);
        }
        self.runtime
            .eval_howmany(&Self::inputs(ctx), active, min_mds, max_mds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantle_sim::SimTime;

    fn hb(auth: f64, q: f64, req: f64) -> Heartbeat {
        Heartbeat {
            auth_metaload: auth,
            all_metaload: auth,
            cpu: 0.0,
            mem: 0.0,
            queue_len: q,
            req_rate: req,
            cache_hits: 0.0,
            cache_misses: 0.0,
            taken_at: SimTime::ZERO,
        }
    }

    #[test]
    fn cephfs_mdsload_formula() {
        let h = hb(10.0, 2.0, 5.0);
        // 0.8*10 + 0.2*10 + 5 + 10*2 = 35
        assert!((CephfsBalancer::mds_load(&h) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn cephfs_when_only_fires_above_average() {
        let mut b = CephfsBalancer::default();
        let ctx = BalanceContext {
            whoami: 1,
            heartbeats: vec![hb(90.0, 0.0, 0.0), hb(5.0, 0.0, 0.0), hb(5.0, 0.0, 0.0)].into(),
        };
        assert!(b.decide(&ctx).unwrap().is_none(), "cold MDS stays put");
        let ctx_hot = BalanceContext { whoami: 0, ..ctx };
        let plan = b.decide(&ctx_hot).unwrap().expect("hot MDS exports");
        assert_eq!(plan.targets[0], 0.0);
        assert!(plan.targets[1] > 0.0 && plan.targets[2] > 0.0);
        assert_eq!(plan.selectors.as_ref(), [DirfragSelector::BigFirst.into()]);
    }

    #[test]
    fn cephfs_targets_scaled_by_need_min() {
        let mut b = CephfsBalancer { need_min: 0.8 };
        let ctx = BalanceContext {
            whoami: 0,
            heartbeats: vec![hb(100.0, 0.0, 0.0), hb(0.0, 0.0, 0.0)].into(),
        };
        let plan = b.decide(&ctx).unwrap().unwrap();
        // avg = 50; raw target = 50; scaled = 40; surplus = 50 → stays 40.
        assert!((plan.targets[1] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn cephfs_never_ships_more_than_surplus() {
        let mut b = CephfsBalancer { need_min: 1.0 };
        // avg = 40; self surplus = 20; two cold MDSs "want" 35+25=60.
        let ctx = BalanceContext {
            whoami: 0,
            heartbeats: vec![
                hb(60.0, 0.0, 0.0),
                hb(5.0, 0.0, 0.0),
                hb(15.0, 0.0, 0.0),
                hb(80.0, 0.0, 0.0),
            ]
            .into(),
        };
        let plan = b.decide(&ctx).unwrap().unwrap();
        let planned: f64 = plan.targets.iter().sum();
        assert!(planned <= 20.0 + 1e-9, "planned {planned}");
        assert_eq!(plan.targets[3], 0.0, "hotter MDS gets nothing");
    }

    #[test]
    fn cephfs_when_is_quiet_at_the_zero_load_boundary() {
        // An entirely idle cluster: every load is 0, so the average is 0
        // and `loads[whoami] <= avg` holds on every rank — the `when`
        // predicate must not fire (and must not divide by the zero total).
        let mut b = CephfsBalancer::default();
        for whoami in 0..3 {
            let ctx = BalanceContext {
                whoami,
                heartbeats: vec![hb(0.0, 0.0, 0.0); 3].into(),
            };
            assert!(
                b.decide(&ctx).unwrap().is_none(),
                "idle MDS {whoami} must stay put"
            );
        }
    }

    #[test]
    fn cephfs_when_is_quiet_exactly_at_average() {
        // Perfectly balanced load: everyone sits exactly on the average,
        // and the strict `>` keeps every rank quiet — no migration storms
        // from rounding a flat cluster.
        let mut b = CephfsBalancer::default();
        let ctx = BalanceContext {
            whoami: 0,
            heartbeats: vec![hb(40.0, 0.0, 0.0); 4].into(),
        };
        assert!(b.decide(&ctx).unwrap().is_none());
    }

    #[test]
    fn cephfs_barely_above_average_exports_a_sliver() {
        // Just past the boundary: an epsilon of surplus produces a plan
        // whose total never exceeds that surplus.
        let mut b = CephfsBalancer { need_min: 1.0 };
        let ctx = BalanceContext {
            whoami: 0,
            heartbeats: vec![hb(40.1, 0.0, 0.0), hb(39.9, 0.0, 0.0)].into(),
        };
        let plan = b.decide(&ctx).unwrap().expect("above average fires");
        let planned: f64 = plan.targets.iter().sum();
        let surplus = 0.1; // load 40.1 (×0.8 auth + 0.2 all) vs avg 40.0
        assert!(
            planned > 0.0 && planned <= surplus + 1e-9,
            "planned {planned}"
        );
    }

    #[test]
    fn cephfs_single_mds_never_migrates() {
        let mut b = CephfsBalancer::default();
        let ctx = BalanceContext {
            whoami: 0,
            heartbeats: vec![hb(100.0, 5.0, 5.0)].into(),
        };
        assert!(b.decide(&ctx).unwrap().is_none());
    }

    #[test]
    fn mantle_balancer_from_greedy_spill() {
        let policy = PolicySet::from_combined(
            "IWR",
            "MDSs[i][\"all\"]",
            r#"
if MDSs[whoami]["load"]>.01 and whoami < #MDSs and MDSs[whoami+1]["load"]<.01 then
  targets[whoami+1]=allmetaload/2
end
"#,
            &["half"],
        )
        .unwrap();
        let mut b = MantleBalancer::new("greedy-spill", policy).unwrap();
        assert_eq!(b.name(), "greedy-spill");
        let ctx = BalanceContext {
            whoami: 0,
            heartbeats: vec![hb(50.0, 0.0, 0.0), hb(0.0, 0.0, 0.0)].into(),
        };
        let plan = b.decide(&ctx).unwrap().expect("spills");
        assert_eq!(plan.targets[1], 25.0);
        assert_eq!(plan.selectors.as_ref(), [DirfragSelector::Half.into()]);
        // Neighbour busy → idle.
        let ctx2 = BalanceContext {
            whoami: 0,
            heartbeats: vec![hb(50.0, 0.0, 0.0), hb(50.0, 0.0, 0.0)].into(),
        };
        assert!(b.decide(&ctx2).unwrap().is_none());
    }

    #[test]
    fn mantle_metaload_uses_script() {
        let policy =
            PolicySet::from_combined("IRD + 2*IWR", "MDSs[i][\"all\"]", "x = 1", &["big_first"])
                .unwrap();
        let b = MantleBalancer::new_unvalidated("m", policy).unwrap();
        let heat = HeatSample {
            ird: 3.0,
            iwr: 5.0,
            ..Default::default()
        };
        assert_eq!(b.metaload(&heat).unwrap(), 13.0);
    }

    #[test]
    fn bad_selector_name_rejected() {
        let policy = PolicySet::from_combined(
            "IWR",
            "MDSs[i][\"all\"]",
            "x = 1",
            &["biggest_first_totally_real"],
        )
        .unwrap();
        assert!(MantleBalancer::new_unvalidated("m", policy).is_err());
    }

    #[test]
    fn validation_runs_on_construction() {
        let policy =
            PolicySet::from_combined("IWR", "MDSs[i][\"all\"]", "while 1 do end", &["half"])
                .unwrap();
        assert!(MantleBalancer::new("evil", policy).is_err());
    }

    #[test]
    fn howmany_default_is_none_and_mantle_hook_scales() {
        let ctx = BalanceContext {
            whoami: 0,
            heartbeats: vec![hb(40.0, 0.0, 0.0), hb(20.0, 0.0, 0.0)].into(),
        };
        let mut cephfs = CephfsBalancer::default();
        assert_eq!(cephfs.howmany(&ctx, 2, 1, 4).unwrap(), None);

        let policy = PolicySet::from_combined("IWR", "MDSs[i][\"all\"]", "x = 1", &["half"])
            .unwrap()
            .with_howmany("max(min_mds, min(max_mds, total / 20))")
            .unwrap();
        let mut b = MantleBalancer::new("scaler", policy).unwrap();
        // mdsload = all = {40, 20}; total 60; 60/20 = 3 within [1, 4].
        assert_eq!(b.howmany(&ctx, 2, 1, 4).unwrap(), Some(3.0));
    }

    #[test]
    fn plan_total_target() {
        let p = MigrationPlan {
            targets: vec![0.0, 2.5, 1.5],
            selectors: Rc::from([DirfragSelector::Half.into()]),
        };
        assert_eq!(p.total_target(), 4.0);
    }
}
