//! Live-service plumbing: the channel types that let a long-running
//! daemon feed a *running* cluster engine — injected client ops, hot
//! policy installs, live trace/completion streams — without forking the
//! engine itself.
//!
//! # Shape
//!
//! The engine keeps its exact batch-mode event loop (windows + exclusive
//! steps, see [`crate::cluster`]); a [`LiveService`] merely hooks the top
//! and bottom of each scheduler iteration:
//!
//! * **inbound** — commands submitted through a [`ServiceHandle`] are
//!   drained between windows: ops are resolved against the namespace and
//!   pushed into the per-client queues of a [`LiveWorkload`] (clients
//!   park-and-poll on those queues via [`Workload::next_ready_at`]), and
//!   policy installs are scheduled as admin events so the swap runs in
//!   the coordinator's exclusive step like every other control-plane
//!   mutation.
//! * **outbound** — each iteration the pump drains newly-emitted trace
//!   records (already in global `(time, key)` order) and live op
//!   completions into an [`mpsc`](std::sync::mpsc) stream of
//!   [`ServiceEvent`]s the daemon forwards to subscribers.
//!
//! With [`ClockMode::Wall`] the pump additionally sleeps until the next
//! event's wall deadline (interruptibly — a submitted command wakes it),
//! so simulated time tracks real time. With [`ClockMode::Sim`] the pump
//! never sleeps and an idle service with no live clients behaves exactly
//! like the batch engine — `tests/daemon_equivalence.rs` pins that the
//! reports are byte-identical.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

use mantle_namespace::{MdsId, Namespace, NodeId, OpKind};
use mantle_policy::env::PolicySet;
use mantle_policy::HookEngine;
use mantle_sim::{ClockMode, SimTime};

use crate::client::{ClientOp, Workload};
use crate::trace::TraceRecord;

/// A command sent into the running engine (daemon → engine).
pub(crate) enum ServiceCmd {
    /// Inject one metadata op for `client`; the engine resolves `path`
    /// (creating missing parents) and enqueues it on the client's live
    /// queue.
    Op {
        /// Target client slot.
        client: usize,
        /// Directory path the op targets.
        path: String,
        /// What the op does.
        kind: OpKind,
    },
    /// Hot-install a new (already validated) policy on every MDS in the
    /// coordinator's next exclusive step.
    Install {
        /// Policy name for reports and trace records.
        name: String,
        /// Install epoch assigned by the daemon's `PolicyCell`.
        epoch: u64,
        /// The compiled, validated policy.
        set: PolicySet,
        /// Hook engine the new balancers should run on.
        engine: HookEngine,
        /// Acked with the simulated install instant, or an error.
        ack: Sender<Result<SimTime, String>>,
    },
    /// Close the live queues: clients drain and the run ends normally.
    Shutdown,
}

/// An event streamed out of the running engine (engine → daemon).
#[derive(Debug)]
pub enum ServiceEvent {
    /// Trace records emitted since the last batch, in global
    /// `(time, key)` order; batches are themselves time-ordered, so
    /// concatenating them reproduces the batch-mode trace stream.
    Trace(Vec<TraceRecord>),
    /// Live ops completed since the last batch.
    Completions(Vec<LiveCompletion>),
}

/// One completed live op, as observed by the issuing client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveCompletion {
    /// The issuing client slot.
    pub client: usize,
    /// The MDS that ultimately served the op.
    pub mds: MdsId,
    /// What the op did.
    pub kind: OpKind,
    /// The directory it targeted.
    pub dir: NodeId,
    /// Completion instant (simulated; tracks wall time under
    /// [`ClockMode::Wall`]).
    pub at: SimTime,
    /// Client-observed latency in milliseconds.
    pub latency_ms: f64,
}

/// The command inbox shared between handle and pump. The condvar wakes a
/// wall-clock pump sleeping until the next event deadline, so a newly
/// submitted op is picked up immediately instead of after the sleep.
#[derive(Default)]
pub(crate) struct Inbox {
    pub(crate) queue: Mutex<VecDeque<ServiceCmd>>,
    pub(crate) signal: Condvar,
}

impl Inbox {
    fn push(&self, cmd: ServiceCmd) {
        self.queue
            .lock()
            .expect("service inbox never poisoned")
            .push_back(cmd);
        self.signal.notify_all();
    }
}

/// Per-client live op queues, shared by every shard's [`LiveWorkload`]
/// fork and the service pump (which pushes resolved ops).
pub(crate) struct LiveQueues {
    pub(crate) queues: Vec<Mutex<VecDeque<ClientOp>>>,
    pub(crate) closed: AtomicBool,
}

impl LiveQueues {
    fn new(num_clients: usize) -> Self {
        LiveQueues {
            queues: (0..num_clients)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            closed: AtomicBool::new(false),
        }
    }
}

/// A [`Workload`] fed at runtime instead of generated: each client owns a
/// queue of injected ops and parks (re-polling every `poll` of simulated
/// time) while its queue is empty. Closing the queues ends every client's
/// stream, so a live run drains and terminates exactly like a batch run.
pub struct LiveWorkload {
    shared: Arc<LiveQueues>,
    poll: SimTime,
}

impl Workload for LiveWorkload {
    fn num_clients(&self) -> usize {
        self.shared.queues.len()
    }

    fn setup(&mut self, _ns: &mut Namespace) {}

    fn next(&mut self, client: usize, _ns: &Namespace, _now: SimTime) -> Option<ClientOp> {
        let mut q = self.shared.queues[client]
            .lock()
            .expect("live queue never poisoned");
        // `next_ready_at` parks the client while its queue is empty and
        // open, so reaching here with an empty queue means closed (or a
        // benign submit/close race, where ending the client is also the
        // right answer).
        q.pop_front()
    }

    fn next_ready_at(&mut self, client: usize, now: SimTime) -> Option<SimTime> {
        let q = self.shared.queues[client]
            .lock()
            .expect("live queue never poisoned");
        if q.is_empty() && !self.shared.closed.load(Ordering::Acquire) {
            Some(now + self.poll)
        } else {
            None
        }
    }

    fn fork(&self) -> Box<dyn Workload> {
        Box::new(LiveWorkload {
            shared: Arc::clone(&self.shared),
            poll: self.poll,
        })
    }

    fn name(&self) -> &str {
        "live"
    }
}

/// The engine side of a live service: handed to
/// [`crate::cluster::Cluster::serve`], which pumps it every scheduler
/// iteration. Create one with [`LiveService::new`]; the paired
/// [`ServiceHandle`] goes to the connection-handling side.
pub struct LiveService {
    pub(crate) inbox: Arc<Inbox>,
    pub(crate) events: Sender<ServiceEvent>,
    pub(crate) clock: ClockMode,
    pub(crate) queues: Option<Arc<LiveQueues>>,
}

impl LiveService {
    /// Build a service and its handle. `clock` picks batch speed
    /// ([`ClockMode::Sim`]) or wall pacing ([`ClockMode::Wall`]).
    pub fn new(clock: ClockMode) -> (LiveService, ServiceHandle) {
        let inbox = Arc::new(Inbox::default());
        let (tx, rx) = channel();
        (
            LiveService {
                inbox: Arc::clone(&inbox),
                events: tx,
                clock,
                queues: None,
            },
            ServiceHandle { inbox, events: rx },
        )
    }

    /// Create the live workload this service feeds: `sessions` client
    /// slots, each re-polling its queue every `poll` of simulated time
    /// while idle. Pass the result to [`crate::cluster::Cluster::new`].
    /// A service without a live workload (scenario mode) still pumps
    /// commands and streams events, but [`ServiceHandle::submit_op`] has
    /// no queues to land in.
    pub fn workload(&mut self, sessions: usize, poll: SimTime) -> Box<dyn Workload> {
        let q = Arc::new(LiveQueues::new(sessions));
        self.queues = Some(Arc::clone(&q));
        Box::new(LiveWorkload {
            shared: q,
            poll: poll.max(SimTime::from_micros(1)),
        })
    }
}

/// The daemon side of a live service: submit ops and installs, receive
/// the event stream. Cheap to clone for per-connection use; the event
/// receiver stays with the original handle.
pub struct ServiceHandle {
    inbox: Arc<Inbox>,
    /// Trace/completion batches emitted by the engine, in order.
    pub events: Receiver<ServiceEvent>,
}

impl ServiceHandle {
    /// Inject one op for `client`. The engine resolves the path when it
    /// drains the command; completions come back as
    /// [`ServiceEvent::Completions`] in submission order per client
    /// (clients are closed-loop: one outstanding op each).
    pub fn submit_op(&self, client: usize, path: impl Into<String>, kind: OpKind) {
        self.inbox.push(ServiceCmd::Op {
            client,
            path: path.into(),
            kind,
        });
    }

    /// Hot-install `set` (validated by the caller — see
    /// [`mantle_policy::install::prepare`]) on every MDS. Returns a
    /// receiver acked with the simulated install instant once the swap
    /// has run in the coordinator's exclusive step.
    pub fn install_policy(
        &self,
        name: impl Into<String>,
        epoch: u64,
        set: PolicySet,
        engine: HookEngine,
    ) -> Receiver<Result<SimTime, String>> {
        let (tx, rx) = channel();
        self.inbox.push(ServiceCmd::Install {
            name: name.into(),
            epoch,
            set,
            engine,
            ack: tx,
        });
        rx
    }

    /// Ask the engine to shut down cleanly: live queues close, clients
    /// drain their remaining ops, and the run ends with a normal
    /// [`crate::report::RunReport`].
    pub fn shutdown(&self) {
        self.inbox.push(ServiceCmd::Shutdown);
    }

    /// A sender-only clone for additional connections.
    pub fn sender(&self) -> ServiceSender {
        ServiceSender {
            inbox: Arc::clone(&self.inbox),
        }
    }
}

/// A cloneable, send-only view of a [`ServiceHandle`].
#[derive(Clone)]
pub struct ServiceSender {
    inbox: Arc<Inbox>,
}

impl ServiceSender {
    /// See [`ServiceHandle::submit_op`].
    pub fn submit_op(&self, client: usize, path: impl Into<String>, kind: OpKind) {
        self.inbox.push(ServiceCmd::Op {
            client,
            path: path.into(),
            kind,
        });
    }

    /// See [`ServiceHandle::install_policy`].
    pub fn install_policy(
        &self,
        name: impl Into<String>,
        epoch: u64,
        set: PolicySet,
        engine: HookEngine,
    ) -> Receiver<Result<SimTime, String>> {
        let (tx, rx) = channel();
        self.inbox.push(ServiceCmd::Install {
            name: name.into(),
            epoch,
            set,
            engine,
            ack: tx,
        });
        rx
    }

    /// See [`ServiceHandle::shutdown`].
    pub fn shutdown(&self) {
        self.inbox.push(ServiceCmd::Shutdown);
    }
}
