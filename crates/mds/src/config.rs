//! Cluster configuration: topology, service-cost model, and balancer
//! cadence. Defaults are calibrated so the paper's shapes come out (a
//! single MDS saturates at ≈4 create clients, Fig. 5; distribution
//! overheads make spilling to 2 MDSs a win and to 4 a loss, Fig. 8).

use mantle_namespace::{IndexMode, OpKind};
use mantle_sim::{SchedulerKind, SimTime};

use crate::faults::FaultPlan;

/// How metadata is placed on MDS nodes when no balancer moves it.
///
/// `Subtree` is CephFS's dynamic subtree partitioning (everything starts
/// on MDS 0 and moves only when a balancer exports it). `HashDirs` is the
/// related-work baseline (§5 "Compute it – Hashing", PVFSv2/SkyFS-style):
/// every directory is pinned to `hash(dir) % num_mds` the moment its
/// first request is served — perfectly balanced, zero locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Dynamic subtree partitioning (the paper's system).
    #[default]
    Subtree,
    /// Hash every directory across the cluster.
    HashDirs,
}

/// How the event loop executes a run.
///
/// Both modes drive the *same* windowed engine (conservative lookahead
/// windows separated by deterministic barriers — see [`crate::shard`]);
/// `Single` runs the one resulting shard inline on the calling thread,
/// `Sharded` partitions MDSs and clients across `threads` worker threads.
/// Window boundaries, event keys, and barrier application order are all
/// shard-count-invariant, so a fixed seed produces a byte-identical
/// [`crate::report::RunReport`] (and trace) in every mode — `Single` is
/// the differential oracle for `Sharded { .. }`, exactly as the heap
/// scheduler is for the timing wheel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One shard, driven inline — no threads, no locks contended.
    #[default]
    Single,
    /// Thread-per-shard execution with deterministic tick barriers.
    Sharded {
        /// Number of worker threads (shards). Clamped to ≥ 1.
        threads: usize,
    },
}

impl ExecMode {
    /// Number of shards this mode partitions the cluster into.
    pub fn shards(self) -> usize {
        match self {
            ExecMode::Single => 1,
            ExecMode::Sharded { threads } => threads.max(1),
        }
    }
}

/// Full configuration of one simulated cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of MDS nodes.
    pub num_mds: usize,
    /// Initial metadata placement.
    pub placement: PlacementPolicy,
    /// Master RNG seed; every component derives its own stream from it.
    pub seed: u64,
    /// Heartbeat / balancer cadence (10 s in CephFS).
    pub heartbeat_interval: SimTime,
    /// One-way client↔MDS network latency.
    pub client_latency: SimTime,
    /// One-way MDS↔MDS hop latency (forwards, migrations).
    pub mds_hop_latency: SimTime,
    /// Service cost model.
    pub costs: CostModel,
    /// Directory fragmentation threshold (entries per dirfrag before it
    /// splits; §4.1 uses 50 000 — experiments scale this with file counts).
    pub frag_split_threshold: u64,
    /// Half life of the popularity counters.
    pub decay_half_life: SimTime,
    /// Std-dev of the multiplicative noise on instantaneous CPU
    /// measurements (§2.2.2's "influenced by the measurement tool").
    pub cpu_noise: f64,
    /// Multiplicative sampling noise on the heartbeat's metadata-load
    /// metrics. The paper's balancer reads counters at an instant and
    /// ships them in heartbeats; this noise (together with stale views) is
    /// why "the balancing behavior is not reproducible" (Fig. 4).
    pub metaload_noise: f64,
    /// Hard stop for a run (safety net; most runs end when the workload
    /// drains).
    pub max_duration: SimTime,
    /// Deterministic fault schedule plus degradation knobs (client
    /// timeouts, retry backoff, balancer fallback). The default plan is
    /// inert.
    pub faults: FaultPlan,
    /// Which namespace index machinery to run on: the incremental indexes
    /// (default) or the retained walk-based oracle paths, for differential
    /// testing — a fixed seed must produce an identical `RunReport` in
    /// either mode.
    pub index_mode: IndexMode,
    /// Event-queue backend: the binary heap (default, the differential
    /// oracle) or the hierarchical timing wheel for scale-mode runs. A
    /// fixed seed must produce an identical `RunReport` on either.
    pub scheduler: SchedulerKind,
    /// Execution mode: single-threaded (default, the differential oracle)
    /// or thread-per-shard. A fixed seed must produce an identical
    /// `RunReport` in either mode, at any thread count.
    pub exec_mode: ExecMode,
    /// The proxy-tier read cache in front of the cluster
    /// ([`crate::cache`]). **Inert by default** — with
    /// `cache.enabled == false` no cache state is allocated, no extra
    /// events are scheduled, and every fixed-seed run is byte-identical
    /// to a build without the cache layer.
    pub cache: CacheConfig,
    /// Elastic cluster membership driven by the `howmany` policy hook.
    /// **Inert by default** — with `elastic.enabled == false` every MDS
    /// in `0..num_mds` is a member for the whole run, no membership
    /// events fire, and every pre-existing fixed-seed run is
    /// byte-identical to a build without the elastic layer.
    pub elastic: ElasticConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_mds: 1,
            placement: PlacementPolicy::default(),
            seed: 42,
            heartbeat_interval: SimTime::from_secs(10),
            client_latency: SimTime::from_millis(0), // sub-ms; see CostModel
            mds_hop_latency: SimTime::from_millis(0),
            costs: CostModel::default(),
            frag_split_threshold: 2_000,
            decay_half_life: SimTime::from_secs(10),
            cpu_noise: 0.05,
            metaload_noise: 0.15,
            max_duration: SimTime::from_mins(60),
            faults: FaultPlan::default(),
            index_mode: IndexMode::default(),
            scheduler: SchedulerKind::default(),
            exec_mode: ExecMode::default(),
            cache: CacheConfig::default(),
            elastic: ElasticConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// Convenience: set the MDS count.
    pub fn with_mds(mut self, n: usize) -> Self {
        self.num_mds = n;
        self
    }

    /// Convenience: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Convenience: install a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Convenience: pick the namespace index machinery.
    pub fn with_index_mode(mut self, mode: IndexMode) -> Self {
        self.index_mode = mode;
        self
    }

    /// Convenience: pick the event-queue backend.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Convenience: pick the execution mode.
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Convenience: run sharded across `threads` worker threads
    /// (`threads <= 1` selects the inline single-threaded driver).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.exec_mode = if threads <= 1 {
            ExecMode::Single
        } else {
            ExecMode::Sharded { threads }
        };
        self
    }

    /// Convenience: install a cache-tier configuration.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Convenience: install an elastic-membership configuration.
    pub fn with_elastic(mut self, elastic: ElasticConfig) -> Self {
        self.elastic = elastic;
        self
    }
}

/// Configuration of the proxy-tier read cache ([`crate::cache`]).
///
/// The default is **inert** (`enabled == false`): the cache layer is
/// compiled in but allocates no state and changes no behavior, so every
/// pre-existing fixed-seed run stays byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Master switch. Off by default.
    pub enabled: bool,
    /// Max entries per group cache (LRU eviction beyond this).
    pub capacity: usize,
    /// Number of proxy groups; clients are split into contiguous
    /// ranges, one [`crate::cache::GroupCache`] each.
    pub groups: usize,
    /// Client-observed latency of a cache hit, µs (round trip to the
    /// proxy plus its service time). Hits never enqueue at an MDS, so
    /// this replaces the whole `rtt + queue + service` miss path.
    pub hit_us: f64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: false,
            capacity: 4096,
            groups: 4,
            hit_us: 60.0,
        }
    }
}

impl CacheConfig {
    /// An enabled cache tier with the default sizing.
    pub fn on() -> Self {
        CacheConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// How a joining MDS picks the subtrees re-homed onto it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinPolicy {
    /// Rendezvous (highest-random-weight) hashing over the member set:
    /// every top-level export candidate whose owner-of-record becomes the
    /// new member moves — and nothing else does, which is the minimal
    /// re-homing set (pinned by a property test against a full-recompute
    /// oracle).
    #[default]
    ConsistentHash,
    /// Move the single largest subtree (by policy metaload) off the most
    /// loaded member — the dynamic-subtree-partitioning flavour of join.
    LargestSubtree,
}

/// Configuration of elastic cluster membership ([`crate::cluster`]).
///
/// `num_mds` stays the fixed *pool* size — every per-MDS array, shard
/// partition, and cache group keeps its shape — while membership becomes a
/// versioned subset of the pool. The `howmany` policy hook picks a target
/// member count each heartbeat; the coordinator then performs at most one
/// join (re-home subtrees onto the lowest-id spare via the migration
/// machinery) or one leave (drain the highest-id member, then deregister)
/// per tick.
///
/// The default is **inert** (`enabled == false`): all `num_mds` MDSs are
/// members from the start and membership never changes, so every
/// pre-existing fixed-seed run stays byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElasticConfig {
    /// Master switch. Off by default.
    pub enabled: bool,
    /// Fewest members allowed (≥ 1; MDS 0 never leaves).
    pub min_mds: usize,
    /// Most members allowed; clamped to `num_mds` at runtime.
    pub max_mds: usize,
    /// Member count at t = 0, clamped into `[min_mds, max_mds]`. Members
    /// are always the lowest-id MDSs first, so the initial set is
    /// `0..initial_mds`.
    pub initial_mds: usize,
    /// How join selects subtrees for the new member.
    pub join_policy: JoinPolicy,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            enabled: false,
            min_mds: 1,
            max_mds: usize::MAX,
            initial_mds: 1,
            join_policy: JoinPolicy::default(),
        }
    }
}

impl ElasticConfig {
    /// An enabled elastic tier: start at one member, scale anywhere in
    /// `[1, num_mds]`, consistent-hash re-homing.
    pub fn on() -> Self {
        ElasticConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// The effective `[min, max]` member bounds for a pool of `num_mds`.
    pub fn bounds(&self, num_mds: usize) -> (usize, usize) {
        let max = self.max_mds.min(num_mds).max(1);
        let min = self.min_mds.clamp(1, max);
        (min, max)
    }

    /// The initial member count for a pool of `num_mds`.
    pub fn initial(&self, num_mds: usize) -> usize {
        if !self.enabled {
            return num_mds;
        }
        let (min, max) = self.bounds(num_mds);
        self.initial_mds.clamp(min, max)
    }
}

/// Service-time and overhead model, all in **microseconds** (the
/// simulation clock is milliseconds; sub-ms costs accumulate in the
/// per-MDS busy accounting and are rounded at scheduling boundaries).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Service time of a create, µs.
    pub create_us: f64,
    /// Service time of a stat/lookup/open, µs.
    pub stat_us: f64,
    /// Service time of a setattr/unlink, µs.
    pub setattr_us: f64,
    /// Base service time of a readdir, µs.
    pub readdir_us: f64,
    /// Service time of a mkdir, µs.
    pub mkdir_us: f64,
    /// Client think time + round trip per op, µs (closed loop: a client's
    /// unloaded rate is `1e6 / (rtt_us + service)` ops/s).
    pub rtt_us: f64,
    /// Wasted service on the *wrong* MDS when it forwards a request, µs.
    pub forward_us: f64,
    /// Extra one-way latency of a forward hop, µs.
    pub forward_hop_us: f64,
    /// Per-op coherency surcharge coefficient. An op on a directory whose
    /// fragments span `k` MDSs costs `service × (1 + c·(k-1)²)` —
    /// scatter-gather with the authority and session maintenance grow
    /// superlinearly with the span (§4.1 footnote 3; the 323→936 session
    /// growth). The quadratic form is what makes spilling to 2 MDSs a win
    /// while spilling to 4 loses 20–40 % (Fig. 8).
    pub coherency_per_span: f64,
    /// Two-phase-commit fixed cost of a migration: the subtree is frozen
    /// for this long, µs.
    pub migrate_fixed_us: f64,
    /// Additional freeze per inode migrated, µs.
    pub migrate_per_inode_us: f64,
    /// Each client session flushed during a migration stalls that client
    /// this long, µs (halt updates → send stats → wait for authority).
    pub session_flush_us: f64,
    /// Cost charged to the auth MDS when a directory fragments, µs.
    pub split_us: f64,
    /// Surcharge on ops served while the target directory's ancestor
    /// prefix is not yet replicated locally (right after an import): the
    /// path traversal resolves through the remote authority — the locality
    /// cost of §2.1 and the "forwards" of Fig. 3b.
    pub remote_prefix_penalty: f64,
    /// How long after an import the ancestor-prefix replicas take to warm
    /// up, µs. Frequent migrations keep paying this; a clean one-time
    /// handoff pays it once.
    pub prefix_warmup_us: f64,
    /// Convex load penalty: each queued request inflates service time by
    /// this fraction (lock contention and cache pressure on an overloaded
    /// MDS — why Fig. 5's latency grows superlinearly past saturation).
    pub contention_per_queued: f64,
    /// Queue depth beyond which the contention penalty stops growing.
    pub contention_cap: f64,
    /// Std-dev of multiplicative service-time noise (seeded).
    pub service_noise: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            create_us: 200.0,
            stat_us: 90.0,
            setattr_us: 140.0,
            readdir_us: 250.0,
            mkdir_us: 260.0,
            rtt_us: 500.0,
            forward_us: 60.0,
            forward_hop_us: 350.0,
            coherency_per_span: 0.10,
            migrate_fixed_us: 50_000.0,
            migrate_per_inode_us: 4.0,
            session_flush_us: 15_000.0,
            split_us: 3_000.0,
            remote_prefix_penalty: 0.30,
            prefix_warmup_us: 2_000_000.0,
            contention_per_queued: 0.05,
            contention_cap: 6.0,
            service_noise: 0.12,
        }
    }
}

impl CostModel {
    /// Base service time for an op, µs.
    pub fn service_us(&self, op: OpKind) -> f64 {
        match op {
            OpKind::Create => self.create_us,
            OpKind::Stat | OpKind::OpenRead => self.stat_us,
            OpKind::SetAttr | OpKind::Unlink => self.setattr_us,
            OpKind::Readdir => self.readdir_us,
            OpKind::Mkdir => self.mkdir_us,
        }
    }

    /// Service time including the coherency surcharge for a directory
    /// spanning `span` MDS nodes, µs (quadratic in the extra span — see
    /// [`CostModel::coherency_per_span`]).
    pub fn service_with_span(&self, op: OpKind, span: usize) -> f64 {
        let extra_span = span.saturating_sub(1) as f64;
        self.service_us(op) * (1.0 + self.coherency_per_span * extra_span * extra_span)
    }

    /// Contention multiplier for an MDS currently holding `queued`
    /// requests.
    pub fn contention_factor(&self, queued: u64) -> f64 {
        1.0 + self.contention_per_queued * (queued as f64).min(self.contention_cap)
    }

    /// Freeze duration of a migration moving `inodes` inodes, µs.
    pub fn migrate_freeze_us(&self, inodes: u64) -> f64 {
        self.migrate_fixed_us + self.migrate_per_inode_us * inodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ClusterConfig::default();
        assert_eq!(c.num_mds, 1);
        assert!(c.costs.create_us > c.costs.stat_us);
        assert!(c.costs.readdir_us > c.costs.create_us);
    }

    #[test]
    fn single_mds_saturates_around_four_clients() {
        // Fig. 5 calibration: client unloaded rate vs MDS capacity.
        let c = CostModel::default();
        let client_rate = 1e6 / (c.rtt_us + c.create_us);
        let capacity = 1e6 / c.create_us;
        let saturation_clients = capacity / client_rate;
        assert!(
            (3.0..5.5).contains(&saturation_clients),
            "saturation at {saturation_clients:.1} clients"
        );
    }

    #[test]
    fn span_surcharge_grows() {
        let c = CostModel::default();
        let s1 = c.service_with_span(OpKind::Create, 1);
        let s2 = c.service_with_span(OpKind::Create, 2);
        let s4 = c.service_with_span(OpKind::Create, 4);
        assert_eq!(s1, c.create_us);
        assert!(s2 > s1 && s4 > s2);
        // Quadratic in the extra span.
        assert!((s4 - s1 * (1.0 + 9.0 * c.coherency_per_span)).abs() < 1e-9);
        // Superlinear: the marginal cost of the 4th span exceeds the 2nd's.
        assert!(s4 - c.service_with_span(OpKind::Create, 3) > s2 - s1);
    }

    #[test]
    fn migration_freeze_scales_with_size() {
        let c = CostModel::default();
        assert!(c.migrate_freeze_us(10_000) > c.migrate_freeze_us(100));
        assert_eq!(c.migrate_freeze_us(0), c.migrate_fixed_us);
    }

    #[test]
    fn contention_factor_caps() {
        let c = CostModel::default();
        assert_eq!(c.contention_factor(0), 1.0);
        assert!(c.contention_factor(3) > c.contention_factor(1));
        // Capped: queue depths beyond the cap cost the same.
        assert_eq!(
            c.contention_factor(100),
            c.contention_factor(c.contention_cap as u64)
        );
    }

    #[test]
    fn placement_defaults_to_subtree() {
        assert_eq!(ClusterConfig::default().placement, PlacementPolicy::Subtree);
    }

    #[test]
    fn elastic_default_is_inert() {
        let e = ElasticConfig::default();
        assert!(!e.enabled);
        // Inert: the whole pool is the member set.
        assert_eq!(e.initial(4), 4);
        let on = ElasticConfig::on();
        assert_eq!(on.bounds(4), (1, 4));
        assert_eq!(on.initial(4), 1);
        // Bounds clamp into the pool.
        let wide = ElasticConfig {
            enabled: true,
            min_mds: 3,
            max_mds: 100,
            initial_mds: 50,
            ..ElasticConfig::on()
        };
        assert_eq!(wide.bounds(4), (3, 4));
        assert_eq!(wide.initial(4), 4);
    }

    #[test]
    fn builder_helpers() {
        let c = ClusterConfig::default().with_mds(5).with_seed(7);
        assert_eq!(c.num_mds, 5);
        assert_eq!(c.seed, 7);
    }
}
