//! Deterministic fault injection: what can go wrong in a run, as pure
//! data.
//!
//! The paper's robustness story (§3.4, §6) is that Mantle tolerates bad
//! or failing balancers by falling back to the original CephFS balancer,
//! and its evaluation stresses the cluster with skewed load under stale
//! heartbeat views (§2.2.2). A [`FaultPlan`] makes those scenarios
//! reproducible: it is part of [`crate::config::ClusterConfig`], carries
//! no behavior of its own, and every fault fires at a fixed virtual time —
//! so a run with a given `(seed, plan)` is bit-for-bit repeatable.
//!
//! Faults (what breaks):
//! * [`FaultKind::Crash`] / [`FaultKind::Restart`] — an MDS dies (its
//!   subtrees fail over to MDS 0, requests in flight to it are lost and
//!   time out at the clients) and later comes back empty-handed;
//! * [`FaultKind::Slowdown`] — an MDS serves every request slower by a
//!   multiplier over a window (a sick disk, a noisy neighbour);
//! * [`FaultKind::DropHeartbeats`] / [`FaultKind::DelayHeartbeats`] — an
//!   MDS's heartbeats stop reaching (or lag behind) the rest of the
//!   cluster, so balancers decide on stale snapshots of it;
//! * [`FaultKind::PoisonBalancer`] — an MDS's balancer hooks start
//!   erroring mid-run, as if a bad policy had been injected live.
//!
//! Reactions (how the cluster degrades instead of collapsing):
//! * clients time out requests after [`FaultPlan::request_timeout`] and
//!   retry with exponential backoff, re-routing through the mount
//!   authority;
//! * after [`FaultPlan::fallback_after`] consecutive balancer errors an
//!   MDS swaps its balancer for the built-in
//!   [`crate::balancer::CephfsBalancer`] (the §3.4 fallback).
//!
//! The outcome is surfaced in [`crate::report::RunReport`] as the
//! `timeouts`, `retries`, `failovers`, and `balancer_fallbacks` counters.

use mantle_namespace::MdsId;
use mantle_sim::SimTime;

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires (virtual time).
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// The kinds of injectable faults.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The MDS stops serving: requests in flight to it (and anything in
    /// its queue) are lost, and its subtrees fail over to MDS 0. MDS 0 is
    /// the mount authority and cannot crash; a `Crash { mds: 0 }` is
    /// ignored.
    Crash {
        /// The MDS that dies.
        mds: MdsId,
    },
    /// A crashed MDS comes back up with an empty queue and no authority
    /// (the balancers redistribute load to it organically).
    Restart {
        /// The MDS that recovers.
        mds: MdsId,
    },
    /// Every request served by `mds` costs `factor`× its normal service
    /// time until the window closes.
    Slowdown {
        /// The MDS that slows down.
        mds: MdsId,
        /// Service-time multiplier (> 1 slows, e.g. 4.0).
        factor: f64,
        /// How long the slowdown lasts.
        duration: SimTime,
    },
    /// Heartbeats from `mds` stop arriving: for the duration, every other
    /// MDS keeps seeing the last snapshot published *before* the window
    /// opened (frozen, increasingly stale — §2.2.2 taken to the limit).
    DropHeartbeats {
        /// The MDS whose heartbeats are lost.
        mds: MdsId,
        /// How long the outage lasts.
        duration: SimTime,
    },
    /// Heartbeats from `mds` arrive one full interval late: for the
    /// duration, readers see the *previous* tick's snapshot of it.
    DelayHeartbeats {
        /// The MDS whose heartbeats lag.
        mds: MdsId,
        /// How long the lag lasts.
        duration: SimTime,
    },
    /// The MDS's balancer hooks start failing on every tick from now on,
    /// as if a broken policy had been injected live. The per-MDS fallback
    /// (§3.4) eventually swaps in the default CephFS balancer.
    PoisonBalancer {
        /// The MDS whose balancer is poisoned.
        mds: MdsId,
    },
}

impl FaultKind {
    /// The MDS this fault targets.
    pub fn mds(&self) -> MdsId {
        match *self {
            FaultKind::Crash { mds }
            | FaultKind::Restart { mds }
            | FaultKind::Slowdown { mds, .. }
            | FaultKind::DropHeartbeats { mds, .. }
            | FaultKind::DelayHeartbeats { mds, .. }
            | FaultKind::PoisonBalancer { mds } => mds,
        }
    }
}

/// A full fault schedule plus the cluster's reaction knobs. Pure data;
/// the default plan is inert (no events) and leaves runs byte-identical
/// to a cluster built before fault injection existed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Scheduled faults, in any order (the event queue sorts them).
    pub events: Vec<FaultEvent>,
    /// Client-side request timeout: how long a client waits for a reply
    /// before declaring the request lost and retrying.
    pub request_timeout: SimTime,
    /// Base retry backoff; attempt `n` waits `backoff × 2^min(n, cap)`.
    pub retry_backoff: SimTime,
    /// Cap on backoff doublings (bounds the worst-case retry interval).
    pub max_backoff_doublings: u32,
    /// After this many *consecutive* balancer errors, the MDS swaps its
    /// balancer for the built-in CephFS one (§3.4). 0 disables fallback.
    pub fallback_after: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            events: Vec::new(),
            request_timeout: SimTime::from_secs(2),
            retry_backoff: SimTime::from_millis(50),
            max_backoff_doublings: 6,
            fallback_after: 3,
        }
    }
}

impl FaultPlan {
    /// An empty plan (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when any fault is scheduled. An inert plan skips all
    /// timeout/retry bookkeeping so healthy runs stay byte-identical to
    /// the pre-fault-injection simulator.
    pub fn is_active(&self) -> bool {
        !self.events.is_empty()
    }

    /// Schedule a crash of `mds` at `at`.
    pub fn crash(mut self, at: SimTime, mds: MdsId) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::Crash { mds },
        });
        self
    }

    /// Schedule a restart of `mds` at `at`.
    pub fn restart(mut self, at: SimTime, mds: MdsId) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::Restart { mds },
        });
        self
    }

    /// Slow `mds` by `factor`× for `duration` starting at `at`.
    pub fn slowdown(mut self, at: SimTime, mds: MdsId, factor: f64, duration: SimTime) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::Slowdown {
                mds,
                factor,
                duration,
            },
        });
        self
    }

    /// Drop `mds`'s heartbeats for `duration` starting at `at`.
    pub fn drop_heartbeats(mut self, at: SimTime, mds: MdsId, duration: SimTime) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::DropHeartbeats { mds, duration },
        });
        self
    }

    /// Delay `mds`'s heartbeats by one interval for `duration` starting
    /// at `at`.
    pub fn delay_heartbeats(mut self, at: SimTime, mds: MdsId, duration: SimTime) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::DelayHeartbeats { mds, duration },
        });
        self
    }

    /// Poison `mds`'s balancer hooks starting at `at`.
    pub fn poison_balancer(mut self, at: SimTime, mds: MdsId) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::PoisonBalancer { mds },
        });
        self
    }

    /// Backoff before retry attempt `n` (0-based): exponential, capped.
    pub fn backoff_for(&self, attempt: u32) -> SimTime {
        let doublings = attempt.min(self.max_backoff_doublings);
        SimTime::from_micros_f64(self.retry_backoff.as_micros() as f64 * (1u64 << doublings) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::default();
        assert!(!p.is_active());
        assert!(p.fallback_after > 0);
        assert!(p.request_timeout > SimTime::ZERO);
    }

    #[test]
    fn builders_accumulate_events() {
        let p = FaultPlan::new()
            .crash(SimTime::from_secs(1), 2)
            .restart(SimTime::from_secs(5), 2)
            .slowdown(SimTime::from_secs(2), 1, 4.0, SimTime::from_secs(3))
            .drop_heartbeats(SimTime::from_secs(1), 1, SimTime::from_secs(2))
            .delay_heartbeats(SimTime::from_secs(4), 1, SimTime::from_secs(2))
            .poison_balancer(SimTime::from_secs(3), 0);
        assert!(p.is_active());
        assert_eq!(p.events.len(), 6);
        assert_eq!(p.events[0].kind, FaultKind::Crash { mds: 2 });
        assert_eq!(p.events[0].kind.mds(), 2);
        assert_eq!(p.events[2].kind.mds(), 1);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = FaultPlan {
            retry_backoff: SimTime::from_millis(10),
            max_backoff_doublings: 3,
            ..Default::default()
        };
        assert_eq!(p.backoff_for(0), SimTime::from_millis(10));
        assert_eq!(p.backoff_for(1), SimTime::from_millis(20));
        assert_eq!(p.backoff_for(3), SimTime::from_millis(80));
        // Capped: further attempts wait no longer.
        assert_eq!(p.backoff_for(10), SimTime::from_millis(80));
    }
}
