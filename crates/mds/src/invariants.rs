//! Trace-driven invariant checking: replay a [`TraceRecord`] stream
//! against a small namespace/cluster model and assert cluster-wide safety
//! properties, independently of the live simulation that produced it.
//!
//! The checked catalogue (DESIGN.md §12):
//!
//! * **authority** — every served/forwarded request lands on the unique
//!   MDS the replayed authority map assigns to its dirfrag, migrations
//!   move units their exporter actually owns, and crashed MDSs serve
//!   nothing;
//! * **freeze-discipline** — no request is served inside a frozen
//!   (mid-migration) region before its thaw;
//! * **conservation** — every issued request terminates exactly once
//!   (completed, stale, ghost, or dropped) or is still in flight at
//!   [`TraceEvent::RunEnd`]; migrations move exactly the inodes the model
//!   says the region holds (inodes are neither created nor lost);
//! * **epoch-monotonicity** — heartbeat epochs increase by exactly one
//!   per tick and every record is stamped with the tick count at emission;
//! * **fallback-after-k** — a balancer fallback happens only after
//!   exactly `fallback_after` consecutive policy errors;
//! * **migration-phases** — every migration id runs freeze → journal
//!   (exporter + importer) → commit → unfreeze, completely;
//! * **cache-coherence** — a proxy-cache hit is served only from an
//!   entry with a live fill: filled earlier in the stream, not dropped
//!   since by a dentry invalidation or by a migration's region
//!   invalidation (replayed from [`TraceEvent::MigrationFreeze`]), and
//!   attributed to the MDS the fill named. The model never evicts, so
//!   it is a superset of the real LRU — every real hit must still
//!   satisfy it;
//! * **membership** — a drained MDS holds no dirfrag authority at
//!   `mds_drain_complete` and neither serves, imports, nor is pinned or
//!   forwarded to while departed (until it rejoins);
//! * **membership-epoch** — the membership epoch increments by exactly
//!   one per join/leave transition and never regresses;
//! * **membership-phases** — every join runs `join_start` →
//!   `join_complete` and every leave runs `drain_start` →
//!   `drain_complete` → `departed`, completely and without interleaving
//!   another transition;
//! * **structure** — the stream itself is well-formed (header first,
//!   known dirs, in-range fragments and MDS ids).
//!
//! Some rules need the data plane: conservation and freeze-discipline are
//! only checked when the stream was captured at [`TraceLevel::Full`]
//! (announced in [`TraceEvent::RunStart`]); inode conservation degrades to
//! a structural lower bound at [`TraceLevel::Decisions`], where per-op
//! file-count changes are not in the stream.

use std::collections::HashMap;

use mantle_namespace::{FragId, MdsId, NodeId, OpKind};
use mantle_sim::SimTime;

use crate::trace::{TraceEvent, TraceLevel, TraceRecord};

/// One invariant violation found while replaying a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Index of the offending record in the stream (stream length for
    /// end-of-stream violations).
    pub index: usize,
    /// Virtual time of the offending record.
    pub at: SimTime,
    /// Which rule broke: `authority`, `freeze-discipline`, `conservation`,
    /// `inode-conservation`, `epoch-monotonicity`, `fallback-after-k`,
    /// `migration-phases`, `cache-coherence`, `membership`,
    /// `membership-epoch`, `membership-phases`, or `structure`.
    pub rule: &'static str,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] record {} at {:?}: {}",
            self.rule, self.index, self.at, self.detail
        )
    }
}

/// Modelled fragment: explicit override + file count.
#[derive(Debug, Clone, Default)]
struct FragState {
    over: Option<MdsId>,
    files: u64,
}

/// Modelled directory.
#[derive(Debug, Clone)]
struct DirState {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    over: Option<MdsId>,
    frags: Vec<FragState>,
}

/// A frozen region captured from a [`TraceEvent::MigrationFreeze`].
#[derive(Debug, Clone)]
struct FreezeWindow {
    root: NodeId,
    root_only: bool,
    holes: Vec<NodeId>,
    watermark: u32,
    until: SimTime,
}

/// In-flight migration phase, per migration id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MigPhase {
    Frozen { journals: u8 },
    Committed,
    Done,
}

/// The replay state.
struct Checker {
    violations: Vec<Violation>,
    level: TraceLevel,
    num_mds: usize,
    fallback_after: u32,
    started: bool,
    ended: bool,
    dirs: Vec<DirState>,
    up: Vec<bool>,
    /// Heartbeat ticks seen so far; every record's `epoch` stamp is
    /// checked against it.
    epochs_seen: u64,
    /// Per-MDS consecutive policy errors, replayed from the stream.
    consecutive: Vec<u32>,
    /// Highest hot-install epoch announced; installs must only grow it.
    install_epoch: u64,
    frozen: Vec<FreezeWindow>,
    /// `(mig id, exporter, importer, phase)`.
    migrations: Vec<(u64, MdsId, MdsId, MigPhase)>,
    issued: u64,
    completed: u64,
    stale: u64,
    ghost: u64,
    dropped: u64,
    end_inflight: Option<usize>,
    /// Proxy-cache model: `(group, dir) → MDS` of the most recent live
    /// fill. Never evicts (capacity is not in the stream), so it is a
    /// superset of the real caches — a hit the real LRU can make is a
    /// hit the model allows, while stale hits are outside both.
    cache_model: HashMap<(usize, NodeId), MdsId>,
    /// Highest membership epoch seen; each transition must announce
    /// exactly `mem_epoch + 1`.
    mem_epoch: u64,
    /// Per-MDS departed flag: set at `drain_complete`, cleared at
    /// `mds_join_start` (re-homing imports toward a rejoiner land
    /// between join start and complete) — i.e. cleared when the
    /// MDS rejoins. Departed MDSs must hold and gain no authority.
    departed: Vec<bool>,
    /// An open join chain: `(mds, membership_epoch)` from `join_start`.
    pending_join: Option<(MdsId, u64)>,
    /// An open leave chain: `(mds, membership_epoch, drain_complete
    /// seen)` from `drain_start`.
    pending_leave: Option<(MdsId, u64, bool)>,
}

impl Checker {
    fn new() -> Self {
        Checker {
            violations: Vec::new(),
            level: TraceLevel::Decisions,
            num_mds: 0,
            fallback_after: 0,
            started: false,
            ended: false,
            dirs: Vec::new(),
            up: Vec::new(),
            epochs_seen: 0,
            consecutive: Vec::new(),
            install_epoch: 0,
            frozen: Vec::new(),
            migrations: Vec::new(),
            issued: 0,
            completed: 0,
            stale: 0,
            ghost: 0,
            dropped: 0,
            end_inflight: None,
            cache_model: HashMap::new(),
            mem_epoch: 0,
            departed: Vec::new(),
            pending_join: None,
            pending_leave: None,
        }
    }

    fn flag(&mut self, index: usize, at: SimTime, rule: &'static str, detail: String) {
        self.violations.push(Violation {
            index,
            at,
            rule,
            detail,
        });
    }

    // ---- namespace model ----

    fn dir(&self, d: NodeId) -> Option<&DirState> {
        self.dirs.get(d.0 as usize)
    }

    /// Nearest explicit override walking up from `d` (the model's
    /// `resolve_auth`). `None` only for malformed streams.
    fn resolve(&self, d: NodeId) -> Option<MdsId> {
        let mut cur = Some(d);
        while let Some(c) = cur {
            let ds = self.dir(c)?;
            if let Some(m) = ds.over {
                return Some(m);
            }
            cur = ds.parent;
        }
        None
    }

    /// The model's `frag_auth`: fragment override, else the dir's
    /// resolution.
    fn frag_auth(&self, d: NodeId, f: FragId) -> Option<MdsId> {
        let ds = self.dir(d)?;
        match ds.frags.get(f) {
            Some(fs) => fs.over.or_else(|| self.resolve(d)),
            None => None,
        }
    }

    /// Is `d` inside the subtree rooted at `root` (inclusive)? Parent
    /// walk — the model has no Euler labels, and traces are small.
    fn in_subtree(&self, d: NodeId, root: NodeId) -> bool {
        let mut cur = Some(d);
        while let Some(c) = cur {
            if c == root {
                return true;
            }
            cur = self.dir(c).and_then(|ds| ds.parent);
        }
        false
    }

    /// The bounded migrated region below `root`: preorder dirs stopping at
    /// (but not descending into) explicit overrides strictly below the
    /// root. Returns `(region dirs, holes)`.
    fn bounded_region(&self, root: NodeId) -> (Vec<NodeId>, Vec<NodeId>) {
        let mut region = Vec::new();
        let mut holes = Vec::new();
        let mut stack = vec![root];
        while let Some(cur) = stack.pop() {
            let Some(ds) = self.dir(cur) else { continue };
            if cur != root && ds.over.is_some() {
                holes.push(cur);
                continue;
            }
            region.push(cur);
            stack.extend(ds.children.iter().copied());
        }
        (region, holes)
    }

    /// Does any live frozen window cover `d` at time `t`? Windows expire
    /// exactly when the simulation purges them (`until > now`).
    fn frozen_covers(&mut self, d: NodeId, t: SimTime) -> bool {
        self.frozen.retain(|w| w.until > t);
        self.frozen.iter().any(|w| {
            if d.0 >= w.watermark {
                return false;
            }
            if w.root_only {
                return d == w.root;
            }
            self.in_subtree(d, w.root) && !w.holes.iter().any(|&h| self.in_subtree(d, h))
        })
    }

    fn mds_ok(&mut self, i: usize, at: SimTime, mds: MdsId, what: &str) -> bool {
        if mds >= self.num_mds {
            self.flag(
                i,
                at,
                "structure",
                format!("{what}: MDS {mds} out of range (num_mds {})", self.num_mds),
            );
            return false;
        }
        true
    }

    fn dir_ok(&mut self, i: usize, at: SimTime, d: NodeId, what: &str) -> bool {
        if self.dir(d).is_none() {
            self.flag(
                i,
                at,
                "structure",
                format!("{what}: directory {} unknown to the stream", d.0),
            );
            return false;
        }
        true
    }

    // ---- per-record replay ----

    fn step(&mut self, i: usize, r: &TraceRecord) {
        let at = r.at;
        // Epoch stamping: HeartbeatTick announces `epochs_seen + 1`;
        // everything else carries the current count.
        match &r.event {
            TraceEvent::HeartbeatTick { .. } => {
                if r.epoch != self.epochs_seen + 1 {
                    self.flag(
                        i,
                        at,
                        "epoch-monotonicity",
                        format!(
                            "heartbeat tick stamped epoch {} after {} ticks (want {})",
                            r.epoch,
                            self.epochs_seen,
                            self.epochs_seen + 1
                        ),
                    );
                }
                self.epochs_seen = self.epochs_seen.max(r.epoch);
            }
            _ => {
                if r.epoch != self.epochs_seen {
                    self.flag(
                        i,
                        at,
                        "epoch-monotonicity",
                        format!(
                            "{} stamped epoch {} during epoch {}",
                            r.event.name(),
                            r.epoch,
                            self.epochs_seen
                        ),
                    );
                }
            }
        }
        if !self.started && !matches!(r.event, TraceEvent::RunStart { .. }) {
            self.flag(
                i,
                at,
                "structure",
                format!("{} before run_start", r.event.name()),
            );
        }
        if self.ended {
            self.flag(
                i,
                at,
                "structure",
                format!("{} after run_end", r.event.name()),
            );
        }
        match &r.event {
            TraceEvent::RunStart {
                num_mds,
                fallback_after,
                level,
                ..
            } => {
                if self.started {
                    self.flag(i, at, "structure", "duplicate run_start".into());
                    return;
                }
                self.started = true;
                self.level = *level;
                self.num_mds = *num_mds;
                self.fallback_after = *fallback_after;
                self.up = vec![true; *num_mds];
                self.consecutive = vec![0; *num_mds];
                self.departed = vec![false; *num_mds];
            }
            TraceEvent::DirAdded { dir, parent, files } => {
                if dir.0 as usize != self.dirs.len() {
                    self.flag(
                        i,
                        at,
                        "structure",
                        format!(
                            "dir_added {} out of order (model has {} dirs)",
                            dir.0,
                            self.dirs.len()
                        ),
                    );
                    return;
                }
                if let Some(p) = parent {
                    if !self.dir_ok(i, at, *p, "dir_added parent") {
                        return;
                    }
                    self.dirs[p.0 as usize].children.push(*dir);
                } else if dir.0 != 0 {
                    self.flag(
                        i,
                        at,
                        "structure",
                        format!("non-root dir {} without a parent", dir.0),
                    );
                }
                self.dirs.push(DirState {
                    parent: *parent,
                    children: Vec::new(),
                    over: None,
                    frags: files
                        .iter()
                        .map(|&f| FragState {
                            over: None,
                            files: f,
                        })
                        .collect(),
                });
            }
            TraceEvent::AuthSnapshot { dirs, frags } => {
                for ds in &mut self.dirs {
                    ds.over = None;
                    for fs in &mut ds.frags {
                        fs.over = None;
                    }
                }
                for &(d, m) in dirs {
                    if self.dir_ok(i, at, d, "auth_snapshot dir")
                        && self.mds_ok(i, at, m, "auth_snapshot dir")
                    {
                        self.dirs[d.0 as usize].over = Some(m);
                    }
                }
                for &(d, f, m) in frags {
                    if !self.dir_ok(i, at, d, "auth_snapshot frag")
                        || !self.mds_ok(i, at, m, "auth_snapshot frag")
                    {
                        continue;
                    }
                    match self.dirs[d.0 as usize].frags.get_mut(f) {
                        Some(fs) => fs.over = Some(m),
                        None => self.flag(
                            i,
                            at,
                            "structure",
                            format!("auth_snapshot frag {f} of dir {} out of range", d.0),
                        ),
                    }
                }
                if self.resolve(NodeId(0)).is_none() {
                    self.flag(
                        i,
                        at,
                        "authority",
                        "auth_snapshot leaves the root unowned".into(),
                    );
                }
            }
            TraceEvent::HeartbeatTick { loads } => {
                if loads.len() != self.num_mds {
                    self.flag(
                        i,
                        at,
                        "structure",
                        format!(
                            "tick carries {} loads for {} MDSs",
                            loads.len(),
                            self.num_mds
                        ),
                    );
                }
            }
            TraceEvent::BalancerTick { mds } | TraceEvent::BalancerPlan { mds, .. } => {
                if self.mds_ok(i, at, *mds, "balancer tick") {
                    if !self.up[*mds] {
                        self.flag(
                            i,
                            at,
                            "authority",
                            format!("crashed MDS {mds} ran its balancer"),
                        );
                    }
                    // A successful tick resets the error streak.
                    self.consecutive[*mds] = 0;
                }
            }
            TraceEvent::PolicyError { mds, consecutive } => {
                if self.mds_ok(i, at, *mds, "policy error") {
                    self.consecutive[*mds] += 1;
                    if *consecutive != self.consecutive[*mds] {
                        self.flag(
                            i,
                            at,
                            "fallback-after-k",
                            format!(
                                "MDS {mds} reported {consecutive} consecutive errors, replay says {}",
                                self.consecutive[*mds]
                            ),
                        );
                        self.consecutive[*mds] = *consecutive;
                    }
                }
            }
            TraceEvent::PolicyInstalled { epoch, .. } => {
                // A hot install swaps every MDS's balancer in one
                // exclusive step: error streaks belong to the replaced
                // policy, and install epochs must only grow.
                if *epoch <= self.install_epoch {
                    self.flag(
                        i,
                        at,
                        "structure",
                        format!(
                            "install epoch {epoch} not past previous {}",
                            self.install_epoch
                        ),
                    );
                }
                self.install_epoch = (*epoch).max(self.install_epoch);
                for c in &mut self.consecutive {
                    *c = 0;
                }
            }
            TraceEvent::BalancerFallback { mds } => {
                if self.mds_ok(i, at, *mds, "fallback") {
                    if self.fallback_after == 0 {
                        self.flag(
                            i,
                            at,
                            "fallback-after-k",
                            format!("MDS {mds} fell back with fallback disabled (K = 0)"),
                        );
                    } else if self.consecutive[*mds] < self.fallback_after {
                        self.flag(
                            i,
                            at,
                            "fallback-after-k",
                            format!(
                                "MDS {mds} fell back after {} consecutive errors (K = {})",
                                self.consecutive[*mds], self.fallback_after
                            ),
                        );
                    }
                    self.consecutive[*mds] = 0;
                }
            }
            TraceEvent::MigrationFreeze {
                mig,
                from,
                to,
                root,
                frag,
                holes,
                watermark,
                until,
            } => {
                if !self.mds_ok(i, at, *from, "freeze exporter")
                    || !self.mds_ok(i, at, *to, "freeze importer")
                    || !self.dir_ok(i, at, *root, "freeze root")
                {
                    return;
                }
                if self.migrations.iter().any(|&(m, ..)| m == *mig) {
                    self.flag(
                        i,
                        at,
                        "migration-phases",
                        format!("migration {mig} frozen twice"),
                    );
                }
                if frag.is_none() {
                    // The freeze's holes must be exactly the model's nested
                    // bounds under the root (order-insensitive).
                    let (_, mut expect) = self.bounded_region(*root);
                    expect.sort_unstable();
                    let mut got = holes.clone();
                    got.sort_unstable();
                    if got != expect {
                        self.flag(
                            i,
                            at,
                            "authority",
                            format!(
                                "freeze of {} lists holes {:?}, model has {:?}",
                                root.0,
                                got.iter().map(|h| h.0).collect::<Vec<_>>(),
                                expect.iter().map(|h| h.0).collect::<Vec<_>>()
                            ),
                        );
                    }
                }
                self.frozen.push(FreezeWindow {
                    root: *root,
                    root_only: frag.is_some(),
                    holes: holes.clone(),
                    watermark: *watermark,
                    until: *until,
                });
                // The simulation invalidates every cached entry inside the
                // moved region at freeze time; replay that on the model so a
                // later hit without a fresh fill is flagged as stale.
                let root_only = frag.is_some();
                let gone: Vec<(usize, NodeId)> = self
                    .cache_model
                    .keys()
                    .copied()
                    .filter(|&(_, d)| {
                        d.0 < *watermark
                            && if root_only {
                                d == *root
                            } else {
                                self.in_subtree(d, *root)
                                    && !holes.iter().any(|&h| self.in_subtree(d, h))
                            }
                    })
                    .collect();
                for key in gone {
                    self.cache_model.remove(&key);
                }
                self.migrations
                    .push((*mig, *from, *to, MigPhase::Frozen { journals: 0 }));
            }
            TraceEvent::MigrationJournal { mig, mds, micros } => {
                if *micros < 0.0 {
                    self.flag(
                        i,
                        at,
                        "structure",
                        format!("migration {mig} journals negative time"),
                    );
                }
                let problem = match self.migrations.iter_mut().find(|(m, ..)| m == mig) {
                    Some((_, from, to, MigPhase::Frozen { journals })) => {
                        let expect = if *journals == 0 { *from } else { *to };
                        let p = (*mds != expect).then(|| {
                            format!(
                                "migration {mig} journal {} on MDS {mds}, want {expect}",
                                *journals + 1
                            )
                        });
                        *journals += 1;
                        p
                    }
                    Some(_) => Some(format!("migration {mig} journaled after commit")),
                    None => Some(format!("migration {mig} journaled before freeze")),
                };
                if let Some(detail) = problem {
                    self.flag(i, at, "migration-phases", detail);
                }
            }
            TraceEvent::MigrationCommit {
                mig,
                from,
                to,
                root,
                frag,
                inodes,
            } => {
                if !self.mds_ok(i, at, *from, "commit exporter")
                    || !self.mds_ok(i, at, *to, "commit importer")
                    || !self.dir_ok(i, at, *root, "commit root")
                {
                    return;
                }
                let problem = match self.migrations.iter_mut().find(|(m, ..)| m == mig) {
                    Some((_, f, t, phase @ MigPhase::Frozen { journals: 2 })) => {
                        let p = ((*f, *t) != (*from, *to)).then(|| {
                            format!("migration {mig} committed {from}→{to}, froze {f}→{t}")
                        });
                        *phase = MigPhase::Committed;
                        p
                    }
                    Some((_, _, _, phase)) => {
                        let detail = match phase {
                            MigPhase::Frozen { journals } => {
                                format!("migration {mig} committed after {journals} journals")
                            }
                            _ => format!("migration {mig} committed twice"),
                        };
                        *phase = MigPhase::Committed;
                        Some(detail)
                    }
                    None => Some(format!("migration {mig} committed before freeze")),
                };
                if let Some(detail) = problem {
                    self.flag(i, at, "migration-phases", detail);
                }
                if !self.up[*from] || !self.up[*to] {
                    self.flag(
                        i,
                        at,
                        "authority",
                        format!("migration {mig}: {from}→{to} with a crashed endpoint"),
                    );
                }
                if self.departed[*to] {
                    self.flag(
                        i,
                        at,
                        "membership",
                        format!("migration {mig} imports onto departed MDS {to}"),
                    );
                }
                match frag {
                    None => {
                        // Subtree export: the exporter must own the root,
                        // and the moved-inode count must match the model's
                        // bounded region (1 per dir + its files).
                        if self.resolve(*root) != Some(*from) {
                            self.flag(
                                i,
                                at,
                                "authority",
                                format!(
                                    "migration {mig} exports subtree {} from MDS {from}, model owner {:?}",
                                    root.0,
                                    self.resolve(*root)
                                ),
                            );
                        }
                        let (region, _) = self.bounded_region(*root);
                        let model: u64 = region
                            .iter()
                            .map(|&d| {
                                1 + self.dirs[d.0 as usize]
                                    .frags
                                    .iter()
                                    .map(|f| f.files)
                                    .sum::<u64>()
                            })
                            .sum();
                        let exact = self.level == TraceLevel::Full;
                        if (exact && *inodes != model) || (!exact && *inodes < region.len() as u64)
                        {
                            self.flag(
                                i,
                                at,
                                "inode-conservation",
                                format!(
                                    "migration {mig} claims {inodes} inodes moved from subtree {}, model holds {model}",
                                    root.0
                                ),
                            );
                        }
                        // Apply: clear superseded fragment overrides inside
                        // the region, then bind the root to the importer.
                        for &d in &region {
                            for fs in &mut self.dirs[d.0 as usize].frags {
                                fs.over = None;
                            }
                        }
                        self.dirs[root.0 as usize].over = Some(*to);
                    }
                    Some(f) => {
                        match self.frag_auth(*root, *f) {
                            Some(owner) if owner == *from => {}
                            owner => self.flag(
                                i,
                                at,
                                "authority",
                                format!(
                                    "migration {mig} exports frag {f} of dir {} from MDS {from}, model owner {owner:?}",
                                    root.0
                                ),
                            ),
                        }
                        let exact = self.level == TraceLevel::Full;
                        let problem = match self.dirs[root.0 as usize].frags.get_mut(*f) {
                            Some(fs) => {
                                let model = fs.files + 1;
                                let p = ((exact && *inodes != model) || (!exact && *inodes < 1))
                                    .then(|| {
                                        (
                                            "inode-conservation",
                                            format!(
                                                "migration {mig} claims {inodes} inodes moved from frag {f} of dir {}, model holds {model}",
                                                root.0
                                            ),
                                        )
                                    });
                                fs.over = Some(*to);
                                p
                            }
                            None => Some((
                                "structure",
                                format!("migration {mig}: frag {f} of dir {} out of range", root.0),
                            )),
                        };
                        if let Some((rule, detail)) = problem {
                            self.flag(i, at, rule, detail);
                        }
                    }
                }
            }
            TraceEvent::MigrationUnfreeze { mig, .. } => {
                let problem = match self.migrations.iter_mut().find(|(m, ..)| m == mig) {
                    Some((_, _, _, phase @ MigPhase::Committed)) => {
                        *phase = MigPhase::Done;
                        None
                    }
                    Some((_, _, _, phase)) => {
                        let detail = format!("migration {mig} unfroze in phase {phase:?}");
                        *phase = MigPhase::Done;
                        Some(detail)
                    }
                    None => Some(format!("migration {mig} unfroze before freeze")),
                };
                if let Some(detail) = problem {
                    self.flag(i, at, "migration-phases", detail);
                }
            }
            TraceEvent::SessionFlush { mds, .. } => {
                self.mds_ok(i, at, *mds, "session flush");
            }
            TraceEvent::FragSplit {
                dir,
                frag,
                ways,
                resulting_frags,
            } => {
                if !self.dir_ok(i, at, *dir, "frag split") {
                    return;
                }
                let nfrags = self.dirs[dir.0 as usize].frags.len();
                if *frag >= nfrags || *ways < 2 {
                    self.flag(
                        i,
                        at,
                        "structure",
                        format!(
                            "split of frag {frag} ({ways} ways) in dir {} with {nfrags} frags",
                            dir.0
                        ),
                    );
                    return;
                }
                let ds = &mut self.dirs[dir.0 as usize];
                // Replay exactly what the namespace does: remove, then
                // append `ways` children splitting the files (+1 for the
                // first `old % ways`), inheriting the override.
                let old = ds.frags.remove(*frag);
                let each = old.files / *ways as u64;
                let mut rem = old.files % *ways as u64;
                for _ in 0..*ways {
                    let extra = u64::from(rem > 0);
                    rem = rem.saturating_sub(1);
                    ds.frags.push(FragState {
                        over: old.over,
                        files: each + extra,
                    });
                }
                let got = ds.frags.len();
                if got != *resulting_frags {
                    self.flag(
                        i,
                        at,
                        "structure",
                        format!(
                            "split of dir {} reports {resulting_frags} resulting frags, model has {got}",
                            dir.0
                        ),
                    );
                }
            }
            TraceEvent::HashPin { dir, mds } => {
                if self.dir_ok(i, at, *dir, "hash pin") && self.mds_ok(i, at, *mds, "hash pin") {
                    if !self.up[*mds] {
                        self.flag(
                            i,
                            at,
                            "authority",
                            format!("dir {} pinned on crashed MDS {mds}", dir.0),
                        );
                    }
                    if self.departed[*mds] {
                        self.flag(
                            i,
                            at,
                            "membership",
                            format!("dir {} pinned on departed MDS {mds}", dir.0),
                        );
                    }
                    self.dirs[dir.0 as usize].over = Some(*mds);
                }
            }
            TraceEvent::MdsCrash { mds } => {
                if !self.mds_ok(i, at, *mds, "crash") {
                    return;
                }
                if *mds == 0 {
                    self.flag(i, at, "structure", "MDS 0 (mount authority) crashed".into());
                }
                if !self.up[*mds] {
                    self.flag(i, at, "structure", format!("MDS {mds} crashed twice"));
                }
                self.up[*mds] = false;
                // Failover: everything it served moves to the mount
                // authority.
                for ds in &mut self.dirs {
                    if ds.over == Some(*mds) {
                        ds.over = Some(0);
                    }
                    for fs in &mut ds.frags {
                        if fs.over == Some(*mds) {
                            fs.over = Some(0);
                        }
                    }
                }
            }
            TraceEvent::MdsRestart { mds } => {
                if self.mds_ok(i, at, *mds, "restart") {
                    if self.up[*mds] {
                        self.flag(i, at, "structure", format!("MDS {mds} restarted while up"));
                    }
                    self.up[*mds] = true;
                }
            }
            TraceEvent::FaultInjected { mds, .. } => {
                self.mds_ok(i, at, *mds, "fault");
            }
            TraceEvent::RequestIssued { dir, mds, .. } => {
                self.issued += 1;
                self.dir_ok(i, at, *dir, "issue");
                self.mds_ok(i, at, *mds, "issue");
            }
            TraceEvent::RequestTimeout { .. } | TraceEvent::RequestRetry { .. } => {}
            TraceEvent::Dropped { mds, .. } => {
                self.dropped += 1;
                if self.mds_ok(i, at, *mds, "drop") && self.up[*mds] {
                    self.flag(
                        i,
                        at,
                        "conservation",
                        format!("MDS {mds} dropped a request while up"),
                    );
                }
            }
            TraceEvent::Deferred { dir, until, .. } => {
                if self.dir_ok(i, at, *dir, "defer") && !self.frozen_covers(*dir, at) {
                    self.flag(
                        i,
                        at,
                        "freeze-discipline",
                        format!(
                            "request to dir {} deferred until {until:?} with no live freeze",
                            dir.0
                        ),
                    );
                }
            }
            TraceEvent::Forwarded {
                from,
                to,
                dir,
                frag,
                ..
            } => {
                if !self.mds_ok(i, at, *from, "forward")
                    || !self.mds_ok(i, at, *to, "forward")
                    || !self.dir_ok(i, at, *dir, "forward")
                {
                    return;
                }
                match self.frag_auth(*dir, *frag) {
                    Some(owner) if owner == *to => {}
                    owner => self.flag(
                        i,
                        at,
                        "authority",
                        format!(
                            "frag {frag} of dir {} forwarded to MDS {to}, model owner {owner:?}",
                            dir.0
                        ),
                    ),
                }
                if self.departed[*to] {
                    self.flag(
                        i,
                        at,
                        "membership",
                        format!("request forwarded to departed MDS {to}"),
                    );
                }
            }
            TraceEvent::Served { mds, dir, frag, .. } => {
                if !self.mds_ok(i, at, *mds, "serve") || !self.dir_ok(i, at, *dir, "serve") {
                    return;
                }
                if !self.up[*mds] {
                    self.flag(
                        i,
                        at,
                        "authority",
                        format!("crashed MDS {mds} served a request"),
                    );
                }
                if self.departed[*mds] {
                    self.flag(
                        i,
                        at,
                        "membership",
                        format!("departed MDS {mds} served a request"),
                    );
                }
                match self.frag_auth(*dir, *frag) {
                    Some(owner) if owner == *mds => {}
                    owner => self.flag(
                        i,
                        at,
                        "authority",
                        format!(
                            "frag {frag} of dir {} served by MDS {mds}, model owner {owner:?}",
                            dir.0
                        ),
                    ),
                }
                if self.frozen_covers(*dir, at) {
                    self.flag(
                        i,
                        at,
                        "freeze-discipline",
                        format!("dir {} served while frozen", dir.0),
                    );
                }
            }
            TraceEvent::GhostReply { mds } => {
                self.ghost += 1;
                self.mds_ok(i, at, *mds, "ghost");
            }
            TraceEvent::StaleReply {
                dir, frag, kind, ..
            }
            | TraceEvent::Completed {
                dir, frag, kind, ..
            } => {
                if matches!(r.event, TraceEvent::StaleReply { .. }) {
                    self.stale += 1;
                } else {
                    self.completed += 1;
                }
                if !self.dir_ok(i, at, *dir, "complete") {
                    return;
                }
                // Server-side work happened either way: replay the file
                // count change so migrations keep balancing.
                let ds = &mut self.dirs[dir.0 as usize];
                match ds.frags.get_mut(*frag) {
                    Some(fs) => match kind {
                        OpKind::Create => fs.files += 1,
                        OpKind::Unlink => fs.files = fs.files.saturating_sub(1),
                        _ => {}
                    },
                    None => self.flag(
                        i,
                        at,
                        "structure",
                        format!("completion on frag {frag} of dir {} out of range", dir.0),
                    ),
                }
            }
            TraceEvent::CacheHit {
                group,
                client: _,
                dir,
                mds,
            } => {
                if !self.dir_ok(i, at, *dir, "cache hit") || !self.mds_ok(i, at, *mds, "cache hit")
                {
                    return;
                }
                match self.cache_model.get(&(*group, *dir)) {
                    Some(&m) if m == *mds => {}
                    Some(&m) => self.flag(
                        i,
                        at,
                        "cache-coherence",
                        format!(
                            "cache hit on dir {} in group {group} attributed to MDS {mds}, \
                             live fill names {m}",
                            dir.0
                        ),
                    ),
                    None => self.flag(
                        i,
                        at,
                        "cache-coherence",
                        format!(
                            "cache hit on dir {} in group {group} with no live fill \
                             (stale or never-filled entry)",
                            dir.0
                        ),
                    ),
                }
            }
            TraceEvent::CacheFill { group, dir, mds } => {
                if self.dir_ok(i, at, *dir, "cache fill") && self.mds_ok(i, at, *mds, "cache fill")
                {
                    self.cache_model.insert((*group, *dir), *mds);
                }
            }
            TraceEvent::CacheInvalidate { dir, entries } => {
                if !self.dir_ok(i, at, *dir, "cache invalidate") {
                    return;
                }
                let live = self.cache_model.keys().filter(|&&(_, d)| d == *dir).count() as u64;
                if *entries > live {
                    self.flag(
                        i,
                        at,
                        "cache-coherence",
                        format!(
                            "invalidation of dir {} drops {entries} entries, \
                             model holds {live}",
                            dir.0
                        ),
                    );
                }
                self.cache_model.retain(|&(_, d), _| d != *dir);
            }
            TraceEvent::MdsJoinStart {
                mds,
                membership_epoch,
            } => {
                if !self.mds_ok(i, at, *mds, "join start") {
                    return;
                }
                if *membership_epoch != self.mem_epoch + 1 {
                    self.flag(
                        i,
                        at,
                        "membership-epoch",
                        format!(
                            "join of MDS {mds} announces epoch {membership_epoch} after epoch {} (want {})",
                            self.mem_epoch,
                            self.mem_epoch + 1
                        ),
                    );
                }
                self.mem_epoch = self.mem_epoch.max(*membership_epoch);
                if self.pending_join.is_some() || self.pending_leave.is_some() {
                    self.flag(
                        i,
                        at,
                        "membership-phases",
                        format!("join of MDS {mds} started inside another transition"),
                    );
                }
                self.pending_join = Some((*mds, *membership_epoch));
                // A rejoining MDS is an import target from join_start on:
                // the re-homing migrations toward it land between start
                // and complete, and committed imports make it
                // authoritative for what it received.
                self.departed[*mds] = false;
            }
            TraceEvent::MdsJoinComplete {
                mds,
                membership_epoch,
                ..
            } => {
                if !self.mds_ok(i, at, *mds, "join complete") {
                    return;
                }
                match self.pending_join.take() {
                    Some((m, e)) if m == *mds && e == *membership_epoch => {}
                    Some((m, e)) => self.flag(
                        i,
                        at,
                        "membership-phases",
                        format!(
                            "join_complete of MDS {mds} at epoch {membership_epoch} closes a join of MDS {m} at epoch {e}"
                        ),
                    ),
                    None => self.flag(
                        i,
                        at,
                        "membership-phases",
                        format!("join_complete of MDS {mds} without join_start"),
                    ),
                }
                // A rejoined MDS may hold authority again.
                self.departed[*mds] = false;
            }
            TraceEvent::MdsDrainStart {
                mds,
                membership_epoch,
            } => {
                if !self.mds_ok(i, at, *mds, "drain start") {
                    return;
                }
                if *mds == 0 {
                    self.flag(
                        i,
                        at,
                        "membership",
                        "MDS 0 (mount authority) started draining".into(),
                    );
                }
                if *membership_epoch != self.mem_epoch + 1 {
                    self.flag(
                        i,
                        at,
                        "membership-epoch",
                        format!(
                            "drain of MDS {mds} announces epoch {membership_epoch} after epoch {} (want {})",
                            self.mem_epoch,
                            self.mem_epoch + 1
                        ),
                    );
                }
                self.mem_epoch = self.mem_epoch.max(*membership_epoch);
                if self.pending_join.is_some() || self.pending_leave.is_some() {
                    self.flag(
                        i,
                        at,
                        "membership-phases",
                        format!("drain of MDS {mds} started inside another transition"),
                    );
                }
                self.pending_leave = Some((*mds, *membership_epoch, false));
            }
            TraceEvent::MdsDrainComplete {
                mds,
                membership_epoch,
                ..
            } => {
                if !self.mds_ok(i, at, *mds, "drain complete") {
                    return;
                }
                match &mut self.pending_leave {
                    Some((m, e, done)) if *m == *mds && *e == *membership_epoch && !*done => {
                        *done = true;
                    }
                    _ => self.flag(
                        i,
                        at,
                        "membership-phases",
                        format!("drain_complete of MDS {mds} without a matching drain_start"),
                    ),
                }
                // The drained MDS must hold no dirfrag authority: every
                // explicit override naming it should have been exported.
                let residual: usize = self
                    .dirs
                    .iter()
                    .map(|ds| {
                        usize::from(ds.over == Some(*mds))
                            + ds.frags.iter().filter(|fs| fs.over == Some(*mds)).count()
                    })
                    .sum();
                if residual > 0 {
                    self.flag(
                        i,
                        at,
                        "membership",
                        format!(
                            "MDS {mds} completed draining with {residual} authority override(s) still naming it"
                        ),
                    );
                }
                self.departed[*mds] = true;
            }
            TraceEvent::MdsDeparted {
                mds,
                membership_epoch,
            } => {
                if !self.mds_ok(i, at, *mds, "departed") {
                    return;
                }
                match self.pending_leave.take() {
                    Some((m, e, true)) if m == *mds && e == *membership_epoch => {}
                    Some((m, _, done)) => self.flag(
                        i,
                        at,
                        "membership-phases",
                        format!(
                            "departed of MDS {mds} closes a drain of MDS {m} (drain_complete seen: {done})"
                        ),
                    ),
                    None => self.flag(
                        i,
                        at,
                        "membership-phases",
                        format!("departed of MDS {mds} without drain_start"),
                    ),
                }
            }
            TraceEvent::RunEnd { inflight } => {
                self.ended = true;
                self.end_inflight = Some(*inflight);
            }
        }
    }

    fn finish(mut self, total: usize, last_at: SimTime) -> Vec<Violation> {
        if !self.started {
            self.flag(
                total,
                last_at,
                "structure",
                "stream has no run_start".into(),
            );
            return self.violations;
        }
        if self.end_inflight.is_none() {
            self.flag(total, last_at, "structure", "stream has no run_end".into());
        }
        let stuck: Vec<(u64, MigPhase)> = self
            .migrations
            .iter()
            .filter(|&&(_, _, _, phase)| phase != MigPhase::Done)
            .map(|&(mig, _, _, phase)| (mig, phase))
            .collect();
        for (mig, phase) in stuck {
            self.flag(
                total,
                last_at,
                "migration-phases",
                format!("migration {mig} never completed (stuck in {phase:?})"),
            );
        }
        if let Some((mds, epoch)) = self.pending_join {
            self.flag(
                total,
                last_at,
                "membership-phases",
                format!("join of MDS {mds} (epoch {epoch}) never completed"),
            );
        }
        if let Some((mds, epoch, done)) = self.pending_leave {
            self.flag(
                total,
                last_at,
                "membership-phases",
                format!(
                    "leave of MDS {mds} (epoch {epoch}) never completed (drain_complete seen: {done})"
                ),
            );
        }
        // Conservation needs the data plane.
        if self.level == TraceLevel::Full {
            let inflight = self.end_inflight.unwrap_or(0) as u64;
            let accounted = self.completed + self.stale + self.ghost + self.dropped + inflight;
            if self.issued != accounted {
                self.flag(
                    total,
                    last_at,
                    "conservation",
                    format!(
                        "{} issued ≠ {} completed + {} stale + {} ghost + {} dropped + {} in flight",
                        self.issued, self.completed, self.stale, self.ghost, self.dropped, inflight
                    ),
                );
            }
        }
        self.violations
    }
}

/// Replay `records` and return every invariant violation found (empty =
/// the trace is internally consistent).
pub fn check_trace(records: &[TraceRecord]) -> Vec<Violation> {
    let mut c = Checker::new();
    for (i, r) in records.iter().enumerate() {
        c.step(i, r);
    }
    let last_at = records.last().map(|r| r.at).unwrap_or(SimTime::ZERO);
    c.finish(records.len(), last_at)
}

/// [`check_trace`], panicking with a readable report on the first failure.
/// The assertion form the test suite leans on.
pub fn assert_invariants(records: &[TraceRecord]) {
    let violations = check_trace(records);
    if !violations.is_empty() {
        let mut msg = format!("{} invariant violation(s):\n", violations.len());
        for v in violations.iter().take(20) {
            msg.push_str(&format!("  {v}\n"));
        }
        if violations.len() > 20 {
            msg.push_str(&format!("  … and {} more\n", violations.len() - 20));
        }
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ms: u64, epoch: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_millis(at_ms),
            epoch,
            event,
        }
    }

    /// A minimal healthy stream: 2 MDSs, root + one dir, one tick, one
    /// complete subtree migration, one served + completed request.
    fn healthy() -> Vec<TraceRecord> {
        vec![
            rec(
                0,
                0,
                TraceEvent::RunStart {
                    num_mds: 2,
                    fallback_after: 3,
                    level: TraceLevel::Full,
                    heartbeat_us: 400_000,
                },
            ),
            rec(
                0,
                0,
                TraceEvent::DirAdded {
                    dir: NodeId(0),
                    parent: None,
                    files: vec![0],
                },
            ),
            rec(
                0,
                0,
                TraceEvent::DirAdded {
                    dir: NodeId(1),
                    parent: Some(NodeId(0)),
                    files: vec![2],
                },
            ),
            rec(
                0,
                0,
                TraceEvent::AuthSnapshot {
                    dirs: vec![(NodeId(0), 0)],
                    frags: vec![],
                },
            ),
            rec(
                1,
                0,
                TraceEvent::RequestIssued {
                    client: 0,
                    dir: NodeId(1),
                    mds: 0,
                    seq: 0,
                },
            ),
            rec(
                2,
                0,
                TraceEvent::Served {
                    mds: 0,
                    client: 0,
                    dir: NodeId(1),
                    frag: 0,
                    kind: OpKind::Create,
                    seq: 0,
                },
            ),
            rec(
                3,
                0,
                TraceEvent::Completed {
                    mds: 0,
                    client: 0,
                    dir: NodeId(1),
                    frag: 0,
                    kind: OpKind::Create,
                },
            ),
            rec(
                400,
                1,
                TraceEvent::HeartbeatTick {
                    loads: vec![3.0, 0.0],
                },
            ),
            rec(
                400,
                1,
                TraceEvent::MigrationFreeze {
                    mig: 1,
                    from: 0,
                    to: 1,
                    root: NodeId(1),
                    frag: None,
                    holes: vec![],
                    watermark: 2,
                    until: SimTime::from_millis(450),
                },
            ),
            rec(
                400,
                1,
                TraceEvent::MigrationJournal {
                    mig: 1,
                    mds: 0,
                    micros: 100.0,
                },
            ),
            rec(
                400,
                1,
                TraceEvent::MigrationJournal {
                    mig: 1,
                    mds: 1,
                    micros: 100.0,
                },
            ),
            rec(
                400,
                1,
                TraceEvent::MigrationCommit {
                    mig: 1,
                    from: 0,
                    to: 1,
                    root: NodeId(1),
                    frag: None,
                    // dir 1 itself + 2 setup files + 1 traced create
                    inodes: 4,
                },
            ),
            rec(
                400,
                1,
                TraceEvent::MigrationUnfreeze {
                    mig: 1,
                    root: NodeId(1),
                    thaw: SimTime::from_millis(450),
                },
            ),
            rec(400, 1, TraceEvent::SessionFlush { mds: 0, clients: 1 }),
            rec(
                500,
                1,
                TraceEvent::Served {
                    mds: 1,
                    client: 0,
                    dir: NodeId(1),
                    frag: 0,
                    kind: OpKind::Stat,
                    seq: 1,
                },
            ),
            rec(500, 1, TraceEvent::RunEnd { inflight: 0 }),
        ]
    }

    /// An unissued completion slipped in just before run_end.
    fn unbalanced() -> Vec<TraceRecord> {
        let mut t = healthy();
        let end = t.len() - 1;
        t.insert(
            end,
            rec(
                501,
                1,
                TraceEvent::Completed {
                    mds: 1,
                    client: 0,
                    dir: NodeId(1),
                    frag: 0,
                    kind: OpKind::Stat,
                },
            ),
        );
        t
    }

    #[test]
    fn healthy_stream_passes() {
        // The post-migration serve at 500 ms never terminates in the base
        // stream; balance the books by issuing and completing it.
        let mut t = healthy();
        t.insert(
            14,
            rec(
                460,
                1,
                TraceEvent::RequestIssued {
                    client: 0,
                    dir: NodeId(1),
                    mds: 1,
                    seq: 1,
                },
            ),
        );
        t.insert(
            16,
            rec(
                501,
                1,
                TraceEvent::Completed {
                    mds: 1,
                    client: 0,
                    dir: NodeId(1),
                    frag: 0,
                    kind: OpKind::Stat,
                },
            ),
        );
        assert_eq!(check_trace(&t), vec![]);
    }

    #[test]
    fn conservation_catches_unissued_completion() {
        let v = check_trace(&unbalanced());
        assert!(
            v.iter().any(|v| v.rule == "conservation"),
            "2 completions, 1 issue: {v:?}"
        );
    }

    #[test]
    fn wrong_authority_is_flagged() {
        let mut t = healthy();
        // The first serve claims MDS 1, but dir 1 resolves to MDS 0.
        t[5] = rec(
            2,
            0,
            TraceEvent::Served {
                mds: 1,
                client: 0,
                dir: NodeId(1),
                frag: 0,
                kind: OpKind::Create,
                seq: 0,
            },
        );
        let v = check_trace(&t);
        assert!(v.iter().any(|v| v.rule == "authority"), "{v:?}");
    }

    #[test]
    fn serving_frozen_region_is_flagged() {
        let mut t = healthy();
        // A serve at 420 ms, inside the 400–450 ms freeze of dir 1.
        t.insert(
            13,
            rec(
                420,
                1,
                TraceEvent::Served {
                    mds: 0,
                    client: 0,
                    dir: NodeId(1),
                    frag: 0,
                    kind: OpKind::Stat,
                    seq: 9,
                },
            ),
        );
        let v = check_trace(&t);
        assert!(v.iter().any(|v| v.rule == "freeze-discipline"), "{v:?}");
    }

    #[test]
    fn inflated_migration_inodes_are_flagged() {
        let mut t = healthy();
        let TraceEvent::MigrationCommit { inodes, .. } = &mut t[11].event else {
            panic!("record 11 is the commit");
        };
        *inodes += 1;
        let v = check_trace(&t);
        assert!(v.iter().any(|v| v.rule == "inode-conservation"), "{v:?}");
    }

    #[test]
    fn epoch_regression_is_flagged() {
        let mut t = healthy();
        t[7].epoch = 0; // the tick must announce epoch 1
        let v = check_trace(&t);
        assert!(v.iter().any(|v| v.rule == "epoch-monotonicity"), "{v:?}");
    }

    #[test]
    fn premature_fallback_is_flagged() {
        let mut t = healthy();
        t.insert(
            8,
            rec(
                400,
                1,
                TraceEvent::PolicyError {
                    mds: 0,
                    consecutive: 1,
                },
            ),
        );
        t.insert(9, rec(400, 1, TraceEvent::BalancerFallback { mds: 0 }));
        let v = check_trace(&t);
        assert!(v.iter().any(|v| v.rule == "fallback-after-k"), "{v:?}");
    }

    #[test]
    fn exact_fallback_passes() {
        let mut t = healthy();
        for k in 1..=3u32 {
            t.insert(
                7 + k as usize,
                rec(
                    400,
                    1,
                    TraceEvent::PolicyError {
                        mds: 0,
                        consecutive: k,
                    },
                ),
            );
        }
        t.insert(11, rec(400, 1, TraceEvent::BalancerFallback { mds: 0 }));
        let v = check_trace(&t);
        assert!(
            !v.iter().any(|v| v.rule == "fallback-after-k"),
            "3 errors then fallback is legal: {v:?}"
        );
    }

    #[test]
    fn incomplete_migration_is_flagged() {
        let mut t = healthy();
        // Drop the unfreeze.
        t.retain(|r| !matches!(r.event, TraceEvent::MigrationUnfreeze { .. }));
        let v = check_trace(&t);
        assert!(v.iter().any(|v| v.rule == "migration-phases"), "{v:?}");
    }

    #[test]
    fn crash_failover_updates_model() {
        let mut t = healthy();
        t.truncate(14); // keep through session_flush (dir 1 now on MDS 1)
        t.push(rec(450, 1, TraceEvent::MdsCrash { mds: 1 }));
        // After the crash, dir 1 failed over to MDS 0 — a serve by 0 is
        // legal, a serve by 1 is not.
        t.push(rec(
            460,
            1,
            TraceEvent::Served {
                mds: 0,
                client: 0,
                dir: NodeId(1),
                frag: 0,
                kind: OpKind::Stat,
                seq: 1,
            },
        ));
        t.push(rec(470, 1, TraceEvent::RunEnd { inflight: 0 }));
        let v = check_trace(&t);
        assert!(
            !v.iter().any(|v| v.rule == "authority"),
            "failover must be replayed: {v:?}"
        );
    }

    #[test]
    fn split_replay_redistributes_files() {
        let t = vec![
            rec(
                0,
                0,
                TraceEvent::RunStart {
                    num_mds: 1,
                    fallback_after: 0,
                    level: TraceLevel::Decisions,
                    heartbeat_us: 400_000,
                },
            ),
            rec(
                0,
                0,
                TraceEvent::DirAdded {
                    dir: NodeId(0),
                    parent: None,
                    files: vec![11],
                },
            ),
            rec(
                0,
                0,
                TraceEvent::AuthSnapshot {
                    dirs: vec![(NodeId(0), 0)],
                    frags: vec![],
                },
            ),
            rec(
                1,
                0,
                TraceEvent::FragSplit {
                    dir: NodeId(0),
                    frag: 0,
                    ways: 8,
                    resulting_frags: 8,
                },
            ),
            rec(1, 0, TraceEvent::RunEnd { inflight: 0 }),
        ];
        assert_eq!(check_trace(&t), vec![]);
        // A wrong resulting_frags count is structural corruption.
        let mut bad = t.clone();
        let TraceEvent::FragSplit {
            resulting_frags, ..
        } = &mut bad[3].event
        else {
            panic!("record 3 is the split");
        };
        *resulting_frags = 9;
        assert!(check_trace(&bad).iter().any(|v| v.rule == "structure"));
    }

    fn fill(at_ms: u64, epoch: u64, group: usize, dir: u32, mds: MdsId) -> TraceRecord {
        rec(
            at_ms,
            epoch,
            TraceEvent::CacheFill {
                group,
                dir: NodeId(dir),
                mds,
            },
        )
    }

    fn hit(at_ms: u64, epoch: u64, group: usize, dir: u32, mds: MdsId) -> TraceRecord {
        rec(
            at_ms,
            epoch,
            TraceEvent::CacheHit {
                group,
                client: 0,
                dir: NodeId(dir),
                mds,
            },
        )
    }

    fn cache_violations(t: &[TraceRecord]) -> Vec<Violation> {
        check_trace(t)
            .into_iter()
            .filter(|v| v.rule == "cache-coherence")
            .collect()
    }

    #[test]
    fn cache_fill_then_hit_passes() {
        let mut t = healthy();
        t.insert(7, fill(4, 0, 0, 1, 0));
        t.insert(8, hit(5, 0, 0, 1, 0));
        assert_eq!(cache_violations(&t), vec![]);
    }

    #[test]
    fn cache_hit_without_fill_is_flagged() {
        let mut t = healthy();
        t.insert(7, hit(5, 0, 0, 1, 0));
        let v = cache_violations(&t);
        assert!(!v.is_empty(), "hit with no fill must be stale: {v:?}");
    }

    #[test]
    fn cache_hit_in_wrong_group_is_flagged() {
        let mut t = healthy();
        t.insert(7, fill(4, 0, 0, 1, 0));
        t.insert(8, hit(5, 0, 1, 1, 0)); // group 1 never filled
        assert!(!cache_violations(&t).is_empty());
    }

    #[test]
    fn cache_hit_with_wrong_attribution_is_flagged() {
        let mut t = healthy();
        t.insert(7, fill(4, 0, 0, 1, 0));
        t.insert(8, hit(5, 0, 0, 1, 1)); // fill named MDS 0
        assert!(!cache_violations(&t).is_empty());
    }

    #[test]
    fn cache_hit_after_invalidation_is_flagged() {
        let mut t = healthy();
        t.insert(7, fill(4, 0, 0, 1, 0));
        t.insert(
            8,
            rec(
                5,
                0,
                TraceEvent::CacheInvalidate {
                    dir: NodeId(1),
                    entries: 1,
                },
            ),
        );
        t.insert(9, hit(6, 0, 0, 1, 0));
        assert!(!cache_violations(&t).is_empty());
    }

    #[test]
    fn cache_invalidation_overcount_is_flagged() {
        let mut t = healthy();
        t.insert(7, fill(4, 0, 0, 1, 0));
        // Claims 2 entries dropped; only one fill is live in the model.
        t.insert(
            8,
            rec(
                5,
                0,
                TraceEvent::CacheInvalidate {
                    dir: NodeId(1),
                    entries: 2,
                },
            ),
        );
        assert!(!cache_violations(&t).is_empty());
    }

    #[test]
    fn cache_hit_after_migration_freeze_is_flagged() {
        // The freeze of dir 1 at 400 ms invalidates the region; a hit
        // after it — even past the thaw — is stale without a fresh fill.
        let mut t = healthy();
        t.insert(7, fill(4, 0, 0, 1, 0));
        let end = t.len() - 1;
        t.insert(end, hit(460, 1, 0, 1, 0));
        assert!(!cache_violations(&t).is_empty());
    }

    #[test]
    fn cache_refill_after_migration_passes() {
        let mut t = healthy();
        t.insert(7, fill(4, 0, 0, 1, 0));
        let end = t.len() - 1;
        // A fresh fill from the importer re-arms the entry.
        t.insert(end, fill(455, 1, 0, 1, 1));
        t.insert(end + 1, hit(460, 1, 0, 1, 1));
        assert_eq!(cache_violations(&t), vec![]);
    }

    fn mem_violations(t: &[TraceRecord]) -> Vec<Violation> {
        check_trace(t)
            .into_iter()
            .filter(|v| v.rule.starts_with("membership"))
            .collect()
    }

    /// Append a complete leave chain for MDS 1 (which owns dir 1 after
    /// healthy()'s migration): drain dir 1 back to MDS 0, then the
    /// drain_complete/departed pair — all just before run_end.
    fn with_leave_of_mds1() -> Vec<TraceRecord> {
        let mut t = healthy();
        let end = t.len() - 1;
        let chain = vec![
            rec(
                520,
                1,
                TraceEvent::MdsDrainStart {
                    mds: 1,
                    membership_epoch: 1,
                },
            ),
            rec(
                520,
                1,
                TraceEvent::MigrationFreeze {
                    mig: 2,
                    from: 1,
                    to: 0,
                    root: NodeId(1),
                    frag: None,
                    holes: vec![],
                    watermark: 2,
                    until: SimTime::from_millis(560),
                },
            ),
            rec(
                520,
                1,
                TraceEvent::MigrationJournal {
                    mig: 2,
                    mds: 1,
                    micros: 100.0,
                },
            ),
            rec(
                520,
                1,
                TraceEvent::MigrationJournal {
                    mig: 2,
                    mds: 0,
                    micros: 100.0,
                },
            ),
            rec(
                520,
                1,
                TraceEvent::MigrationCommit {
                    mig: 2,
                    from: 1,
                    to: 0,
                    root: NodeId(1),
                    frag: None,
                    // dir 1 + 2 setup files + 1 traced create
                    inodes: 4,
                },
            ),
            rec(
                520,
                1,
                TraceEvent::MigrationUnfreeze {
                    mig: 2,
                    root: NodeId(1),
                    thaw: SimTime::from_millis(560),
                },
            ),
            rec(
                521,
                1,
                TraceEvent::MdsDrainComplete {
                    mds: 1,
                    membership_epoch: 1,
                    drained: 1,
                },
            ),
            rec(
                521,
                1,
                TraceEvent::MdsDeparted {
                    mds: 1,
                    membership_epoch: 1,
                },
            ),
        ];
        for (k, r) in chain.into_iter().enumerate() {
            t.insert(end + k, r);
        }
        t
    }

    #[test]
    fn well_formed_leave_chain_passes() {
        assert_eq!(mem_violations(&with_leave_of_mds1()), vec![]);
    }

    #[test]
    fn membership_epoch_regression_is_flagged() {
        let mut t = with_leave_of_mds1();
        let end = t.len() - 1;
        // A rejoin announcing epoch 1 again: the leave already took it.
        t.insert(
            end,
            rec(
                530,
                1,
                TraceEvent::MdsJoinStart {
                    mds: 1,
                    membership_epoch: 1,
                },
            ),
        );
        t.insert(
            end + 1,
            rec(
                530,
                1,
                TraceEvent::MdsJoinComplete {
                    mds: 1,
                    membership_epoch: 1,
                    rehomed: 0,
                },
            ),
        );
        let v = mem_violations(&t);
        assert!(v.iter().any(|v| v.rule == "membership-epoch"), "{v:?}");
    }

    #[test]
    fn residual_authority_at_drain_complete_is_flagged() {
        // Drain chain with no export: dir 1 still names MDS 1 at
        // drain_complete time.
        let mut t = healthy();
        let end = t.len() - 1;
        t.insert(
            end,
            rec(
                520,
                1,
                TraceEvent::MdsDrainStart {
                    mds: 1,
                    membership_epoch: 1,
                },
            ),
        );
        t.insert(
            end + 1,
            rec(
                521,
                1,
                TraceEvent::MdsDrainComplete {
                    mds: 1,
                    membership_epoch: 1,
                    drained: 0,
                },
            ),
        );
        t.insert(
            end + 2,
            rec(
                521,
                1,
                TraceEvent::MdsDeparted {
                    mds: 1,
                    membership_epoch: 1,
                },
            ),
        );
        let v = mem_violations(&t);
        assert!(v.iter().any(|v| v.rule == "membership"), "{v:?}");
    }

    #[test]
    fn split_leave_chain_is_flagged() {
        // drain_start straight to departed: the drain_complete is missing.
        let mut t = with_leave_of_mds1();
        t.retain(|r| !matches!(r.event, TraceEvent::MdsDrainComplete { .. }));
        let v = mem_violations(&t);
        assert!(v.iter().any(|v| v.rule == "membership-phases"), "{v:?}");
    }

    #[test]
    fn dangling_join_start_is_flagged() {
        let mut t = healthy();
        let end = t.len() - 1;
        t.insert(
            end,
            rec(
                520,
                1,
                TraceEvent::MdsJoinStart {
                    mds: 1,
                    membership_epoch: 1,
                },
            ),
        );
        let v = mem_violations(&t);
        assert!(v.iter().any(|v| v.rule == "membership-phases"), "{v:?}");
    }

    #[test]
    fn serve_on_departed_mds_is_flagged() {
        let mut t = with_leave_of_mds1();
        let end = t.len() - 1;
        t.insert(
            end,
            rec(
                530,
                1,
                TraceEvent::Served {
                    mds: 1,
                    client: 0,
                    dir: NodeId(1),
                    frag: 0,
                    kind: OpKind::Stat,
                    seq: 7,
                },
            ),
        );
        let v = mem_violations(&t);
        assert!(v.iter().any(|v| v.rule == "membership"), "{v:?}");
    }

    #[test]
    fn assert_invariants_panics_with_report() {
        let err = std::panic::catch_unwind(|| assert_invariants(&unbalanced()))
            .expect_err("unbalanced books must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(msg.contains("conservation"), "{msg}");
    }
}
