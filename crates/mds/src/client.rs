//! Client model: closed-loop request generators with a learned
//! subtree→MDS map, and the [`Workload`] trait the workload generators
//! implement.

use mantle_namespace::{MdsId, Namespace, NodeId, OpKind};
use mantle_sim::SimTime;

use crate::cache::{ClientCache, IntervalRegion};

/// One metadata operation a client wants to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientOp {
    /// The directory the op targets.
    pub dir: NodeId,
    /// What it does.
    pub kind: OpKind,
}

/// A workload drives every client: the cluster asks it for each client's
/// next operation whenever that client's previous one completes.
///
/// The namespace is read-only during the run — all directory structure is
/// built in [`Workload::setup`]. This is what lets the sharded engine hand
/// each worker thread its own fork of the workload ([`Workload::fork`])
/// and drive disjoint client slices concurrently: per-client generator
/// state advances independently, so a fork driving only its own clients
/// produces exactly the ops the original would have produced for them.
pub trait Workload: Send {
    /// Number of clients this workload drives.
    fn num_clients(&self) -> usize;

    /// One-time setup: build the initial directory structure.
    fn setup(&mut self, ns: &mut Namespace);

    /// The next op for `client`, or `None` when that client is finished.
    fn next(&mut self, client: usize, ns: &Namespace, now: SimTime) -> Option<ClientOp>;

    /// If `client` has more work but none before some future instant,
    /// that instant; `None` means "ready now (or finished)". Open-loop
    /// workloads with think windows (e.g. diurnal day/night phases) use
    /// this to park a client until its next active window — the cluster
    /// reschedules the client's wakeup instead of calling
    /// [`Workload::next`]. Must be deterministic in `(client, now)` so
    /// sharded execution stays byte-identical to single-threaded.
    fn next_ready_at(&mut self, client: usize, now: SimTime) -> Option<SimTime> {
        let _ = (client, now);
        None
    }

    /// A boxed copy with identical per-client generator state. Each shard
    /// gets one fork and only ever calls [`Workload::next`] for the
    /// clients it owns.
    fn fork(&self) -> Box<dyn Workload>;

    /// Workload name for reports.
    fn name(&self) -> &str {
        "workload"
    }
}

/// Per-client connection state maintained by the cluster.
#[derive(Debug, Clone)]
pub struct ClientState {
    /// Client index.
    pub id: usize,
    /// Learned directory→MDS map (built up from replies, exactly as the
    /// client builds "its own mapping of subtrees to MDS nodes", §2).
    /// Indexed by Euler label too, so migrations invalidate the moved
    /// region with a range scan ([`ClientCache`]).
    cache: ClientCache,
    /// This client is done issuing ops.
    pub done: bool,
    /// Ops completed so far.
    pub completed: u64,
    /// The client stalls until this time (session flushes during
    /// migrations halt its updates).
    pub stall_until: SimTime,
    /// Completion time of the client's last op (its personal makespan).
    pub finished_at: SimTime,
    /// Latency samples, ms.
    pub latencies: Vec<f64>,
    /// Sequence number of the newest request attempt; replies and
    /// timeouts carrying an older number are stale and ignored.
    pub seq: u64,
    /// The logical op currently awaiting a reply (`None` between ops).
    /// Retries re-issue this op after a timeout.
    pub pending: Option<ClientOp>,
    /// Timeouts suffered by the pending op so far (drives the
    /// exponential backoff).
    pub attempts: u32,
}

impl ClientState {
    /// Fresh state for client `id`.
    pub fn new(id: usize) -> Self {
        ClientState {
            id,
            cache: ClientCache::default(),
            done: false,
            completed: 0,
            stall_until: SimTime::ZERO,
            finished_at: SimTime::ZERO,
            latencies: Vec::new(),
            seq: 0,
            pending: None,
            attempts: 0,
        }
    }

    /// Choose which MDS to send `op` to.
    ///
    /// Directories whose fragments span several MDSs are routed by the
    /// dirfrag map (CephFS replies carry the fragment→MDS mapping, so a
    /// client ends up contacting the MDSs round-robin as its creates hash
    /// across fragments — §4.1); the *cost* of the resulting cross-MDS
    /// session/coherency traffic is charged via
    /// [`crate::config::CostModel::coherency_per_span`]. Single-authority
    /// directories use the learned cache, falling back to MDS 0 (the mount
    /// authority) — that cache goes stale when subtrees migrate, which is
    /// what produces forwards.
    ///
    /// `multi_owner` is whether the dir's fragments span several MDSs; the
    /// cluster computes it once per issue into a reused scratch buffer
    /// instead of allocating an owner list per request here.
    pub fn route(
        &mut self,
        ns: &Namespace,
        op: &ClientOp,
        frag: mantle_namespace::FragId,
        multi_owner: bool,
    ) -> MdsId {
        if multi_owner {
            ns.frag_auth(op.dir, frag)
        } else {
            self.cache.get(op.dir).unwrap_or(0)
        }
    }

    /// Learn from a reply: `dir` was ultimately served by `mds`.
    pub fn learn(&mut self, ns: &Namespace, dir: NodeId, mds: MdsId) {
        self.cache.learn(ns, dir, mds);
    }

    /// Forget everything learned about `dir` (its metadata moved).
    pub fn invalidate(&mut self, dir: NodeId) {
        self.cache.invalidate(dir);
    }

    /// Forget everything learned about a migrated region in one
    /// Euler-interval range scan, returning how many entries dropped.
    pub fn invalidate_region(&mut self, ns: &Namespace, region: &IntervalRegion) -> u64 {
        self.cache.invalidate_region(ns, region)
    }

    /// Forget every cached dir for which `stale` returns true — the
    /// predicate-scan oracle for [`ClientState::invalidate_region`];
    /// production paths use the range scan.
    pub fn invalidate_matching(&mut self, stale: impl FnMut(NodeId) -> bool) {
        self.cache.invalidate_matching(stale);
    }

    /// Record a completed op.
    pub fn record_completion(&mut self, now: SimTime, latency_ms: f64) {
        self.completed += 1;
        self.finished_at = now;
        self.latencies.push(latency_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_to_learned_mds() {
        let mut ns = Namespace::default();
        let d = ns.mkdir_p("/a");
        let mut c = ClientState::new(0);
        let op = ClientOp {
            dir: d,
            kind: OpKind::Stat,
        };
        assert_eq!(
            c.route(&ns, &op, ns.peek_frag(d), false),
            0,
            "default mount authority"
        );
        // Even though ground truth moved, the client still uses its cache…
        ns.set_auth(d, Some(2));
        c.learn(&ns, d, 1);
        assert_eq!(
            c.route(&ns, &op, ns.peek_frag(d), false),
            1,
            "stale cache drives routing"
        );
        c.invalidate(d);
        assert_eq!(c.route(&ns, &op, ns.peek_frag(d), false), 0);
    }

    #[test]
    fn round_robins_over_spanning_dirs() {
        let mut ns = Namespace::new(mantle_namespace::NsConfig {
            frag_split_threshold: 4,
            ..Default::default()
        });
        let d = ns.mkdir_p("/shared");
        for _ in 0..6 {
            ns.record_op(d, OpKind::Create, SimTime::ZERO);
        }
        assert!(ns.dir(d).frags.len() >= 8);
        ns.set_frag_auth(d, 0, Some(1));
        ns.set_frag_auth(d, 1, Some(2));
        let owners = ns.frag_owners(d);
        assert_eq!(owners.len(), 3); // 1, 2, and inherited 0
        let mut c = ClientState::new(0);
        let op = ClientOp {
            dir: d,
            kind: OpKind::Create,
        };
        // Routing follows the dirfrag map: it lands on a real owner, not
        // on the (stale or default) per-directory cache.
        let frag = ns.peek_frag(d);
        let target = c.route(&ns, &op, frag, owners.len() > 1);
        assert!(owners.contains(&target));
        assert_eq!(target, ns.frag_auth(d, frag));
    }

    #[test]
    fn completion_bookkeeping() {
        let mut c = ClientState::new(3);
        c.record_completion(SimTime::from_secs(5), 0.8);
        c.record_completion(SimTime::from_secs(6), 1.2);
        assert_eq!(c.completed, 2);
        assert_eq!(c.finished_at, SimTime::from_secs(6));
        assert_eq!(c.latencies.len(), 2);
    }
}
