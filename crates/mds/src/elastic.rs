//! Elastic-membership placement helpers: rendezvous hashing over the
//! member set.
//!
//! Join re-homing needs an owner-of-record function with the *minimal
//! movement* property: when a member is added, the only directories whose
//! owner changes are those now owned by the new member — nothing shuffles
//! between surviving members. Rendezvous (highest-random-weight) hashing
//! gives exactly that: each `(dir, mds)` pair gets a deterministic weight
//! and the owner is the member with the highest weight, so adding a member
//! can only ever *win* pairs, never reorder the rest. The same function
//! drives drain-on-leave (exports go to the rendezvous owner among the
//! remaining members), keeping placement stable across a leave/join cycle.
//!
//! Everything here is pure integer hashing — no RNG streams, no floats —
//! so `Single` and `Sharded{..}` runs agree byte-for-byte by construction.

use mantle_namespace::{MdsId, NodeId};

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The rendezvous weight of placing `dir` on `mds`.
fn weight(dir: NodeId, mds: MdsId) -> u64 {
    mix64((dir.0 as u64) << 32 | (mds as u64 + 1))
}

/// The owner-of-record of `dir` among `members` under rendezvous hashing:
/// the member with the highest `(dir, mds)` weight (ties — probability
/// ~2⁻⁶⁴ — break toward the lower id for determinism).
///
/// # Panics
/// Panics if `members` is empty.
pub fn rendezvous_owner(dir: NodeId, members: &[MdsId]) -> MdsId {
    assert!(!members.is_empty(), "rendezvous over an empty member set");
    let mut best = members[0];
    let mut best_w = weight(dir, best);
    for &m in &members[1..] {
        let w = weight(dir, m);
        if w > best_w {
            best = m;
            best_w = w;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_a_member() {
        for d in 0..200u32 {
            let owner = rendezvous_owner(NodeId(d), &[0, 2, 5]);
            assert!([0, 2, 5].contains(&owner));
        }
    }

    #[test]
    fn adding_a_member_moves_only_to_the_newcomer() {
        // The minimal-movement property at the hash level: growing the
        // member set never reshuffles dirs between surviving members.
        let before: Vec<MdsId> = vec![0, 1, 2];
        let after: Vec<MdsId> = vec![0, 1, 2, 3];
        let mut moved = 0;
        for d in 0..2_000u32 {
            let a = rendezvous_owner(NodeId(d), &before);
            let b = rendezvous_owner(NodeId(d), &after);
            if a != b {
                assert_eq!(b, 3, "dir {d} moved between survivors");
                moved += 1;
            }
        }
        // Roughly a quarter should land on the newcomer.
        assert!((300..700).contains(&moved), "moved {moved}/2000");
    }

    #[test]
    fn removing_a_member_strands_nothing_on_it() {
        let before: Vec<MdsId> = vec![0, 1, 2, 3];
        let after: Vec<MdsId> = vec![0, 1, 2];
        for d in 0..2_000u32 {
            let a = rendezvous_owner(NodeId(d), &before);
            let b = rendezvous_owner(NodeId(d), &after);
            if a != 3 {
                assert_eq!(a, b, "dir {d} moved although its owner stayed");
            } else {
                assert_ne!(b, 3);
            }
        }
    }

    #[test]
    fn deterministic() {
        for d in [0u32, 7, 999] {
            assert_eq!(
                rendezvous_owner(NodeId(d), &[1, 4]),
                rendezvous_owner(NodeId(d), &[1, 4])
            );
        }
    }
}
