//! The result of a cluster run: everything the paper's figures plot.

use mantle_sim::{SimTime, Summary, TimeSeries};

/// Per-MDS results.
#[derive(Debug, Clone)]
pub struct MdsReport {
    /// Completed ops per second over the run (stacked curves of
    /// Figs. 4/7/10).
    pub throughput: TimeSeries,
    /// Total ops served.
    pub total_ops: f64,
    /// First-try requests served locally (Fig. 3b "hits").
    pub hits: u64,
    /// Requests forwarded away (Fig. 3b "forwards").
    pub forwards_out: u64,
    /// Requests received via forwards.
    pub forwards_in: u64,
    /// Migrations exported.
    pub migrations_out: u64,
    /// Inodes exported.
    pub inodes_exported: u64,
    /// Client sessions flushed by this MDS's migrations (§4.1).
    pub sessions_flushed: u64,
    /// Directory fragmentation events.
    pub splits: u64,
    /// Ops needing remote ancestor metadata for the path traversal.
    pub remote_prefix: u64,
    /// Requests lost because they reached this MDS while it was crashed.
    pub dropped: u64,
    /// Proxy-cache hits attributed to this MDS (requests the cache tier
    /// absorbed on its behalf). Zero with the cache disabled.
    pub cache_hits: u64,
    /// Proxy-cache misses routed to this MDS (post-cache arrivals for
    /// cacheable ops). Zero with the cache disabled.
    pub cache_misses: u64,
}

/// Per-client results.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// Ops completed.
    pub completed: u64,
    /// Completion time of the client's last op (per-client makespan —
    /// Fig. 8's per-client speedup numerator/denominator).
    pub finished_at: SimTime,
    /// Latency summary, ms (Fig. 5's y axis).
    pub latency: Summary,
}

/// Full report of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Balancer in effect.
    pub balancer: String,
    /// Workload name.
    pub workload: String,
    /// MDS count.
    pub num_mds: usize,
    /// Seed used.
    pub seed: u64,
    /// Virtual time when the last client finished.
    pub makespan: SimTime,
    /// Per-MDS breakdown.
    pub mds: Vec<MdsReport>,
    /// Per-client breakdown.
    pub clients: Vec<ClientReport>,
    /// Total client sessions flushed (§4.1's 157/323/…/936 comparison).
    pub sessions_flushed: u64,
    /// Client-side request timeouts (lost or overdue replies).
    pub timeouts: u64,
    /// Request retries issued after timeouts (exponential backoff).
    pub retries: u64,
    /// Subtree/dirfrag authorities failed over to MDS 0 by crashes.
    pub failovers: u64,
    /// Balancers swapped for the default CephFS balancer after repeated
    /// policy errors (the §3.4 graceful-degradation path).
    pub balancer_fallbacks: u64,
    /// Cluster-wide proxy-cache hits (ops absorbed without an MDS
    /// round-trip). Zero with the cache disabled.
    pub cache_hits: u64,
    /// Cluster-wide proxy-cache misses (cacheable ops that went to an
    /// MDS). Zero with the cache disabled.
    pub cache_misses: u64,
    /// Cache entries dropped by coherence invalidation — mutating ops,
    /// migrations, and session flushes, across group and client caches.
    pub cache_invalidations: u64,
    /// Provisioned MDS-time: the integral of the member count over
    /// virtual time, in seconds. With elasticity off this is
    /// `num_mds × makespan`; the elastic scorer divides ops by it.
    pub mds_seconds: f64,
    /// MDS-join transitions taken by the elastic controller.
    pub joins: u64,
    /// MDS-leave (drain) transitions taken by the elastic controller.
    pub leaves: u64,
    /// Final membership epoch (one bump per join or leave; 0 with
    /// elasticity off).
    pub membership_epoch: u64,
}

impl RunReport {
    /// Total ops served across the cluster.
    pub fn total_ops(&self) -> f64 {
        self.mds.iter().map(|m| m.total_ops).sum()
    }

    /// Total requests issued including forwarded hops (Fig. 3a's "number
    /// of requests": forwards make the same op cost extra messages).
    pub fn total_requests(&self) -> f64 {
        self.total_ops() + self.total_forwards() as f64
    }

    /// Cluster-wide forwards.
    pub fn total_forwards(&self) -> u64 {
        self.mds.iter().map(|m| m.forwards_out).sum()
    }

    /// Path traversals that could not resolve locally (forwards plus
    /// remote-prefix lookups) — Fig. 3b's "forwards" bar.
    pub fn total_remote_traversals(&self) -> u64 {
        self.total_forwards() + self.mds.iter().map(|m| m.remote_prefix).sum::<u64>()
    }

    /// Cluster-wide hits (first-try local service).
    pub fn total_hits(&self) -> u64 {
        self.mds.iter().map(|m| m.hits).sum()
    }

    /// Cluster-wide migrations.
    pub fn total_migrations(&self) -> u64 {
        self.mds.iter().map(|m| m.migrations_out).sum()
    }

    /// Requests lost at crashed MDSs across the cluster.
    pub fn total_dropped(&self) -> u64 {
        self.mds.iter().map(|m| m.dropped).sum()
    }

    /// Proxy-cache hit rate over cacheable traffic, 0–1 (0 when the
    /// cache is disabled or saw no traffic).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = (self.cache_hits + self.cache_misses) as f64;
        if total <= 0.0 {
            0.0
        } else {
            self.cache_hits as f64 / total
        }
    }

    /// Provisioned MDS-time in hours (the elastic efficiency denominator).
    pub fn mds_hours(&self) -> f64 {
        self.mds_seconds / 3600.0
    }

    /// Ops per second per provisioned MDS-hour — the elastic scenario's
    /// score: an elastic cluster that tracks the diurnal load should beat
    /// every fixed size on it (0 when no MDS-time was accrued).
    pub fn ops_per_mds_hour(&self) -> f64 {
        if self.mds_seconds <= 0.0 {
            0.0
        } else {
            self.total_ops() * 3600.0 / self.mds_seconds
        }
    }

    /// Mean throughput over the run, ops/s.
    pub fn mean_throughput(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_ops() / secs
        }
    }

    /// Aggregate cluster throughput per second (sum of the per-MDS series).
    pub fn cluster_throughput(&self) -> TimeSeries {
        let mut out = TimeSeries::new(SimTime::from_secs(1));
        for m in &self.mds {
            for (t, v) in m.throughput.iter() {
                out.add(t, v);
            }
        }
        out
    }

    /// Latency across all clients, ms.
    pub fn latency_all(&self) -> Summary {
        // Summaries do not retain raw samples; approximate the cluster
        // view from the per-client means (one entry per client with data).
        let all: Vec<f64> = self
            .clients
            .iter()
            .filter(|c| c.latency.count > 0)
            .map(|c| c.latency.mean)
            .collect();
        Summary::of(&all)
    }

    /// Mean of the per-client makespans, minutes.
    pub fn mean_client_makespan_mins(&self) -> f64 {
        if self.clients.is_empty() {
            return 0.0;
        }
        self.clients
            .iter()
            .map(|c| c.finished_at.as_mins_f64())
            .sum::<f64>()
            / self.clients.len() as f64
    }

    /// Standard deviation of per-client makespans, minutes (the paper's
    /// stability metric).
    pub fn client_makespan_stddev_mins(&self) -> f64 {
        let xs: Vec<f64> = self
            .clients
            .iter()
            .map(|c| c.finished_at.as_mins_f64())
            .collect();
        Summary::of(&xs).stddev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_report() -> RunReport {
        let mut ts0 = TimeSeries::new(SimTime::from_secs(1));
        ts0.add(SimTime::ZERO, 100.0);
        ts0.add(SimTime::from_secs(1), 50.0);
        let mut ts1 = TimeSeries::new(SimTime::from_secs(1));
        ts1.add(SimTime::from_secs(1), 25.0);
        RunReport {
            balancer: "test".into(),
            workload: "w".into(),
            num_mds: 2,
            seed: 1,
            makespan: SimTime::from_secs(2),
            mds: vec![
                MdsReport {
                    throughput: ts0,
                    total_ops: 150.0,
                    hits: 140,
                    forwards_out: 10,
                    forwards_in: 0,
                    migrations_out: 1,
                    inodes_exported: 500,
                    sessions_flushed: 4,
                    splits: 0,
                    remote_prefix: 2,
                    dropped: 3,
                    cache_hits: 30,
                    cache_misses: 10,
                },
                MdsReport {
                    throughput: ts1,
                    total_ops: 25.0,
                    hits: 20,
                    forwards_out: 0,
                    forwards_in: 10,
                    migrations_out: 0,
                    inodes_exported: 0,
                    sessions_flushed: 0,
                    splits: 1,
                    remote_prefix: 0,
                    dropped: 0,
                    cache_hits: 0,
                    cache_misses: 0,
                },
            ],
            clients: vec![
                ClientReport {
                    completed: 100,
                    finished_at: SimTime::from_secs(2),
                    latency: Summary::of(&[1.0, 2.0]),
                },
                ClientReport {
                    completed: 75,
                    finished_at: SimTime::from_secs(1),
                    latency: Summary::of(&[3.0]),
                },
            ],
            sessions_flushed: 4,
            timeouts: 2,
            retries: 2,
            failovers: 1,
            balancer_fallbacks: 0,
            cache_hits: 30,
            cache_misses: 10,
            cache_invalidations: 5,
            mds_seconds: 7200.0,
            joins: 1,
            leaves: 1,
            membership_epoch: 2,
        }
    }

    #[test]
    fn aggregates() {
        let r = mk_report();
        assert_eq!(r.total_ops(), 175.0);
        assert_eq!(r.total_forwards(), 10);
        assert_eq!(r.total_hits(), 160);
        assert_eq!(r.total_requests(), 185.0);
        assert_eq!(r.total_remote_traversals(), 12);
        assert_eq!(r.total_migrations(), 1);
        assert_eq!(r.total_dropped(), 3);
        assert!((r.mean_throughput() - 87.5).abs() < 1e-9);
        assert!((r.cache_hit_rate() - 0.75).abs() < 1e-9);
        // 175 ops over 2 MDS-hours.
        assert!((r.mds_hours() - 2.0).abs() < 1e-9);
        assert!((r.ops_per_mds_hour() - 87.5).abs() < 1e-9);
    }

    #[test]
    fn cluster_throughput_sums_series() {
        let r = mk_report();
        let ts = r.cluster_throughput();
        assert_eq!(ts.values(), &[100.0, 75.0]);
    }

    #[test]
    fn makespan_stats() {
        let r = mk_report();
        let mean = r.mean_client_makespan_mins();
        assert!((mean - 0.025).abs() < 1e-9); // (2s + 1s)/2 = 1.5 s
        assert!(r.client_makespan_stddev_mins() > 0.0);
    }
}
