//! Sharded data plane: the per-thread slice of the cluster simulation.
//!
//! The cluster is partitioned into [`Shard`]s — contiguous slices of MDS
//! ids and client ids, each owning its members' event queue, counters,
//! RNG streams, and client state. Shards run **conservative lookahead
//! windows**: the coordinator (in [`crate::cluster`]) picks a window
//! `[base, end)` no wider than the minimum cross-shard latency, every
//! shard drains its own events inside the window concurrently, and a
//! barrier then applies the window's deferred namespace mutations and
//! routes cross-shard messages. Because no simulated interaction can
//! cross shards faster than the lookahead, no shard can ever receive a
//! message dated inside a window it already processed.
//!
//! # Determinism
//!
//! Every scheduled event carries an explicit 64-bit **key**:
//!
//! ```text
//!   key = origin_rank << 40 | per-origin counter
//!   origin_rank: coordinator = 0, MDS m = 1 + m, client c = 1 + num_mds + c
//! ```
//!
//! Queues order same-instant events by key, so tie-breaking depends only
//! on *which simulated entity* generated the event and *how many* events
//! it generated before — never on which thread ran it or in what order
//! shards happened to drain. Deferred namespace mutations are applied at
//! each barrier in global `(time, key)` order, and per-shard trace
//! buffers are merged at run end by `(time, key, emission index)`. The
//! result: window boundaries, event keys, and barrier effects are all
//! shard-count-invariant, and a fixed seed produces byte-identical runs
//! at any thread count — including the single-threaded oracle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use mantle_namespace::{FragId, MdsId, Namespace, NodeId, OpKind};
use mantle_sim::{EventQueue, SimRng, SimTime};

use crate::cache::{cacheable, group_of, GroupCache};
use crate::client::{ClientOp, ClientState, Workload};
use crate::config::{ClusterConfig, PlacementPolicy};
use crate::metrics::MdsCounters;
use crate::trace::{TraceEvent, TraceRecord};

/// Index of a shard (worker thread) within a run.
pub type ShardId = usize;

/// Bits reserved for the per-origin counter in an event key.
pub(crate) const KEY_CTR_BITS: u32 = 40;

/// Sort key of one trace record: `(time, generating event's key,
/// emission index within that event)`. Merging all per-shard buffers by
/// this key reproduces the exact sequential emission order.
pub(crate) type TraceKey = (SimTime, u64, u32);

/// A request in flight.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Request {
    pub(crate) client: usize,
    pub(crate) op: ClientOp,
    /// The dirfrag the client routed to (picked at issue time and carried
    /// with the request, like the frag bits in a real CephFS request).
    pub(crate) frag: FragId,
    pub(crate) issued: SimTime,
    pub(crate) forwarded: bool,
    /// The issuing client's attempt number; replies for a superseded
    /// attempt (the client timed out and retried) are dropped.
    pub(crate) seq: u64,
    /// The client's timeout count when this attempt was issued — lets the
    /// serving MDS compute, locally, whether the attempt has already been
    /// superseded by the time service finishes (see `Shard::on_complete`).
    pub(crate) attempts: u32,
}

/// A data-plane event, always processed by the shard owning its target.
#[derive(Debug)]
pub(crate) enum Event {
    /// A client is ready to issue its next op.
    ClientNext(usize),
    /// A request arrives at an MDS.
    Arrive { mds: MdsId, req: Request },
    /// An MDS finishes serving a request.
    Complete {
        mds: MdsId,
        req: Request,
        service_us: f64,
        /// The MDS's incarnation when service started; a crash bumps the
        /// incarnation, so completions from before it are ghosts.
        epoch: u64,
    },
    /// A served reply reaches the issuing client (half an RTT after the
    /// MDS finished); the client absorbs it and issues its next op.
    Reply { mds: MdsId, req: Request },
    /// A client's request timeout expires; if the attempt is still
    /// outstanding the client declares it lost and backs off to retry.
    Timeout { client: usize, seq: u64 },
    /// A client re-issues its pending op after a timeout backoff.
    Retry(usize),
}

/// A sequenced message crossing a shard boundary: an event for
/// another shard's queue, stamped with its simulated delivery time and
/// its origin key. Messages are exchanged only at barriers; `(at, key)`
/// is a total order, so delivery order is deterministic regardless of
/// which thread sent first in wall-clock time.
#[derive(Debug)]
pub struct CrossShardMsg {
    pub(crate) at: SimTime,
    pub(crate) key: u64,
    pub(crate) event: Event,
}

/// A namespace mutation deferred to the window barrier, keyed so the
/// coordinator can apply all shards' mutations in global `(at, key)`
/// order — exactly the order a sequential run would have applied them.
#[derive(Debug)]
pub(crate) struct DeferredNsOp {
    pub(crate) at: SimTime,
    pub(crate) key: u64,
    pub(crate) op: NsOp,
}

/// The mutation itself.
#[derive(Debug)]
pub(crate) enum NsOp {
    /// Charge one completed op's heat/size to a dirfrag (no splits —
    /// splits run in a second barrier phase so in-window fragment
    /// layouts stay fixed).
    Record {
        dir: NodeId,
        frag: FragId,
        kind: OpKind,
    },
    /// First-touch hash placement: pin `dir` to `mds` unless an earlier
    /// (in key order) arrival already pinned it.
    Pin { dir: NodeId, mds: MdsId },
    /// LRU-touch a proxy-cache entry a hit just served. Recency is
    /// shared state (it drives eviction), so it moves at the barrier in
    /// global `(at, key)` order like every other shared mutation.
    CacheTouch { group: usize, dir: NodeId },
    /// A completed cacheable op's reply fills `group`'s proxy cache:
    /// `dir` is now servable by the tier on behalf of `mds`.
    CacheFill {
        group: usize,
        dir: NodeId,
        mds: MdsId,
    },
    /// A mutating op rewrote `dir`'s metadata — every proxy copy of it
    /// is stale and drops, ordered against the fills racing it.
    CacheInvalidate { dir: NodeId },
}

/// One export's freeze or cold-prefix region. Membership is an
/// Euler-interval range check against the namespace's current labels plus
/// the authority holes captured at export time — no per-directory map
/// entries are materialized. Expired windows are purged at barriers;
/// in-window readers filter by `until` instead.
#[derive(Debug, Clone)]
pub(crate) struct SubtreeWindow {
    pub(crate) root: NodeId,
    /// Nested authority bounds inside the exported subtree; directories
    /// under a hole did not move and are outside the window.
    pub(crate) holes: Vec<NodeId>,
    /// `dir_count` at capture: directories created after the export sit
    /// outside the window even when their Euler label falls inside.
    pub(crate) watermark: u32,
    /// Frag exports cover only the fragmented directory itself.
    pub(crate) root_only: bool,
    pub(crate) until: SimTime,
}

impl SubtreeWindow {
    pub(crate) fn contains(&self, ns: &Namespace, d: NodeId) -> bool {
        if d.0 >= self.watermark {
            return false;
        }
        if self.root_only {
            return d == self.root;
        }
        ns.in_subtree(d, self.root) && !self.holes.iter().any(|&h| ns.in_subtree(d, h))
    }
}

/// Simulation state shared read-only by every shard during a window and
/// mutated only by the coordinator (at barriers and in exclusive
/// control-plane phases, while all workers are parked).
#[derive(Debug)]
pub struct SharedSim {
    pub(crate) ns: Namespace,
    /// Liveness per MDS (crashes flip this off, restarts back on).
    pub(crate) up: Vec<bool>,
    /// Incarnation per MDS; bumped by crashes to invalidate in-flight
    /// completions.
    pub(crate) mds_epoch: Vec<u64>,
    /// Elastic membership per MDS: only members receive placement (hash
    /// pins, balancer targets, re-homing). With the elastic layer off
    /// every entry is `true` for the whole run. Mutated only in exclusive
    /// heartbeat steps, so windows read a stable view.
    pub(crate) member: Vec<bool>,
    /// Membership epoch: join/leave transitions completed so far. Bumped
    /// with every membership change (exclusive steps only).
    pub(crate) membership_epoch: u64,
    /// Service-time multiplier per MDS while `now < slow_until`.
    pub(crate) slow_factor: Vec<f64>,
    pub(crate) slow_until: Vec<SimTime>,
    /// Frozen regions (two-phase-commit migrations); a request inside any
    /// live window defers to the latest covering thaw.
    pub(crate) frozen: Vec<SubtreeWindow>,
    /// Regions whose new authority is still warming up its ancestor
    /// prefix replicas.
    pub(crate) prefix_cold: Vec<SubtreeWindow>,
    /// Heartbeat epoch: balancer ticks completed so far (stamps trace
    /// records; only changes in exclusive phases).
    pub(crate) hb_epoch: u64,
    /// Proxy-tier caches, one per client group ([`crate::config::CacheConfig`]).
    /// Read-only during windows (shards probe for hits); fills, LRU
    /// touches, and invalidations are deferred [`NsOp`]s applied at
    /// barriers. Empty when the cache is disabled.
    pub(crate) caches: Vec<GroupCache>,
}

/// Static partition map: which shard owns which MDS / client. Both
/// partitions are contiguous slices in id order; shards may own zero
/// MDSs (more threads than servers) or zero clients.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    pub(crate) mds_shard: Vec<ShardId>,
    pub(crate) client_shard: Vec<ShardId>,
    pub(crate) num_shards: usize,
}

impl ShardRouter {
    /// Partition `num_mds` servers and `num_clients` clients across
    /// `shards` contiguous slices of near-equal size.
    pub fn new(num_mds: usize, num_clients: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        // id i goes to shard floor(i * shards / count): contiguous slices,
        // balanced to within one element.
        let assign =
            |count: usize| -> Vec<ShardId> { (0..count).map(|i| i * shards / count).collect() };
        ShardRouter {
            mds_shard: assign(num_mds),
            client_shard: assign(num_clients),
            num_shards: shards,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Which shard owns MDS `m`.
    pub fn shard_of_mds(&self, m: MdsId) -> ShardId {
        self.mds_shard[m]
    }

    /// Which shard owns client `c`.
    pub fn shard_of_client(&self, c: usize) -> ShardId {
        self.client_shard[c]
    }

    /// Global ids of the MDSs shard `s` owns (contiguous range).
    pub fn mds_of_shard(&self, s: ShardId) -> std::ops::Range<usize> {
        range_of(&self.mds_shard, s)
    }

    /// Global ids of the clients shard `s` owns (contiguous range).
    pub fn clients_of_shard(&self, s: ShardId) -> std::ops::Range<usize> {
        range_of(&self.client_shard, s)
    }
}

fn range_of(map: &[ShardId], s: ShardId) -> std::ops::Range<usize> {
    let lo = map.partition_point(|&x| x < s);
    let hi = map.partition_point(|&x| x <= s);
    lo..hi
}

/// Per-shard execution statistics (wall-clock side channel; never feeds
/// back into the simulation).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// `(first, count)` of the MDS ids this shard owns.
    pub mds_range: (usize, usize),
    /// `(first, count)` of the client ids this shard owns.
    pub client_range: (usize, usize),
    /// Simulation events drained by this shard.
    pub events: u64,
    /// Cross-shard messages this shard sent.
    pub msgs_sent: u64,
    /// Wall-clock nanoseconds spent waiting at window barriers.
    pub barrier_wait_ns: u64,
}

/// Whole-run execution statistics, reported by
/// [`crate::cluster::Cluster::run_with_stats`].
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Worker threads used (1 = inline single-threaded driver).
    pub threads: usize,
    /// Lookahead windows executed.
    pub windows: u64,
    /// Control-plane events (heartbeats, faults, admin actions) run in
    /// exclusive phases.
    pub exclusive_events: u64,
    /// Per-shard breakdown.
    pub shards: Vec<ShardStats>,
}

/// A reusable spin-then-park barrier. Latecomers spin briefly — on a
/// multi-core host the other parties usually arrive within the spin
/// window, skipping the parking syscalls entirely — then park on a
/// condvar. Parking (rather than yielding) is what keeps the engine
/// usable when hardware threads are scarcer than parties: with more
/// workers than cores, a yield-loop barrier degenerates into a scheduler
/// storm of busy waiters, while parked waiters cost one wakeup each.
#[derive(Debug)]
pub struct SpinBarrier {
    parties: usize,
    /// Bumped (under the lock) when the last party arrives; waiters spin
    /// and park on it changing.
    generation: AtomicUsize,
    /// Arrivals in the current generation.
    arrived: Mutex<usize>,
    cv: Condvar,
}

/// Spin iterations before parking. Short: the spin only pays off when
/// the remaining parties are currently *running* on other cores.
const BARRIER_SPIN: u32 = 128;

impl SpinBarrier {
    /// A barrier for `parties` participants.
    pub fn new(parties: usize) -> Self {
        SpinBarrier {
            parties,
            generation: AtomicUsize::new(0),
            arrived: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Block until all `parties` participants have arrived.
    pub fn wait(&self) {
        let gen = {
            let mut arrived = self.arrived.lock().expect("barrier lock");
            *arrived += 1;
            if *arrived == self.parties {
                *arrived = 0;
                // Publish under the lock: a waiter that re-checks while
                // holding it either sees the new generation or blocks us
                // here until it parks — no lost wakeups.
                let gen = self.generation.load(Ordering::Relaxed);
                self.generation
                    .store(gen.wrapping_add(1), Ordering::Release);
                drop(arrived);
                self.cv.notify_all();
                return;
            }
            self.generation.load(Ordering::Relaxed)
        };
        for _ in 0..BARRIER_SPIN {
            if self.generation.load(Ordering::Acquire) != gen {
                return;
            }
            std::hint::spin_loop();
        }
        let mut arrived = self.arrived.lock().expect("barrier lock");
        while self.generation.load(Ordering::Acquire) == gen {
            arrived = self.cv.wait(arrived).expect("barrier lock");
        }
    }
}

/// One shard: a contiguous slice of the cluster's MDSs and clients, with
/// their event queue and every piece of state only they touch. During a
/// window the shard has shared read access to [`SharedSim`] and
/// exclusive access to itself; everything it cannot do under those terms
/// (namespace writes, cross-shard sends) is deferred to the barrier.
pub struct Shard {
    pub(crate) id: ShardId,
    /// Global id of this shard's first MDS / client.
    pub(crate) mds_lo: usize,
    pub(crate) client_lo: usize,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) workload: Box<dyn Workload>,
    pub(crate) clients: Vec<ClientState>,
    pub(crate) counters: Vec<MdsCounters>,
    /// Absolute µs when each local MDS becomes free (single-server queue).
    pub(crate) next_free: Vec<SimTime>,
    /// Per-MDS service-noise streams (`stream_n("service-noise", m)`), so
    /// an MDS's noise sequence is independent of every other MDS's event
    /// interleaving.
    pub(crate) rng_service: Vec<SimRng>,
    /// Per-origin key counters.
    mds_ctr: Vec<u64>,
    client_ctr: Vec<u64>,
    /// Reused owner-list buffer (per-op span / routing checks).
    scratch_owners: Vec<MdsId>,
    /// Namespace mutations accumulated this window, drained at the barrier.
    pub(crate) deferred: Vec<DeferredNsOp>,
    /// Outgoing cross-shard messages, one bin per destination shard,
    /// swapped into destination queues at the barrier.
    pub(crate) outbox: Vec<Vec<CrossShardMsg>>,
    /// This shard's slice of the trace, merged at run end.
    pub(crate) trace: Vec<(TraceKey, TraceRecord)>,
    /// Emit request-level records (trace level Full). Set by
    /// [`crate::cluster::Cluster::enable_tracing`] before the run.
    pub(crate) trace_full: bool,
    /// Requests in flight, net of this shard's issues (+1) and
    /// resolutions (−1). Negative mid-window is fine (a shard can resolve
    /// more than it issued); the cross-shard *sum* is the real count.
    pub(crate) inflight: i64,
    /// Local clients still issuing ops.
    pub(crate) active: usize,
    pub(crate) timeouts: u64,
    pub(crate) retries: u64,
    /// Time of the last event this shard processed.
    pub(crate) last_event: SimTime,
    /// Wall-clock execution stats.
    pub(crate) stats: ShardStats,
    // Cursor of the event being processed (drives trace sort keys).
    cur_at: SimTime,
    cur_key: u64,
    cur_emit: u32,
    cur_epoch: u64,
    // Cached config-derived values.
    pub(crate) cfg: ClusterConfig,
    faults_active: bool,
    half_rtt: SimTime,
    // Proxy-cache plumbing (all inert when `cfg.cache.enabled` is off).
    cache_on: bool,
    cache_groups: usize,
    /// Total client count across the cluster (group assignment needs the
    /// global population, not this shard's slice).
    num_clients: usize,
    cache_hit_lat: SimTime,
    /// Run-total cache hits/misses attributed per MDS (global MDS ids —
    /// a shard's clients can hit entries naming any MDS).
    pub(crate) cache_hits: Vec<u64>,
    pub(crate) cache_misses: Vec<u64>,
    /// Per-heartbeat-window slices of the above, zeroed on window roll.
    pub(crate) cache_window_hits: Vec<u64>,
    pub(crate) cache_window_misses: Vec<u64>,
    /// Live-service mode: record op completions for the wire layer. Set
    /// by [`crate::cluster::Cluster::serve`] before the run; batch runs
    /// leave it off and pay one untaken branch per reply.
    pub(crate) live: bool,
    /// Completions accumulated since the service pump last drained them.
    pub(crate) completions: Vec<crate::service::LiveCompletion>,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("id", &self.id)
            .field("mds_lo", &self.mds_lo)
            .field("client_lo", &self.client_lo)
            .field("active", &self.active)
            .field("inflight", &self.inflight)
            .finish_non_exhaustive()
    }
}

impl Shard {
    /// Build shard `id` of `router.num_shards()`, owning the router's
    /// slices. `clients` must be exactly the [`ClientState`]s of this
    /// shard's client range, in id order; `workload` a fork with only
    /// those clients ever driven through it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: ShardId,
        router: &ShardRouter,
        cfg: ClusterConfig,
        workload: Box<dyn Workload>,
        clients: Vec<ClientState>,
        master: &SimRng,
        trace_full: bool,
    ) -> Self {
        let mds_range = router.mds_of_shard(id);
        let client_range = router.clients_of_shard(id);
        debug_assert_eq!(client_range.len(), clients.len());
        let faults_active = cfg.faults.is_active();
        let half_rtt = SimTime::from_micros_f64(cfg.costs.rtt_us / 2.0);
        let stats = ShardStats {
            mds_range: (mds_range.start, mds_range.len()),
            client_range: (client_range.start, client_range.len()),
            ..ShardStats::default()
        };
        Shard {
            id,
            mds_lo: mds_range.start,
            client_lo: client_range.start,
            queue: EventQueue::with_scheduler(cfg.scheduler),
            workload,
            clients,
            counters: mds_range.clone().map(|_| MdsCounters::new()).collect(),
            next_free: vec![SimTime::ZERO; mds_range.len()],
            rng_service: mds_range
                .clone()
                .map(|m| master.stream_n("service-noise", m))
                .collect(),
            mds_ctr: vec![0; mds_range.len()],
            client_ctr: vec![0; client_range.len()],
            scratch_owners: Vec::new(),
            deferred: Vec::new(),
            outbox: (0..router.num_shards()).map(|_| Vec::new()).collect(),
            trace: Vec::new(),
            trace_full,
            inflight: 0,
            active: client_range.len(),
            timeouts: 0,
            retries: 0,
            last_event: SimTime::ZERO,
            stats,
            cur_at: SimTime::ZERO,
            cur_key: 0,
            cur_emit: 0,
            cur_epoch: 0,
            faults_active,
            half_rtt,
            cache_on: cfg.cache.enabled,
            cache_groups: cfg.cache.groups.max(1),
            num_clients: router.client_shard.len(),
            cache_hit_lat: SimTime::from_micros_f64(cfg.cache.hit_us),
            cache_hits: vec![0; cfg.num_mds],
            cache_misses: vec![0; cfg.num_mds],
            cache_window_hits: vec![0; cfg.num_mds],
            cache_window_misses: vec![0; cfg.num_mds],
            live: false,
            completions: Vec::new(),
            cfg,
        }
    }

    // -- keys ------------------------------------------------------------

    /// Next key for an event generated by local MDS `m` (global id).
    fn mds_key(&mut self, m: MdsId) -> u64 {
        let l = m - self.mds_lo;
        let ctr = self.mds_ctr[l];
        self.mds_ctr[l] += 1;
        ((1 + m as u64) << KEY_CTR_BITS) | ctr
    }

    /// Next key for an event generated by local client `c` (global id).
    pub(crate) fn client_key(&mut self, c: usize) -> u64 {
        let l = c - self.client_lo;
        let ctr = self.client_ctr[l];
        self.client_ctr[l] += 1;
        ((1 + self.cfg.num_mds as u64 + c as u64) << KEY_CTR_BITS) | ctr
    }

    // -- local state accessors -------------------------------------------

    pub(crate) fn client(&self, c: usize) -> &ClientState {
        &self.clients[c - self.client_lo]
    }

    pub(crate) fn client_mut(&mut self, c: usize) -> &mut ClientState {
        &mut self.clients[c - self.client_lo]
    }

    pub(crate) fn counters_mut(&mut self, m: MdsId) -> &mut MdsCounters {
        &mut self.counters[m - self.mds_lo]
    }

    // -- trace -----------------------------------------------------------

    /// Emit a data-plane record (recorded only at `TraceLevel::Full`),
    /// keyed under the event currently being processed. Every record a
    /// shard can emit is data-plane; control-plane records all originate
    /// at the coordinator.
    fn emit_full(&mut self, make: impl FnOnce() -> TraceEvent) {
        if self.trace_full {
            let record = TraceRecord {
                at: self.cur_at,
                epoch: self.cur_epoch,
                event: make(),
            };
            self.trace
                .push(((self.cur_at, self.cur_key, self.cur_emit), record));
            self.cur_emit += 1;
        }
    }

    // -- routing ---------------------------------------------------------

    /// Schedule `event` at `(at, key)`: locally if this shard owns the
    /// target, into the outbox otherwise. Cross-shard events are always
    /// at least one lookahead window away (the coordinator sizes windows
    /// below the minimum cross-shard latency), so barrier delivery never
    /// delivers into a window already processed.
    fn send(&mut self, target: ShardId, at: SimTime, key: u64, event: Event) {
        if target == self.id {
            self.queue.schedule_at_key(at, key, event);
        } else {
            self.stats.msgs_sent += 1;
            self.outbox[target].push(CrossShardMsg { at, key, event });
        }
    }

    // -- the window loop -------------------------------------------------

    /// Drain every local event strictly before `window_end`. Called with
    /// shared read access to `sh`; all mutations outside this shard are
    /// queued in `deferred` / `outbox` for the barrier.
    pub(crate) fn process_window(
        &mut self,
        sh: &SharedSim,
        router: &ShardRouter,
        window_end: SimTime,
    ) {
        self.cur_epoch = sh.hb_epoch;
        while let Some((now, key, event)) = self.queue.pop_before(window_end) {
            self.last_event = now;
            self.cur_at = now;
            self.cur_key = key;
            self.cur_emit = 0;
            self.stats.events += 1;
            match event {
                Event::ClientNext(c) => {
                    if !self.client(c).done {
                        self.client_next(sh, router, c, now);
                    }
                }
                Event::Arrive { mds, req } => self.on_arrive(sh, router, mds, req, now),
                Event::Complete {
                    mds,
                    req,
                    service_us,
                    epoch,
                } => self.on_complete(sh, router, mds, req, service_us, epoch, now),
                Event::Reply { mds, req } => self.on_reply(sh, router, mds, req, now),
                Event::Timeout { client, seq } => self.on_timeout(client, seq, now),
                Event::Retry(c) => self.on_retry(sh, router, c, now),
            }
        }
    }

    // -- client side -----------------------------------------------------

    /// Advance client `c`: ask the workload for its next op and issue it,
    /// or mark the client done. Runs inline from an accepted reply (no
    /// same-instant self-event) and from `Event::ClientNext`.
    fn client_next(&mut self, sh: &SharedSim, router: &ShardRouter, c: usize, now: SimTime) {
        let stall = self.client(c).stall_until;
        if stall > now {
            let key = self.client_key(c);
            self.queue.schedule_at_key(stall, key, Event::ClientNext(c));
            return;
        }
        // Open-loop workloads can park a client until a future window
        // (diurnal phases); re-poll at that instant.
        if let Some(ready) = self.workload.next_ready_at(c, now) {
            if ready > now {
                let key = self.client_key(c);
                self.queue.schedule_at_key(ready, key, Event::ClientNext(c));
                return;
            }
        }
        match self.workload.next(c, &sh.ns, now) {
            None => {
                let client = self.client_mut(c);
                client.done = true;
                if client.finished_at == SimTime::ZERO {
                    client.finished_at = now;
                }
                self.active -= 1;
            }
            Some(op) => {
                let client = self.client_mut(c);
                client.pending = Some(op);
                client.attempts = 0;
                self.issue(sh, router, c, now);
            }
        }
    }

    /// Send the client's pending op to the MDS it routes to, arming the
    /// request timeout when fault injection is on.
    fn issue(&mut self, sh: &SharedSim, router: &ShardRouter, c: usize, now: SimTime) {
        let op = self
            .client(c)
            .pending
            .expect("issue() requires a pending op");
        let frag = sh.ns.peek_frag(op.dir);
        sh.ns.frag_owners_into(op.dir, &mut self.scratch_owners);
        let multi_owner = self.scratch_owners.len() > 1;
        // Proxy-tier probe: does the client group's cache hold this dir?
        // (Read-only during the window — the LRU touch defers to the
        // barrier like every other shared-state write.)
        let probe = if self.cache_on && cacheable(op.kind) {
            let group = group_of(c, self.num_clients, self.cache_groups);
            Some((group, sh.caches[group].lookup(op.dir)))
        } else {
            None
        };
        let client = &mut self.clients[c - self.client_lo];
        let mds = client.route(&sh.ns, &op, frag, multi_owner);
        client.seq += 1;
        let seq = client.seq;
        let attempts = client.attempts;
        let req = Request {
            client: c,
            op,
            frag,
            issued: now,
            forwarded: false,
            seq,
            attempts,
        };
        if let Some((group, Some(cached))) = probe {
            // Cache hit: the proxy tier absorbs the op. No MDS is
            // enqueued, no service time or heat is charged anywhere
            // (cache-aware metaload: absorbed traffic is *not* MDS
            // load), and no timeout is armed — the reply is local to
            // the tier and cannot be lost. The hit is attributed to the
            // entry's authority so policies can see what the tier is
            // absorbing on each MDS's behalf.
            self.cache_hits[cached] += 1;
            self.cache_window_hits[cached] += 1;
            self.emit_full(|| TraceEvent::CacheHit {
                group,
                client: c,
                dir: op.dir,
                mds: cached,
            });
            self.deferred.push(DeferredNsOp {
                at: now,
                key: self.cur_key,
                op: NsOp::CacheTouch { group, dir: op.dir },
            });
            let key = self.client_key(c);
            self.queue.schedule_at_key(
                now + self.cache_hit_lat,
                key,
                Event::Reply { mds: cached, req },
            );
            return;
        }
        if probe.is_some() {
            // Cacheable but absent: post-cache traffic the routed MDS
            // actually receives.
            self.cache_misses[mds] += 1;
            self.cache_window_misses[mds] += 1;
        }
        self.emit_full(|| TraceEvent::RequestIssued {
            client: c,
            dir: op.dir,
            mds,
            seq,
        });
        self.inflight += 1;
        let key = self.client_key(c);
        self.send(
            router.mds_shard[mds],
            now + self.half_rtt,
            key,
            Event::Arrive { mds, req },
        );
        if self.faults_active {
            let key = self.client_key(c);
            self.queue.schedule_at_key(
                now + self.cfg.faults.request_timeout,
                key,
                Event::Timeout { client: c, seq },
            );
        }
    }

    /// A request timeout fired. If the attempt is still outstanding, the
    /// client declares it lost, forgets its (possibly stale) route for
    /// the directory, and backs off exponentially before retrying.
    fn on_timeout(&mut self, c: usize, seq: u64, now: SimTime) {
        let client = self.client(c);
        if client.seq != seq || client.pending.is_none() {
            return; // the attempt completed (or was already superseded)
        }
        self.timeouts += 1;
        self.emit_full(|| TraceEvent::RequestTimeout { client: c, seq });
        let client = self.client_mut(c);
        let dir = client.pending.expect("checked above").dir;
        let attempt = client.attempts;
        client.attempts += 1;
        // Re-route: the cached mapping pointed at a dead or unreachable
        // authority; fall back to the mount authority on the next try.
        client.invalidate(dir);
        let backoff = self.cfg.faults.backoff_for(attempt);
        let key = self.client_key(c);
        self.queue
            .schedule_at_key(now + backoff, key, Event::Retry(c));
    }

    /// The backoff elapsed: re-issue the pending op (a late reply may
    /// have landed in the meantime, in which case there is nothing to do).
    fn on_retry(&mut self, sh: &SharedSim, router: &ShardRouter, c: usize, now: SimTime) {
        if self.client(c).done || self.client(c).pending.is_none() {
            return;
        }
        self.retries += 1;
        let attempt = self.client(c).attempts;
        self.emit_full(|| TraceEvent::RequestRetry { client: c, attempt });
        self.issue(sh, router, c, now);
    }

    /// A reply reached its client. The client-side guard mirrors the old
    /// sequential engine: a reply for a superseded attempt (the client
    /// timed out and re-issued meanwhile) is dropped on the floor.
    fn on_reply(
        &mut self,
        sh: &SharedSim,
        router: &ShardRouter,
        mds: MdsId,
        req: Request,
        now: SimTime,
    ) {
        let client = self.client_mut(req.client);
        if req.seq != client.seq || client.pending.is_none() {
            return;
        }
        client.pending = None;
        client.learn(&sh.ns, req.op.dir, mds);
        let latency_ms = (now - req.issued).as_millis_f64();
        client.record_completion(now, latency_ms);
        if self.live {
            self.completions.push(crate::service::LiveCompletion {
                client: req.client,
                mds,
                kind: req.op.kind,
                dir: req.op.dir,
                at: now,
                latency_ms,
            });
        }
        self.client_next(sh, router, req.client, now);
    }

    // -- server side -----------------------------------------------------

    fn on_arrive(
        &mut self,
        sh: &SharedSim,
        router: &ShardRouter,
        mds: MdsId,
        mut req: Request,
        now: SimTime,
    ) {
        // A crashed MDS serves nothing: the request is lost on the floor
        // and the issuing client's timeout recovers it.
        if !sh.up[mds] {
            self.counters_mut(mds).dropped += 1;
            self.inflight -= 1;
            self.emit_full(|| TraceEvent::Dropped {
                mds,
                client: req.client,
            });
            return;
        }
        // Hash placement pins each directory on first touch. The pin is a
        // namespace write, so it lands at the barrier (first arrival in
        // key order wins); routing inside this window still sees the
        // window-start authority, identically in every execution mode.
        if self.cfg.placement == PlacementPolicy::HashDirs && sh.ns.dir(req.op.dir).auth.is_none() {
            let mut target = (req.op.dir.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) as usize
                % self.cfg.num_mds;
            if !sh.up[target] || !sh.member[target] {
                target = 0; // never pin fresh metadata on a dead or departed MDS
            }
            self.deferred.push(DeferredNsOp {
                at: now,
                key: self.cur_key,
                op: NsOp::Pin {
                    dir: req.op.dir,
                    mds: target,
                },
            });
        }
        // Frozen subtree (mid-migration): the request waits for the thaw.
        if let Some(thaw) = frozen_until(sh, req.op.dir, now) {
            self.emit_full(|| TraceEvent::Deferred {
                mds,
                dir: req.op.dir,
                until: thaw,
            });
            let key = self.mds_key(mds);
            self.queue
                .schedule_at_key(thaw, key, Event::Arrive { mds, req });
            return;
        }
        let frag = req.frag.min(sh.ns.dir(req.op.dir).frags.len() - 1);
        let auth = sh.ns.frag_auth(req.op.dir, frag);
        if auth != mds {
            // Wrong MDS: pay a forward (wasted service here + a hop).
            self.counters_mut(mds).forwards_out += 1;
            let fwd_us = self.cfg.costs.forward_us;
            let start = self.next_free[mds - self.mds_lo].max(now);
            self.next_free[mds - self.mds_lo] = start + SimTime::from_micros_f64(fwd_us);
            self.counters_mut(mds).busy_window_us += fwd_us;
            req.forwarded = true;
            self.emit_full(|| TraceEvent::Forwarded {
                from: mds,
                to: auth,
                dir: req.op.dir,
                frag,
                client: req.client,
            });
            let hop = SimTime::from_micros_f64(self.cfg.costs.forward_hop_us);
            let at = self.next_free[mds - self.mds_lo].max(now) + hop;
            let key = self.mds_key(mds);
            self.send(
                router.mds_shard[auth],
                at,
                key,
                Event::Arrive { mds: auth, req },
            );
            return;
        }
        if req.forwarded {
            self.counters_mut(mds).forwards_in += 1;
        } else {
            self.counters_mut(mds).hits += 1;
        }
        self.emit_full(|| TraceEvent::Served {
            mds,
            client: req.client,
            dir: req.op.dir,
            frag,
            kind: req.op.kind,
            seq: req.seq,
        });
        sh.ns.frag_owners_into(req.op.dir, &mut self.scratch_owners);
        let span = self.scratch_owners.len();
        let mut base = self.cfg.costs.service_with_span(req.op.kind, span)
            * self
                .cfg
                .costs
                .contention_factor(self.counters[mds - self.mds_lo].queued);
        // Path traversal: right after an import the serving MDS has not
        // yet replicated the directory's ancestor prefix, so traversals
        // resolve remotely (and, once warm, locally again).
        let in_cold = sh
            .prefix_cold
            .iter()
            .any(|w| w.until > now && w.contains(&sh.ns, req.op.dir));
        if in_cold {
            if sh.ns.dir(req.op.dir).parent.is_some() {
                base *= 1.0 + self.cfg.costs.remote_prefix_penalty;
                self.counters_mut(mds).remote_prefix += 1;
            }
        } else if self.cfg.placement == PlacementPolicy::HashDirs {
            // Hash-based placement has no subtree prefix replication
            // (§5 "Compute it – Hashing"): every traversal whose parent
            // lives elsewhere resolves remotely, permanently.
            if let Some(parent) = sh.ns.dir(req.op.dir).parent {
                if sh.ns.resolve_auth(parent) != mds {
                    base *= 1.0 + self.cfg.costs.remote_prefix_penalty;
                    self.counters_mut(mds).remote_prefix += 1;
                }
            }
        }
        // An injected slowdown stretches every service time in its window.
        if self.faults_active && now < sh.slow_until[mds] {
            base *= sh.slow_factor[mds];
        }
        let noise = self.rng_service[mds - self.mds_lo].jitter(self.cfg.costs.service_noise);
        let service_us = (base * noise).max(1.0);
        let start = self.next_free[mds - self.mds_lo].max(now);
        let done = start + SimTime::from_micros_f64(service_us);
        self.next_free[mds - self.mds_lo] = done;
        self.counters_mut(mds).queued += 1;
        let key = self.mds_key(mds);
        self.queue.schedule_at_key(
            done,
            key,
            Event::Complete {
                mds,
                req,
                service_us,
                epoch: sh.mds_epoch[mds],
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_complete(
        &mut self,
        sh: &SharedSim,
        router: &ShardRouter,
        mds: MdsId,
        req: Request,
        service_us: f64,
        epoch: u64,
        now: SimTime,
    ) {
        // Ghost completion: the MDS crashed (and possibly restarted) after
        // this request entered service — the reply never left the wire.
        if !sh.up[mds] || epoch != sh.mds_epoch[mds] {
            self.inflight -= 1;
            self.emit_full(|| TraceEvent::GhostReply { mds });
            return;
        }
        let counters = self.counters_mut(mds);
        counters.queued = counters.queued.saturating_sub(1);
        counters.complete_op(now, service_us);
        // The op's heat/size charge is a namespace write → barrier. The
        // fragment layout cannot change mid-window (splits also run at
        // barriers), so the clamped index is exactly what the deferred
        // apply will use.
        let frag_used = req.frag.min(sh.ns.dir(req.op.dir).frags.len() - 1);
        self.deferred.push(DeferredNsOp {
            at: now,
            key: self.cur_key,
            op: NsOp::Record {
                dir: req.op.dir,
                frag: req.frag,
                kind: req.op.kind,
            },
        });
        // A mutating op rewrote `dir`'s metadata: every proxy copy is
        // stale. The drop is queued even when the reply turns out stale
        // below — the mutation itself happened either way.
        if self.cache_on && req.op.kind.is_write() {
            self.deferred.push(DeferredNsOp {
                at: now,
                key: self.cur_key,
                op: NsOp::CacheInvalidate { dir: req.op.dir },
            });
        }
        // Server-computed staleness: the issuing client has already timed
        // this attempt out and re-issued iff its retry fired strictly
        // before service finished. Everything in the predicate travelled
        // with the request, so no cross-shard peek at client state is
        // needed — the client-side guard in `on_reply` stays authoritative
        // for the races this can't see.
        let stale = self.faults_active
            && req.issued
                + self.cfg.faults.request_timeout
                + self.cfg.faults.backoff_for(req.attempts)
                < now;
        if stale {
            self.emit_full(|| TraceEvent::StaleReply {
                mds,
                client: req.client,
                dir: req.op.dir,
                frag: frag_used,
                kind: req.op.kind,
            });
            self.inflight -= 1;
            return;
        }
        self.emit_full(|| TraceEvent::Completed {
            mds,
            client: req.client,
            dir: req.op.dir,
            frag: frag_used,
            kind: req.op.kind,
        });
        // The reply carries `dir`'s metadata through the proxy tier: the
        // issuing group's cache learns it at the barrier (ghost and stale
        // completions above never fill — their replies never landed).
        if self.cache_on && cacheable(req.op.kind) {
            let group = group_of(req.client, self.num_clients, self.cache_groups);
            self.deferred.push(DeferredNsOp {
                at: now,
                key: self.cur_key,
                op: NsOp::CacheFill {
                    group,
                    dir: req.op.dir,
                    mds,
                },
            });
        }
        self.inflight -= 1;
        let reply_at = now + self.half_rtt;
        let key = self.mds_key(mds);
        self.send(
            router.client_shard[req.client],
            reply_at,
            key,
            Event::Reply { mds, req },
        );
    }
}

/// Latest thaw among live frozen windows covering `d`, if any. Purging
/// happens at barriers; mid-window readers filter by `until` instead of
/// mutating the shared set.
pub(crate) fn frozen_until(sh: &SharedSim, d: NodeId, now: SimTime) -> Option<SimTime> {
    sh.frozen
        .iter()
        .filter(|w| w.until > now && w.contains(&sh.ns, d))
        .map(|w| w.until)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_partitions_contiguously() {
        let r = ShardRouter::new(10, 7, 4);
        // Contiguous, non-decreasing assignment covering every shard.
        assert!(r.mds_shard.windows(2).all(|w| w[0] <= w[1]));
        assert!(r.client_shard.windows(2).all(|w| w[0] <= w[1]));
        let total: usize = (0..4).map(|s| r.mds_of_shard(s).len()).sum();
        assert_eq!(total, 10);
        let total: usize = (0..4).map(|s| r.clients_of_shard(s).len()).sum();
        assert_eq!(total, 7);
        // Ranges agree with the map.
        for s in 0..4 {
            for m in r.mds_of_shard(s) {
                assert_eq!(r.shard_of_mds(m), s);
            }
        }
    }

    #[test]
    fn router_allows_more_shards_than_mds() {
        let r = ShardRouter::new(3, 5, 8);
        let sizes: Vec<usize> = (0..8).map(|s| r.mds_of_shard(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 3);
        assert!(sizes.iter().all(|&n| n <= 1));
        // Every MDS still has exactly one owner.
        for m in 0..3 {
            let s = r.shard_of_mds(m);
            assert!(r.mds_of_shard(s).contains(&m));
        }
    }

    #[test]
    fn keys_order_by_origin_then_sequence() {
        // Coordinator rank 0 sorts before MDS ranks, which sort before
        // client ranks; within a rank the counter orders emissions.
        let coord = 7u64; // rank 0 key is just the counter
        let mds0 = 1u64 << KEY_CTR_BITS;
        let mds1 = 2u64 << KEY_CTR_BITS;
        let client0 = (1u64 + 4) << KEY_CTR_BITS; // num_mds = 4
        assert!(coord < mds0);
        assert!(mds0 < mds1);
        assert!(mds1 < client0);
        assert!(mds0 < (1u64 << KEY_CTR_BITS) | 1);
    }

    #[test]
    fn spin_barrier_synchronizes() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let barrier = Arc::new(SpinBarrier::new(4));
        let hits = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&barrier);
                let h = Arc::clone(&hits);
                std::thread::spawn(move || {
                    for round in 0..100u64 {
                        b.wait();
                        // Everyone saw every previous round complete.
                        assert!(h.load(Ordering::SeqCst) >= round * 4);
                        h.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        assert!(h.load(Ordering::SeqCst) >= (round + 1) * 4);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 400);
    }
}
