//! Partitioning the namespace: turning a [`MigrationPlan`]'s per-MDS load
//! targets into concrete subtree/dirfrag exports.
//!
//! The traversal follows §3.2: start at this MDS's subtree roots and work
//! downward — "subtrees are divided and migrated only if their ancestors
//! are too popular to migrate" — running every configured dirfrag selector
//! at each level and keeping the one that lands closest to the remaining
//! target.

use mantle_namespace::{FragId, MdsId, Namespace, NodeId};
use mantle_policy::PolicyResult;
use mantle_sim::SimTime;

use crate::balancer::{Balancer, MigrationPlan};
use crate::selector::select_best_of;

/// One unit of metadata chosen for export.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExportUnit {
    /// A whole subtree rooted at a directory.
    Subtree(NodeId),
    /// One fragment of a directory.
    Frag(NodeId, FragId),
}

/// A planned export: what goes where, and how much load it carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Export {
    /// The unit to move.
    pub unit: ExportUnit,
    /// Destination MDS.
    pub to: MdsId,
    /// The unit's metadata load at planning time.
    pub load: f64,
}

/// Internal: a candidate unit with its load.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    unit: ExportUnit,
    load: f64,
}

/// Fraction of the target below which we stop drilling (close enough).
const TARGET_EPSILON: f64 = 0.05;

/// Plan concrete exports for `plan` on behalf of MDS `me`.
///
/// Reads (and lazily decays) fragment heat via the balancer's `metaload`
/// hook; does **not** mutate authority — the cluster applies the returned
/// exports so it can charge migration costs.
pub fn plan_exports<B: Balancer + ?Sized>(
    ns: &mut Namespace,
    me: MdsId,
    balancer: &B,
    plan: &MigrationPlan,
    now: SimTime,
) -> PolicyResult<Vec<Export>> {
    let mut exports = Vec::new();
    // Process destinations largest target first, so big importers get the
    // big subtrees.
    let mut order: Vec<usize> = (0..plan.targets.len()).collect();
    order.sort_by(|&a, &b| {
        plan.targets[b]
            .partial_cmp(&plan.targets[a])
            .expect("targets are never NaN")
    });

    // Track units already claimed by earlier destinations.
    let mut claimed_subtrees: Vec<NodeId> = Vec::new();
    let mut claimed_frags: Vec<(NodeId, FragId)> = Vec::new();

    for dest in order {
        let target = plan.targets[dest];
        if dest == me || target <= 0.0 {
            continue;
        }
        let mut remaining = target;
        // My export roots: dirs explicitly bound to me, plus dirs where I
        // own individual fragments (an MDS that only ever *imported*
        // dirfrags — the downstream nodes of a spill cascade — has no
        // bound subtree but must still be able to shed its fragments).
        // The namespace's ownership index yields these directly instead of
        // a full-namespace scan.
        let mut queue: Vec<NodeId> = ns
            .export_candidate_dirs(me)
            .into_iter()
            .filter(|d| !claimed_subtrees.contains(d))
            .collect();
        sort_by_load(ns, balancer, &mut queue, now)?;

        while remaining > target * TARGET_EPSILON {
            let Some(dir) = queue.pop() else { break };
            let mut cands: Vec<Candidate> = Vec::new();
            let mut drill: Vec<NodeId> = Vec::new();
            // Child subtrees still bound to me.
            let children: Vec<NodeId> = ns.dir(dir).children.clone();
            for c in &children {
                if ns.resolve_auth(*c) == me
                    && ns.dir(*c).auth.is_none_or(|a| a == me)
                    && !claimed_subtrees.contains(c)
                {
                    let load = subtree_load(ns, balancer, *c, me, now)?;
                    if load <= 0.0 {
                        continue;
                    }
                    // A subtree that dwarfs the remaining target is too
                    // popular to migrate whole — divide it instead
                    // (§3.2: "subtrees are divided and migrated only if
                    // their ancestors are too popular to migrate").
                    let divisible = !ns.dir(*c).children.is_empty() || ns.dir(*c).frags.len() > 1;
                    if divisible && load > remaining * 1.25 {
                        drill.push(*c);
                        continue;
                    }
                    cands.push(Candidate {
                        unit: ExportUnit::Subtree(*c),
                        load,
                    });
                }
            }
            // My fragments of this directory.
            for f in 0..ns.dir(dir).frags.len() {
                if ns.frag_auth(dir, f) == me && !claimed_frags.contains(&(dir, f)) {
                    let heat = ns.frag_heat(dir, f, now);
                    let load = balancer.metaload(&heat)?;
                    if load > 0.0 {
                        cands.push(Candidate {
                            unit: ExportUnit::Frag(dir, f),
                            load,
                        });
                    }
                }
            }
            if cands.is_empty() {
                sort_by_load(ns, balancer, &mut drill, now)?;
                queue.extend(drill);
                continue;
            }
            let loads: Vec<f64> = cands.iter().map(|c| c.load).collect();
            let (_, chosen, shipped) = select_best_of(&plan.selectors, &loads, remaining)?;
            for &i in &chosen {
                let c = cands[i];
                match c.unit {
                    ExportUnit::Subtree(d) => claimed_subtrees.push(d),
                    ExportUnit::Frag(d, f) => claimed_frags.push((d, f)),
                }
                exports.push(Export {
                    unit: c.unit,
                    to: dest,
                    load: c.load,
                });
            }
            remaining -= shipped;
            // Drill down: oversized and unchosen child subtrees become the
            // next level.
            let mut next: Vec<NodeId> = drill;
            next.extend(
                cands
                    .iter()
                    .enumerate()
                    .filter(|(i, c)| {
                        !chosen.contains(i) && matches!(c.unit, ExportUnit::Subtree(_))
                    })
                    .map(|(_, c)| match c.unit {
                        ExportUnit::Subtree(d) => d,
                        ExportUnit::Frag(..) => unreachable!(),
                    }),
            );
            sort_by_load(ns, balancer, &mut next, now)?;
            queue.extend(next);
        }
    }
    Ok(exports)
}

fn sort_by_load<B: Balancer + ?Sized>(
    ns: &mut Namespace,
    balancer: &B,
    dirs: &mut [NodeId],
    now: SimTime,
) -> PolicyResult<()> {
    let mut keyed: Vec<(NodeId, f64)> = Vec::with_capacity(dirs.len());
    for &d in dirs.iter() {
        let heat = ns.subtree_heat(d, now);
        keyed.push((d, balancer.metaload(&heat)?));
    }
    keyed.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("loads are never NaN"));
    for (slot, (d, _)) in dirs.iter_mut().zip(keyed) {
        *slot = d;
    }
    Ok(())
}

/// Metadata load of the subtree rooted at `dir`, counting only fragments
/// bound to `me` (nested bounds belong to other MDSs).
pub fn subtree_load<B: Balancer + ?Sized>(
    ns: &mut Namespace,
    balancer: &B,
    dir: NodeId,
    me: MdsId,
    now: SimTime,
) -> PolicyResult<f64> {
    let mut total = 0.0;
    for d in ns.subtree_dirs(dir, true) {
        for f in 0..ns.dir(d).frags.len() {
            if ns.frag_auth(d, f) == me {
                let heat = ns.frag_heat(d, f, now);
                total += balancer.metaload(&heat)?;
            }
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::CephfsBalancer;
    use crate::selector::DirfragSelector;
    use mantle_namespace::{NsConfig, OpKind};

    fn heat_up(ns: &mut Namespace, dir: NodeId, creates: usize) {
        for _ in 0..creates {
            ns.record_op(dir, OpKind::Create, SimTime::ZERO);
        }
    }

    fn plan(targets: Vec<f64>, selectors: Vec<DirfragSelector>) -> MigrationPlan {
        MigrationPlan {
            targets,
            selectors: selectors.into_iter().map(Into::into).collect(),
        }
    }

    #[test]
    fn exports_biggest_client_dirs_first() {
        let mut ns = Namespace::default();
        let d1 = ns.mkdir_p("/client0");
        let d2 = ns.mkdir_p("/client1");
        let d3 = ns.mkdir_p("/client2");
        heat_up(&mut ns, d1, 100);
        heat_up(&mut ns, d2, 60);
        heat_up(&mut ns, d3, 10);
        let b = CephfsBalancer::default();
        let root = ns.root();
        let total = subtree_load(&mut ns, &b, root, 0, SimTime::ZERO).unwrap();
        let p = plan(vec![0.0, total / 2.0], vec![DirfragSelector::BigFirst]);
        let exports = plan_exports(&mut ns, 0, &b, &p, SimTime::ZERO).unwrap();
        assert!(!exports.is_empty());
        // The hottest dir goes first.
        assert_eq!(exports[0].unit, ExportUnit::Subtree(d1));
        assert!(exports.iter().all(|e| e.to == 1));
        let shipped: f64 = exports.iter().map(|e| e.load).sum();
        assert!(shipped >= total / 2.0 * 0.5, "made real progress");
    }

    #[test]
    fn half_selector_drills_into_shared_dir() {
        // One hot fragmented directory: the `half` selector can't take
        // "half of one subtree", so the planner drills into the dir and
        // ships half its fragments (the Greedy Spill shape of §4.1).
        let mut ns = Namespace::new(NsConfig {
            frag_split_threshold: 16,
            ..Default::default()
        });
        let d = ns.mkdir_p("/shared");
        heat_up(&mut ns, d, 100); // splits into 8 frags
        assert_eq!(ns.dir(d).frags.len(), 8);
        let b = CephfsBalancer::default();
        let total = subtree_load(&mut ns, &b, d, 0, SimTime::ZERO).unwrap();
        let p = plan(vec![0.0, total / 2.0], vec![DirfragSelector::Half]);
        let exports = plan_exports(&mut ns, 0, &b, &p, SimTime::ZERO).unwrap();
        let frag_exports: Vec<_> = exports
            .iter()
            .filter(|e| matches!(e.unit, ExportUnit::Frag(..)))
            .collect();
        assert_eq!(frag_exports.len(), 4, "half of 8 fragments move");
    }

    #[test]
    fn nothing_to_export_when_targets_zero() {
        let mut ns = Namespace::default();
        let d = ns.mkdir_p("/x");
        heat_up(&mut ns, d, 10);
        let b = CephfsBalancer::default();
        let p = plan(vec![0.0, 0.0], vec![DirfragSelector::BigFirst]);
        let exports = plan_exports(&mut ns, 0, &b, &p, SimTime::ZERO).unwrap();
        assert!(exports.is_empty());
    }

    #[test]
    fn cold_namespace_exports_nothing() {
        let mut ns = Namespace::default();
        ns.mkdir_p("/idle");
        let b = CephfsBalancer::default();
        let p = plan(vec![0.0, 100.0], vec![DirfragSelector::BigFirst]);
        let exports = plan_exports(&mut ns, 0, &b, &p, SimTime::ZERO).unwrap();
        assert!(exports.is_empty(), "no load → nothing moves");
    }

    #[test]
    fn two_destinations_get_disjoint_units() {
        let mut ns = Namespace::default();
        let dirs: Vec<NodeId> = (0..6).map(|i| ns.mkdir_p(&format!("/c{i}"))).collect();
        for (i, d) in dirs.iter().enumerate() {
            heat_up(&mut ns, *d, 20 + i * 10);
        }
        let b = CephfsBalancer::default();
        let root = ns.root();
        let total = subtree_load(&mut ns, &b, root, 0, SimTime::ZERO).unwrap();
        let p = plan(
            vec![0.0, total / 3.0, total / 3.0],
            vec![DirfragSelector::BigFirst],
        );
        let exports = plan_exports(&mut ns, 0, &b, &p, SimTime::ZERO).unwrap();
        let mut seen = std::collections::HashSet::new();
        for e in &exports {
            let key = format!("{:?}", e.unit);
            assert!(seen.insert(key), "unit exported twice: {:?}", e.unit);
        }
        assert!(exports.iter().any(|e| e.to == 1));
        assert!(exports.iter().any(|e| e.to == 2));
    }

    #[test]
    fn nested_bounds_are_not_exported() {
        let mut ns = Namespace::default();
        let a = ns.mkdir_p("/a");
        let ab = ns.mkdir_p("/a/b");
        heat_up(&mut ns, a, 50);
        heat_up(&mut ns, ab, 50);
        ns.set_auth(ab, Some(2)); // /a/b already belongs to MDS 2
        let b = CephfsBalancer::default();
        let p = plan(vec![0.0, 1_000.0], vec![DirfragSelector::BigFirst]);
        let exports = plan_exports(&mut ns, 0, &b, &p, SimTime::ZERO).unwrap();
        assert!(
            exports.iter().all(|e| e.unit != ExportUnit::Subtree(ab)),
            "someone else's subtree must not move"
        );
    }

    #[test]
    fn subtree_load_respects_bounds() {
        let mut ns = Namespace::default();
        let a = ns.mkdir_p("/a");
        let ab = ns.mkdir_p("/a/b");
        heat_up(&mut ns, a, 10);
        heat_up(&mut ns, ab, 90);
        let b = CephfsBalancer::default();
        let full = subtree_load(&mut ns, &b, a, 0, SimTime::ZERO).unwrap();
        ns.set_auth(ab, Some(1));
        let bounded = subtree_load(&mut ns, &b, a, 0, SimTime::ZERO).unwrap();
        assert!(bounded < full, "bounded {bounded} < full {full}");
    }
}
