//! The hotspot-absorbing metadata cache tier.
//!
//! Mantle attacks hotspots by *migrating* them; MIDAS/Fletch-style
//! systems attack the same hotspots by *absorbing* them in a cache in
//! front of the cluster. This module composes the two: clients are
//! partitioned into proxy groups, each group fronted by a
//! capacity-bounded LRU [`GroupCache`] that serves read-class lookups
//! (stat / open / readdir) without an MDS round-trip. Coherence is
//! TTL-free and purely invalidation-driven:
//!
//! * **mutating ops** (create / mkdir / setattr / unlink) invalidate the
//!   touched directory's entries in every group at the next window
//!   barrier, via the same deferred-op plumbing that applies heat
//!   charges — so `ExecMode::Sharded` stays byte-identical to
//!   `ExecMode::Single`;
//! * **migrations and session flushes** invalidate the whole moved
//!   region in one pass using the namespace's Euler-tour interval
//!   labels ([`IntervalRegion`]) — a range scan over the caches'
//!   label-sorted indexes instead of a predicate test per cached entry.
//!
//! The same interval machinery backs [`ClientCache`], the per-client
//! learned subtree→MDS map, replacing the full predicate scan the
//! migration path used to run per client (the predicate path survives
//! as a differential oracle in the unit tests below).
//!
//! Determinism: group caches live in [`crate::shard::SharedSim`] and are
//! **read-only during windows**. Every mutation — fill, LRU touch,
//! dentry invalidation — is deferred and applied at the barrier in
//! global `(time, key)` order, so the LRU clock and eviction order are
//! pure functions of the merged event stream, independent of shard
//! count.

use std::collections::{BTreeMap, HashMap};

use mantle_namespace::{MdsId, Namespace, NodeId, OpKind};

/// Is `kind` servable by the proxy tier? Read-class lookups are; every
/// mutating op goes to the MDS (and invalidates instead).
pub fn cacheable(kind: OpKind) -> bool {
    matches!(kind, OpKind::Stat | OpKind::OpenRead | OpKind::Readdir)
}

/// A moved/invalidated namespace region in Euler-interval form: the
/// label span of the root subtree, minus the spans of the authority
/// holes, restricted to directories that existed when the region was
/// captured (`watermark`). Mirrors `SubtreeWindow::contains` exactly —
/// the shard-equivalence suites depend on the two agreeing.
#[derive(Debug, Clone)]
pub struct IntervalRegion {
    root: NodeId,
    span: (u64, u64),
    holes: Vec<(u64, u64)>,
    watermark: u32,
    root_only: bool,
}

impl IntervalRegion {
    /// Capture a region from its parts, resolving current Euler labels.
    /// Must be captured and applied under the same namespace epoch
    /// (no renumber in between) — both happen inside one exclusive
    /// coordinator step, so that holds by construction.
    pub fn new(
        ns: &Namespace,
        root: NodeId,
        holes: &[NodeId],
        watermark: u32,
        root_only: bool,
    ) -> Self {
        IntervalRegion {
            root,
            span: ns.euler_interval(root),
            holes: holes.iter().map(|&h| ns.euler_interval(h)).collect(),
            watermark,
            root_only,
        }
    }

    /// Does the region contain the directory with Euler in-time `tin`?
    /// `tin` must be current (same namespace epoch as construction).
    fn contains_label(&self, d: NodeId, tin: u64) -> bool {
        if d.0 >= self.watermark {
            return false;
        }
        if self.root_only {
            return d == self.root;
        }
        self.span.0 <= tin
            && tin < self.span.1
            && !self.holes.iter().any(|&(a, b)| a <= tin && tin < b)
    }
}

/// The per-client learned subtree→MDS map, indexed two ways: by
/// directory for O(1) routing lookups, and by Euler in-time so a
/// migration can drop the whole moved region with one ordered range
/// scan. Entries pin the namespace epoch their labels were resolved
/// under; a renumber (rare — label space is u64) lazily rebuilds.
#[derive(Debug, Clone, Default)]
pub struct ClientCache {
    entries: HashMap<NodeId, ClientSlot>,
    by_tin: BTreeMap<u64, NodeId>,
    epoch: u64,
}

#[derive(Debug, Clone, Copy)]
struct ClientSlot {
    mds: MdsId,
    tin: u64,
}

impl ClientCache {
    /// The learned authority for `dir`, if any.
    pub fn get(&self, dir: NodeId) -> Option<MdsId> {
        self.entries.get(&dir).map(|s| s.mds)
    }

    /// Number of learned entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// No entries learned yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record that `dir` was ultimately served by `mds`.
    pub fn learn(&mut self, ns: &Namespace, dir: NodeId, mds: MdsId) {
        self.sync_epoch(ns);
        let tin = ns.euler_interval(dir).0;
        self.by_tin.insert(tin, dir);
        self.entries.insert(dir, ClientSlot { mds, tin });
    }

    /// Forget everything learned about `dir` (its metadata moved).
    pub fn invalidate(&mut self, dir: NodeId) {
        if let Some(slot) = self.entries.remove(&dir) {
            self.by_tin.remove(&slot.tin);
        }
    }

    /// Drop every entry inside `region` with one range scan over the
    /// label index, returning how many were dropped. Result-identical
    /// to `invalidate_matching(|d| window.contains(ns, d))` — the unit
    /// tests below hold the two paths together differentially.
    pub fn invalidate_region(&mut self, ns: &Namespace, region: &IntervalRegion) -> u64 {
        self.sync_epoch(ns);
        if region.root_only {
            if region.root.0 < region.watermark && self.entries.contains_key(&region.root) {
                self.invalidate(region.root);
                return 1;
            }
            return 0;
        }
        let stale: Vec<NodeId> = self
            .by_tin
            .range(region.span.0..region.span.1)
            .filter(|&(&tin, &d)| region.contains_label(d, tin))
            .map(|(_, &d)| d)
            .collect();
        for d in &stale {
            self.invalidate(*d);
        }
        stale.len() as u64
    }

    /// Forget every cached dir for which `stale` returns true — the
    /// original full predicate scan, kept as the differential oracle
    /// for [`ClientCache::invalidate_region`].
    pub fn invalidate_matching(&mut self, mut stale: impl FnMut(NodeId) -> bool) {
        let by_tin = &mut self.by_tin;
        self.entries.retain(|&d, slot| {
            if stale(d) {
                by_tin.remove(&slot.tin);
                false
            } else {
                true
            }
        });
    }

    /// Re-resolve every stored label after a namespace renumber.
    fn sync_epoch(&mut self, ns: &Namespace) {
        let epoch = ns.renumbers();
        if self.epoch == epoch {
            return;
        }
        self.by_tin.clear();
        for (&d, slot) in &mut self.entries {
            slot.tin = ns.euler_interval(d).0;
            self.by_tin.insert(slot.tin, d);
        }
        self.epoch = epoch;
    }
}

/// One proxy group's read cache: directory → the MDS whose metadata the
/// proxy holds, with capacity-bounded LRU eviction and the same
/// Euler-label index [`ClientCache`] uses for region invalidation.
///
/// The LRU clock (`tick`) only advances at window barriers, where touch
/// and fill ops are applied in global `(time, key)` order — eviction
/// order is therefore identical in every execution mode.
#[derive(Debug, Clone)]
pub struct GroupCache {
    capacity: usize,
    entries: HashMap<NodeId, GroupSlot>,
    by_tin: BTreeMap<u64, NodeId>,
    /// LRU recency: tick of last use → directory. Ticks are unique
    /// (each use consumes a fresh one), so this is a total order.
    recency: BTreeMap<u64, NodeId>,
    tick: u64,
    epoch: u64,
}

#[derive(Debug, Clone, Copy)]
struct GroupSlot {
    mds: MdsId,
    tin: u64,
    tick: u64,
}

impl GroupCache {
    /// An empty cache bounded to `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        GroupCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            by_tin: BTreeMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            epoch: 0,
        }
    }

    /// The cached authority for `dir`, if present. Read-only — the
    /// in-window hit path must not mutate shared state, so the LRU
    /// touch is deferred to the barrier ([`GroupCache::touch`]).
    pub fn lookup(&self, dir: NodeId) -> Option<MdsId> {
        self.entries.get(&dir).map(|s| s.mds)
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Nothing cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mark `dir` most-recently-used (deferred from an in-window hit).
    /// No-op if the entry was evicted or invalidated in the meantime.
    pub fn touch(&mut self, dir: NodeId) {
        if let Some(slot) = self.entries.get_mut(&dir) {
            let old = slot.tick;
            self.tick += 1;
            slot.tick = self.tick;
            self.recency.remove(&old);
            self.recency.insert(self.tick, dir);
        }
    }

    /// Insert (or refresh) `dir` as served by `mds`, evicting the
    /// least-recently-used entry if the cache is full.
    pub fn fill(&mut self, ns: &Namespace, dir: NodeId, mds: MdsId) {
        self.sync_epoch(ns);
        self.tick += 1;
        let tick = self.tick;
        let tin = ns.euler_interval(dir).0;
        if let Some(slot) = self.entries.get_mut(&dir) {
            let old = slot.tick;
            *slot = GroupSlot { mds, tin, tick };
            self.recency.remove(&old);
            self.recency.insert(tick, dir);
            return;
        }
        self.entries.insert(dir, GroupSlot { mds, tin, tick });
        self.by_tin.insert(tin, dir);
        self.recency.insert(tick, dir);
        while self.entries.len() > self.capacity {
            let (_, victim) = self.recency.pop_first().expect("len > capacity ≥ 1");
            let slot = self.entries.remove(&victim).expect("recency entry backed");
            self.by_tin.remove(&slot.tin);
        }
    }

    /// Drop `dir`'s entry (a mutating op landed on it). Returns whether
    /// an entry was present.
    pub fn invalidate(&mut self, dir: NodeId) -> bool {
        match self.entries.remove(&dir) {
            Some(slot) => {
                self.by_tin.remove(&slot.tin);
                self.recency.remove(&slot.tick);
                true
            }
            None => false,
        }
    }

    /// Drop every entry inside `region` (migration / session flush),
    /// returning how many were dropped. Same range-scan machinery as
    /// [`ClientCache::invalidate_region`].
    pub fn invalidate_region(&mut self, ns: &Namespace, region: &IntervalRegion) -> u64 {
        self.sync_epoch(ns);
        if region.root_only {
            return u64::from(region.root.0 < region.watermark && self.invalidate(region.root));
        }
        let stale: Vec<NodeId> = self
            .by_tin
            .range(region.span.0..region.span.1)
            .filter(|&(&tin, &d)| region.contains_label(d, tin))
            .map(|(_, &d)| d)
            .collect();
        for d in &stale {
            self.invalidate(*d);
        }
        stale.len() as u64
    }

    /// Re-resolve every stored label after a namespace renumber.
    fn sync_epoch(&mut self, ns: &Namespace) {
        let epoch = ns.renumbers();
        if self.epoch == epoch {
            return;
        }
        self.by_tin.clear();
        for (&d, slot) in &mut self.entries {
            slot.tin = ns.euler_interval(d).0;
            self.by_tin.insert(slot.tin, d);
        }
        self.epoch = epoch;
    }
}

/// The proxy group fronting `client`. Groups are contiguous client
/// ranges (a proxy serves a rack of clients), a pure function of the
/// client id — identical in every execution mode.
pub fn group_of(client: usize, num_clients: usize, groups: usize) -> usize {
    debug_assert!(client < num_clients && groups > 0);
    client * groups / num_clients
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::SubtreeWindow;
    use mantle_sim::{SimRng, SimTime};

    fn grow(ns: &mut Namespace, rng: &mut SimRng, dirs: usize) -> Vec<NodeId> {
        let mut all = vec![ns.root()];
        for i in 0..dirs {
            let parent = all[(rng.next_u64() % all.len() as u64) as usize];
            let d = ns.mkdir(parent, format!("d{i}"));
            all.push(d);
        }
        all
    }

    fn random_window(ns: &Namespace, rng: &mut SimRng, all: &[NodeId]) -> SubtreeWindow {
        let root = all[(rng.next_u64() % all.len() as u64) as usize];
        let holes: Vec<NodeId> = (0..rng.next_u64() % 3)
            .map(|_| all[(rng.next_u64() % all.len() as u64) as usize])
            .filter(|&h| h != root && ns.in_subtree(h, root))
            .collect();
        let watermark = if rng.next_u64().is_multiple_of(4) {
            (rng.next_u64() % all.len() as u64) as u32
        } else {
            ns.dir_count() as u32
        };
        SubtreeWindow {
            root,
            holes,
            watermark,
            root_only: rng.next_u64().is_multiple_of(5),
            until: SimTime::ZERO,
        }
    }

    /// Satellite check: interval-range invalidation is result-identical
    /// to the predicate scan it replaced, across random trees, random
    /// regions (holes, watermarks, root-only), and forced renumbers.
    #[test]
    fn interval_invalidation_matches_predicate_oracle() {
        let mut rng = SimRng::new(0xCAFE);
        for round in 0..40u32 {
            let mut ns = Namespace::default();
            let all = grow(&mut ns, &mut rng, 60);
            let mut fast = ClientCache::default();
            for _ in 0..40 {
                let d = all[(rng.next_u64() % all.len() as u64) as usize];
                fast.learn(&ns, d, (rng.next_u64() % 4) as MdsId);
            }
            if round.is_multiple_of(3) {
                // Exhaust label space under the last dir to force a
                // renumber between learn and invalidate.
                let before = ns.renumbers();
                let mut p = *all.last().unwrap();
                for i in 0..80 {
                    p = ns.mkdir(p, format!("deep{i}"));
                    if ns.renumbers() > before {
                        break;
                    }
                }
            }
            let mut oracle = fast.clone();
            let w = random_window(&ns, &mut rng, &all);
            let region = IntervalRegion::new(&ns, w.root, &w.holes, w.watermark, w.root_only);
            fast.invalidate_region(&ns, &region);
            oracle.invalidate_matching(|d| w.contains(&ns, d));
            let mut a: Vec<(NodeId, MdsId)> =
                fast.entries.iter().map(|(&d, s)| (d, s.mds)).collect();
            let mut b: Vec<(NodeId, MdsId)> =
                oracle.entries.iter().map(|(&d, s)| (d, s.mds)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "round {round}: survivors diverge");
            // The fast path's secondary index stays consistent.
            assert_eq!(fast.by_tin.len(), fast.entries.len());
        }
    }

    #[test]
    fn group_cache_evicts_lru_order() {
        let mut ns = Namespace::default();
        let dirs: Vec<NodeId> = (0..4).map(|i| ns.mkdir_p(&format!("/d{i}"))).collect();
        let mut c = GroupCache::new(3);
        c.fill(&ns, dirs[0], 0);
        c.fill(&ns, dirs[1], 1);
        c.fill(&ns, dirs[2], 2);
        // Touch the oldest so it survives the next eviction.
        c.touch(dirs[0]);
        c.fill(&ns, dirs[3], 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.lookup(dirs[0]), Some(0), "touched entry survives");
        assert_eq!(c.lookup(dirs[1]), None, "LRU entry evicted");
        assert_eq!(c.lookup(dirs[3]), Some(3));
        // Internal indexes track entries exactly.
        assert_eq!(c.by_tin.len(), c.entries.len());
        assert_eq!(c.recency.len(), c.entries.len());
    }

    #[test]
    fn group_cache_region_invalidation_spares_holes_and_new_dirs() {
        let mut ns = Namespace::default();
        let a = ns.mkdir_p("/a");
        let ab = ns.mkdir_p("/a/b");
        let abc = ns.mkdir_p("/a/b/c");
        let other = ns.mkdir_p("/other");
        let mut c = GroupCache::new(16);
        for &d in &[a, ab, abc, other] {
            c.fill(&ns, d, 0);
        }
        let watermark = ns.dir_count() as u32;
        let late = ns.mkdir_p("/a/late");
        c.fill(&ns, late, 0);
        // Invalidate subtree /a with hole /a/b — the hole's subtree and
        // post-watermark dirs survive.
        let region = IntervalRegion::new(&ns, a, &[ab], watermark, false);
        let dropped = c.invalidate_region(&ns, &region);
        assert_eq!(dropped, 1, "only /a itself is in the region");
        assert_eq!(c.lookup(a), None);
        assert_eq!(c.lookup(ab), Some(0), "hole root spared");
        assert_eq!(c.lookup(abc), Some(0), "hole descendant spared");
        assert_eq!(c.lookup(other), Some(0), "outside the region");
        assert_eq!(c.lookup(late), Some(0), "created after the watermark");
        // root_only drops exactly the root.
        let ro = IntervalRegion::new(&ns, ab, &[], ns.dir_count() as u32, true);
        assert_eq!(c.invalidate_region(&ns, &ro), 1);
        assert_eq!(c.lookup(ab), None);
        assert_eq!(c.lookup(abc), Some(0));
    }

    #[test]
    fn group_assignment_is_contiguous_and_total() {
        let groups = 4;
        let clients = 10;
        let assigned: Vec<usize> = (0..clients).map(|c| group_of(c, clients, groups)).collect();
        assert!(assigned.windows(2).all(|w| w[0] <= w[1]), "contiguous");
        assert_eq!(assigned[0], 0);
        assert_eq!(*assigned.last().unwrap(), groups - 1);
        assert!(assigned.iter().all(|&g| g < groups));
    }
}
