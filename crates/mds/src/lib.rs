//! A deterministic simulation of a CephFS-like metadata server (MDS)
//! cluster with pluggable, programmable load balancers — the substrate the
//! Mantle paper runs on, rebuilt as a discrete-event model.
//!
//! The moving parts mirror Fig. 2 of the paper:
//!
//! * **clients** issue metadata ops in a closed loop, learn the
//!   subtree→MDS map from replies, and contact MDSs round-robin for
//!   creates in directories whose fragments span several MDSs (§4.1);
//! * each **MDS** is a single-server queue with per-op service costs,
//!   plus surcharges for coherency traffic when directories span
//!   authorities;
//! * requests landing on the wrong MDS are **forwarded** (hop latency +
//!   wasted service on the wrong node) — the hits-vs-forwards split of
//!   Fig. 3b;
//! * every 10 s each MDS packages its metrics into a **heartbeat**; other
//!   MDSs see the *previous* tick's snapshot (state is stale by design,
//!   §2.2.2) with seeded measurement noise on CPU;
//! * the **balancer** on each MDS — either the hard-coded CephFS one
//!   (Table 1) or a Mantle policy script — decides when/where/how much to
//!   migrate; migrations freeze the moved subtree for a two-phase commit
//!   and flush client sessions (§4.1).

#![warn(missing_docs)]

pub mod balancer;
pub mod cache;
pub mod client;
pub mod cluster;
pub mod config;
pub mod elastic;
pub mod faults;
pub mod invariants;
pub mod metrics;
pub mod partition;
pub mod report;
pub mod selector;
pub mod service;
pub mod shard;
pub mod trace;

pub use balancer::{BalanceContext, Balancer, CephfsBalancer, MantleBalancer, MigrationPlan};
pub use cache::{cacheable, group_of, ClientCache, GroupCache, IntervalRegion};
pub use client::{ClientOp, Workload};
pub use cluster::Cluster;
pub use config::{
    CacheConfig, ClusterConfig, CostModel, ElasticConfig, ExecMode, JoinPolicy, PlacementPolicy,
};
pub use elastic::rendezvous_owner;
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use invariants::{assert_invariants, check_trace, Violation};
pub use mantle_policy::HookEngine;
pub use mantle_sim::SchedulerKind;
pub use report::RunReport;
pub use selector::{select_best, DirfragSelector};
pub use service::{LiveCompletion, LiveService, ServiceEvent, ServiceHandle, ServiceSender};
pub use shard::{ExecStats, ShardStats};
pub use trace::{Timeline, TraceBuffer, TraceEvent, TraceLevel, TraceRecord};
