//! Dirfrag selectors — the `howmuch` policies of §3.2.
//!
//! Every time the balancer considers a list of dirfrags/subtrees in a
//! directory, it runs *all* configured selectors and keeps the one whose
//! shipped load lands closest to the target (the paper's worked example:
//! for loads {12.7, 13.3, 13.3, 14.6, 15.7, 13.5, 13.7, 14.6} and target
//! 55.6, `big_small` wins with distance 0.5).

use std::fmt;

/// A named strategy for picking which load units to ship toward a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirfragSelector {
    /// Ship the biggest units until reaching the target (the original
    /// CephFS heuristic, Table 1's "how-much accuracy" row).
    BigFirst,
    /// Ship the smallest units until reaching the target.
    SmallFirst,
    /// Alternate big and small.
    BigSmall,
    /// Ship the first half of the units.
    Half,
}

impl DirfragSelector {
    /// Parse a selector name as used in `mds_bal_howmuch` lists.
    pub fn parse(name: &str) -> Option<DirfragSelector> {
        Some(match name {
            "big_first" | "big" => DirfragSelector::BigFirst,
            "small_first" | "small" => DirfragSelector::SmallFirst,
            "big_small" => DirfragSelector::BigSmall,
            "half" => DirfragSelector::Half,
            _ => return None,
        })
    }

    /// The canonical name.
    pub fn name(self) -> &'static str {
        match self {
            DirfragSelector::BigFirst => "big_first",
            DirfragSelector::SmallFirst => "small_first",
            DirfragSelector::BigSmall => "big_small",
            DirfragSelector::Half => "half",
        }
    }

    /// All built-in selectors.
    pub fn all() -> [DirfragSelector; 4] {
        [
            DirfragSelector::BigFirst,
            DirfragSelector::SmallFirst,
            DirfragSelector::BigSmall,
            DirfragSelector::Half,
        ]
    }

    /// Choose unit indices from `loads` aiming at `target` total load.
    ///
    /// Greedy selectors stop *before* overshooting unless nothing has been
    /// taken yet and the next unit alone overshoots; `half` ignores the
    /// target entirely (it exists for GIGA+-style uniform splitting).
    pub fn select(self, loads: &[f64], target: f64) -> Vec<usize> {
        if loads.is_empty() || target <= 0.0 && self != DirfragSelector::Half {
            return Vec::new();
        }
        match self {
            DirfragSelector::BigFirst => greedy(loads, target, Order::Desc),
            DirfragSelector::SmallFirst => greedy(loads, target, Order::Asc),
            DirfragSelector::BigSmall => alternate(loads, target),
            DirfragSelector::Half => {
                let n = loads.len() / 2;
                (0..n).collect()
            }
        }
    }
}

impl fmt::Display for DirfragSelector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

enum Order {
    Asc,
    Desc,
}

fn sorted_indices(loads: &[f64], order: Order) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..loads.len()).collect();
    match order {
        Order::Desc => idx.sort_by(|&a, &b| {
            loads[b]
                .partial_cmp(&loads[a])
                .expect("loads are never NaN")
                .then(a.cmp(&b))
        }),
        Order::Asc => idx.sort_by(|&a, &b| {
            loads[a]
                .partial_cmp(&loads[b])
                .expect("loads are never NaN")
                .then(a.cmp(&b))
        }),
    }
    idx
}

fn greedy(loads: &[f64], target: f64, order: Order) -> Vec<usize> {
    let mut out = Vec::new();
    let mut sent = 0.0;
    for i in sorted_indices(loads, order) {
        if sent >= target {
            break;
        }
        out.push(i);
        sent += loads[i];
    }
    out
}

fn alternate(loads: &[f64], target: f64) -> Vec<usize> {
    let desc = sorted_indices(loads, Order::Desc);
    let mut lo = 0usize;
    let mut hi = desc.len();
    let mut take_big = true;
    let mut out = Vec::new();
    let mut sent = 0.0;
    while lo < hi && sent < target {
        let i = if take_big {
            lo += 1;
            desc[lo - 1]
        } else {
            hi -= 1;
            desc[hi]
        };
        out.push(i);
        sent += loads[i];
        take_big = !take_big;
    }
    out
}

/// Run every selector and keep the one whose shipped load is closest to
/// `target` (§3.2). Returns `(winner, chosen indices, shipped load)`.
pub fn select_best(
    selectors: &[DirfragSelector],
    loads: &[f64],
    target: f64,
) -> (DirfragSelector, Vec<usize>, f64) {
    assert!(!selectors.is_empty(), "at least one selector required");
    let mut best: Option<(DirfragSelector, Vec<usize>, f64, f64)> = None;
    for &sel in selectors {
        let chosen = sel.select(loads, target);
        let shipped: f64 = chosen.iter().map(|&i| loads[i]).sum();
        let dist = (shipped - target).abs();
        let better = match &best {
            None => true,
            Some((_, _, _, best_dist)) => dist < *best_dist,
        };
        if better {
            best = Some((sel, chosen, shipped, dist));
        }
    }
    let (sel, chosen, shipped, _) = best.expect("non-empty selectors");
    (sel, chosen, shipped)
}

// ---------------------------------------------------------------------------
// Script-defined selectors (the §3.2 "external Lua file with a list of
// strategies", generalized so a policy can ship its own).
// ---------------------------------------------------------------------------

use std::rc::Rc;

use mantle_policy::ast::Script;
use mantle_policy::value::{Table, Value};
use mantle_policy::{Interpreter, PolicyError, PolicyResult, StepBudget};

/// A dirfrag selector written in the policy language.
///
/// The script sees `loads` (a 1-based array of unit loads) and `target`,
/// and returns a table of the 1-based indices to ship, e.g.
///
/// ```lua
/// -- every other unit until the target is reached
/// chosen = {}
/// sent = 0
/// for i = 1, #loads, 2 do
///   if sent >= target then break end
///   chosen[#chosen + 1] = i
///   sent = sent + loads[i]
/// end
/// return chosen
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptedSelector {
    /// Display name.
    pub name: String,
    /// Compiled script.
    pub script: Script,
}

impl ScriptedSelector {
    /// Compile a scripted selector from source.
    pub fn compile(name: impl Into<String>, src: &str) -> PolicyResult<ScriptedSelector> {
        Ok(ScriptedSelector {
            name: name.into(),
            script: mantle_policy::compile(src)?,
        })
    }

    /// Run against a load set. Invalid or duplicate indices are rejected.
    pub fn select(&self, loads: &[f64], target: f64) -> PolicyResult<Vec<usize>> {
        let mut interp = Interpreter::new().with_budget(StepBudget(200_000));
        mantle_policy::stdlib::install(&mut interp);
        interp.set_global(
            "loads",
            Value::table(Table::from_array(loads.iter().map(|&l| Value::Number(l)))),
        );
        interp.set_global("target", Value::Number(target));
        interp.set_global("total", Value::Number(loads.iter().sum()));
        let result = interp.run(&self.script)?;
        let result = match result {
            Value::Nil => interp.get_global("chosen"),
            other => other,
        };
        let Value::Table(t) = result else {
            return Err(PolicyError::Rejected {
                reason: format!(
                    "selector '{}' must return a table of indices, got {}",
                    self.name,
                    result_type(&result)
                ),
            });
        };
        let t = t.borrow();
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for i in 1..=t.len() {
            let idx = t.get_int(i).as_number(0)? as i64;
            if idx < 1 || idx as usize > loads.len() {
                return Err(PolicyError::Rejected {
                    reason: format!("selector '{}' chose index {idx} out of range", self.name),
                });
            }
            let zero_based = idx as usize - 1;
            if !seen.insert(zero_based) {
                return Err(PolicyError::Rejected {
                    reason: format!("selector '{}' chose index {idx} twice", self.name),
                });
            }
            out.push(zero_based);
        }
        Ok(out)
    }
}

fn result_type(v: &Value) -> &'static str {
    v.type_name()
}

/// Either a built-in selector or a scripted one.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectorKind {
    /// One of the four built-ins.
    Builtin(DirfragSelector),
    /// A policy-defined selector.
    Scripted(Rc<ScriptedSelector>),
}

impl SelectorKind {
    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            SelectorKind::Builtin(b) => b.name(),
            SelectorKind::Scripted(s) => &s.name,
        }
    }

    /// Run the selector; built-ins cannot fail.
    pub fn select(&self, loads: &[f64], target: f64) -> PolicyResult<Vec<usize>> {
        match self {
            SelectorKind::Builtin(b) => Ok(b.select(loads, target)),
            SelectorKind::Scripted(s) => s.select(loads, target),
        }
    }
}

impl From<DirfragSelector> for SelectorKind {
    fn from(b: DirfragSelector) -> Self {
        SelectorKind::Builtin(b)
    }
}

/// [`select_best`] over mixed built-in and scripted selectors. A scripted
/// selector that errors is skipped (and reported via the returned error
/// only if *every* selector fails).
pub fn select_best_of(
    selectors: &[SelectorKind],
    loads: &[f64],
    target: f64,
) -> PolicyResult<(String, Vec<usize>, f64)> {
    assert!(!selectors.is_empty(), "at least one selector required");
    let mut best: Option<(String, Vec<usize>, f64, f64)> = None;
    let mut last_err = None;
    for sel in selectors {
        let chosen = match sel.select(loads, target) {
            Ok(c) => c,
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        let shipped: f64 = chosen.iter().map(|&i| loads[i]).sum();
        let dist = (shipped - target).abs();
        let better = match &best {
            None => true,
            Some((_, _, _, best_dist)) => dist < *best_dist,
        };
        if better {
            best = Some((sel.name().to_string(), chosen, shipped, dist));
        }
    }
    match best {
        Some((name, chosen, shipped, _)) => Ok((name, chosen, shipped)),
        None => Err(last_err.unwrap_or(PolicyError::Rejected {
            reason: "no selector produced a choice".into(),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §2.2.3 worked example.
    const PAPER_LOADS: [f64; 8] = [12.7, 13.3, 13.3, 14.6, 15.7, 13.5, 13.7, 14.6];

    #[test]
    fn parse_round_trips() {
        for sel in DirfragSelector::all() {
            assert_eq!(DirfragSelector::parse(sel.name()), Some(sel));
        }
        assert_eq!(DirfragSelector::parse("nope"), None);
        assert_eq!(
            DirfragSelector::parse("small"),
            Some(DirfragSelector::SmallFirst)
        );
    }

    #[test]
    fn big_first_reproduces_paper_example() {
        // Target load: total/2 scaled by mds_bal_need_min=0.8:
        // total = 111.4, half = 55.7, ×0.8 = 44.56. The balancer shipped
        // 15.7 + 14.6 + 14.6 = 44.9 — only 3 dirfrags instead of half.
        let total: f64 = PAPER_LOADS.iter().sum();
        let target = total / 2.0 * 0.8;
        let chosen = DirfragSelector::BigFirst.select(&PAPER_LOADS, target);
        let shipped: f64 = chosen.iter().map(|&i| PAPER_LOADS[i]).sum();
        assert_eq!(chosen.len(), 3, "ships only 3 dirfrags");
        assert!((shipped - 44.9).abs() < 1e-9, "shipped {shipped}");
    }

    #[test]
    fn big_small_wins_on_paper_example() {
        // Against the unscaled target 55.7 big_small lands within ~0.5 of
        // the target (the paper reports 0.5; our alternation ships
        // 15.7+12.7+14.6+13.3 = 56.3, distance 0.6 — same winner) and
        // beats big_first (2.9), small_first (10.8) and half (1.8).
        let total: f64 = PAPER_LOADS.iter().sum();
        let target = total / 2.0;
        let (winner, _, shipped) = select_best(&DirfragSelector::all(), &PAPER_LOADS, target);
        assert_eq!(winner, DirfragSelector::BigSmall);
        assert!(
            (shipped - target).abs() <= 1.0,
            "distance {}",
            (shipped - target).abs()
        );
    }

    #[test]
    fn small_first_takes_smallest() {
        let loads = [5.0, 1.0, 3.0];
        let chosen = DirfragSelector::SmallFirst.select(&loads, 3.5);
        assert_eq!(chosen, vec![1, 2], "1 then 3 reaches 4 ≥ 3.5");
    }

    #[test]
    fn half_takes_first_half_regardless_of_target() {
        let loads = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(DirfragSelector::Half.select(&loads, 0.0), vec![0, 1]);
        let odd = [1.0, 2.0, 3.0];
        assert_eq!(DirfragSelector::Half.select(&odd, 100.0), vec![0]);
    }

    #[test]
    fn empty_loads_select_nothing() {
        for sel in DirfragSelector::all() {
            assert!(sel.select(&[], 10.0).is_empty());
        }
    }

    #[test]
    fn zero_target_ships_nothing_for_greedy() {
        assert!(DirfragSelector::BigFirst
            .select(&[1.0, 2.0], 0.0)
            .is_empty());
    }

    #[test]
    fn greedy_takes_one_even_if_overshooting() {
        let chosen = DirfragSelector::BigFirst.select(&[10.0], 1.0);
        assert_eq!(chosen, vec![0], "something must move when target > 0");
    }

    #[test]
    fn selection_indices_are_valid_and_unique() {
        for sel in DirfragSelector::all() {
            let chosen = sel.select(&PAPER_LOADS, 60.0);
            let mut seen = std::collections::HashSet::new();
            for &i in &chosen {
                assert!(i < PAPER_LOADS.len());
                assert!(seen.insert(i), "duplicate index from {sel}");
            }
        }
    }

    const EVERY_OTHER: &str = r#"
chosen = {}
sent = 0
for i = 1, #loads, 2 do
  if sent >= target then break end
  chosen[#chosen + 1] = i
  sent = sent + loads[i]
end
return chosen
"#;

    #[test]
    fn scripted_selector_runs() {
        let sel = ScriptedSelector::compile("every_other", EVERY_OTHER).unwrap();
        let loads = [10.0, 20.0, 30.0, 40.0, 50.0];
        let chosen = sel.select(&loads, 35.0).unwrap();
        assert_eq!(chosen, vec![0, 2], "indices 1,3 (1-based) → 0,2");
    }

    #[test]
    fn scripted_selector_via_chosen_global() {
        // Scripts may assign `chosen` instead of returning.
        let sel = ScriptedSelector::compile("first_one", "chosen = {} chosen[1] = 1").unwrap();
        assert_eq!(sel.select(&[5.0, 6.0], 100.0).unwrap(), vec![0]);
    }

    #[test]
    fn scripted_selector_rejects_bad_indices() {
        let oob = ScriptedSelector::compile("oob", "return {7}").unwrap();
        assert!(oob.select(&[1.0, 2.0], 1.0).is_err());
        let dup = ScriptedSelector::compile("dup", "return {1, 1}").unwrap();
        assert!(dup.select(&[1.0, 2.0], 1.0).is_err());
        let not_table = ScriptedSelector::compile("num", "return 3").unwrap();
        assert!(not_table.select(&[1.0, 2.0], 1.0).is_err());
    }

    #[test]
    fn scripted_selector_infinite_loop_is_bounded() {
        let evil = ScriptedSelector::compile("evil", "while true do end").unwrap();
        assert!(matches!(
            evil.select(&[1.0], 1.0),
            Err(PolicyError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn select_best_of_mixes_builtin_and_scripted() {
        let scripted = SelectorKind::Scripted(Rc::new(
            ScriptedSelector::compile("every_other", EVERY_OTHER).unwrap(),
        ));
        let kinds = vec![SelectorKind::Builtin(DirfragSelector::Half), scripted];
        let loads = [10.0, 20.0, 30.0, 40.0];
        // Target 40: half ships 10+20=30 (dist 10); every_other ships
        // 10+30=40 (dist 0) → scripted wins.
        let (name, chosen, shipped) = select_best_of(&kinds, &loads, 40.0).unwrap();
        assert_eq!(name, "every_other");
        assert_eq!(chosen, vec![0, 2]);
        assert_eq!(shipped, 40.0);
    }

    #[test]
    fn select_best_of_skips_broken_scripted() {
        let broken = SelectorKind::Scripted(Rc::new(
            ScriptedSelector::compile("broken", "return {99}").unwrap(),
        ));
        let kinds = vec![broken, SelectorKind::Builtin(DirfragSelector::BigFirst)];
        let (name, _, _) = select_best_of(&kinds, &[5.0, 1.0], 4.0).unwrap();
        assert_eq!(name, "big_first", "falls back to the working selector");
        // All broken → the error surfaces.
        let only_broken = vec![SelectorKind::Scripted(Rc::new(
            ScriptedSelector::compile("broken", "return {99}").unwrap(),
        ))];
        assert!(select_best_of(&only_broken, &[5.0], 4.0).is_err());
    }

    #[test]
    fn equidistant_tie_goes_to_the_earlier_selector() {
        // loads {5, 1}, target 3: big_first, big_small, and half all ship
        // exactly {5} (distance 2); small_first ships {1, 5} = 6
        // (distance 3). `select_best` keeps a strictly better distance
        // only, so among equidistant candidates the earliest listed wins
        // — the configured order is the tie-break, as in CephFS where the
        // first howmuch strategy is the default.
        let loads = [5.0, 1.0];
        let target = 3.0;
        for sel in [
            DirfragSelector::BigFirst,
            DirfragSelector::BigSmall,
            DirfragSelector::Half,
        ] {
            assert_eq!(sel.select(&loads, target), vec![0], "{sel}");
        }
        assert_eq!(
            DirfragSelector::SmallFirst.select(&loads, target),
            vec![1, 0]
        );

        let (winner, _, shipped) = select_best(&DirfragSelector::all(), &loads, target);
        assert_eq!(winner, DirfragSelector::BigFirst, "first in `all()` wins");
        assert_eq!(shipped, 5.0);

        let (winner, _, _) = select_best(
            &[DirfragSelector::Half, DirfragSelector::BigFirst],
            &loads,
            target,
        );
        assert_eq!(winner, DirfragSelector::Half, "listed order decides ties");
        let (winner, _, _) = select_best(
            &[DirfragSelector::BigFirst, DirfragSelector::Half],
            &loads,
            target,
        );
        assert_eq!(winner, DirfragSelector::BigFirst);
    }

    #[test]
    fn all_zero_loads_with_positive_target_take_everything() {
        // Degenerate boundary: every unit ships zero load, so greedy
        // `sent >= target` never trips and the whole list is taken. The
        // balancer guards against this upstream (no exports when the
        // candidate load is zero), but the selector itself must stay
        // total: valid unique indices, no panic, no infinite loop.
        let loads = [0.0, 0.0, 0.0];
        assert_eq!(DirfragSelector::BigFirst.select(&loads, 1.0), vec![0, 1, 2]);
        assert_eq!(
            DirfragSelector::SmallFirst.select(&loads, 1.0),
            vec![0, 1, 2]
        );
        // big_small alternates head and tail of the descending order.
        assert_eq!(DirfragSelector::BigSmall.select(&loads, 1.0), vec![0, 2, 1]);
        assert_eq!(DirfragSelector::Half.select(&loads, 1.0), vec![0]);
    }

    #[test]
    fn zero_and_negative_targets_ship_nothing_except_half() {
        // The `when` side decides *whether* to migrate; by the time a
        // selector runs the target should be positive. At the boundary
        // (target ≤ 0) every greedy selector ships nothing, while `half`
        // ignores the target by design.
        let loads = [1.0, 2.0];
        for sel in [
            DirfragSelector::BigFirst,
            DirfragSelector::SmallFirst,
            DirfragSelector::BigSmall,
        ] {
            assert!(sel.select(&loads, 0.0).is_empty(), "{sel} at zero");
            assert!(sel.select(&loads, -4.0).is_empty(), "{sel} below zero");
        }
        assert_eq!(DirfragSelector::Half.select(&loads, 0.0), vec![0]);
        assert_eq!(DirfragSelector::Half.select(&loads, -4.0), vec![0]);
    }

    #[test]
    fn single_zero_unit_is_still_selected_by_greedy() {
        // One unit of zero load, positive target: greedy takes it (sent
        // stays 0 < target, one iteration) — the "something must move"
        // rule degenerates to shipping a weightless unit, never a panic.
        assert_eq!(DirfragSelector::BigFirst.select(&[0.0], 2.0), vec![0]);
        let (winner, chosen, shipped) = select_best(&DirfragSelector::all(), &[0.0], 2.0);
        assert_eq!(winner, DirfragSelector::BigFirst);
        assert_eq!(chosen, vec![0]);
        assert_eq!(shipped, 0.0);
    }

    #[test]
    fn select_best_prefers_closest() {
        // target tiny: small_first ships least.
        let loads = [10.0, 1.0, 8.0];
        let (winner, chosen, shipped) = select_best(&DirfragSelector::all(), &loads, 1.2);
        assert_eq!(winner, DirfragSelector::SmallFirst);
        assert_eq!(chosen, vec![1, 2]); // 1.0 then overshoot minimally? no:
                                        // 1.0 < 1.2 → takes 8.0 too = 9.0.
                                        // half ships 10.0 (first half).
                                        // big_first ships 10.0.
        assert!(shipped == 9.0 || shipped == 10.0);
    }
}
