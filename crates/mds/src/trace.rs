//! Structured event tracing for the cluster simulation.
//!
//! A [`TraceBuffer`] is an optional, zero-cost-when-disabled sink the
//! cluster threads through every decision point: balancer ticks (hook
//! outcomes), migration phases (freeze → journal → commit → unfreeze),
//! forwards, session flushes, client timeouts/retries, crashes/failovers,
//! and balancer fallbacks. Every record is stamped with sim time, the
//! heartbeat epoch it happened in, and enough payload that
//! [`crate::invariants::check_trace`] can *replay* the stream and verify
//! cluster-wide safety properties without access to the live cluster.
//!
//! Two verbosity levels keep traces manageable: [`TraceLevel::Decisions`]
//! records only control-plane events (ticks, migrations, faults, splits),
//! while [`TraceLevel::Full`] adds the per-request data plane (issue,
//! serve, forward, complete), which the conservation and freeze-discipline
//! invariants need.
//!
//! Both the event stream and the per-tick [`Timeline`] (per-MDS load,
//! queue depth, throughput on [`mantle_sim::TimeSeries`] buckets)
//! serialize to JSONL with no external dependencies; the encoding is
//! deterministic for fixed-seed runs, so traces can be snapshot-tested
//! byte-for-byte.

use mantle_namespace::{FragId, MdsId, NodeId, OpKind};
use mantle_sim::{SimTime, TimeSeries};

/// How much the sink records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceLevel {
    /// Control-plane only: ticks, migrations, faults, splits, snapshots.
    Decisions,
    /// Everything, including per-request issue/serve/forward/complete —
    /// required by the conservation and freeze-discipline invariants.
    Full,
}

impl TraceLevel {
    /// Canonical lowercase name (as accepted by the `trace` bin).
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Decisions => "decisions",
            TraceLevel::Full => "full",
        }
    }

    /// Parse a level name.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "decisions" => Some(TraceLevel::Decisions),
            "full" => Some(TraceLevel::Full),
            _ => None,
        }
    }
}

/// One traced event with its timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Heartbeat epoch: the number of balancer ticks that have run when
    /// the event fired (0 before the first tick). Strictly increasing
    /// tick-over-tick — one of the checked invariants.
    pub epoch: u64,
    /// The event payload.
    pub event: TraceEvent,
}

/// The typed event taxonomy.
///
/// Payloads carry *pre-transition* state where the invariant checker
/// verifies before applying (e.g. [`TraceEvent::MigrationCommit`] is
/// checked against the checker's ownership model as of the instant before
/// the migration, then applied to it).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Stream header: cluster shape and checker configuration.
    RunStart {
        /// Number of MDSs.
        num_mds: usize,
        /// Consecutive-error threshold for the balancer fallback.
        fallback_after: u32,
        /// The sink's verbosity.
        level: TraceLevel,
        /// Heartbeat interval in µs.
        heartbeat_us: u64,
    },
    /// A directory became visible to the trace (at the preamble for
    /// workload-setup dirs, mid-run for dirs the workload creates).
    DirAdded {
        /// The new directory.
        dir: NodeId,
        /// Its parent (None only for the root).
        parent: Option<NodeId>,
        /// Per-fragment file counts at emission.
        files: Vec<u64>,
    },
    /// Wholesale authority state: every explicit subtree and fragment
    /// override. Emitted at the preamble and after admin repartitions
    /// (which mutate the namespace outside the traced event flow).
    AuthSnapshot {
        /// `(dir, mds)` subtree authority overrides.
        dirs: Vec<(NodeId, MdsId)>,
        /// `(dir, frag, mds)` fragment authority overrides.
        frags: Vec<(NodeId, FragId, MdsId)>,
    },
    /// A cluster-wide heartbeat + balancer tick began.
    HeartbeatTick {
        /// Per-MDS authority metaload as the balancers will see it
        /// (frozen/delayed under heartbeat faults).
        loads: Vec<f64>,
    },
    /// A balancer ran and chose not to migrate.
    BalancerTick {
        /// The deciding MDS.
        mds: MdsId,
    },
    /// A balancer produced a migration plan that partitioned successfully.
    BalancerPlan {
        /// The deciding MDS.
        mds: MdsId,
        /// Load targeted at each MDS (the `where` hook's output).
        targets: Vec<f64>,
        /// Configured `howmuch` selector names.
        selectors: Vec<String>,
        /// Number of exports the partitioner produced.
        exports: usize,
    },
    /// A balancer hook errored this tick.
    PolicyError {
        /// The erroring MDS.
        mds: MdsId,
        /// Its consecutive-error count after this error.
        consecutive: u32,
    },
    /// `fallback_after` consecutive errors: the MDS swapped in the
    /// built-in CephFS balancer.
    BalancerFallback {
        /// The falling-back MDS.
        mds: MdsId,
    },
    /// A hot policy reload installed a new balancer on every MDS (the
    /// daemon's admin swap, or a scheduled sim-mode install). Runs in the
    /// coordinator's exclusive step, so decisions in earlier ticks
    /// finished entirely on the previous policy.
    PolicyInstalled {
        /// Install epoch (monotonic; 0 is the boot policy).
        epoch: u64,
        /// The new policy's name.
        name: String,
    },
    /// Migration phase 1: the moved region froze for two-phase commit.
    MigrationFreeze {
        /// Migration id (unique per run, shared by all phases).
        mig: u64,
        /// Exporter.
        from: MdsId,
        /// Importer.
        to: MdsId,
        /// Subtree root (or the fragmented dir for a frag export).
        root: NodeId,
        /// For a fragment export, the moved fragment; None = whole subtree.
        frag: Option<FragId>,
        /// Nested authority bounds excluded from the moved region.
        holes: Vec<NodeId>,
        /// `dir_count` at capture; later dirs are outside the region.
        watermark: u32,
        /// When the freeze thaws.
        until: SimTime,
    },
    /// Migration phase 2: one side journals the moved metadata.
    MigrationJournal {
        /// Migration id.
        mig: u64,
        /// The journaling MDS (exporter first, then importer).
        mds: MdsId,
        /// Busy time charged, µs.
        micros: f64,
    },
    /// Migration phase 3: authority switched to the importer.
    MigrationCommit {
        /// Migration id.
        mig: u64,
        /// Exporter.
        from: MdsId,
        /// Importer.
        to: MdsId,
        /// Subtree root (or the fragmented dir).
        root: NodeId,
        /// For a fragment export, the moved fragment.
        frag: Option<FragId>,
        /// Inodes moved (dirs + files) — checked for conservation.
        inodes: u64,
    },
    /// Migration phase 4: the freeze window ends (stamped at commit time;
    /// `thaw` is when requests resume).
    MigrationUnfreeze {
        /// Migration id.
        mig: u64,
        /// Subtree root.
        root: NodeId,
        /// The thaw instant.
        thaw: SimTime,
    },
    /// Client sessions flushed by a migration (§4.1).
    SessionFlush {
        /// The exporting MDS.
        mds: MdsId,
        /// How many active clients flushed.
        clients: u64,
    },
    /// A directory fragmented (charged to the serving MDS).
    FragSplit {
        /// The directory.
        dir: NodeId,
        /// The fragment that split (pre-split index).
        frag: FragId,
        /// Split arity.
        ways: usize,
        /// Fragments after the split.
        resulting_frags: usize,
    },
    /// Hash placement pinned a fresh directory to an MDS.
    HashPin {
        /// The directory.
        dir: NodeId,
        /// Its pinned authority.
        mds: MdsId,
    },
    /// An MDS crashed; its subtrees/frags fail over to MDS 0.
    MdsCrash {
        /// The crashed MDS.
        mds: MdsId,
    },
    /// A crashed MDS came back (empty-handed).
    MdsRestart {
        /// The restarted MDS.
        mds: MdsId,
    },
    /// Elastic membership: a spare MDS began joining the member set. The
    /// re-homing migrations toward it follow in the same tick.
    MdsJoinStart {
        /// The joining MDS.
        mds: MdsId,
        /// Membership epoch of this transition (bumped once per
        /// join/leave; strictly increasing across transitions).
        membership_epoch: u64,
    },
    /// Elastic membership: the joining MDS is a full member.
    MdsJoinComplete {
        /// The joined MDS.
        mds: MdsId,
        /// Membership epoch of this transition.
        membership_epoch: u64,
        /// Export units re-homed onto the new member.
        rehomed: usize,
    },
    /// Elastic membership: drain of a departing member began.
    MdsDrainStart {
        /// The draining MDS.
        mds: MdsId,
        /// Membership epoch of this transition.
        membership_epoch: u64,
    },
    /// Elastic membership: the departing MDS exported its last authority.
    /// From here until a later rejoin it must own nothing.
    MdsDrainComplete {
        /// The drained MDS.
        mds: MdsId,
        /// Membership epoch of this transition.
        membership_epoch: u64,
        /// Export units drained off the member.
        drained: usize,
    },
    /// Elastic membership: the drained MDS left the member set
    /// (deregistered; stragglers forward to the new authorities).
    MdsDeparted {
        /// The departed MDS.
        mds: MdsId,
        /// Membership epoch of this transition.
        membership_epoch: u64,
    },
    /// A non-crash fault was injected.
    FaultInjected {
        /// The target MDS.
        mds: MdsId,
        /// `slowdown`, `drop-heartbeats`, `delay-heartbeats`, or
        /// `poison-balancer`.
        kind: &'static str,
    },
    /// A client put a request on the wire (Full level).
    RequestIssued {
        /// The issuing client.
        client: usize,
        /// Target directory.
        dir: NodeId,
        /// The MDS it routed to.
        mds: MdsId,
        /// The client's attempt sequence number.
        seq: u64,
    },
    /// A client's request timeout fired while the attempt was still
    /// outstanding (Full level).
    RequestTimeout {
        /// The client.
        client: usize,
        /// The timed-out attempt.
        seq: u64,
    },
    /// A client re-issued its pending op after backoff (Full level).
    RequestRetry {
        /// The client.
        client: usize,
        /// Attempt count so far (1 = first retry).
        attempt: u32,
    },
    /// A request reached a crashed MDS and was lost (Full level).
    Dropped {
        /// The dead MDS.
        mds: MdsId,
        /// The issuing client.
        client: usize,
    },
    /// A request hit a frozen region and deferred to the thaw (Full
    /// level).
    Deferred {
        /// The receiving MDS.
        mds: MdsId,
        /// Target directory.
        dir: NodeId,
        /// When it will be re-delivered.
        until: SimTime,
    },
    /// A request landed on a non-authority MDS and was forwarded (Full
    /// level).
    Forwarded {
        /// The wrong MDS.
        from: MdsId,
        /// The authority it forwarded to.
        to: MdsId,
        /// Target directory.
        dir: NodeId,
        /// The routed fragment (clamped to the current layout).
        frag: FragId,
        /// The issuing client.
        client: usize,
    },
    /// An MDS accepted a request for service (Full level). The anchor for
    /// the authority and freeze-discipline invariants.
    Served {
        /// The serving MDS.
        mds: MdsId,
        /// The issuing client.
        client: usize,
        /// Target directory.
        dir: NodeId,
        /// The served fragment (clamped to the current layout).
        frag: FragId,
        /// Operation kind.
        kind: OpKind,
        /// The client's attempt sequence number.
        seq: u64,
    },
    /// A completion from a pre-crash incarnation was discarded (Full
    /// level).
    GhostReply {
        /// The restarted MDS.
        mds: MdsId,
    },
    /// The server finished an op whose client had already timed out and
    /// retried — server-side work happened, the reply was wasted (Full
    /// level).
    StaleReply {
        /// The serving MDS.
        mds: MdsId,
        /// The original client.
        client: usize,
        /// Target directory.
        dir: NodeId,
        /// The fragment the op was recorded on (pre-split layout).
        frag: FragId,
        /// Operation kind.
        kind: OpKind,
    },
    /// The proxy tier absorbed a cacheable op: the client group's cache
    /// held the directory, so the op completed in cache-service time
    /// without touching any MDS (Full level). Replaces the
    /// [`TraceEvent::RequestIssued`]/[`TraceEvent::Served`]/
    /// [`TraceEvent::Completed`] triple a miss would have produced.
    CacheHit {
        /// The client's proxy group.
        group: usize,
        /// The issuing client.
        client: usize,
        /// Target directory.
        dir: NodeId,
        /// The MDS the cached entry names (attribution only — it was
        /// not contacted).
        mds: MdsId,
    },
    /// A completed cacheable op's reply filled a group cache at the
    /// window barrier (Full level; stamped at the barrier instant, which
    /// is when the fill takes effect).
    CacheFill {
        /// The filled proxy group.
        group: usize,
        /// The cached directory.
        dir: NodeId,
        /// The authority the entry names.
        mds: MdsId,
    },
    /// A mutating op's barrier-applied invalidation dropped a
    /// directory's proxy-cache entries (Full level; emitted only when at
    /// least one entry actually dropped).
    CacheInvalidate {
        /// The invalidated directory.
        dir: NodeId,
        /// Entries dropped across all groups.
        entries: u64,
    },
    /// A request completed and its reply reached the client (Full level).
    Completed {
        /// The serving MDS.
        mds: MdsId,
        /// The client.
        client: usize,
        /// Target directory.
        dir: NodeId,
        /// The fragment the op was recorded on (pre-split layout).
        frag: FragId,
        /// Operation kind.
        kind: OpKind,
    },
    /// Stream trailer: emitted when the event loop ends.
    RunEnd {
        /// Requests still in flight (non-zero only for truncated runs).
        inflight: usize,
    },
}

impl TraceEvent {
    /// The event's `ev` tag in the JSONL encoding.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::DirAdded { .. } => "dir_added",
            TraceEvent::AuthSnapshot { .. } => "auth_snapshot",
            TraceEvent::HeartbeatTick { .. } => "heartbeat_tick",
            TraceEvent::BalancerTick { .. } => "balancer_tick",
            TraceEvent::BalancerPlan { .. } => "balancer_plan",
            TraceEvent::PolicyError { .. } => "policy_error",
            TraceEvent::BalancerFallback { .. } => "balancer_fallback",
            TraceEvent::PolicyInstalled { .. } => "policy_installed",
            TraceEvent::MigrationFreeze { .. } => "migration_freeze",
            TraceEvent::MigrationJournal { .. } => "migration_journal",
            TraceEvent::MigrationCommit { .. } => "migration_commit",
            TraceEvent::MigrationUnfreeze { .. } => "migration_unfreeze",
            TraceEvent::SessionFlush { .. } => "session_flush",
            TraceEvent::FragSplit { .. } => "frag_split",
            TraceEvent::HashPin { .. } => "hash_pin",
            TraceEvent::MdsCrash { .. } => "mds_crash",
            TraceEvent::MdsRestart { .. } => "mds_restart",
            TraceEvent::MdsJoinStart { .. } => "mds_join_start",
            TraceEvent::MdsJoinComplete { .. } => "mds_join_complete",
            TraceEvent::MdsDrainStart { .. } => "mds_drain_start",
            TraceEvent::MdsDrainComplete { .. } => "mds_drain_complete",
            TraceEvent::MdsDeparted { .. } => "mds_departed",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::RequestIssued { .. } => "request_issued",
            TraceEvent::RequestTimeout { .. } => "request_timeout",
            TraceEvent::RequestRetry { .. } => "request_retry",
            TraceEvent::Dropped { .. } => "dropped",
            TraceEvent::Deferred { .. } => "deferred",
            TraceEvent::Forwarded { .. } => "forwarded",
            TraceEvent::Served { .. } => "served",
            TraceEvent::GhostReply { .. } => "ghost_reply",
            TraceEvent::StaleReply { .. } => "stale_reply",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheFill { .. } => "cache_fill",
            TraceEvent::CacheInvalidate { .. } => "cache_invalidate",
            TraceEvent::Completed { .. } => "completed",
            TraceEvent::RunEnd { .. } => "run_end",
        }
    }
}

// ---------------------------------------------------------------------------
// JSONL encoding (hand-rolled — the workspace takes no dependencies).
// ---------------------------------------------------------------------------

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `{}` Display for f64 is shortest-roundtrip and never prints `inf`/`NaN`
/// for the finite loads we serialize; integers print without a dot, which
/// is still a valid JSON number.
fn push_f64(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // Loads are finite by construction; keep the line valid JSON
        // anyway if a pathological policy produces one.
        out.push_str("null");
    }
}

fn push_list<T>(out: &mut String, items: &[T], mut f: impl FnMut(&mut String, &T)) {
    out.push('[');
    for (i, it) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        f(out, it);
    }
    out.push(']');
}

impl TraceRecord {
    /// Append this record's one-line JSON encoding (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"at\":{},\"epoch\":{},\"ev\":\"{}\"",
            self.at.as_micros(),
            self.epoch,
            self.event.name()
        );
        match &self.event {
            TraceEvent::RunStart {
                num_mds,
                fallback_after,
                level,
                heartbeat_us,
            } => {
                let _ = write!(
                    out,
                    ",\"num_mds\":{num_mds},\"fallback_after\":{fallback_after},\
                     \"level\":\"{}\",\"heartbeat_us\":{heartbeat_us}",
                    level.name()
                );
            }
            TraceEvent::DirAdded { dir, parent, files } => {
                let _ = write!(out, ",\"dir\":{}", dir.0);
                match parent {
                    Some(p) => {
                        let _ = write!(out, ",\"parent\":{}", p.0);
                    }
                    None => out.push_str(",\"parent\":null"),
                }
                out.push_str(",\"files\":");
                push_list(out, files, |o, f| {
                    let _ = write!(o, "{f}");
                });
            }
            TraceEvent::AuthSnapshot { dirs, frags } => {
                out.push_str(",\"dirs\":");
                push_list(out, dirs, |o, (d, m)| {
                    let _ = write!(o, "[{},{}]", d.0, m);
                });
                out.push_str(",\"frags\":");
                push_list(out, frags, |o, (d, f, m)| {
                    let _ = write!(o, "[{},{},{}]", d.0, f, m);
                });
            }
            TraceEvent::HeartbeatTick { loads } => {
                out.push_str(",\"loads\":");
                push_list(out, loads, |o, l| push_f64(o, *l));
            }
            TraceEvent::BalancerTick { mds } => {
                let _ = write!(out, ",\"mds\":{mds}");
            }
            TraceEvent::BalancerPlan {
                mds,
                targets,
                selectors,
                exports,
            } => {
                let _ = write!(out, ",\"mds\":{mds},\"targets\":");
                push_list(out, targets, |o, t| push_f64(o, *t));
                out.push_str(",\"selectors\":");
                push_list(out, selectors, |o, s| push_escaped(o, s));
                let _ = write!(out, ",\"exports\":{exports}");
            }
            TraceEvent::PolicyError { mds, consecutive } => {
                let _ = write!(out, ",\"mds\":{mds},\"consecutive\":{consecutive}");
            }
            TraceEvent::BalancerFallback { mds } => {
                let _ = write!(out, ",\"mds\":{mds}");
            }
            TraceEvent::PolicyInstalled { epoch, name } => {
                let _ = write!(out, ",\"install_epoch\":{epoch},\"name\":");
                push_escaped(out, name);
            }
            TraceEvent::MigrationFreeze {
                mig,
                from,
                to,
                root,
                frag,
                holes,
                watermark,
                until,
            } => {
                let _ = write!(
                    out,
                    ",\"mig\":{mig},\"from\":{from},\"to\":{to},\"root\":{}",
                    root.0
                );
                match frag {
                    Some(f) => {
                        let _ = write!(out, ",\"frag\":{f}");
                    }
                    None => out.push_str(",\"frag\":null"),
                }
                out.push_str(",\"holes\":");
                push_list(out, holes, |o, h| {
                    let _ = write!(o, "{}", h.0);
                });
                let _ = write!(
                    out,
                    ",\"watermark\":{watermark},\"until\":{}",
                    until.as_micros()
                );
            }
            TraceEvent::MigrationJournal { mig, mds, micros } => {
                let _ = write!(out, ",\"mig\":{mig},\"mds\":{mds},\"micros\":");
                push_f64(out, *micros);
            }
            TraceEvent::MigrationCommit {
                mig,
                from,
                to,
                root,
                frag,
                inodes,
            } => {
                let _ = write!(
                    out,
                    ",\"mig\":{mig},\"from\":{from},\"to\":{to},\"root\":{}",
                    root.0
                );
                match frag {
                    Some(f) => {
                        let _ = write!(out, ",\"frag\":{f}");
                    }
                    None => out.push_str(",\"frag\":null"),
                }
                let _ = write!(out, ",\"inodes\":{inodes}");
            }
            TraceEvent::MigrationUnfreeze { mig, root, thaw } => {
                let _ = write!(
                    out,
                    ",\"mig\":{mig},\"root\":{},\"thaw\":{}",
                    root.0,
                    thaw.as_micros()
                );
            }
            TraceEvent::SessionFlush { mds, clients } => {
                let _ = write!(out, ",\"mds\":{mds},\"clients\":{clients}");
            }
            TraceEvent::FragSplit {
                dir,
                frag,
                ways,
                resulting_frags,
            } => {
                let _ = write!(
                    out,
                    ",\"dir\":{},\"frag\":{frag},\"ways\":{ways},\
                     \"resulting_frags\":{resulting_frags}",
                    dir.0
                );
            }
            TraceEvent::HashPin { dir, mds } => {
                let _ = write!(out, ",\"dir\":{},\"mds\":{mds}", dir.0);
            }
            TraceEvent::MdsCrash { mds } | TraceEvent::MdsRestart { mds } => {
                let _ = write!(out, ",\"mds\":{mds}");
            }
            TraceEvent::MdsJoinStart {
                mds,
                membership_epoch,
            }
            | TraceEvent::MdsDrainStart {
                mds,
                membership_epoch,
            }
            | TraceEvent::MdsDeparted {
                mds,
                membership_epoch,
            } => {
                let _ = write!(
                    out,
                    ",\"mds\":{mds},\"membership_epoch\":{membership_epoch}"
                );
            }
            TraceEvent::MdsJoinComplete {
                mds,
                membership_epoch,
                rehomed,
            } => {
                let _ = write!(
                    out,
                    ",\"mds\":{mds},\"membership_epoch\":{membership_epoch},\"rehomed\":{rehomed}"
                );
            }
            TraceEvent::MdsDrainComplete {
                mds,
                membership_epoch,
                drained,
            } => {
                let _ = write!(
                    out,
                    ",\"mds\":{mds},\"membership_epoch\":{membership_epoch},\"drained\":{drained}"
                );
            }
            TraceEvent::FaultInjected { mds, kind } => {
                let _ = write!(out, ",\"mds\":{mds},\"kind\":\"{kind}\"");
            }
            TraceEvent::RequestIssued {
                client,
                dir,
                mds,
                seq,
            } => {
                let _ = write!(
                    out,
                    ",\"client\":{client},\"dir\":{},\"mds\":{mds},\"seq\":{seq}",
                    dir.0
                );
            }
            TraceEvent::RequestTimeout { client, seq } => {
                let _ = write!(out, ",\"client\":{client},\"seq\":{seq}");
            }
            TraceEvent::RequestRetry { client, attempt } => {
                let _ = write!(out, ",\"client\":{client},\"attempt\":{attempt}");
            }
            TraceEvent::Dropped { mds, client } => {
                let _ = write!(out, ",\"mds\":{mds},\"client\":{client}");
            }
            TraceEvent::Deferred { mds, dir, until } => {
                let _ = write!(
                    out,
                    ",\"mds\":{mds},\"dir\":{},\"until\":{}",
                    dir.0,
                    until.as_micros()
                );
            }
            TraceEvent::Forwarded {
                from,
                to,
                dir,
                frag,
                client,
            } => {
                let _ = write!(
                    out,
                    ",\"from\":{from},\"to\":{to},\"dir\":{},\"frag\":{frag},\
                     \"client\":{client}",
                    dir.0
                );
            }
            TraceEvent::Served {
                mds,
                client,
                dir,
                frag,
                kind,
                seq,
            } => {
                let _ = write!(
                    out,
                    ",\"mds\":{mds},\"client\":{client},\"dir\":{},\"frag\":{frag},\
                     \"kind\":\"{}\",\"seq\":{seq}",
                    dir.0,
                    kind.name()
                );
            }
            TraceEvent::GhostReply { mds } => {
                let _ = write!(out, ",\"mds\":{mds}");
            }
            TraceEvent::StaleReply {
                mds,
                client,
                dir,
                frag,
                kind,
            }
            | TraceEvent::Completed {
                mds,
                client,
                dir,
                frag,
                kind,
            } => {
                let _ = write!(
                    out,
                    ",\"mds\":{mds},\"client\":{client},\"dir\":{},\"frag\":{frag},\
                     \"kind\":\"{}\"",
                    dir.0,
                    kind.name()
                );
            }
            TraceEvent::CacheHit {
                group,
                client,
                dir,
                mds,
            } => {
                let _ = write!(
                    out,
                    ",\"group\":{group},\"client\":{client},\"dir\":{},\"mds\":{mds}",
                    dir.0
                );
            }
            TraceEvent::CacheFill { group, dir, mds } => {
                let _ = write!(out, ",\"group\":{group},\"dir\":{},\"mds\":{mds}", dir.0);
            }
            TraceEvent::CacheInvalidate { dir, entries } => {
                let _ = write!(out, ",\"dir\":{},\"entries\":{entries}", dir.0);
            }
            TraceEvent::RunEnd { inflight } => {
                let _ = write!(out, ",\"inflight\":{inflight}");
            }
        }
        out.push('}');
    }
}

// ---------------------------------------------------------------------------
// Timeline: per-tick gauges on TimeSeries buckets.
// ---------------------------------------------------------------------------

/// One MDS's per-tick gauge series.
#[derive(Debug, Clone)]
pub struct MdsSeries {
    /// Authority metaload as published in the heartbeat view.
    pub load: TimeSeries,
    /// Queue depth at tick time.
    pub queue: TimeSeries,
    /// Ops completed in the elapsed heartbeat window.
    pub throughput: TimeSeries,
}

/// Per-MDS load / queue-depth / throughput gauges sampled once per
/// heartbeat tick (bucket width = the heartbeat interval, so each tick
/// lands in its own bucket).
#[derive(Debug, Clone)]
pub struct Timeline {
    bucket: SimTime,
    /// One series triple per MDS.
    pub per_mds: Vec<MdsSeries>,
}

impl Timeline {
    /// New timeline for `num_mds` servers with `bucket`-wide samples
    /// (clamped to ≥ 1 ms, the [`TimeSeries`] floor).
    pub fn new(num_mds: usize, bucket: SimTime) -> Self {
        let bucket = if bucket.as_millis() == 0 {
            SimTime::from_millis(1)
        } else {
            bucket
        };
        Timeline {
            bucket,
            per_mds: (0..num_mds)
                .map(|_| MdsSeries {
                    load: TimeSeries::new(bucket),
                    queue: TimeSeries::new(bucket),
                    throughput: TimeSeries::new(bucket),
                })
                .collect(),
        }
    }

    /// Record one tick's gauges for `mds`.
    pub fn sample(&mut self, at: SimTime, mds: MdsId, load: f64, queue: f64, throughput: f64) {
        let s = &mut self.per_mds[mds];
        s.load.add(at, load);
        s.queue.add(at, queue);
        s.throughput.add(at, throughput);
    }

    /// Bucket width.
    pub fn bucket(&self) -> SimTime {
        self.bucket
    }

    /// JSONL: one line per MDS with the three series.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (m, s) in self.per_mds.iter().enumerate() {
            let _ = write!(
                out,
                "{{\"mds\":{m},\"bucket_ms\":{},\"load\":",
                self.bucket.as_millis()
            );
            push_list(&mut out, s.load.values(), |o, v| push_f64(o, *v));
            out.push_str(",\"queue\":");
            push_list(&mut out, s.queue.values(), |o, v| push_f64(o, *v));
            out.push_str(",\"throughput\":");
            push_list(&mut out, s.throughput.values(), |o, v| push_f64(o, *v));
            out.push_str("}\n");
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The buffer.
// ---------------------------------------------------------------------------

/// The trace sink: an in-memory record buffer plus the [`Timeline`].
///
/// The cluster holds it behind `Option<Rc<RefCell<…>>>` — `None` costs one
/// branch per would-be event and builds no payloads (emission sites pass
/// closures, constructed only when a sink is attached).
#[derive(Debug)]
pub struct TraceBuffer {
    /// The sink's verbosity.
    pub level: TraceLevel,
    records: Vec<TraceRecord>,
    /// Per-tick gauges.
    pub timeline: Timeline,
}

impl TraceBuffer {
    /// New empty buffer.
    pub fn new(level: TraceLevel, num_mds: usize, bucket: SimTime) -> Self {
        TraceBuffer {
            level,
            records: Vec::new(),
            timeline: Timeline::new(num_mds, bucket),
        }
    }

    /// Append one record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// The recorded stream, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Mutable access (tests corrupt records to prove the checker bites).
    pub fn records_mut(&mut self) -> &mut Vec<TraceRecord> {
        &mut self.records
    }

    /// The event stream as JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            r.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_names_round_trip() {
        for l in [TraceLevel::Decisions, TraceLevel::Full] {
            assert_eq!(TraceLevel::parse(l.name()), Some(l));
        }
        assert_eq!(TraceLevel::parse("chatty"), None);
    }

    #[test]
    fn jsonl_encodes_one_line_per_record() {
        let mut buf = TraceBuffer::new(TraceLevel::Full, 2, SimTime::from_millis(400));
        buf.push(TraceRecord {
            at: SimTime::ZERO,
            epoch: 0,
            event: TraceEvent::RunStart {
                num_mds: 2,
                fallback_after: 3,
                level: TraceLevel::Full,
                heartbeat_us: 400_000,
            },
        });
        buf.push(TraceRecord {
            at: SimTime::from_millis(1),
            epoch: 0,
            event: TraceEvent::HeartbeatTick {
                loads: vec![1.5, 0.0],
            },
        });
        let jsonl = buf.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"at\":0,\"epoch\":0,\"ev\":\"run_start\""));
        assert!(lines[0].contains("\"heartbeat_us\":400000"));
        assert!(lines[1].contains("\"loads\":[1.5,0]"));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn string_escaping_is_json_safe() {
        let mut out = String::new();
        push_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn timeline_buckets_one_sample_per_tick() {
        let mut t = Timeline::new(2, SimTime::from_millis(400));
        t.sample(SimTime::from_millis(400), 0, 10.0, 2.0, 55.0);
        t.sample(SimTime::from_millis(800), 0, 12.0, 1.0, 60.0);
        t.sample(SimTime::from_millis(400), 1, 0.5, 0.0, 5.0);
        assert_eq!(t.per_mds[0].load.values(), &[0.0, 10.0, 12.0]);
        assert_eq!(t.per_mds[1].queue.values(), &[0.0, 0.0]);
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"bucket_ms\":400"));
    }

    #[test]
    fn zero_bucket_is_clamped() {
        let t = Timeline::new(1, SimTime::ZERO);
        assert_eq!(t.bucket(), SimTime::from_millis(1));
    }
}
