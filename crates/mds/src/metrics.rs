//! Per-MDS metric accounting: the raw material for heartbeats and for the
//! evaluation figures.

use mantle_sim::{SimTime, TimeSeries};

/// Running counters for one MDS.
#[derive(Debug, Clone)]
pub struct MdsCounters {
    /// Completed ops per 1 s bucket (the throughput curves of Figs. 4/7/10).
    pub completed: TimeSeries,
    /// Busy time accumulated in the current heartbeat window, µs.
    pub busy_window_us: f64,
    /// Requests that arrived here first try and were served here (Fig. 3b
    /// "hits").
    pub hits: u64,
    /// Requests this MDS had to forward elsewhere (Fig. 3b "forwards").
    pub forwards_out: u64,
    /// Requests received via a forward.
    pub forwards_in: u64,
    /// Ops completed in the current heartbeat window (req rate source).
    pub window_ops: u64,
    /// Subtree/dirfrag migrations exported.
    pub migrations_out: u64,
    /// Inodes exported.
    pub inodes_exported: u64,
    /// Client sessions flushed by migrations here (§4.1).
    pub sessions_flushed: u64,
    /// Directory fragmentation events handled.
    pub splits: u64,
    /// Ops whose path prefix had to be resolved through a remote authority
    /// (counted with forwards in Fig. 3b's traversal breakdown).
    pub remote_prefix: u64,
    /// Requests lost because they reached this MDS while it was crashed
    /// (the clients that sent them time out and retry).
    pub dropped: u64,
    /// Currently queued requests.
    pub queued: u64,
}

impl MdsCounters {
    /// Fresh counters with 1 s throughput buckets.
    pub fn new() -> Self {
        MdsCounters {
            completed: TimeSeries::new(SimTime::from_secs(1)),
            busy_window_us: 0.0,
            hits: 0,
            forwards_out: 0,
            forwards_in: 0,
            window_ops: 0,
            migrations_out: 0,
            inodes_exported: 0,
            sessions_flushed: 0,
            splits: 0,
            remote_prefix: 0,
            dropped: 0,
            queued: 0,
        }
    }

    /// Record a completed op at `now` taking `service_us`.
    pub fn complete_op(&mut self, now: SimTime, service_us: f64) {
        self.completed.incr(now);
        self.busy_window_us += service_us;
        self.window_ops += 1;
    }

    /// CPU utilization over a heartbeat window of `window` (0–100).
    pub fn cpu_percent(&self, window: SimTime) -> f64 {
        let window_us = window.as_millis() as f64 * 1_000.0;
        (self.busy_window_us / window_us * 100.0).min(100.0)
    }

    /// Request rate over the window, req/s.
    pub fn req_rate(&self, window: SimTime) -> f64 {
        self.window_ops as f64 / window.as_secs_f64().max(1e-9)
    }

    /// Reset the per-window accumulators (called at each heartbeat).
    pub fn roll_window(&mut self) {
        self.busy_window_us = 0.0;
        self.window_ops = 0;
    }
}

impl Default for MdsCounters {
    fn default() -> Self {
        Self::new()
    }
}

/// A heartbeat snapshot: what one MDS tells the others about itself
/// (metadata loads + resource metrics, §2's "Partitioning the Cluster").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Heartbeat {
    /// Metadata load on authority subtrees (decayed, via the metaload
    /// formula in effect).
    pub auth_metaload: f64,
    /// Metadata load on all subtrees this MDS knows about.
    pub all_metaload: f64,
    /// CPU utilization percent (instantaneous, noisy).
    pub cpu: f64,
    /// Memory utilization percent.
    pub mem: f64,
    /// Queue length at snapshot time.
    pub queue_len: f64,
    /// Request rate over the last window, req/s.
    pub req_rate: f64,
    /// Proxy-cache hits attributed to this MDS over the last window —
    /// requests the cache tier absorbed that would otherwise have
    /// arrived here. Zero with the cache disabled. Together with the
    /// cache-aware metaload (absorbed hits are *not* MDS load), this
    /// lets a policy tell "hot but absorbed" from "hot and hammering".
    pub cache_hits: f64,
    /// Proxy-cache misses routed to this MDS over the last window (the
    /// post-cache traffic actually arriving). Zero with the cache
    /// disabled.
    pub cache_misses: f64,
    /// When this snapshot was taken.
    pub taken_at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_percent_from_busy_time() {
        let mut c = MdsCounters::new();
        // 5 s busy in a 10 s window = 50 %.
        c.busy_window_us = 5_000_000.0;
        assert!((c.cpu_percent(SimTime::from_secs(10)) - 50.0).abs() < 1e-9);
        // Saturates at 100.
        c.busy_window_us = 50_000_000.0;
        assert_eq!(c.cpu_percent(SimTime::from_secs(10)), 100.0);
    }

    #[test]
    fn req_rate_and_roll() {
        let mut c = MdsCounters::new();
        for i in 0..50 {
            c.complete_op(SimTime::from_millis(i * 100), 200.0);
        }
        assert!((c.req_rate(SimTime::from_secs(10)) - 5.0).abs() < 1e-9);
        c.roll_window();
        assert_eq!(c.window_ops, 0);
        assert_eq!(c.busy_window_us, 0.0);
        // Throughput buckets survive the roll.
        assert_eq!(c.completed.total(), 50.0);
    }

    #[test]
    fn throughput_buckets_by_second() {
        let mut c = MdsCounters::new();
        c.complete_op(SimTime::from_millis(100), 100.0);
        c.complete_op(SimTime::from_millis(1_100), 100.0);
        c.complete_op(SimTime::from_millis(1_200), 100.0);
        assert_eq!(c.completed.values(), &[1.0, 2.0]);
    }
}
