//! The cluster simulation: clients, MDS queues, heartbeats, balancer
//! ticks, and migrations, driven by one deterministic event loop.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use mantle_namespace::{MdsId, Namespace, NodeId, NsConfig, SplitEvent, SubtreeMigration};
use mantle_sim::{EventQueue, SimRng, SimTime, Summary};

use crate::balancer::{BalanceContext, Balancer, CephfsBalancer};
use crate::client::{ClientOp, ClientState, Workload};
use crate::config::{ClusterConfig, PlacementPolicy};
use crate::faults::FaultKind;
use crate::metrics::{Heartbeat, MdsCounters};
use crate::partition::{plan_exports, Export, ExportUnit};
use crate::report::{ClientReport, MdsReport, RunReport};
use crate::trace::{TraceBuffer, TraceEvent, TraceLevel, TraceRecord};

/// A request in flight.
#[derive(Debug, Clone, Copy)]
struct Request {
    client: usize,
    op: ClientOp,
    /// The dirfrag the client routed to (picked at issue time and carried
    /// with the request, like the frag bits in a real CephFS request).
    frag: mantle_namespace::FragId,
    issued: SimTime,
    forwarded: bool,
    /// The issuing client's attempt number; replies for a superseded
    /// attempt (the client timed out and retried) are dropped.
    seq: u64,
}

#[derive(Debug)]
enum Event {
    /// A client is ready to issue its next op.
    ClientNext(usize),
    /// A request arrives at an MDS.
    Arrive { mds: MdsId, req: Request },
    /// An MDS finishes serving a request.
    Complete {
        mds: MdsId,
        req: Request,
        service_us: f64,
        /// The MDS's incarnation when service started; a crash bumps the
        /// incarnation, so completions from before it are ghosts.
        epoch: u64,
    },
    /// Cluster-wide heartbeat + balancer tick.
    Heartbeat,
    /// A scheduled administrative action (manual repartition etc.).
    Admin(usize),
    /// A scheduled fault from the [`crate::faults::FaultPlan`] fires.
    Fault(usize),
    /// A client's request timeout expires; if the attempt is still
    /// outstanding the client declares it lost and backs off to retry.
    Timeout { client: usize, seq: u64 },
    /// A client re-issues its pending op after a timeout backoff.
    Retry(usize),
}

/// A balancer that never migrates — used for static-partition experiments
/// (the "high locality" / "spread" setups of Fig. 3).
#[derive(Debug, Default, Clone)]
pub struct NoopBalancer;

impl Balancer for NoopBalancer {
    fn name(&self) -> &str {
        "none"
    }
    fn metaload(&self, heat: &mantle_namespace::HeatSample) -> mantle_policy::PolicyResult<f64> {
        Ok(heat.cephfs_metaload())
    }
    fn metaload_is_additive(&self) -> bool {
        true
    }
    fn decide(
        &mut self,
        _ctx: &BalanceContext,
    ) -> mantle_policy::PolicyResult<Option<crate::balancer::MigrationPlan>> {
        Ok(None)
    }
}

type AdminAction = Box<dyn FnOnce(&mut Namespace) + Send>;

/// One export's freeze or cold-prefix region. Membership is an
/// Euler-interval range check against the namespace's current labels plus
/// the authority holes captured at export time — no per-directory map
/// entries are materialized, and expired windows are purged eagerly.
#[derive(Debug, Clone)]
struct SubtreeWindow {
    root: NodeId,
    /// Nested authority bounds inside the exported subtree; directories
    /// under a hole did not move and are outside the window.
    holes: Vec<NodeId>,
    /// `dir_count` at capture: directories created after the export sit
    /// outside the window even when their Euler label falls inside.
    watermark: u32,
    /// Frag exports cover only the fragmented directory itself.
    root_only: bool,
    until: SimTime,
}

impl SubtreeWindow {
    fn contains(&self, ns: &Namespace, d: NodeId) -> bool {
        if d.0 >= self.watermark {
            return false;
        }
        if self.root_only {
            return d == self.root;
        }
        ns.in_subtree(d, self.root) && !self.holes.iter().any(|&h| ns.in_subtree(d, h))
    }
}

/// The simulated cluster. Build one, optionally schedule admin actions,
/// then [`Cluster::run`] it to completion.
pub struct Cluster {
    cfg: ClusterConfig,
    ns: Namespace,
    workload: Box<dyn Workload>,
    balancers: Vec<Box<dyn Balancer>>,
    clients: Vec<ClientState>,
    counters: Vec<MdsCounters>,
    /// Absolute µs when each MDS becomes free (single-server queue).
    next_free: Vec<SimTime>,
    /// Frozen regions (two-phase-commit migrations); a request inside any
    /// window defers to the latest covering thaw.
    frozen: Vec<SubtreeWindow>,
    /// Regions whose new authority is still warming up its ancestor
    /// prefix replicas.
    prefix_cold: Vec<SubtreeWindow>,
    /// Reused owner-list buffer (per-op span / routing checks).
    scratch_owners: Vec<MdsId>,
    /// Reused per-tick load accumulators (heartbeat snapshots).
    scratch_auth_load: Vec<f64>,
    scratch_all_load: Vec<f64>,
    /// Reused directory-list buffer (non-additive metaload walks).
    scratch_dirs: Vec<NodeId>,
    queue: EventQueue<Event>,
    rng_service: SimRng,
    rng_cpu: SimRng,
    inflight: usize,
    active_clients: usize,
    admin_actions: Vec<Option<AdminAction>>,
    /// Count of balancer hook errors (bad policies surface here).
    pub policy_errors: u64,
    /// True when the fault plan schedules anything; inert plans skip all
    /// timeout/retry bookkeeping so healthy runs stay byte-identical.
    faults_active: bool,
    /// Liveness per MDS (crashes flip this off, restarts back on).
    up: Vec<bool>,
    /// Incarnation per MDS; bumped by crashes to invalidate in-flight
    /// completions.
    mds_epoch: Vec<u64>,
    /// Service-time multiplier per MDS while `now < slow_until`.
    slow_factor: Vec<f64>,
    slow_until: Vec<SimTime>,
    /// Heartbeat outage windows: while dropping, readers see the snapshot
    /// frozen at the window start; while delaying, the previous tick's.
    hb_drop_until: Vec<SimTime>,
    hb_delay_until: Vec<SimTime>,
    hb_frozen: Vec<Option<Heartbeat>>,
    hb_published: Vec<Heartbeat>,
    /// Balancers whose hooks were poisoned mid-run (every decide errors).
    poisoned: Vec<bool>,
    /// Consecutive balancer errors per MDS; reaching
    /// `faults.fallback_after` swaps in the default CephFS balancer.
    consecutive_policy_errors: Vec<u32>,
    /// The configured balancer's name, pinned at construction so a
    /// mid-run fallback doesn't relabel the report.
    balancer_name: String,
    timeouts: u64,
    retries: u64,
    failovers: u64,
    balancer_fallbacks: u64,
    /// Optional trace sink ([`Cluster::enable_tracing`]). `None` costs one
    /// branch per emission site and never builds event payloads, so
    /// untraced fixed-seed runs stay byte-identical.
    trace: Option<Rc<RefCell<TraceBuffer>>>,
    /// Heartbeat epoch: balancer ticks completed so far (stamps records).
    hb_epoch: u64,
    /// Directories already announced to the trace (`DirAdded` watermark).
    traced_dirs: u32,
    /// Migration counter: ids shared by the freeze→…→unfreeze phases.
    mig_seq: u64,
}

impl Cluster {
    /// Build a cluster. `make_balancer` is invoked once per MDS — each MDS
    /// runs its own independent balancer instance, as in the paper.
    pub fn new<F>(cfg: ClusterConfig, mut workload: Box<dyn Workload>, mut make_balancer: F) -> Self
    where
        F: FnMut(MdsId) -> Box<dyn Balancer>,
    {
        let mut ns = Namespace::new(NsConfig {
            frag_split_threshold: cfg.frag_split_threshold,
            decay_half_life: cfg.decay_half_life,
            index_mode: cfg.index_mode,
            ..Default::default()
        });
        workload.setup(&mut ns);
        let n = cfg.num_mds;
        let master = SimRng::new(cfg.seed);
        let clients = (0..workload.num_clients()).map(ClientState::new).collect();
        let balancers: Vec<Box<dyn Balancer>> = (0..n).map(&mut make_balancer).collect();
        let balancer_name = balancers
            .first()
            .map(|b| b.name().to_string())
            .unwrap_or_default();
        let num_clients = workload.num_clients();
        let faults_active = cfg.faults.is_active();
        Cluster {
            ns,
            workload,
            balancers,
            clients,
            counters: (0..n).map(|_| MdsCounters::new()).collect(),
            next_free: vec![SimTime::ZERO; n],
            frozen: Vec::new(),
            prefix_cold: Vec::new(),
            scratch_owners: Vec::new(),
            scratch_auth_load: Vec::new(),
            scratch_all_load: Vec::new(),
            scratch_dirs: Vec::new(),
            queue: EventQueue::with_scheduler(cfg.scheduler),
            rng_service: master.stream("service-noise"),
            rng_cpu: master.stream("cpu-noise"),
            inflight: 0,
            active_clients: num_clients,
            admin_actions: Vec::new(),
            policy_errors: 0,
            faults_active,
            up: vec![true; n],
            mds_epoch: vec![0; n],
            slow_factor: vec![1.0; n],
            slow_until: vec![SimTime::ZERO; n],
            hb_drop_until: vec![SimTime::ZERO; n],
            hb_delay_until: vec![SimTime::ZERO; n],
            hb_frozen: vec![None; n],
            hb_published: vec![Heartbeat::default(); n],
            poisoned: vec![false; n],
            consecutive_policy_errors: vec![0; n],
            balancer_name,
            timeouts: 0,
            retries: 0,
            failovers: 0,
            balancer_fallbacks: 0,
            trace: None,
            hb_epoch: 0,
            traced_dirs: 0,
            mig_seq: 0,
            cfg,
        }
    }

    /// Attach a trace sink at `level` and return a handle to it. Call
    /// before [`Cluster::run`]; after the run (which consumes the
    /// cluster) the handle is the only owner and can be unwrapped.
    pub fn enable_tracing(&mut self, level: TraceLevel) -> Rc<RefCell<TraceBuffer>> {
        let buf = Rc::new(RefCell::new(TraceBuffer::new(
            level,
            self.cfg.num_mds,
            self.cfg.heartbeat_interval,
        )));
        self.trace = Some(Rc::clone(&buf));
        buf
    }

    /// Emit a control-plane event (recorded at every trace level). The
    /// payload closure only runs when a sink is attached.
    #[inline]
    fn emit(&self, at: SimTime, make: impl FnOnce() -> TraceEvent) {
        if let Some(t) = &self.trace {
            let record = TraceRecord {
                at,
                epoch: self.hb_epoch,
                event: make(),
            };
            t.borrow_mut().push(record);
        }
    }

    /// Emit a data-plane event (recorded only at [`TraceLevel::Full`]).
    #[inline]
    fn emit_full(&self, at: SimTime, make: impl FnOnce() -> TraceEvent) {
        if let Some(t) = &self.trace {
            if t.borrow().level == TraceLevel::Full {
                let record = TraceRecord {
                    at,
                    epoch: self.hb_epoch,
                    event: make(),
                };
                t.borrow_mut().push(record);
            }
        }
    }

    /// Emit `FragSplit` for a completed op that fragmented its directory.
    fn emit_split(&self, at: SimTime, split: Option<SplitEvent>) {
        if let Some(se) = split {
            self.emit(at, || TraceEvent::FragSplit {
                dir: se.dir,
                frag: se.frag,
                ways: se.ways,
                resulting_frags: se.resulting_frags,
            });
        }
    }

    /// Announce directories created since the last sync (workload setup,
    /// mid-run mkdirs, admin repartitions) so the checker's tree model
    /// stays complete.
    fn sync_dirs(&mut self, at: SimTime) {
        if self.trace.is_none() {
            return;
        }
        let total = self.ns.dir_count() as u32;
        while self.traced_dirs < total {
            let id = NodeId(self.traced_dirs);
            let (parent, files) = {
                let d = self.ns.dir(id);
                (
                    d.parent,
                    d.frags.iter().map(|f| f.files).collect::<Vec<_>>(),
                )
            };
            self.emit(at, || TraceEvent::DirAdded {
                dir: id,
                parent,
                files,
            });
            self.traced_dirs += 1;
        }
    }

    /// Emit the complete explicit-authority state. Used at the preamble
    /// and after admin actions, which mutate authority outside the traced
    /// event flow.
    fn emit_auth_snapshot(&self, at: SimTime) {
        if self.trace.is_none() {
            return;
        }
        let mut dirs = Vec::new();
        let mut frags = Vec::new();
        let all: Vec<NodeId> = self.ns.all_dirs().collect();
        for d in all {
            let dir = self.ns.dir(d);
            if let Some(m) = dir.auth {
                dirs.push((d, m));
            }
            for (f, frag) in dir.frags.iter().enumerate() {
                if let Some(m) = frag.auth {
                    frags.push((d, f, m));
                }
            }
        }
        self.emit(at, || TraceEvent::AuthSnapshot { dirs, frags });
    }

    /// Mutable access to the namespace before the run (static partitions).
    pub fn namespace_mut(&mut self) -> &mut Namespace {
        &mut self.ns
    }

    /// Schedule an administrative action (e.g. a manual repartition) at a
    /// point in virtual time.
    pub fn schedule_admin<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut Namespace) + Send + 'static,
    {
        let idx = self.admin_actions.len();
        self.admin_actions.push(Some(Box::new(action)));
        self.queue.schedule_at(at, Event::Admin(idx));
    }

    fn half_rtt(&self) -> SimTime {
        SimTime::from_micros_f64(self.cfg.costs.rtt_us / 2.0)
    }

    /// Latest thaw among frozen windows covering `d`, if any.
    fn frozen_until(&self, d: NodeId) -> Option<SimTime> {
        self.frozen
            .iter()
            .filter(|w| w.contains(&self.ns, d))
            .map(|w| w.until)
            .max()
    }

    /// Run to completion and produce the report.
    pub fn run(mut self) -> RunReport {
        // Trace preamble: stream header, the setup-time tree, and the
        // explicit authority state (static partitions applied before run).
        if self.trace.is_some() {
            let num_mds = self.cfg.num_mds;
            let fallback_after = self.cfg.faults.fallback_after;
            let level = self
                .trace
                .as_ref()
                .map(|t| t.borrow().level)
                .expect("trace checked above");
            let heartbeat_us = self.cfg.heartbeat_interval.as_micros();
            self.emit(SimTime::ZERO, || TraceEvent::RunStart {
                num_mds,
                fallback_after,
                level,
                heartbeat_us,
            });
            self.sync_dirs(SimTime::ZERO);
            self.emit_auth_snapshot(SimTime::ZERO);
        }
        // Kick off every client and the heartbeat cycle.
        for c in 0..self.clients.len() {
            self.queue.schedule_at(SimTime::ZERO, Event::ClientNext(c));
        }
        self.queue
            .schedule_at(self.cfg.heartbeat_interval, Event::Heartbeat);
        for i in 0..self.cfg.faults.events.len() {
            self.queue
                .schedule_at(self.cfg.faults.events[i].at, Event::Fault(i));
        }

        let mut last_now = SimTime::ZERO;
        while let Some((now, event)) = self.queue.pop() {
            if now > self.cfg.max_duration {
                break;
            }
            last_now = now;
            match event {
                Event::ClientNext(c) => self.on_client_next(c, now),
                Event::Arrive { mds, req } => self.on_arrive(mds, req, now),
                Event::Complete {
                    mds,
                    req,
                    service_us,
                    epoch,
                } => self.on_complete(mds, req, service_us, epoch, now),
                Event::Heartbeat => self.on_heartbeat(now),
                Event::Admin(idx) => {
                    if let Some(action) = self.admin_actions[idx].take() {
                        action(&mut self.ns);
                        // Admin actions mutate the namespace wholesale;
                        // re-announce new dirs and the authority state.
                        self.sync_dirs(now);
                        self.emit_auth_snapshot(now);
                    }
                }
                Event::Fault(idx) => self.on_fault(idx, now),
                Event::Timeout { client, seq } => self.on_timeout(client, seq, now),
                Event::Retry(client) => self.on_retry(client, now),
            }
            if self.active_clients == 0 && self.inflight == 0 {
                break;
            }
        }
        let inflight = self.inflight;
        self.emit(last_now, || TraceEvent::RunEnd { inflight });
        self.into_report()
    }

    fn on_client_next(&mut self, c: usize, now: SimTime) {
        if self.clients[c].done {
            return;
        }
        let stall = self.clients[c].stall_until;
        if stall > now {
            self.queue.schedule_at(stall, Event::ClientNext(c));
            return;
        }
        let nxt = self.workload.next(c, &mut self.ns, now);
        // The workload may have mkdir'd; keep the traced tree complete.
        self.sync_dirs(now);
        match nxt {
            None => {
                self.clients[c].done = true;
                if self.clients[c].finished_at == SimTime::ZERO {
                    self.clients[c].finished_at = now;
                }
                self.active_clients -= 1;
            }
            Some(op) => {
                self.clients[c].pending = Some(op);
                self.clients[c].attempts = 0;
                self.issue(c, now);
            }
        }
    }

    /// Send the client's pending op to the MDS it routes to, arming the
    /// request timeout when fault injection is on.
    fn issue(&mut self, c: usize, now: SimTime) {
        let op = self.clients[c]
            .pending
            .expect("issue() requires a pending op");
        let frag = self.ns.peek_frag(op.dir);
        self.ns.frag_owners_into(op.dir, &mut self.scratch_owners);
        let multi_owner = self.scratch_owners.len() > 1;
        let mds = self.clients[c].route(&self.ns, &op, frag, multi_owner);
        self.clients[c].seq += 1;
        let seq = self.clients[c].seq;
        let req = Request {
            client: c,
            op,
            frag,
            issued: now,
            forwarded: false,
            seq,
        };
        self.emit_full(now, || TraceEvent::RequestIssued {
            client: c,
            dir: op.dir,
            mds,
            seq,
        });
        self.inflight += 1;
        self.queue
            .schedule_at(now + self.half_rtt(), Event::Arrive { mds, req });
        if self.faults_active {
            self.queue.schedule_at(
                now + self.cfg.faults.request_timeout,
                Event::Timeout { client: c, seq },
            );
        }
    }

    /// A request timeout fired. If the attempt is still outstanding, the
    /// client declares it lost, forgets its (possibly stale) route for
    /// the directory, and backs off exponentially before retrying.
    fn on_timeout(&mut self, c: usize, seq: u64, now: SimTime) {
        let client = &self.clients[c];
        if client.seq != seq || client.pending.is_none() {
            return; // the attempt completed (or was already superseded)
        }
        self.timeouts += 1;
        self.emit_full(now, || TraceEvent::RequestTimeout { client: c, seq });
        let client = &self.clients[c];
        let dir = client.pending.expect("checked above").dir;
        let attempt = client.attempts;
        self.clients[c].attempts += 1;
        // Re-route: the cached mapping pointed at a dead or unreachable
        // authority; fall back to the mount authority on the next try.
        self.clients[c].invalidate(dir);
        let backoff = self.cfg.faults.backoff_for(attempt);
        self.queue.schedule_at(now + backoff, Event::Retry(c));
    }

    /// The backoff elapsed: re-issue the pending op (a late reply may
    /// have landed in the meantime, in which case there is nothing to do).
    fn on_retry(&mut self, c: usize, now: SimTime) {
        if self.clients[c].done || self.clients[c].pending.is_none() {
            return;
        }
        self.retries += 1;
        let attempt = self.clients[c].attempts;
        self.emit_full(now, || TraceEvent::RequestRetry { client: c, attempt });
        self.issue(c, now);
    }

    fn on_arrive(&mut self, mds: MdsId, mut req: Request, now: SimTime) {
        // A crashed MDS serves nothing: the request is lost on the floor
        // and the issuing client's timeout recovers it.
        if !self.up[mds] {
            self.counters[mds].dropped += 1;
            self.inflight -= 1;
            self.emit_full(now, || TraceEvent::Dropped {
                mds,
                client: req.client,
            });
            return;
        }
        // Hash placement pins each directory on first touch.
        if self.cfg.placement == PlacementPolicy::HashDirs && self.ns.dir(req.op.dir).auth.is_none()
        {
            let mut target = (req.op.dir.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) as usize
                % self.cfg.num_mds;
            if !self.up[target] {
                target = 0; // never pin fresh metadata on a dead MDS
            }
            self.ns.set_auth(req.op.dir, Some(target));
            self.emit(now, || TraceEvent::HashPin {
                dir: req.op.dir,
                mds: target,
            });
        }
        // Frozen subtree (mid-migration): the request waits for the thaw.
        // Lapsed windows are dropped eagerly so the set never accumulates.
        self.frozen.retain(|w| w.until > now);
        if let Some(thaw) = self.frozen_until(req.op.dir) {
            self.emit_full(now, || TraceEvent::Deferred {
                mds,
                dir: req.op.dir,
                until: thaw,
            });
            self.queue.schedule_at(thaw, Event::Arrive { mds, req });
            return;
        }
        let frag = req.frag.min(self.ns.dir(req.op.dir).frags.len() - 1);
        let auth = self.ns.frag_auth(req.op.dir, frag);
        if auth != mds {
            // Wrong MDS: pay a forward (wasted service here + a hop).
            self.counters[mds].forwards_out += 1;
            let fwd_us = self.cfg.costs.forward_us;
            let start = self.next_free[mds].max(now);
            self.next_free[mds] = start + SimTime::from_micros_f64(fwd_us);
            self.counters[mds].busy_window_us += fwd_us;
            req.forwarded = true;
            self.emit_full(now, || TraceEvent::Forwarded {
                from: mds,
                to: auth,
                dir: req.op.dir,
                frag,
                client: req.client,
            });
            let hop = SimTime::from_micros_f64(self.cfg.costs.forward_hop_us);
            self.queue.schedule_at(
                self.next_free[mds].max(now) + hop,
                Event::Arrive { mds: auth, req },
            );
            return;
        }
        if req.forwarded {
            self.counters[mds].forwards_in += 1;
        } else {
            self.counters[mds].hits += 1;
        }
        self.emit_full(now, || TraceEvent::Served {
            mds,
            client: req.client,
            dir: req.op.dir,
            frag,
            kind: req.op.kind,
            seq: req.seq,
        });
        self.ns
            .frag_owners_into(req.op.dir, &mut self.scratch_owners);
        let span = self.scratch_owners.len();
        let mut base = self.cfg.costs.service_with_span(req.op.kind, span)
            * self.cfg.costs.contention_factor(self.counters[mds].queued);
        // Path traversal: right after an import the serving MDS has not
        // yet replicated the directory's ancestor prefix, so traversals
        // resolve remotely (and, once warm, locally again).
        self.prefix_cold.retain(|w| w.until > now);
        let in_cold = {
            let ns = &self.ns;
            self.prefix_cold.iter().any(|w| w.contains(ns, req.op.dir))
        };
        if in_cold {
            if self.ns.dir(req.op.dir).parent.is_some() {
                base *= 1.0 + self.cfg.costs.remote_prefix_penalty;
                self.counters[mds].remote_prefix += 1;
            }
        } else if self.cfg.placement == PlacementPolicy::HashDirs {
            // Hash-based placement has no subtree prefix replication
            // (§5 "Compute it — Hashing"): every traversal whose parent
            // lives elsewhere resolves remotely, permanently.
            if let Some(parent) = self.ns.dir(req.op.dir).parent {
                if self.ns.resolve_auth(parent) != mds {
                    base *= 1.0 + self.cfg.costs.remote_prefix_penalty;
                    self.counters[mds].remote_prefix += 1;
                }
            }
        }
        // An injected slowdown stretches every service time in its window.
        if self.faults_active && now < self.slow_until[mds] {
            base *= self.slow_factor[mds];
        }
        let service_us = (base * self.rng_service.jitter(self.cfg.costs.service_noise)).max(1.0);
        let start = self.next_free[mds].max(now);
        let done = start + SimTime::from_micros_f64(service_us);
        self.next_free[mds] = done;
        self.counters[mds].queued += 1;
        self.queue.schedule_at(
            done,
            Event::Complete {
                mds,
                req,
                service_us,
                epoch: self.mds_epoch[mds],
            },
        );
    }

    fn on_complete(&mut self, mds: MdsId, req: Request, service_us: f64, epoch: u64, now: SimTime) {
        // Ghost completion: the MDS crashed (and possibly restarted) after
        // this request entered service — the reply never left the wire.
        if !self.up[mds] || epoch != self.mds_epoch[mds] {
            self.inflight -= 1;
            self.emit_full(now, || TraceEvent::GhostReply { mds });
            return;
        }
        self.counters[mds].queued = self.counters[mds].queued.saturating_sub(1);
        self.counters[mds].complete_op(now, service_us);
        let (frag_used, split) = self.ns.record_op_on(req.op.dir, req.frag, req.op.kind, now);
        if split.is_some() {
            self.counters[mds].splits += 1;
            let cost = SimTime::from_micros_f64(self.cfg.costs.split_us);
            self.next_free[mds] = self.next_free[mds].max(now) + cost;
            self.counters[mds].busy_window_us += self.cfg.costs.split_us;
        }
        let reply_at = now + self.half_rtt();
        let latency_ms = (reply_at - req.issued).as_millis_f64();
        // Stale reply: the client timed out this attempt and has already
        // retried (or finished via the retry). The server-side work still
        // happened — it just counted for nothing at the client.
        let stale = {
            let client = &self.clients[req.client];
            req.seq != client.seq || client.pending.is_none()
        };
        if stale {
            self.emit_full(now, || TraceEvent::StaleReply {
                mds,
                client: req.client,
                dir: req.op.dir,
                frag: frag_used,
                kind: req.op.kind,
            });
            self.emit_split(now, split);
            self.inflight -= 1;
            return;
        }
        self.emit_full(now, || TraceEvent::Completed {
            mds,
            client: req.client,
            dir: req.op.dir,
            frag: frag_used,
            kind: req.op.kind,
        });
        self.emit_split(now, split);
        let client = &mut self.clients[req.client];
        client.pending = None;
        client.learn(req.op.dir, mds);
        client.record_completion(reply_at, latency_ms);
        self.inflight -= 1;
        self.queue
            .schedule_at(reply_at, Event::ClientNext(req.client));
    }

    /// Apply one scheduled fault.
    fn on_fault(&mut self, idx: usize, now: SimTime) {
        match self.cfg.faults.events[idx].kind.clone() {
            FaultKind::Crash { mds } => {
                // MDS 0 is the mount authority and the failover target; a
                // cluster that loses it has no root to serve from.
                if mds == 0 || mds >= self.cfg.num_mds || !self.up[mds] {
                    return;
                }
                self.up[mds] = false;
                self.mds_epoch[mds] += 1;
                self.counters[mds].queued = 0;
                self.sync_dirs(now);
                self.emit(now, || TraceEvent::MdsCrash { mds });
                // Every subtree and dirfrag it served fails over to the
                // mount authority; the balancers respread load from there.
                let dirs: Vec<NodeId> = self.ns.all_dirs().collect();
                for d in dirs {
                    if self.ns.dir(d).auth == Some(mds) {
                        self.ns.set_auth(d, Some(0));
                        self.failovers += 1;
                    }
                    for f in 0..self.ns.dir(d).frags.len() {
                        if self.ns.dir(d).frags[f].auth == Some(mds) {
                            self.ns.set_frag_auth(d, f, Some(0));
                            self.failovers += 1;
                        }
                    }
                }
            }
            FaultKind::Restart { mds } => {
                if mds >= self.cfg.num_mds || self.up[mds] {
                    return;
                }
                self.up[mds] = true;
                self.emit(now, || TraceEvent::MdsRestart { mds });
                // Fresh queue, nothing owed from the previous incarnation.
                self.next_free[mds] = now;
            }
            FaultKind::Slowdown {
                mds,
                factor,
                duration,
            } => {
                if mds >= self.cfg.num_mds {
                    return;
                }
                self.slow_factor[mds] = factor.max(0.0);
                self.slow_until[mds] = now + duration;
                self.emit(now, || TraceEvent::FaultInjected {
                    mds,
                    kind: "slowdown",
                });
            }
            FaultKind::DropHeartbeats { mds, duration } => {
                if mds >= self.cfg.num_mds {
                    return;
                }
                self.hb_drop_until[mds] = now + duration;
                self.emit(now, || TraceEvent::FaultInjected {
                    mds,
                    kind: "drop-heartbeats",
                });
            }
            FaultKind::DelayHeartbeats { mds, duration } => {
                if mds >= self.cfg.num_mds {
                    return;
                }
                self.hb_delay_until[mds] = now + duration;
                self.emit(now, || TraceEvent::FaultInjected {
                    mds,
                    kind: "delay-heartbeats",
                });
            }
            FaultKind::PoisonBalancer { mds } => {
                if mds >= self.cfg.num_mds {
                    return;
                }
                self.poisoned[mds] = true;
                self.emit(now, || TraceEvent::FaultInjected {
                    mds,
                    kind: "poison-balancer",
                });
            }
        }
    }

    /// Record a failed balancer tick on `mds`; after
    /// `faults.fallback_after` consecutive failures the MDS swaps in the
    /// default CephFS balancer (§3.4's graceful degradation).
    fn note_policy_error(&mut self, mds: MdsId, now: SimTime) {
        self.policy_errors += 1;
        self.consecutive_policy_errors[mds] += 1;
        let consecutive = self.consecutive_policy_errors[mds];
        self.emit(now, || TraceEvent::PolicyError { mds, consecutive });
        let k = self.cfg.faults.fallback_after;
        if k > 0 && self.consecutive_policy_errors[mds] >= k {
            self.balancers[mds] = Box::new(CephfsBalancer::default());
            self.poisoned[mds] = false;
            self.consecutive_policy_errors[mds] = 0;
            self.balancer_fallbacks += 1;
            self.emit(now, || TraceEvent::BalancerFallback { mds });
        }
    }

    fn on_heartbeat(&mut self, now: SimTime) {
        // Catch the trace's namespace model up under the *old* epoch —
        // every record carries `epoch == ticks seen so far` except the tick
        // itself, which announces the increment.
        self.sync_dirs(now);
        self.hb_epoch += 1;
        // 1. Every MDS packages up its metrics ("send HB").
        let heartbeats = self.snapshot_heartbeats(now);
        // Timeline + tick record before the windows roll, so the sampled
        // queue depth / throughput are the ones the balancers will act on.
        if let Some(t) = &self.trace {
            let mut b = t.borrow_mut();
            for m in 0..self.cfg.num_mds {
                b.timeline.sample(
                    now,
                    m,
                    heartbeats[m].auth_metaload,
                    self.counters[m].queued as f64,
                    self.counters[m].window_ops as f64,
                );
            }
            let loads: Vec<f64> = heartbeats.iter().map(|h| h.auth_metaload).collect();
            b.push(TraceRecord {
                at: now,
                epoch: self.hb_epoch,
                event: TraceEvent::HeartbeatTick { loads },
            });
        }
        // 2. Roll the measurement windows.
        for c in &mut self.counters {
            c.roll_window();
        }
        // 3. Every MDS runs its balancer against the (shared, already
        //    slightly stale) snapshots and migrates ("recv HB" →
        //    "rebalance" → "migrate").
        for m in 0..self.cfg.num_mds {
            // A crashed MDS neither balances nor exports.
            if !self.up[m] {
                continue;
            }
            // A poisoned balancer errors before reaching a decision.
            if self.poisoned[m] {
                self.note_policy_error(m, now);
                continue;
            }
            let ctx = BalanceContext {
                whoami: m,
                heartbeats: heartbeats.clone(),
            };
            let plan = match self.balancers[m].decide(&ctx) {
                Ok(Some(plan)) => plan,
                Ok(None) => {
                    self.consecutive_policy_errors[m] = 0;
                    self.emit(now, || TraceEvent::BalancerTick { mds: m });
                    continue;
                }
                Err(_) => {
                    self.note_policy_error(m, now);
                    continue;
                }
            };
            let exports =
                match plan_exports(&mut self.ns, m, self.balancers[m].as_ref(), &plan, now) {
                    Ok(e) => e,
                    Err(_) => {
                        self.note_policy_error(m, now);
                        continue;
                    }
                };
            self.consecutive_policy_errors[m] = 0;
            if self.trace.is_some() {
                let targets = plan.targets.clone();
                let selectors: Vec<String> = plan
                    .selectors
                    .iter()
                    .map(|s| s.name().to_string())
                    .collect();
                let n_exports = exports.len();
                self.emit(now, || TraceEvent::BalancerPlan {
                    mds: m,
                    targets,
                    selectors,
                    exports: n_exports,
                });
            }
            for export in exports {
                self.apply_export(m, export, now);
            }
        }
        // 4. Next tick, while clients are still running.
        if self.active_clients > 0 {
            self.queue
                .schedule_at(now + self.cfg.heartbeat_interval, Event::Heartbeat);
        }
    }

    fn snapshot_heartbeats(&mut self, now: SimTime) -> Arc<[Heartbeat]> {
        let n = self.cfg.num_mds;
        // Recycled accumulators: at 64+ MDSs this runs every tick and the
        // per-tick allocations would dominate the balancer path.
        let mut auth_load = std::mem::take(&mut self.scratch_auth_load);
        let mut all_load = std::mem::take(&mut self.scratch_all_load);
        auth_load.clear();
        auth_load.resize(n, 0.0);
        all_load.clear();
        all_load.resize(n, 0.0);
        // Metadata loads from the decayed counters, via each MDS's own
        // metaload policy (evaluated on that MDS's authoritative heat).
        if self.balancers.iter().all(|b| b.metaload_is_additive()) {
            // Every metaload hook is linear with no constant term, so the
            // per-MDS decayed aggregates the namespace maintains
            // incrementally stand in for the frag-by-frag walk: O(MDSs)
            // per tick instead of O(dirs × frags × hook evaluations).
            let (auth_s, rep_s) = self.ns.mds_load_samples(n, now);
            for m in 0..n {
                let auth = match self.balancers[m].metaload(&auth_s[m]) {
                    Ok(l) => l,
                    Err(_) => {
                        self.policy_errors += 1;
                        auth_s[m].cephfs_metaload()
                    }
                };
                let rep = match self.balancers[m].metaload(&rep_s[m]) {
                    Ok(l) => l,
                    Err(_) => {
                        self.policy_errors += 1;
                        rep_s[m].cephfs_metaload()
                    }
                };
                auth_load[m] = auth;
                // Replicated ancestor heat counts at the usual 0.2
                // discount.
                all_load[m] = auth + 0.2 * rep;
            }
        } else {
            // Some hook is non-linear (or has a constant term), so sums of
            // heat don't commute with the hook: fall back to evaluating it
            // per dirfrag.
            let mut dirs = std::mem::take(&mut self.scratch_dirs);
            dirs.clear();
            dirs.extend(self.ns.all_dirs());
            for d in dirs.drain(..) {
                let nfrags = self.ns.dir(d).frags.len();
                for f in 0..nfrags {
                    let heat = self.ns.frag_heat(d, f, now);
                    let auth = self.ns.frag_auth(d, f);
                    let load = match self.balancers[auth].metaload(&heat) {
                        Ok(l) => l,
                        Err(_) => {
                            self.policy_errors += 1;
                            heat.cephfs_metaload()
                        }
                    };
                    auth_load[auth] += load;
                    all_load[auth] += load;
                    // Every MDS replicating this path prefix also "knows"
                    // about this load.
                    for rep in self.ns.ancestor_auth_chain(d) {
                        if rep != auth {
                            all_load[rep] += load * 0.2;
                        }
                    }
                }
            }
            self.scratch_dirs = dirs;
        }
        let fresh: Vec<Heartbeat> = (0..n)
            .map(|m| {
                let cpu_raw = self.counters[m].cpu_percent(self.cfg.heartbeat_interval);
                let cpu = (cpu_raw * self.rng_cpu.jitter(self.cfg.cpu_noise)).clamp(0.0, 100.0);
                // Loads are instantaneous samples shipped over the wire —
                // every reader sees them with sampling error (§2.2.2).
                let load_jitter = self.rng_cpu.jitter(self.cfg.metaload_noise);
                Heartbeat {
                    auth_metaload: auth_load[m] * load_jitter,
                    all_metaload: all_load[m] * load_jitter,
                    cpu,
                    mem: 20.0 + 0.5 * auth_load[m].min(100.0),
                    queue_len: self.counters[m].queued as f64,
                    req_rate: self.counters[m].req_rate(self.cfg.heartbeat_interval),
                    taken_at: now,
                }
            })
            .collect();
        self.scratch_auth_load = auth_load;
        self.scratch_all_load = all_load;
        if !self.faults_active {
            return fresh.into();
        }
        // Heartbeat outages: a dropped MDS's snapshot stays frozen at its
        // last pre-window value; a delayed one lags a full interval. The
        // fresh samples are always recorded so the window can end cleanly.
        let mut view = fresh.clone();
        for (m, slot) in view.iter_mut().enumerate() {
            if now < self.hb_drop_until[m] {
                *slot = *self.hb_frozen[m].get_or_insert(self.hb_published[m]);
            } else {
                self.hb_frozen[m] = None;
                if now < self.hb_delay_until[m] {
                    *slot = self.hb_published[m];
                }
            }
        }
        self.hb_published = fresh;
        view.into()
    }

    fn apply_export(&mut self, from: MdsId, export: Export, now: SimTime) {
        let to = export.to;
        if to >= self.cfg.num_mds || to == from || !self.up[to] {
            return;
        }
        // The checker replays migrations against its namespace model; make
        // sure every directory the walk can touch is already in the trace.
        self.sync_dirs(now);
        let watermark = self.ns.dir_count() as u32;
        let frag_unit = match export.unit {
            ExportUnit::Frag(_, f) => Some(f),
            ExportUnit::Subtree(_) => None,
        };
        // The moved region: the whole (bounded) subtree for a subtree
        // export, just the fragmented dir otherwise. The migration walk
        // reports the inode count and the authority holes in one pass.
        let (root, root_only, migration) = match export.unit {
            ExportUnit::Subtree(d) => (d, false, self.ns.migrate_subtree(d, to)),
            ExportUnit::Frag(d, f) => {
                let inodes = self.ns.migrate_frag(d, f, to);
                (
                    d,
                    true,
                    SubtreeMigration {
                        inodes,
                        holes: Vec::new(),
                    },
                )
            }
        };
        let moved = migration.inodes;
        let region = SubtreeWindow {
            root,
            holes: migration.holes,
            watermark,
            root_only,
            until: SimTime::ZERO,
        };
        // Two-phase commit: the subtree freezes while the importer
        // journals the metadata. Requests to *any* directory inside the
        // moving subtree — not only its root — defer to the thaw.
        let freeze_us = self.cfg.costs.migrate_freeze_us(moved);
        let thaw = now + SimTime::from_micros_f64(freeze_us);
        self.frozen.push(SubtreeWindow {
            until: thaw,
            ..region.clone()
        });
        // Importer and exporter both journal (busy time on each).
        let journal_us = freeze_us / 4.0;
        if self.trace.is_some() {
            self.mig_seq += 1;
            let mig = self.mig_seq;
            let holes = region.holes.clone();
            self.emit(now, || TraceEvent::MigrationFreeze {
                mig,
                from,
                to,
                root,
                frag: frag_unit,
                holes,
                watermark,
                until: thaw,
            });
            self.emit(now, || TraceEvent::MigrationJournal {
                mig,
                mds: from,
                micros: journal_us,
            });
            self.emit(now, || TraceEvent::MigrationJournal {
                mig,
                mds: to,
                micros: journal_us,
            });
            self.emit(now, || TraceEvent::MigrationCommit {
                mig,
                from,
                to,
                root,
                frag: frag_unit,
                inodes: moved,
            });
            self.emit(now, || TraceEvent::MigrationUnfreeze { mig, root, thaw });
        }
        for &m in &[from, export.to] {
            self.next_free[m] = self.next_free[m].max(now) + SimTime::from_micros_f64(journal_us);
            self.counters[m].busy_window_us += journal_us;
        }
        self.counters[from].migrations_out += 1;
        self.counters[from].inodes_exported += moved;
        // The importer's ancestor-prefix replicas need to warm up; the
        // exported subtree's own directories are cold too.
        let warm = now + SimTime::from_micros_f64(self.cfg.costs.prefix_warmup_us);
        self.prefix_cold.push(SubtreeWindow {
            until: warm,
            ..region.clone()
        });
        // Session flushes: every active client halts updates on the moved
        // directories and re-syncs (§4.1). The whole migrated subtree is
        // forgotten — a cache entry for a child dir is as stale as one for
        // the root.
        let flush = SimTime::from_micros_f64(self.cfg.costs.session_flush_us);
        let mut flushed = 0;
        let ns = &self.ns;
        for c in &mut self.clients {
            if !c.done {
                c.invalidate_matching(|d| region.contains(ns, d));
                let until = now + flush;
                if until > c.stall_until {
                    c.stall_until = until;
                }
                flushed += 1;
            }
        }
        self.counters[from].sessions_flushed += flushed;
        self.emit(now, || TraceEvent::SessionFlush {
            mds: from,
            clients: flushed,
        });
    }

    fn into_report(self) -> RunReport {
        let makespan = self
            .clients
            .iter()
            .map(|c| c.finished_at)
            .max()
            .unwrap_or(SimTime::ZERO);
        let sessions: u64 = self.counters.iter().map(|c| c.sessions_flushed).sum();
        RunReport {
            balancer: self.balancer_name,
            workload: self.workload.name().to_string(),
            num_mds: self.cfg.num_mds,
            seed: self.cfg.seed,
            makespan,
            mds: self
                .counters
                .into_iter()
                .map(|c| MdsReport {
                    total_ops: c.completed.total(),
                    throughput: c.completed,
                    hits: c.hits,
                    forwards_out: c.forwards_out,
                    forwards_in: c.forwards_in,
                    migrations_out: c.migrations_out,
                    inodes_exported: c.inodes_exported,
                    sessions_flushed: c.sessions_flushed,
                    splits: c.splits,
                    remote_prefix: c.remote_prefix,
                    dropped: c.dropped,
                })
                .collect(),
            clients: self
                .clients
                .into_iter()
                .map(|c| ClientReport {
                    completed: c.completed,
                    finished_at: c.finished_at,
                    latency: Summary::of(&c.latencies),
                })
                .collect(),
            sessions_flushed: sessions,
            timeouts: self.timeouts,
            retries: self.retries,
            failovers: self.failovers,
            balancer_fallbacks: self.balancer_fallbacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantle_namespace::OpKind;

    /// A trivial workload: each client creates `count` files in its own
    /// directory.
    struct TinyCreate {
        clients: usize,
        count: u64,
        issued: Vec<u64>,
        dirs: Vec<NodeId>,
    }

    impl TinyCreate {
        fn new(clients: usize, count: u64) -> Self {
            TinyCreate {
                clients,
                count,
                issued: vec![0; clients],
                dirs: Vec::new(),
            }
        }
    }

    impl Workload for TinyCreate {
        fn num_clients(&self) -> usize {
            self.clients
        }
        fn setup(&mut self, ns: &mut Namespace) {
            self.dirs = (0..self.clients)
                .map(|c| ns.mkdir_p(&format!("/client{c}")))
                .collect();
        }
        fn next(&mut self, client: usize, _ns: &mut Namespace, _now: SimTime) -> Option<ClientOp> {
            if self.issued[client] >= self.count {
                return None;
            }
            self.issued[client] += 1;
            Some(ClientOp {
                dir: self.dirs[client],
                kind: OpKind::Create,
            })
        }
        fn name(&self) -> &str {
            "tiny-create"
        }
    }

    fn run_tiny(num_mds: usize, clients: usize, count: u64, seed: u64) -> RunReport {
        let cfg = ClusterConfig {
            num_mds,
            seed,
            ..Default::default()
        };
        let cluster = Cluster::new(cfg, Box::new(TinyCreate::new(clients, count)), |_| {
            Box::new(NoopBalancer)
        });
        cluster.run()
    }

    #[test]
    fn completes_all_ops_single_mds() {
        let r = run_tiny(1, 2, 100, 1);
        assert_eq!(r.total_ops(), 200.0);
        assert_eq!(r.total_hits(), 200);
        assert_eq!(r.total_forwards(), 0);
        assert!(r.makespan > SimTime::ZERO);
        assert_eq!(r.clients.len(), 2);
        assert_eq!(r.clients[0].completed, 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_tiny(2, 3, 50, 7);
        let b = run_tiny(2, 3, 50, 7);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.total_ops(), b.total_ops());
        let c = run_tiny(2, 3, 50, 8);
        assert_ne!(
            a.makespan, c.makespan,
            "different seeds give different noise"
        );
    }

    #[test]
    fn static_partition_splits_work() {
        let cfg = ClusterConfig {
            num_mds: 2,
            ..Default::default()
        };
        let mut cluster = Cluster::new(cfg, Box::new(TinyCreate::new(2, 200)), |_| {
            Box::new(NoopBalancer)
        });
        // Statically give client1's dir to MDS 1.
        let ns = cluster.namespace_mut();
        let d1 = ns.lookup_child(ns.root(), "client1").unwrap();
        ns.set_auth(d1, Some(1));
        let r = cluster.run();
        assert!(r.mds[0].total_ops > 0.0);
        assert!(r.mds[1].total_ops > 0.0, "MDS1 served its subtree");
    }

    #[test]
    fn unknown_dirs_route_to_mds0_then_learn() {
        // With everything on MDS 0 and no migrations there are no forwards;
        // statically moving a dir *after* clients learned creates some.
        let cfg = ClusterConfig {
            num_mds: 2,
            ..Default::default()
        };
        let mut cluster = Cluster::new(cfg, Box::new(TinyCreate::new(1, 500)), |_| {
            Box::new(NoopBalancer)
        });
        cluster.schedule_admin(SimTime::from_millis(50), |ns| {
            let d = ns.lookup_child(ns.root(), "client0").unwrap();
            ns.set_auth(d, Some(1));
        });
        let r = cluster.run();
        assert!(
            r.total_forwards() >= 1,
            "stale client cache must cause at least one forward"
        );
        assert!(r.mds[1].total_ops > 0.0);
    }

    #[test]
    fn throughput_series_covers_run() {
        let r = run_tiny(1, 4, 500, 3);
        let ts = r.cluster_throughput();
        assert!((ts.total() - 2000.0).abs() < 1e-9);
        assert!(ts.len() as f64 <= r.makespan.as_secs_f64() + 2.0);
    }

    #[test]
    fn latencies_recorded() {
        let r = run_tiny(1, 1, 50, 9);
        let lat = &r.clients[0].latency;
        assert_eq!(lat.count, 50);
        assert!(lat.mean > 0.5 && lat.mean < 5.0, "mean {} ms", lat.mean);
    }

    #[test]
    fn max_duration_stops_runaway() {
        let cfg = ClusterConfig {
            num_mds: 1,
            max_duration: SimTime::from_millis(10),
            ..Default::default()
        };
        let cluster = Cluster::new(cfg, Box::new(TinyCreate::new(1, 1_000_000)), |_| {
            Box::new(NoopBalancer)
        });
        let r = cluster.run();
        assert!(r.total_ops() < 1_000_000.0);
    }

    #[test]
    fn expensive_migrations_slow_the_job() {
        // The same spill decisions with a 2-second two-phase-commit freeze
        // must produce a longer makespan — the freeze defers every request
        // to the moved directory.
        let mk = |freeze_us: f64| {
            let mut cfg = ClusterConfig {
                num_mds: 2,
                seed: 4,
                heartbeat_interval: SimTime::from_millis(400),
                frag_split_threshold: 300,
                ..Default::default()
            };
            cfg.costs.migrate_fixed_us = freeze_us;
            let workload = TinyCreate::new(4, 2_000);
            // A one-shot admin migration makes the comparison exact.
            let mut cluster = Cluster::new(cfg, Box::new(workload), |_| Box::new(NoopBalancer));
            cluster.schedule_admin(SimTime::from_millis(200), |ns| {
                let d = ns.lookup_child(ns.root(), "client1").unwrap();
                ns.set_auth(d, Some(1));
            });
            cluster.run()
        };
        let cheap = mk(1_000.0);
        let costly = mk(1_000.0); // admin path doesn't freeze — both equal…
        assert_eq!(cheap.makespan, costly.makespan, "control: determinism");

        // …but the balancer path does. Greedy spill with huge freezes:
        let spec = |freeze_us: f64| {
            let mut cfg = ClusterConfig {
                num_mds: 2,
                seed: 4,
                heartbeat_interval: SimTime::from_millis(400),
                frag_split_threshold: 300,
                ..Default::default()
            };
            cfg.costs.migrate_fixed_us = freeze_us;
            cfg
        };
        let policy = mantle_policy::env::PolicySet::from_combined(
            "IWR",
            r#"MDSs[i]["all"]"#,
            r#"if whoami < #MDSs and MDSs[whoami]["load"]>.01 and MDSs[whoami+1]["load"]<.01 then targets[whoami+1]=allmetaload/2 end"#,
            &["half"],
        )
        .unwrap();
        let run_with = |cfg: ClusterConfig| {
            let p = policy.clone();
            Cluster::new(cfg, Box::new(TinyCreate::new(4, 2_000)), move |_| {
                Box::new(crate::balancer::MantleBalancer::new_unvalidated("g", p.clone()).unwrap())
            })
            .run()
        };
        let fast = run_with(spec(1_000.0));
        let slow = run_with(spec(2_000_000.0));
        assert!(
            slow.makespan > fast.makespan,
            "2 s freezes must hurt: {} vs {}",
            slow.makespan,
            fast.makespan
        );
    }

    #[test]
    fn session_flushes_stall_clients() {
        let mut cfg = ClusterConfig {
            num_mds: 2,
            seed: 9,
            heartbeat_interval: SimTime::from_millis(400),
            frag_split_threshold: 300,
            ..Default::default()
        };
        cfg.costs.session_flush_us = 500_000.0; // half a second per flush
        let policy = mantle_policy::env::PolicySet::from_combined(
            "IWR",
            r#"MDSs[i]["all"]"#,
            r#"if whoami < #MDSs and MDSs[whoami]["load"]>.01 and MDSs[whoami+1]["load"]<.01 then targets[whoami+1]=allmetaload/2 end"#,
            &["half"],
        )
        .unwrap();
        let p2 = policy.clone();
        let r = Cluster::new(
            cfg.clone(),
            Box::new(TinyCreate::new(2, 1_500)),
            move |_| {
                Box::new(crate::balancer::MantleBalancer::new_unvalidated("g", p2.clone()).unwrap())
            },
        )
        .run();
        cfg.costs.session_flush_us = 1_000.0;
        let p3 = policy;
        let r_cheap = Cluster::new(cfg, Box::new(TinyCreate::new(2, 1_500)), move |_| {
            Box::new(crate::balancer::MantleBalancer::new_unvalidated("g", p3.clone()).unwrap())
        })
        .run();
        assert!(r.sessions_flushed > 0);
        assert!(
            r.makespan > r_cheap.makespan,
            "expensive session flushes stall clients: {} vs {}",
            r.makespan,
            r_cheap.makespan
        );
    }

    #[test]
    fn subtree_freeze_covers_descendants() {
        // Regression: the two-phase-commit freeze used to mark only the
        // subtree *root*, so requests to descendant directories of a
        // mid-migration subtree were served during the freeze instead of
        // deferring to the thaw.
        let cfg = ClusterConfig {
            num_mds: 2,
            ..Default::default()
        };
        let mut cluster = Cluster::new(cfg, Box::new(TinyCreate::new(1, 1)), |_| {
            Box::new(NoopBalancer)
        });
        let (a, ab) = {
            let ns = cluster.namespace_mut();
            (ns.mkdir_p("/a"), ns.mkdir_p("/a/b"))
        };
        cluster.apply_export(
            0,
            Export {
                unit: ExportUnit::Subtree(a),
                to: 1,
                load: 1.0,
            },
            SimTime::ZERO,
        );
        assert!(cluster.frozen_until(a).is_some(), "root frozen");
        assert!(cluster.frozen_until(ab).is_some(), "descendant frozen too");
        // A request to the descendant during the freeze defers to the
        // thaw instead of being served.
        let req = Request {
            client: 0,
            op: ClientOp {
                dir: ab,
                kind: OpKind::Stat,
            },
            frag: 0,
            issued: SimTime::ZERO,
            forwarded: false,
            seq: 1,
        };
        let thaw = cluster.frozen_until(ab).unwrap();
        cluster.on_arrive(1, req, SimTime::ZERO);
        assert_eq!(
            cluster.queue.peek_time(),
            Some(thaw),
            "descendant request re-scheduled for the thaw, not served"
        );
    }

    #[test]
    fn migration_invalidates_descendant_cache_entries() {
        // Regression: session flushes used to invalidate only the subtree
        // root, so clients kept stale cache entries for child dirs and
        // routed them to the old authority forever.
        let cfg = ClusterConfig {
            num_mds: 3,
            ..Default::default()
        };
        let mut cluster = Cluster::new(cfg, Box::new(TinyCreate::new(1, 1)), |_| {
            Box::new(NoopBalancer)
        });
        let (a, ab) = {
            let ns = cluster.namespace_mut();
            let a = ns.mkdir_p("/a");
            let ab = ns.mkdir_p("/a/b");
            ns.set_auth(a, Some(2));
            (a, ab)
        };
        // The client learned MDS 2 serves both dirs.
        cluster.clients[0].learn(a, 2);
        cluster.clients[0].learn(ab, 2);
        // MDS 2 exports the subtree to MDS 1.
        cluster.apply_export(
            2,
            Export {
                unit: ExportUnit::Subtree(a),
                to: 1,
                load: 1.0,
            },
            SimTime::ZERO,
        );
        let op = ClientOp {
            dir: ab,
            kind: OpKind::Stat,
        };
        let frag = cluster.ns.peek_frag(ab);
        let multi = cluster.ns.frag_owners(ab).len() > 1;
        assert_eq!(
            cluster.clients[0].route(&cluster.ns, &op, frag, multi),
            0,
            "descendant cache entry cleared: route falls back to the mount authority"
        );
    }

    #[test]
    fn expired_windows_are_purged_eagerly() {
        // Regression: expired freeze/cold entries used to linger until a
        // request happened to hit the same directory again; now any lapsed
        // window is dropped on the next arrival, whatever it targets.
        let cfg = ClusterConfig {
            num_mds: 2,
            ..Default::default()
        };
        let mut cluster = Cluster::new(cfg, Box::new(TinyCreate::new(1, 1)), |_| {
            Box::new(NoopBalancer)
        });
        let (a, other) = {
            let ns = cluster.namespace_mut();
            (ns.mkdir_p("/a"), ns.mkdir_p("/other"))
        };
        cluster.apply_export(
            0,
            Export {
                unit: ExportUnit::Subtree(a),
                to: 1,
                load: 1.0,
            },
            SimTime::ZERO,
        );
        assert!(!cluster.frozen.is_empty());
        assert!(!cluster.prefix_cold.is_empty());
        // Long after both windows lapse, a request to an unrelated dir
        // clears the whole set — not just entries for its own directory.
        let req = Request {
            client: 0,
            op: ClientOp {
                dir: other,
                kind: OpKind::Stat,
            },
            frag: 0,
            issued: SimTime::from_secs(100),
            forwarded: false,
            seq: 1,
        };
        cluster.on_arrive(0, req, SimTime::from_secs(100));
        assert!(cluster.frozen.is_empty(), "lapsed freeze windows purged");
        assert!(cluster.prefix_cold.is_empty(), "lapsed cold windows purged");
    }

    #[test]
    fn saturation_shape_matches_fig5() {
        // Fig. 5: throughput stops improving around 4-5 clients and
        // latency keeps rising.
        let t1 = run_tiny(1, 1, 400, 5);
        let t4 = run_tiny(1, 4, 400, 5);
        let t7 = run_tiny(1, 7, 400, 5);
        let rate1 = t1.mean_throughput();
        let rate4 = t4.mean_throughput();
        let rate7 = t7.mean_throughput();
        assert!(rate4 > rate1 * 2.5, "scales early: {rate1} → {rate4}");
        assert!(rate7 < rate4 * 1.35, "saturates late: {rate4} → {rate7}");
        assert!(
            t7.clients[0].latency.mean > t1.clients[0].latency.mean * 1.3,
            "latency rises under overload"
        );
    }
}
